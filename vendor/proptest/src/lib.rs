//! Offline stand-in for the `proptest` crate.
//!
//! The container has no registry access, so the real `proptest` cannot be
//! fetched. This crate reimplements the subset the workspace's property
//! tests use: the `proptest!` / `prop_assert*` / `prop_assume!` /
//! `prop_oneof!` macros, the [`strategy::Strategy`] trait with `prop_map`
//! and `prop_filter`, range/tuple strategies, `prop::num::f32::NORMAL`,
//! `prop::collection::vec`, and `any::<T>()`.
//!
//! Differences from upstream: cases are sampled from a deterministic
//! per-test RNG (seeded from the test's name), and there is no shrinking —
//! a failing case panics with the assertion message, which in these tests
//! always interpolates the offending values.

pub mod arbitrary;
pub mod collection;
pub mod num;
pub mod strategy;
pub mod test_runner;

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Mirror of upstream's `prelude::prop` module alias.
    pub mod prop {
        pub use crate::collection;
        pub use crate::num;
    }
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` over `config.cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$attr:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            'cases: for __case in 0..__config.cases {
                let mut __rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), __case);
                $(
                    let $arg = match $crate::test_runner::sample_or_reject(
                        &($strat),
                        &mut __rng,
                    ) {
                        ::std::result::Result::Ok(v) => v,
                        ::std::result::Result::Err(_) => continue 'cases,
                    };
                )+
                let __outcome: ::std::result::Result<(), $crate::test_runner::Rejection> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                // A rejected case (prop_assume! failure) is skipped, not failed.
                let _ = __outcome;
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property test, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { ::std::assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { ::std::assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { ::std::assert_ne!($($tt)*) };
}

/// Rejects the current case (it is skipped without failing the test).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::Rejection);
        }
    };
}

/// Picks uniformly between several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::boxed($strat)),+
        ])
    };
}
