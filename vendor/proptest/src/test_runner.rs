//! Deterministic test execution support: per-case RNG, config, rejection.

use crate::strategy::Strategy;
use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// How many cases each property test runs (upstream default: 256).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` sampled inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Marker returned when a case is rejected (`prop_assume!` failed or a
/// strategy filter never produced a value).
#[derive(Debug)]
pub struct Rejection;

/// Deterministic per-case random source. Seeded from the test name and
/// case index, so reruns explore identical inputs.
pub struct TestRng(SmallRng);

impl TestRng {
    /// RNG for case `case` of the test named `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(SmallRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x9E37)))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Samples a strategy, retrying through filter rejections; rejects the
/// case if the filter is too tight to ever pass.
pub fn sample_or_reject<S: Strategy>(s: &S, rng: &mut TestRng) -> Result<S::Value, Rejection> {
    for _ in 0..1_000 {
        if let Some(v) = s.sample(rng) {
            return Ok(v);
        }
    }
    Err(Rejection)
}
