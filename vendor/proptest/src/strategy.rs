//! The [`Strategy`] trait and the combinators/primitive strategies the
//! workspace's tests use.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::Range;

/// Produces random values of `Self::Value`. `sample` returns `None` when a
/// filter rejects the draw; the runner retries with fresh randomness.
pub trait Strategy {
    type Value;

    /// Draws one value, or `None` if this draw was filtered out.
    fn sample(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values for which `keep` returns true. `whence` names the
    /// condition in diagnostics (kept for API compatibility).
    fn prop_filter<F>(self, whence: impl Into<String>, keep: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            keep,
        }
    }
}

/// Boxes a strategy for heterogeneous storage (see `prop_oneof!`).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> Option<T> {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.sample(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    #[allow(dead_code)]
    whence: String,
    keep: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.inner.sample(rng).filter(|v| (self.keep)(v))
    }
}

/// Uniform choice between same-valued strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> Option<T> {
        let i = rng.gen_range(0usize..self.options.len());
        self.options[i].sample(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }
    )*};
}

range_strategy!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($n:ident . $idx:tt),+ $(,)?))+) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
                Some(($(self.$idx.sample(rng)?,)+))
            }
        }
    )+};
}

tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}
