//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::Range;

/// Strategy for `Vec`s with lengths drawn from `size` and elements from
/// `element`.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// `Vec` strategy: lengths in `size`, elements from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty size range");
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
        let len = rng.gen_range(self.size.clone());
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
