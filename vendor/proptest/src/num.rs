//! Numeric strategies (`prop::num::f32::NORMAL`).

pub mod f32 {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngCore;

    /// Strategy producing normal (non-zero, non-subnormal, finite) `f32`s
    /// across the full exponent range, like upstream's `f32::NORMAL`.
    #[derive(Debug, Clone, Copy)]
    pub struct NormalF32;

    pub const NORMAL: NormalF32 = NormalF32;

    impl Strategy for NormalF32 {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> Option<f32> {
            // Uniform over bit patterns, rejecting non-normal encodings;
            // ~99.6% of patterns are normal, so this terminates fast.
            loop {
                let f = f32::from_bits(rng.next_u32());
                if f.is_normal() {
                    return Some(f);
                }
            }
        }
    }
}
