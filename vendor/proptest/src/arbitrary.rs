//! `any::<T>()` strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::RngCore;
use std::marker::PhantomData;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Full-range strategy for `T` (`any::<u32>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> Option<T> {
        Some(T::arbitrary(rng))
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}
