//! Offline stand-in for the `rand` crate.
//!
//! The container building this workspace has no registry access, so the
//! real `rand` cannot be fetched. This crate reimplements exactly the
//! surface the workspace uses — `SmallRng::seed_from_u64`, `gen_range`
//! over numeric ranges, and `gen_bool` — on top of xoshiro256++ (the same
//! algorithm family the real 64-bit `SmallRng` uses). Sequences are
//! deterministic per seed, which is all the workloads rely on; they are
//! not bit-compatible with upstream `rand`.

use std::ops::Range;

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Seeding from a `u64`, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that can produce uniform samples of `T`.
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

fn unit_f64(bits: u64) -> f64 {
    // 53 high bits → [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f32> for Range<f32> {
    fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> f32 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64()) as f32
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = rng.next_u64() as u128 % span;
                (self.start as i128 + r as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                Self::splitmix(&mut sm),
                Self::splitmix(&mut sm),
                Self::splitmix(&mut sm),
                Self::splitmix(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(-3.0f32..5.5);
            assert!((-3.0..5.5).contains(&x), "{x}");
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds_and_cover() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x = rng.gen_range(0usize..10);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = SmallRng::seed_from_u64(11);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "{heads}");
    }
}
