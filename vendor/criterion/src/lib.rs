//! Offline stand-in for the `criterion` crate.
//!
//! The container has no registry access, so the real `criterion` cannot be
//! fetched. This crate keeps the workspace's benches compiling and running
//! with the same API (`Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `criterion_group!`/`criterion_main!`)
//! but replaces the statistical machinery with a simple calibrated timing
//! loop: each benchmark is warmed up, run for a target wall-time, and its
//! mean iteration time printed as `<group>/<name> ... <time>/iter`.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level handle passed to benchmark functions.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkName, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_benchmark(&id.into_benchmark_name(), sample_size, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Times `f` under `<group>/<id>`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkName, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_name());
        run_benchmark(&label, self.sample_size, f);
        self
    }

    /// Times `f` with `input` threaded through, under `<group>/<id>`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkName,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_name());
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Runs and times the benchmark body.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, called `self.iters` times back to back.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Parameterised benchmark name: `BenchmarkId::new("fn", param)`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Conversion of the various accepted id types into a display label.
pub trait IntoBenchmarkName {
    fn into_benchmark_name(self) -> String;
}

impl IntoBenchmarkName for &str {
    fn into_benchmark_name(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkName for String {
    fn into_benchmark_name(self) -> String {
        self
    }
}

impl IntoBenchmarkName for BenchmarkId {
    fn into_benchmark_name(self) -> String {
        self.label
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    // Calibrate: one untimed iteration, then scale the per-sample iteration
    // count so a sample takes ~2ms (bounded to keep total runtime sane).
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let once = b.elapsed.max(Duration::from_nanos(1));
    let per_sample = (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 10_000);

    let mut total = Duration::ZERO;
    let mut iters = 0u64;
    for _ in 0..sample_size.max(1) {
        let mut b = Bencher {
            iters: per_sample as u64,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        iters += b.iters;
    }
    let per_iter = total.as_nanos() as f64 / iters.max(1) as f64;
    println!("bench: {label:<50} {} /iter", format_ns(per_iter));
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:9.3} s ", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:9.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:9.3} µs", ns / 1e3)
    } else {
        format!("{ns:9.1} ns")
    }
}

/// Bundles benchmark functions into a runner named `$group`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
