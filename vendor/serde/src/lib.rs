//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize` / `Deserialize` *names* in both the trait and
//! derive-macro namespaces so that `use serde::{Serialize, Deserialize}`
//! and `#[derive(Serialize, Deserialize)]` compile unchanged. The derives
//! expand to nothing and the traits are empty: no code in this workspace
//! serializes through serde (structured output is hand-written JSON), so
//! the full data model is not needed. See `vendor/serde_derive` for the
//! rationale.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}

/// Marker trait standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
