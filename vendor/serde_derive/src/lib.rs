//! Offline stand-in for `serde_derive`.
//!
//! The workspace is built in a container without access to crates.io, so
//! the real `serde` cannot be fetched. Nothing in the workspace actually
//! serializes (there is no `serde_json`/`bincode` consumer); the derives
//! are kept on types as forward-looking annotations. These proc macros
//! accept `#[derive(Serialize)]` / `#[derive(Deserialize)]` and expand to
//! nothing, which is exactly the subset of behaviour the workspace relies
//! on today. Swap back to the real crates by editing the workspace
//! `Cargo.toml` once a registry is available.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
