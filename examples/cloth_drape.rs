//! Cloth: drape a 625-vertex cloth (the paper's "large" cloth) over a
//! sphere and report convergence of the constraint relaxation.
//!
//! ```text
//! cargo run --release -p parallax-examples --example cloth_drape
//! ```

use parallax_math::Vec3;
use parallax_physics::{BodyDesc, Cloth, PhaseKind, Shape, World, WorldConfig};

fn main() {
    let mut world = World::new(WorldConfig::default());
    world.add_static_geom(Shape::plane(Vec3::UNIT_Y, 0.0));

    // A heavy static sphere for the cloth to drape over.
    world.add_body(BodyDesc::fixed(Vec3::new(0.0, 1.2, 0.0)).with_shape(Shape::sphere(0.8), 1.0));

    // The paper's large cloth: 25 x 25 = 625 vertices.
    let cloth = Cloth::rectangle(Vec3::new(-1.5, 2.6, -1.5), 3.0, 3.0, 25, 25, &[]);
    let cid = world.add_cloth(cloth);
    println!(
        "cloth: {} vertices, {} length constraints, {} triangles",
        world.cloth(cid).vertices().len(),
        world.cloth(cid).constraints().len(),
        world.cloth(cid).triangles().len()
    );

    for frame in 0..40 {
        let profiles = world.step_frame();
        if frame % 8 == 0 {
            let c = world.cloth(cid);
            let low = c
                .vertices()
                .iter()
                .map(|v| v.pos.y)
                .fold(f32::INFINITY, f32::min);
            let err = c.constraint_error();
            let fg = profiles
                .iter()
                .map(|p| p.fg_tasks(PhaseKind::Cloth))
                .sum::<usize>();
            println!(
                "frame {frame:>2}: lowest vertex y={low:+.3} m, constraint error {err:.2e} m^2, \
                 {fg} FG vertex-tasks this frame, touching {} bodies",
                c.contact_bodies().len()
            );
        }
    }

    // The cloth must rest on the sphere, not inside it.
    let center = Vec3::new(0.0, 1.2, 0.0);
    let inside = world
        .cloth(cid)
        .vertices()
        .iter()
        .filter(|v| (v.pos - center).length() < 0.78)
        .count();
    println!("\nvertices penetrating the sphere: {inside} (expected 0)");
    let err = world.cloth(cid).constraint_error();
    println!(
        "final constraint error: {err:.2e} m^2 (relaxation converged: {})",
        err < 1e-3
    );
}
