//! Rally: cars on a heightfield with obstacles — the Continuous-benchmark
//! ingredients assembled by hand, with multithreaded engine execution.
//!
//! ```text
//! cargo run --release -p parallax-examples --example rally
//! ```

use parallax_math::Vec3;
use parallax_physics::{World, WorldConfig};
use parallax_workloads::entities::{heightfield_terrain, spawn_car, trimesh_terrain};

fn main() {
    let cfg = WorldConfig {
        threads: 4, // persistent-worker parallel phases
        ..Default::default()
    };
    let mut world = World::new(cfg);

    heightfield_terrain(&mut world, 32, 32, 3.0, 0.5, 42);
    trimesh_terrain(&mut world, Vec3::new(20.0, 0.4, 0.0), 10.0, 12);

    let mut cars = Vec::new();
    for lane in 0..4 {
        let car = spawn_car(
            &mut world,
            Vec3::new(-20.0, 2.0, lane as f32 * 3.0 - 4.5),
            0.0,
            None,
        );
        cars.push(car);
    }
    println!(
        "4 cars on the start grid ({} bodies total)",
        world.bodies().len()
    );

    // Race for 4 simulated seconds.
    let mut wall = std::time::Duration::ZERO;
    for _ in 0..400 {
        for car in &cars {
            car.drive(&mut world, -220.0);
        }
        let t0 = std::time::Instant::now();
        world.step();
        wall += t0.elapsed();
    }

    println!(
        "\nafter {:.1}s simulated ({:?} wall, {} threads):",
        world.time(),
        wall,
        4
    );
    for (i, car) in cars.iter().enumerate() {
        let b = world.body(car.chassis);
        let p = b.position();
        let broken = car
            .joints
            .iter()
            .filter(|j| world.joint(**j).is_broken())
            .count();
        println!(
            "  car {i}: x={:+6.1} m  y={:+5.2} m  speed {:4.1} m/s  suspension {}",
            p.x,
            p.y,
            b.linear_velocity().length(),
            if broken == 0 {
                "intact".to_string()
            } else {
                format!("{broken} joints broken")
            }
        );
    }
    let leader = cars
        .iter()
        .enumerate()
        .max_by(|a, b| {
            world
                .body(a.1.chassis)
                .position()
                .x
                .total_cmp(&world.body(b.1.chassis).position().x)
        })
        .map(|(i, _)| i)
        .expect("cars exist");
    println!("\ncar {leader} leads the rally");
}
