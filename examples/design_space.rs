//! Design-space exploration: sweep FG core types, pool sizes and
//! interconnects for a Mix-like workload and print the frontier —
//! the paper's §8 study driven through the public API.
//!
//! ```text
//! cargo run --release -p parallax-examples --example design_space
//! ```

use parallax::arch::ParallaxSystem;
use parallax::area::pool_area_mm2;
use parallax::explore::{cores_required_simulated, FgWorkload};
use parallax::fgcore::FgCoreType;
use parallax_archsim::offchip::Link;
use parallax_workloads::{BenchmarkId, SceneParams};

fn main() {
    // Measure the Mix benchmark's FG workload at reduced scale for a
    // snappy example run (use the bench harness for full scale).
    let params = SceneParams {
        scale: 0.34,
        ..Default::default()
    };
    let mut scene = BenchmarkId::Mix.build(&params);
    let profiles = scene.run_measured(3, 2);
    let workload = FgWorkload::from_profiles(&profiles[0..3]);
    println!(
        "Mix @ scale {:.2}: {} pair tasks, {} solver DOF, {} cloth vertices per frame\n",
        params.scale, workload.narrowphase_tasks, workload.island_tasks, workload.cloth_tasks
    );

    // 1. Minimum pool per core type and link for 30 FPS with 32% of the
    //    frame available to FG work.
    println!(
        "{:<12} {:>8} {:>8} {:>8}   (FG cores for 30 FPS)",
        "Core", "mesh", "HTX", "PCIe"
    );
    for core in FgCoreType::REALISTIC {
        let need = |link| {
            cores_required_simulated(core, link, &workload, 0.32)
                .map(|n| n.to_string())
                .unwrap_or_else(|| "-".into())
        };
        println!(
            "{:<12} {:>8} {:>8} {:>8}",
            core.name(),
            need(Link::OnChipMesh),
            need(Link::Htx),
            need(Link::Pcie)
        );
    }

    // 2. Area-performance frontier at fixed pool sizes.
    println!(
        "\n{:<12} {:>6} {:>10} {:>8}",
        "Core", "pool", "area mm2", "FPS"
    );
    for core in FgCoreType::REALISTIC {
        for pool in [16usize, 64, 150] {
            let mut sys = ParallaxSystem::new(4, core, pool, Link::OnChipMesh);
            let _ = sys.simulate_steps(&profiles); // warm caches
            let r = sys.simulate_steps(&profiles[0..3]);
            println!(
                "{:<12} {:>6} {:>10.0} {:>8.0}",
                core.name(),
                pool,
                pool_area_mm2(core, pool),
                r.fps()
            );
        }
    }
    println!("\nThe shader pool dominates on area-efficiency — the paper's conclusion.");
}
