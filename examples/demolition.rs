//! Demolition: a pre-fractured wall, a bridge and an explosive cannonball
//! — the Breakable-benchmark features driven through the public API.
//!
//! ```text
//! cargo run --release -p parallax-examples --example demolition
//! ```

use parallax_math::Vec3;
use parallax_physics::{BodyDesc, BodyFlags, ExplosionConfig, Shape, World, WorldConfig};
use parallax_workloads::entities::{spawn_bridge, spawn_wall, WallSpec};

fn main() {
    let mut world = World::new(WorldConfig::default());
    world.add_static_geom(Shape::plane(Vec3::UNIT_Y, 0.0));

    // A pre-fractured brick wall: each brick shatters into 8 pieces when
    // caught in a blast.
    let spec = WallSpec {
        bricks_x: 6,
        courses: 4,
        debris_per_brick: 8,
        ..Default::default()
    };
    let bricks = spawn_wall(&mut world, Vec3::ZERO, 0.0, &spec);
    println!(
        "wall: {} bricks ({} debris pieces standing by)",
        bricks.len(),
        bricks.len() * 8
    );

    // A plank bridge behind the wall with breakable joints.
    let (_planks, joints) = spawn_bridge(
        &mut world,
        Vec3::new(-3.0, 2.0, 3.0),
        Vec3::new(3.0, 2.0, 3.0),
        6,
        18.0,
    );
    println!("bridge: {} breakable joints", joints.len());

    // A heavy explosive cannonball lobbed at the wall.
    let shell = world.add_body(
        BodyDesc::dynamic(Vec3::new(-14.0, 1.2, 0.0))
            .with_shape(Shape::sphere(0.3), 12.0)
            .with_velocity(Vec3::new(24.0, 2.0, 0.0)),
    );
    world.make_explosive(
        shell,
        ExplosionConfig {
            blast_radius: 5.0,
            duration_steps: 10,
            impulse: 90.0,
        },
    );

    // Run two simulated seconds, narrating events.
    for step in 0..200 {
        let p = world.step();
        if p.events.explosions > 0 {
            println!("t={:.2}s  BOOM — the shell detonates", world.time());
        }
        if p.events.shattered > 0 {
            println!(
                "t={:.2}s  {} brick(s) shatter into debris",
                world.time(),
                p.events.shattered
            );
        }
        if p.events.joints_broken > 0 {
            println!(
                "t={:.2}s  {} bridge joint(s) snap",
                world.time(),
                p.events.joints_broken
            );
        }
        if p.events.blasts_expired > 0 {
            println!("t={:.2}s  the blast dissipates", world.time());
        }
        let _ = step;
    }

    let flying_debris = world
        .bodies()
        .iter()
        .filter(|b| {
            b.flags().contains(BodyFlags::DEBRIS)
                && !b.is_disabled()
                && b.linear_velocity().length() > 0.5
        })
        .count();
    let intact = world
        .bodies()
        .iter()
        .filter(|b| b.flags().contains(BodyFlags::PREFRACTURED) && !b.is_disabled())
        .count();
    println!("\naftermath: {intact} bricks intact, {flying_debris} debris pieces still moving");
}
