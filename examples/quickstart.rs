//! Quickstart: simulate a small rigid-body scene and time it on a
//! simulated desktop core.
//!
//! ```text
//! cargo run --release -p parallax-examples --example quickstart
//! ```

use parallax_archsim::config::MachineConfig;
use parallax_archsim::multicore::{MulticoreSim, SimOptions};
use parallax_math::Vec3;
use parallax_physics::{BodyDesc, PhaseKind, Shape, World, WorldConfig};
use parallax_trace::StepTrace;

fn main() {
    // 1. Build a world: a ground plane and a pyramid of boxes.
    let mut world = World::new(WorldConfig::default());
    world.add_static_geom(Shape::plane(Vec3::UNIT_Y, 0.0));
    let mut count = 0;
    for layer in 0..5 {
        let n = 5 - layer;
        for i in 0..n {
            world.add_body(
                BodyDesc::dynamic(Vec3::new(
                    (i as f32 - n as f32 / 2.0) * 1.05 + layer as f32 * 0.5,
                    0.5 + layer as f32 * 1.01,
                    0.0,
                ))
                .with_shape(Shape::cuboid(Vec3::splat(0.5)), 2.0),
            );
            count += 1;
        }
    }
    println!("Simulating a {count}-box pyramid...");

    // 2. Step the engine; every step returns a work profile.
    let mut profiles = Vec::new();
    for _ in 0..30 {
        profiles.push(world.step());
    }
    let last = profiles.last().expect("steps ran");
    println!(
        "after {} steps: {} contacts, {} islands, {} candidate pairs",
        world.step_count(),
        last.total_contacts(),
        last.islands.len(),
        last.pairs.len()
    );

    // 3. Feed the profiles through the architecture simulator (1 desktop
    //    core + 4 MB L2, paper Table 5) to get simulated time.
    let mut sim = MulticoreSim::new(MachineConfig::baseline(1, 4), SimOptions::default());
    let mut total_cycles = 0;
    for p in &profiles {
        let trace = StepTrace::from_profile(p);
        total_cycles += sim.run_step(&trace).total();
    }
    let seconds = total_cycles as f64 / 2.0e9;
    println!(
        "simulated: {total_cycles} cycles on one 2 GHz desktop core = {seconds:.6} s \
         for {} steps ({:.0} steps/s)",
        profiles.len(),
        profiles.len() as f64 / seconds
    );

    // 4. Each phase's share:
    let trace = StepTrace::from_profile(last);
    for phase in PhaseKind::ALL {
        println!(
            "  {:16} {:>9} instructions/step",
            phase.name(),
            trace.phase(phase).instructions()
        );
    }
}
