#!/usr/bin/env bash
# Tier-1 verify: build, test, format, lint. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline
cargo fmt --check
cargo clippy --workspace --offline --all-targets -- -D warnings

# Cross-thread determinism must hold on both solver paths: warm-started
# (the default, exercised by the plain `cargo test` above) and cold.
# The suite honours PARALLAX_WARM_START=0|off.
PARALLAX_WARM_START=0 cargo test -q --offline --test determinism

# ... and on both kernel paths: forced-scalar and the widest SIMD the
# host supports. The kernels are bit-identical by construction (one
# width-generic implementation; see DESIGN.md §10) and the equivalence
# proptests assert it, but run the full determinism suite under both
# settings so the end-to-end pipeline is covered too.
PARALLAX_SIMD=0 cargo test -q --offline --test determinism
PARALLAX_SIMD=1 cargo test -q --offline --test determinism
cargo test -q --offline --test simd_equivalence

# ... and with the island-sleeping fast path enabled: sleep/wake
# decisions run serially in body order, so the whole determinism suite
# must hold with sleeping on too (WorldConfig::default honours
# PARALLAX_SLEEP). The dedicated suite covers prefix equivalence, wake
# reconvergence and monitor cleanliness.
PARALLAX_SLEEP=1 cargo test -q --offline --test determinism
cargo test -q --offline --test sleeping

# Hot-kernel microbench smoke (integrator sweep, PGS rows, cloth
# relaxation at each SIMD width) — quick shapes, just proves the bench
# harness and every dispatch path still run.
PARALLAX_BENCH_QUICK=1 cargo bench --offline -p parallax-bench --bench kernels

# Telemetry smoke: record 10 Mix steps through the JSONL sink, then
# validate the stream (parses, all five phases present, nonzero walls)
# and the Chrome-trace conversion. `--check-phases` exits nonzero on
# any violation.
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
cargo run --release --offline -q -p parallax-bench --bin run_scene -- \
    --scene Mix --steps 10 --scale 0.15 --threads 2 --telemetry "$tmp/mix.jsonl"
cargo run --release --offline -q -p parallax-bench --bin telemetry_report -- \
    "$tmp/mix.jsonl" --check-phases --chrome "$tmp/trace.json" >/dev/null
test -s "$tmp/trace.json"

# Regression-gate smoke: compare against the checked-in scene baseline
# with few steps and a +100% threshold — only a catastrophic slowdown
# trips it, but the full record -> parse -> compare -> verdict path runs
# on every build. Tolerates a missing baseline so a fresh checkout (or a
# PR that deliberately deletes it for re-recording) still verifies.
cargo run --release --offline -q -p parallax-bench --bin bench_gate -- \
    compare --quick --allow-missing-baseline >/dev/null

# Guard bench for the disabled-telemetry hot path (compare against a
# `--features no-telemetry` run to bound the overhead; see DESIGN.md).
cargo bench --offline -p parallax-bench --bench telemetry_overhead

# Live telemetry plane smoke: run_scene --serve on an ephemeral port
# (printed on its first stdout line), curl /metrics and /health while it
# steps, and check the scrape carries a per-phase wall gauge and a
# histogram _bucket sample. --steps 0 + --serve = run until killed.
cargo run --release --offline -q -p parallax-bench --bin run_scene -- \
    --scene Mix --steps 0 --scale 0.15 --threads 2 --serve 127.0.0.1:0 \
    > "$tmp/serve.out" &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT
for _ in $(seq 1 100); do
    grep -q "serving telemetry on" "$tmp/serve.out" && break
    sleep 0.2
done
addr="$(sed -n 's|^serving telemetry on http://\([^/]*\)/metrics$|\1|p' "$tmp/serve.out")"
test -n "$addr"
sleep 1  # let a few steps land before scraping
curl -fsS "http://$addr/metrics" > "$tmp/metrics.txt"
curl -fsS "http://$addr/health" > "$tmp/health.json"
grep -q "physics_phase_wall_ns_" "$tmp/metrics.txt"
grep -q "_bucket{le=" "$tmp/metrics.txt"
grep -q '"status":"ok"' "$tmp/health.json"
kill "$serve_pid" 2>/dev/null || true
wait "$serve_pid" 2>/dev/null || true

# Soak smoke: ~15 s of stepping with a 250 ms scraper asserting monotone
# counters, clean invariants and bounded rss (plus the exporter-overhead
# A/B check).
cargo run --release --offline -q -p parallax-bench --bin soak -- --quick

# Flight recorder: snapshot round-trip must be bit-identical on Mix
# (the targeted integration tests cover random worlds and the cross
# thread/SIMD grid too).
cargo test -q --offline --test snapshot_roundtrip

# Divergence bisector end to end through the CLI: inject a single-ULP
# fault into side B at step 17's narrow phase and require the report to
# name exactly that coordinate. bisect exits 3 on divergence — that IS
# the expected outcome here.
set +e
cargo run --release --offline -q -p parallax-bench --bin bisect -- \
    --scene Mix --steps 40 --scale 0.1 --fault 17:Narrowphase \
    > "$tmp/bisect.out" 2>/dev/null
bisect_rc=$?
set -e
test "$bisect_rc" -eq 3
grep -q "^divergence: step=17 phase=Narrowphase" "$tmp/bisect.out"

# Cross-sleep bisect smoke: a sleep-on side diverges from a sleep-off
# side at the first sleep transition *by design* — the bisector must
# localize that step rather than report clean, proving it attributes
# sleep-lane divergences correctly.
set +e
cargo run --release --offline -q -p parallax-bench --bin bisect -- \
    --scene Resting --steps 200 --scale 0.1 \
    --a sleep=off --b sleep=on > "$tmp/bisect_sleep.out" 2>/dev/null
bisect_rc=$?
set -e
test "$bisect_rc" -eq 3
grep -q "^divergence: step=" "$tmp/bisect_sleep.out"

# Digest overhead gate: per-phase state digests must cost <=3% of the
# step total on Mix (interleaved A/B, whole bootstrap CI must clear the
# budget). Unlike bench_gate --quick, the threshold does not widen.
cargo run --release --offline -q -p parallax-bench --bin digest_overhead -- --quick

# Simulation-service smoke: boot the multi-world server on an ephemeral
# port, create a session over HTTP, step it 10x, and check that /state
# streams JSONL body state and /metrics carries the fleet gauge. The
# integration suite (tests/server.rs, in `cargo test` above) covers
# determinism under noisy neighbors and snapshot/restore in depth; this
# proves the standalone binary and the end-to-end curl path.
cargo run --release --offline -q -p parallax-server --bin serve -- \
    127.0.0.1:0 > "$tmp/simsrv.out" &
simsrv_pid=$!
trap 'kill "$serve_pid" "$simsrv_pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT
for _ in $(seq 1 100); do
    grep -q "listening on" "$tmp/simsrv.out" && break
    sleep 0.2
done
sim_addr="$(sed -n 's|^parallax-server listening on http://\(.*\)$|\1|p' "$tmp/simsrv.out")"
test -n "$sim_addr"
curl -fsS -XPOST "http://$sim_addr/sessions" \
    -H 'content-type: application/json' -d '{"bodies":20,"seed":1}' \
    > "$tmp/create.json"
sim_id="$(sed -n 's|^{"id":\([0-9]*\).*|\1|p' "$tmp/create.json")"
test -n "$sim_id"
curl -fsS -XPOST "http://$sim_addr/sessions/$sim_id/step?n=10" > "$tmp/step.json"
grep -q '"steps":10' "$tmp/step.json"
curl -fsS "http://$sim_addr/sessions/$sim_id/state?records=2" > "$tmp/state.jsonl"
grep -q '"body_state"' "$tmp/state.jsonl"
curl -fsS "http://$sim_addr/metrics" > "$tmp/simsrv_metrics.txt"
grep -q '^server_sessions 1$' "$tmp/simsrv_metrics.txt"
kill "$simsrv_pid" 2>/dev/null || true
wait "$simsrv_pid" 2>/dev/null || true

# Fleet-capacity gate smoke: server_bench's full record -> compare path
# at the quick cell (1000 sessions x 100 bodies @ 60 Hz) with the
# sustain floor enforced. Tolerates a missing baseline like bench_gate.
cargo run --release --offline -q -p parallax-bench --bin server_bench -- \
    compare --quick --allow-missing-baseline >/dev/null

echo "tier-1 verify: OK"
