#!/usr/bin/env bash
# Tier-1 verify: build, test, format, lint. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline
cargo fmt --check
cargo clippy --workspace --offline --all-targets -- -D warnings

echo "tier-1 verify: OK"
