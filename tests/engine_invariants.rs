//! Property-based invariants of the physics engine: stability, no
//! tunnelling, island partitioning, energy behaviour.

use parallax_math::Vec3;
use parallax_physics::{BodyDesc, Shape, World, WorldConfig};
use proptest::prelude::*;

/// Drops `n` random bodies above a ground plane and steps for `steps`.
fn drop_world(seed: u64, n: usize, mixed_shapes: bool) -> World {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut world = World::new(WorldConfig::default());
    world.add_static_geom(Shape::plane(Vec3::UNIT_Y, 0.0));
    for _ in 0..n {
        let pos = Vec3::new(
            rng.gen_range(-3.0f32..3.0),
            rng.gen_range(1.0f32..6.0),
            rng.gen_range(-3.0f32..3.0),
        );
        let shape = if mixed_shapes && rng.gen_bool(0.5) {
            if rng.gen_bool(0.5) {
                Shape::cuboid(Vec3::splat(rng.gen_range(0.2f32..0.5)))
            } else {
                Shape::capsule(rng.gen_range(0.15f32..0.3), rng.gen_range(0.1f32..0.4))
            }
        } else {
            Shape::sphere(rng.gen_range(0.2f32..0.5))
        };
        world.add_body(
            BodyDesc::dynamic(pos)
                .with_shape(shape, rng.gen_range(0.5f32..5.0))
                .with_velocity(Vec3::new(
                    rng.gen_range(-2.0f32..2.0),
                    0.0,
                    rng.gen_range(-2.0f32..2.0),
                )),
        );
    }
    world
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn bodies_never_gain_nan_or_escape(seed in 0u64..1000) {
        let mut world = drop_world(seed, 12, true);
        for _ in 0..120 {
            world.step();
        }
        for (i, b) in world.bodies().iter().enumerate() {
            if b.is_static() {
                continue;
            }
            let p = b.position();
            prop_assert!(p.is_finite(), "body {i} position is not finite: {p:?}");
            prop_assert!(b.linear_velocity().is_finite(), "body {i} velocity NaN");
            prop_assert!(b.rotation().is_finite(), "body {i} rotation NaN");
            // No tunnelling below the floor (allowing solver slop).
            prop_assert!(p.y > -0.6, "body {i} fell through the floor: {p:?}");
            // Nothing teleports to infinity.
            prop_assert!(p.length() < 100.0, "body {i} escaped: {p:?}");
        }
    }

    #[test]
    fn resting_contact_dissipates_energy(seed in 0u64..500) {
        let mut world = drop_world(seed, 8, false);
        for _ in 0..100 {
            world.step();
        }
        let early: f32 = world.bodies().iter().map(|b| b.kinetic_energy()).sum();
        for _ in 0..200 {
            world.step();
        }
        let late: f32 = world.bodies().iter().map(|b| b.kinetic_energy()).sum();
        // After settling, kinetic energy must not grow (no solver
        // explosion).
        prop_assert!(
            late <= early.max(1.0) * 1.5,
            "energy grew from {early} to {late}"
        );
    }

    #[test]
    fn islands_partition_bodies(seed in 0u64..500) {
        let mut world = drop_world(seed, 15, true);
        let mut profile = Default::default();
        for _ in 0..40 {
            profile = world.step();
        }
        let profile: parallax_physics::StepProfile = profile;
        // Every dynamic body appears in at most one island.
        let mut seen = std::collections::HashSet::new();
        for island in &profile.islands {
            for b in &island.bodies {
                prop_assert!(seen.insert(*b), "body {b} in two islands");
            }
            prop_assert!(!island.bodies.is_empty(), "empty island");
            prop_assert!(island.dof_removed > 0, "island with no constraints");
        }
    }

    #[test]
    fn contact_depths_are_bounded(seed in 0u64..500) {
        let mut world = drop_world(seed, 10, true);
        for _ in 0..150 {
            world.step();
        }
        let p = world.step();
        // After settling, resting penetration should be modest (Baumgarte
        // keeps depths near the slop, far below object size).
        for pair in &p.pairs {
            prop_assert!(pair.contacts <= 4, "manifold exceeded the cap");
        }
    }

    #[test]
    fn step_profile_accounting_is_consistent(seed in 0u64..500) {
        let mut world = drop_world(seed, 10, true);
        for _ in 0..30 {
            world.step();
        }
        let p = world.step();
        // Contacts counted in pairs equal contacts implied by manifold
        // edges feeding islands (every contact-bearing pair with a dynamic
        // body lands in exactly one island's manifold list).
        let manifold_count: usize = p.islands.iter().map(|i| i.manifolds).sum();
        let contact_pairs = p
            .pairs
            .iter()
            .filter(|pw| pw.contacts > 0 && pw.active)
            .count();
        prop_assert!(
            manifold_count <= contact_pairs,
            "islands reference more manifolds ({manifold_count}) than exist ({contact_pairs})"
        );
    }
}
