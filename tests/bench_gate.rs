//! End-to-end regression-gate behavior: an identical build passes the
//! gate, a deliberately slowed build (delay injected into one pipeline
//! phase) fails it naming the exact scene and phase, and the invariant
//! monitor stays quiet on a healthy scene.
//!
//! This file is its own test binary (see `crates/integration/Cargo.toml`)
//! because the injected phase delay is process-global: keeping it here
//! means it can never leak into unrelated unit tests.

use std::time::Duration;

use parallax_bench::harness::{compare_baselines, record, Baseline, GateConfig};
use parallax_math::SimdMode;
use parallax_physics::{set_injected_phase_delay, InvariantMonitor, PhaseKind};
use parallax_workloads::{BenchmarkId, SceneParams};

fn tiny_gate() -> GateConfig {
    GateConfig {
        steps: 8,
        warmup: 2,
        scale: 0.05,
        threads: 1,
        // The CI smoke threshold: only a gross slowdown may trip.
        threshold: 1.0,
        warm_starting: true,
        simd: SimdMode::Scalar,
        digests: false,
        sleeping: false,
        // Two scenes whose broad-phase is tens of microseconds at this
        // scale, so the injected delay is a huge *relative* change.
        scenes: vec![BenchmarkId::Periodic, BenchmarkId::Ragdoll],
    }
}

/// One test walks the whole pass→fail arc so the injected delay is
/// strictly scoped: tests in a binary run concurrently, and a delay
/// active during another test's recording would poison its samples.
#[test]
fn gate_passes_identical_build_and_fails_slowed_build() {
    let cfg = tiny_gate();
    let base = record(&cfg);

    // Through the on-disk form, as `bench_gate compare` reads it.
    let parsed = Baseline::from_json(&base.to_json()).expect("baseline round-trips");

    // Identical build: a fresh recording of the same binary must pass.
    let fresh = record(&cfg);
    let rows = compare_baselines(&parsed, &fresh, cfg.threshold);
    // Five pipeline phases plus the per-scene "step total" row.
    assert_eq!(
        rows.len(),
        cfg.scenes.len() * 6,
        "every scene x phase compared"
    );
    let false_alarms: Vec<_> = rows.iter().filter(|r| r.is_regression()).collect();
    assert!(
        false_alarms.is_empty(),
        "identical build flagged as regressed: {false_alarms:?}"
    );

    // Slowed build: 20 ms injected into Broadphase dwarfs the real phase
    // at this scale, so both scenes must regress there. (A 20 ms sleep
    // per step also cools caches and lets the governor downclock, so
    // *other* phases may slow too on a 1-core host — the gate naming
    // Broadphase as the dominant regression is what matters.)
    set_injected_phase_delay(PhaseKind::Broadphase, Duration::from_millis(20));
    let slowed = record(&cfg);
    set_injected_phase_delay(PhaseKind::Broadphase, Duration::ZERO);

    let rows = compare_baselines(&parsed, &slowed, cfg.threshold);
    let regressions: Vec<_> = rows.iter().filter(|r| r.is_regression()).collect();
    assert!(!regressions.is_empty(), "slowed build passed the gate");
    for id in &cfg.scenes {
        let broad = regressions
            .iter()
            .find(|r| r.scene == id.name() && r.phase == "Broadphase");
        assert!(
            broad.is_some(),
            "Broadphase regression of {} not flagged: {regressions:?}",
            id.name()
        );
        assert!(broad.expect("checked").cmp.rel_change > 1.0);
        // Broadphase — where the delay actually lives — must be the
        // scene's biggest relative change.
        let max = rows
            .iter()
            .filter(|r| r.scene == id.name())
            .max_by(|a, b| a.cmp.rel_change.total_cmp(&b.cmp.rel_change))
            .expect("rows");
        assert_eq!(max.phase, "Broadphase", "{max:?}");
    }
}

/// The paper's Mix scene — every feature at once — must run clean under
/// the default invariant-monitor bounds (the `run_scene --monitor`
/// acceptance path).
#[test]
fn mix_scene_is_clean_under_default_monitor() {
    let mut scene = BenchmarkId::Mix.build(&SceneParams {
        scale: 0.2,
        ..SceneParams::default()
    });
    let mut monitor = InvariantMonitor::default();
    for step in 0..40 {
        let profile = scene.step();
        let violations = monitor.check_step(&scene.world, &profile);
        assert!(violations.is_empty(), "step {step}: {violations:?}");
    }
    assert_eq!(monitor.checked_steps(), 40);
    assert_eq!(monitor.violations_total(), 0);
}
