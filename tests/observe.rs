//! Integration tests for the live telemetry plane: a real scene
//! stepping on one thread while a scraper hammers the exporter from
//! another, plus the protocol- and naming-robustness guarantees the
//! ISSUE demands (monotone counters across scrapes, 400/404 without
//! panics, Prometheus name lint).

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parallax_bench::{build_step_record, telemetry_baseline};
use parallax_telemetry as telemetry;
use parallax_telemetry::net::{http_get, is_valid_metric_name, sanitize_metric_name};
use parallax_workloads::{BenchmarkId, SceneParams};

fn small_mix() -> parallax_workloads::Scene {
    BenchmarkId::Mix.build(&SceneParams {
        scale: 0.1,
        threads: 2,
        ..SceneParams::default()
    })
}

/// Counter samples from a Prometheus text body (`# TYPE … counter`).
fn counters_of(text: &str) -> Vec<(String, u64)> {
    let names: Vec<&str> = text
        .lines()
        .filter_map(|l| l.strip_prefix("# TYPE "))
        .filter_map(|l| l.strip_suffix(" counter"))
        .collect();
    text.lines()
        .filter(|l| !l.starts_with('#'))
        .filter_map(|l| {
            let (name, value) = l.split_once(' ')?;
            names
                .contains(&name)
                .then(|| value.parse().ok().map(|v| (name.to_string(), v)))
                .flatten()
        })
        .collect()
}

#[test]
fn hundred_concurrent_scrapes_stay_monotone_while_stepping() {
    telemetry::set_enabled(true);
    let obs = parallax_observe::serve("127.0.0.1:0").expect("bind exporter");
    let addr = obs.addr();
    let done = Arc::new(AtomicBool::new(false));

    // Prime the plane with one recorded step so even the first scrape
    // sees phase gauges and histogram buckets — the scraper can lap the
    // stepping thread many times over on a fast loopback.
    let mut scene = small_mix();
    let mut baseline = telemetry_baseline();
    let profile = scene.step();
    obs.record_step(build_step_record(
        "physics",
        "Mix",
        0,
        Some(&profile),
        &mut baseline,
    ));

    let scraper = {
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut last: Vec<(String, u64)> = Vec::new();
            let mut problems: Vec<String> = Vec::new();
            let mut saw_phase_gauge = false;
            let mut saw_bucket = false;
            for scrape in 0..100 {
                let (status, body) = match http_get(addr, "/metrics") {
                    Ok(r) => r,
                    Err(e) => {
                        problems.push(format!("scrape {scrape}: {e}"));
                        continue;
                    }
                };
                if status != 200 {
                    problems.push(format!("scrape {scrape}: status {status}"));
                    continue;
                }
                saw_phase_gauge |= body.contains("physics_phase_wall_ns_");
                saw_bucket |= body.contains("_bucket{le=");
                for (name, v) in counters_of(&body) {
                    if let Some((_, prev)) = last.iter().find(|(n, _)| *n == name) {
                        if v < *prev {
                            problems.push(format!(
                                "scrape {scrape}: counter {name} went backwards {prev} -> {v}"
                            ));
                        }
                    }
                    match last.iter_mut().find(|(n, _)| *n == name) {
                        Some((_, slot)) => *slot = v,
                        None => last.push((name, v)),
                    }
                }
            }
            done.store(true, Ordering::Release);
            (problems, last, saw_phase_gauge, saw_bucket)
        })
    };

    let mut step = 1u64;
    while !done.load(Ordering::Acquire) {
        let profile = scene.step();
        let record = build_step_record("physics", "Mix", step, Some(&profile), &mut baseline);
        obs.record_step(record);
        step += 1;
    }

    let (problems, last, saw_phase_gauge, saw_bucket) = scraper.join().expect("scraper");
    assert!(problems.is_empty(), "scrape problems: {problems:?}");
    assert!(step > 0, "stepping thread never ran");
    assert!(!last.is_empty(), "scrapes never saw a counter");
    assert!(
        saw_phase_gauge,
        "per-phase wall gauges missing from /metrics"
    );
    assert!(saw_bucket, "histogram buckets missing from /metrics");
}

#[test]
fn malformed_and_unknown_requests_never_take_the_server_down() {
    let obs = parallax_observe::serve("127.0.0.1:0").expect("bind exporter");
    let addr = obs.addr();

    // Unknown path → 404.
    let (status, _) = http_get(addr, "/definitely-not-an-endpoint").unwrap();
    assert_eq!(status, 404);

    // Garbage request lines → 400; non-GET → 405.
    for raw in [
        "BOGUS\r\n\r\n",
        "GET missing-slash HTTP/1.1\r\n\r\n",
        "GET /metrics SPDY/9\r\n\r\n",
        "POST /metrics HTTP/1.1\r\n\r\n",
    ] {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(raw.as_bytes()).unwrap();
        let mut resp = String::new();
        s.read_to_string(&mut resp).unwrap();
        assert!(
            resp.starts_with("HTTP/1.1 400") || resp.starts_with("HTTP/1.1 405"),
            "{raw:?} -> {resp:?}"
        );
    }

    // The server still answers real requests afterwards.
    let (status, _) = http_get(addr, "/health").unwrap();
    assert_eq!(status, 200);
}

#[test]
fn every_registered_metric_name_lints_after_a_real_run() {
    telemetry::set_enabled(true);
    let mut scene = small_mix();
    for _ in 0..5 {
        scene.step();
    }
    let snap = telemetry::snapshot();
    let names = snap
        .counters
        .iter()
        .map(|(n, _)| n)
        .chain(snap.gauges.iter().map(|(n, _)| n))
        .chain(snap.histograms.iter().map(|(n, _)| n));
    let mut seen = 0;
    for name in names {
        seen += 1;
        let sanitized = sanitize_metric_name(name);
        assert!(
            is_valid_metric_name(&sanitized),
            "{name:?} sanitizes to invalid {sanitized:?}"
        );
    }
    assert!(seen > 0, "a stepped Mix scene must register metrics");

    // And the full exposition lints line by line.
    for line in telemetry::prometheus_text(&snap)
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
    {
        let name = line.split([' ', '{']).next().unwrap();
        assert!(is_valid_metric_name(name), "{name:?} in {line:?}");
    }
}
