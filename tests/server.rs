//! Integration tests for the multi-world simulation service: fleet
//! consistency under concurrent clients, per-session determinism under
//! noisy neighbors, and snapshot/restore reproducibility — all through
//! the public HTTP API, the way a real consumer drives it.

use parallax_telemetry::json::Json;
use parallax_telemetry::{http_get, http_request};
use std::net::SocketAddr;

fn create_session(addr: SocketAddr, config: &str) -> u64 {
    let (status, body) = http_request(
        addr,
        "POST",
        "/sessions",
        "application/json",
        config.as_bytes(),
    )
    .expect("create session");
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    Json::parse(std::str::from_utf8(&body).expect("utf8"))
        .expect("create response json")
        .get("id")
        .and_then(Json::as_u64)
        .expect("id")
}

fn step_session(addr: SocketAddr, id: u64, n: u64) -> u64 {
    let (status, body) = http_request(addr, "POST", &format!("/sessions/{id}/step?n={n}"), "", b"")
        .expect("step session");
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    Json::parse(std::str::from_utf8(&body).expect("utf8"))
        .expect("step response json")
        .get("steps")
        .and_then(Json::as_u64)
        .expect("steps")
}

/// The body-state JSONL line for a session (no step records — their wall
/// times are timing-dependent and must not enter determinism checks).
fn body_state_line(addr: SocketAddr, id: u64) -> String {
    let (status, state) =
        http_get(addr, &format!("/sessions/{id}/state?records=0")).expect("state");
    assert_eq!(status, 200);
    let line = state.lines().last().expect("body state line").to_string();
    assert!(line.contains("\"body_state\""), "not a state line: {line}");
    line
}

fn health_sessions(addr: SocketAddr) -> u64 {
    let (status, health) = http_get(addr, "/health").expect("health");
    assert_eq!(status, 200);
    Json::parse(health.trim())
        .expect("health json")
        .get("sessions")
        .and_then(Json::as_u64)
        .expect("sessions")
}

#[test]
fn concurrent_clients_lose_no_sessions_and_no_steps() {
    const CLIENTS: usize = 8;
    const PER_CLIENT: usize = 5;
    let server = parallax_server::serve("127.0.0.1:0").expect("bind");
    let addr = server.addr();

    // A session shared by every client; each steps it concurrently. The
    // step counter is the lost-update detector: any dropped or doubled
    // batch shows up in the final count.
    let shared = create_session(addr, r#"{"bodies":5}"#);

    let ids: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|client| {
                scope.spawn(move || {
                    let mut mine = Vec::with_capacity(PER_CLIENT);
                    for s in 0..PER_CLIENT {
                        let id = create_session(
                            addr,
                            &format!("{{\"bodies\":5,\"seed\":{}}}", client * PER_CLIENT + s),
                        );
                        step_session(addr, id, 20);
                        mine.push(id);
                    }
                    for _ in 0..10 {
                        step_session(addr, shared, 1);
                    }
                    // Every client destroys its own last session.
                    let dead = *mine.last().expect("created sessions");
                    let (status, _) =
                        http_request(addr, "DELETE", &format!("/sessions/{dead}"), "", b"")
                            .expect("delete");
                    assert_eq!(status, 200);
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });

    // No id was handed out twice.
    let mut all: Vec<u64> = ids.iter().flatten().copied().collect();
    let total = all.len();
    all.sort_unstable();
    all.dedup();
    assert_eq!(all.len(), total, "duplicate session ids");

    // shared + survivors; every destroy removed exactly one.
    assert_eq!(
        health_sessions(addr),
        1 + (CLIENTS * (PER_CLIENT - 1)) as u64
    );
    // 8 clients x 10 single steps, none lost.
    let steps = server
        .table()
        .with_session(shared, |s| s.steps())
        .expect("shared alive");
    assert_eq!(steps, (CLIENTS * 10) as u64);
    // Surviving per-client sessions hold exactly their 20 steps.
    for mine in &ids {
        for id in &mine[..mine.len() - 1] {
            let steps = server.table().with_session(*id, |s| s.steps());
            assert_eq!(steps, Some(20), "session {id}");
        }
    }
}

#[test]
fn probe_trajectory_is_immune_to_noisy_neighbors() {
    const NEIGHBORS: usize = 500;
    let probe_config = r#"{"bodies":30,"seed":7}"#;

    // Reference: the probe alone on a quiet server.
    let quiet = parallax_server::serve("127.0.0.1:0").expect("bind");
    let probe_a = create_session(quiet.addr(), probe_config);
    step_session(quiet.addr(), probe_a, 150);
    let reference = body_state_line(quiet.addr(), probe_a);

    // Same probe on a server whose scheduler is busy stepping 500 other
    // worlds the whole time. Same id (created first), same seed — the
    // trajectory must be byte-identical to the quiet run.
    let noisy = parallax_server::serve("127.0.0.1:0").expect("bind");
    let probe_b = create_session(noisy.addr(), probe_config);
    assert_eq!(probe_a, probe_b, "probe ids must match for comparison");
    for seed in 0..NEIGHBORS {
        create_session(
            noisy.addr(),
            &format!("{{\"bodies\":5,\"seed\":{seed},\"step_rate\":30}}"),
        );
    }
    // Step the probe in bursts with pauses so scheduler batches of
    // neighbors interleave with the probe's manual steps.
    for _ in 0..5 {
        step_session(noisy.addr(), probe_b, 30);
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    assert_eq!(body_state_line(noisy.addr(), probe_b), reference);

    // Keep going on both servers: still lockstep after the first check.
    step_session(quiet.addr(), probe_a, 100);
    step_session(noisy.addr(), probe_b, 100);
    assert_eq!(
        body_state_line(noisy.addr(), probe_b),
        body_state_line(quiet.addr(), probe_a)
    );
}

#[test]
fn snapshot_restore_reproduces_the_trajectory_over_http() {
    let server = parallax_server::serve("127.0.0.1:0").expect("bind");
    let addr = server.addr();
    let id = create_session(addr, r#"{"bodies":20,"seed":3}"#);
    step_session(addr, id, 100);

    let (status, snapshot) =
        http_request(addr, "GET", &format!("/sessions/{id}/snapshot"), "", b"").expect("snapshot");
    assert_eq!(status, 200);
    assert_eq!(&snapshot[..4], b"PXSN");

    step_session(addr, id, 60);
    let first_run = body_state_line(addr, id);

    let (status, body) = http_request(
        addr,
        "POST",
        &format!("/sessions/{id}/restore"),
        "application/octet-stream",
        &snapshot,
    )
    .expect("restore");
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    assert_eq!(
        server.table().with_session(id, |s| s.steps()),
        Some(100),
        "restore must rewind the step count"
    );

    // Replaying the same 60 steps from the snapshot point must land on
    // the same state, byte for byte.
    step_session(addr, id, 60);
    assert_eq!(body_state_line(addr, id), first_run);
}
