//! Cross-crate telemetry integration: phase wall-time accounting against
//! the real step pipeline, and the JSONL export round trip on a live
//! multi-threaded scene.

use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use parallax_physics::PhaseKind;
use parallax_telemetry::{
    chrome_trace, read_jsonl, Snapshot, SpanRecord, StepRecord, TelemetrySink,
};
use parallax_workloads::{BenchmarkId, SceneParams};

/// Serializes tests that toggle the process-global telemetry flag, and
/// restores the disabled state even on panic.
fn enable_telemetry() -> impl Drop {
    struct Guard(Option<MutexGuard<'static, ()>>);
    impl Drop for Guard {
        fn drop(&mut self) {
            parallax_telemetry::set_enabled(false);
            self.0.take();
        }
    }
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = LOCK
        .get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    parallax_telemetry::set_enabled(true);
    Guard(Some(guard))
}

/// The per-phase walls recorded by the pipeline must account for the
/// step: their sum over a window of Mix steps stays within 10% of the
/// externally timed total.
#[test]
fn phase_walls_account_for_step_time() {
    let mut scene = BenchmarkId::Mix.build(&SceneParams {
        scale: 0.15,
        ..SceneParams::default()
    });
    for _ in 0..5 {
        scene.step();
    }
    let mut outside = Duration::ZERO;
    let mut phases = Duration::ZERO;
    for _ in 0..15 {
        let start = Instant::now();
        let profile = scene.step();
        outside += start.elapsed();
        phases += profile.wall.iter().sum::<Duration>();
    }
    let ratio = phases.as_secs_f64() / outside.as_secs_f64();
    assert!(
        (0.9..=1.0).contains(&ratio),
        "phase walls {phases:?} should be within 10% of step total {outside:?} (ratio {ratio:.3})"
    );
}

/// Steps a scene with telemetry live, writes one record per step the way
/// the bench sink does, and checks the JSONL round trip: all five phases
/// on every record, metric deltas, and one span track per worker.
#[test]
fn jsonl_round_trip_covers_phases_and_workers() {
    let _guard = enable_telemetry();
    let mut scene = BenchmarkId::Mix.build(&SceneParams {
        scale: 0.1,
        threads: 3,
        ..SceneParams::default()
    });

    let path =
        std::env::temp_dir().join(format!("parallax-telemetry-{}.jsonl", std::process::id()));
    let mut sink = TelemetrySink::create(&path).expect("create sink");
    let mut spans: Vec<SpanRecord> = Vec::new();
    parallax_telemetry::drain_spans(&mut spans);
    let mut baseline = parallax_telemetry::snapshot();

    const STEPS: u64 = 6;
    for step in 0..STEPS {
        let profile = scene.step();
        let now = parallax_telemetry::snapshot();
        let metrics = now.delta_since(&baseline);
        baseline = now;
        spans.clear();
        parallax_telemetry::drain_spans(&mut spans);
        let record = StepRecord {
            source: "physics".to_string(),
            scene: "Mix".to_string(),
            step,
            wall_ns: PhaseKind::ALL
                .iter()
                .zip(profile.wall.iter())
                .map(|(p, w)| (p.name().to_string(), w.as_nanos() as u64))
                .collect(),
            metrics,
            spans: std::mem::take(&mut spans),
        };
        sink.write(&record).expect("write record");
    }
    drop(sink);

    let records = read_jsonl(&path).expect("read back");
    std::fs::remove_file(&path).ok();
    assert_eq!(records.len(), STEPS as usize);
    for r in &records {
        assert_eq!(r.source, "physics");
        for phase in PhaseKind::ALL {
            assert!(
                r.wall_ns.iter().any(|(n, _)| n == phase.name()),
                "step {} missing phase {:?}",
                r.step,
                phase.name()
            );
        }
        assert!(r.wall_total_ns() > 0, "step {} lost wall time", r.step);
    }

    let merged = records
        .iter()
        .fold(Snapshot::default(), |acc, r| acc.merge(&r.metrics));
    assert_eq!(merged.counter("physics.steps"), STEPS);
    assert!(merged.counter("physics.executor.chunks_claimed") > 0);
    assert!(merged.histogram("physics.island_size_bodies").is_some());

    // threads: 3 => caller track 0 plus spawned workers 1 and 2.
    let mut tracks: Vec<u32> = records
        .iter()
        .flat_map(|r| r.spans.iter().map(|s| s.track))
        .collect();
    tracks.sort_unstable();
    tracks.dedup();
    assert!(tracks.contains(&0), "caller track missing: {tracks:?}");
    assert!(
        tracks.iter().any(|&t| t >= 1),
        "no worker tracks recorded: {tracks:?}"
    );

    let trace = chrome_trace(&records);
    assert!(trace.contains("\"traceEvents\""));
    for t in &tracks {
        assert!(
            trace.contains(&format!("\"tid\":{t}")),
            "chrome trace lost track {t}"
        );
    }
}
