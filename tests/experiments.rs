//! Shape tests for the paper's experiments at reduced scale: who wins, in
//! which direction curves move, and where the knees fall.

use parallax::buffering::tasks_to_hide_latency;
use parallax::explore::{cores_required_compute_only, FgWorkload};
use parallax::fgcore::FgCoreType;
use parallax_archsim::config::{L2Config, MachineConfig};
use parallax_archsim::multicore::{MulticoreSim, SimOptions};
use parallax_archsim::offchip::Link;
use parallax_trace::{Kernel, StepTrace};
use parallax_workloads::{BenchmarkId, SceneParams};

fn measured_traces(id: BenchmarkId, scale: f32) -> Vec<StepTrace> {
    let mut scene = id.build(&SceneParams {
        scale,
        ..Default::default()
    });
    scene
        .run_measured(2, 1)
        .iter()
        .map(StepTrace::from_profile)
        .collect()
}

fn warm_measure(sim: &mut MulticoreSim, traces: &[StepTrace]) -> u64 {
    for t in traces {
        sim.run_step(t);
    }
    sim.reset_stats();
    traces.iter().map(|t| sim.run_step(t).total()).sum()
}

#[test]
fn fig2b_shape_bigger_l2_never_hurts_serial_phases() {
    let traces = measured_traces(BenchmarkId::Explosions, 0.2);
    let serial = |mb: usize| {
        let mut sim = MulticoreSim::new(MachineConfig::baseline(1, mb), SimOptions::default());
        for t in &traces {
            sim.run_step(t);
        }
        sim.reset_stats();
        traces.iter().map(|t| sim.run_step(t).serial()).sum::<u64>()
    };
    let s1 = serial(1);
    let s4 = serial(4);
    let s16 = serial(16);
    assert!(s4 <= s1, "4MB ({s4}) vs 1MB ({s1})");
    assert!(s16 <= s4, "16MB ({s16}) vs 4MB ({s4})");
}

#[test]
fn fig5b_shape_more_cg_cores_help_and_plateau() {
    let traces = measured_traces(BenchmarkId::Mix, 0.2);
    let total = |cores: usize| {
        let mut machine = MachineConfig::baseline(cores, 12);
        machine.l2 = L2Config::partitioned(12, vec![1, 1, 2]);
        let mut sim = MulticoreSim::new(
            machine,
            SimOptions {
                os_overhead: true,
                partition_of_phase: Some([0, 2, 1, 2, 2]),
                ..Default::default()
            },
        );
        warm_measure(&mut sim, &traces)
    };
    let t1 = total(1);
    let t2 = total(2);
    let t4 = total(4);
    assert!(t2 < t1, "2 cores must beat 1: {t2} vs {t1}");
    assert!(t4 < t2, "4 cores must beat 2: {t4} vs {t2}");
    // Diminishing returns (the paper's plateau): the 2->4 gain is smaller
    // than the 1->2 gain.
    let g12 = t1 as f64 / t2 as f64;
    let g24 = t2 as f64 / t4 as f64;
    assert!(
        g24 < g12 + 0.05,
        "scaling should flatten: 1->2 {g12:.2}x, 2->4 {g24:.2}x"
    );
}

#[test]
fn fig6b_shape_kernel_misses_explode_at_eight_threads() {
    let traces = measured_traces(BenchmarkId::Mix, 0.2);
    let kernel_misses = |cores: usize| {
        let mut sim = MulticoreSim::new(
            MachineConfig::baseline(cores, 12),
            SimOptions {
                os_overhead: true,
                ..Default::default()
            },
        );
        for t in &traces {
            sim.run_step(t);
        }
        sim.reset_stats();
        for t in &traces {
            sim.run_step(t);
        }
        sim.run_steps(&[]).kernel_l2_misses
    };
    let four = kernel_misses(4);
    let eight = kernel_misses(8);
    assert!(
        eight > four * 2,
        "8T kernel misses ({eight}) must far exceed 4T ({four})"
    );
}

#[test]
fn fig10a_shape_ipc_per_core_type() {
    // Island: monotone in core aggressiveness; limit study wins big.
    let island: Vec<f64> = FgCoreType::ALL
        .iter()
        .map(|c| c.kernel_ipc(Kernel::IslandSolver))
        .collect();
    assert!(island[0] > island[1] && island[1] > island[2]); // d > c > s
    assert!(island[3] > island[0]); // limit > desktop
                                    // Narrowphase: the limit-study core does *worse* than the console.
    let nw_limit = FgCoreType::LimitStudy.kernel_ipc(Kernel::Narrowphase);
    let nw_console = FgCoreType::Console.kernel_ipc(Kernel::Narrowphase);
    assert!(
        nw_limit < nw_console,
        "paper: narrowphase degrades with resources"
    );
}

#[test]
fn fig10b_shape_core_counts() {
    let mut scene = BenchmarkId::Mix.build(&SceneParams {
        scale: 0.2,
        ..Default::default()
    });
    let profiles = scene.run_measured(2, 1);
    let w = FgWorkload::from_profiles(&profiles);
    let d = cores_required_compute_only(FgCoreType::Desktop, &w, 0.32);
    let c = cores_required_compute_only(FgCoreType::Console, &w, 0.32);
    let s = cores_required_compute_only(FgCoreType::Shader, &w, 0.32);
    assert!(d <= c && c <= s, "simpler cores need more: {d} {c} {s}");
}

#[test]
fn table7_shape_looser_links_need_more_island_buffering() {
    let on = tasks_to_hide_latency(
        Kernel::IslandSolver,
        FgCoreType::Desktop,
        Link::OnChipMesh,
        30,
    );
    let htx = tasks_to_hide_latency(Kernel::IslandSolver, FgCoreType::Desktop, Link::Htx, 30);
    let pcie = tasks_to_hide_latency(Kernel::IslandSolver, FgCoreType::Desktop, Link::Pcie, 30);
    let (a, b, c) = (
        on.total_tasks.unwrap(),
        htx.total_tasks.unwrap(),
        pcie.total_tasks.unwrap(),
    );
    assert!(
        a < b && b < c,
        "island buffering must grow with latency: {a} {b} {c}"
    );
}

#[test]
fn partitioned_l2_protects_serial_phases_under_churn() {
    let traces = measured_traces(BenchmarkId::Breakable, 0.2);
    let serial = |partitioned: bool| {
        let mut machine = MachineConfig::baseline(1, 4);
        let options = if partitioned {
            machine.l2 = L2Config::partitioned(4, vec![1, 1, 2]);
            SimOptions {
                partition_of_phase: Some([0, 2, 1, 2, 2]),
                ..Default::default()
            }
        } else {
            SimOptions::default()
        };
        let mut sim = MulticoreSim::new(machine, options);
        for t in &traces {
            sim.run_step(t);
        }
        sim.reset_stats();
        traces.iter().map(|t| sim.run_step(t).serial()).sum::<u64>()
    };
    let unprotected = serial(false);
    let protected = serial(true);
    // Partitioning must not make the serial phases slower than the
    // free-for-all by more than noise (the paper's claim is that it lets a
    // *smaller* total L2 do the same job).
    assert!(
        (protected as f64) < unprotected as f64 * 1.15,
        "partitioned {protected} vs shared {unprotected}"
    );
}
