//! Cross-thread determinism: the pipeline's parallel stages must produce
//! bit-identical simulations for any executor width.
//!
//! The executor writes every result by item index and the island
//! work-queue partition is derived from island order, not thread timing,
//! so a scene stepped with 1, 2 or 8 threads must agree exactly — both in
//! the simulated state (body positions, velocities) and in the derived
//! step-trace instruction counts the architecture model consumes.
//!
//! The contact cache used for solver warm starting is itself updated in
//! island order on the caller thread, so the guarantee holds with warm
//! starting on (the default) or off. `scripts/verify.sh` runs this suite
//! both ways; set `PARALLAX_WARM_START=0` (or `off`) to cover the cold
//! path.
//!
//! The same contract extends to the SIMD kernels: every `SimdMode` must
//! produce bit-identical runs, at every thread count. `verify.sh` runs
//! the suite under `PARALLAX_SIMD=0` and `=1` as well, and the grid test
//! below pins the cross-product explicitly.
//!
//! Island sleeping is a third axis: all sleep/wake decisions run on the
//! serial phases in body-index order, so a sleeping-enabled run must
//! also be bit-identical across thread counts and SIMD modes.
//! `WorldConfig::default()` honours `PARALLAX_SLEEP=1|on`, so
//! `verify.sh` re-runs this whole suite with sleeping enabled, and the
//! dedicated grid test below pins the sleeping cross-product (and that
//! bodies actually sleep) regardless of the environment.

use parallax_math::Vec3;
use parallax_physics::{BodyDesc, PhaseKind, Shape, SimdMode, World, WorldConfig};
use parallax_trace::StepTrace;
use parallax_workloads::{BenchmarkId, SceneParams};

const STEPS: usize = 100;

/// First step whose per-phase digests differ, with the first divergent
/// phase's display name — so a determinism failure reads "step 37,
/// Island Parallel", not "some array differed".
fn first_digest_divergence(a: &[[u64; 5]], b: &[[u64; 5]]) -> Option<(usize, &'static str)> {
    a.iter().zip(b).enumerate().find_map(|(step, (da, db))| {
        PhaseKind::ALL
            .iter()
            .zip(da.iter().zip(db.iter()))
            .find(|(_, (x, y))| x != y)
            .map(|(p, _)| (step, p.name()))
    })
}

/// Asserts two runs match bit-for-bit, naming the first divergent step
/// and phase when they do not.
#[track_caller]
fn assert_identical(baseline: &RunRecord, run: &RunRecord, label: &str) {
    if let Some((step, phase)) = first_digest_divergence(&baseline.digests, &run.digests) {
        panic!("{label}: first divergence at step {step}, phase {phase}");
    }
    assert!(
        run == baseline,
        "{label}: end state diverged with identical per-step digests"
    );
}

/// Honours `PARALLAX_WARM_START=0|off` so the suite can be re-run against
/// the cold-solver path without a rebuild.
fn warm_starting() -> bool {
    !matches!(
        std::env::var("PARALLAX_WARM_START").as_deref(),
        Ok("0") | Ok("off")
    )
}

/// Bit-exact snapshot of the dynamic state plus per-step trace counts.
#[derive(PartialEq, Debug)]
struct RunRecord {
    /// Per-step per-phase state digests (the flight recorder's
    /// fingerprints) — compared first, so a failure names the exact step
    /// and phase where two runs part ways.
    digests: Vec<[u64; 5]>,
    /// (position, linear velocity) bit patterns for every body at the end.
    body_state: Vec<[u32; 6]>,
    /// Cloth vertex position bit patterns at the end.
    cloth_state: Vec<[u32; 3]>,
    /// Per-step total step-trace instructions.
    instructions: Vec<u64>,
    /// Per-step entity counts (pairs, islands, contacts).
    work: Vec<(usize, usize, usize)>,
}

fn bits(v: Vec3) -> [u32; 3] {
    [v.x.to_bits(), v.y.to_bits(), v.z.to_bits()]
}

fn record(world: &mut World, steps: usize) -> RunRecord {
    let mut digests = Vec::with_capacity(steps);
    let mut instructions = Vec::with_capacity(steps);
    let mut work = Vec::with_capacity(steps);
    for _ in 0..steps {
        let p = world.step();
        digests.push(p.digests.expect("digests enabled in test worlds"));
        instructions.push(StepTrace::from_profile(&p).total_instructions());
        work.push((p.pairs.len(), p.islands.len(), p.total_contacts()));
    }
    let body_state = world
        .bodies()
        .iter()
        .map(|b| {
            let [px, py, pz] = bits(b.position());
            let [vx, vy, vz] = bits(b.linear_velocity());
            [px, py, pz, vx, vy, vz]
        })
        .collect();
    let cloth_state = world
        .cloths()
        .iter()
        .flat_map(|c| c.vertices().iter().map(|v| bits(v.pos)))
        .collect();
    RunRecord {
        digests,
        body_state,
        cloth_state,
        instructions,
        work,
    }
}

/// A dense hand-built scene touching every parallel phase: stacked boxes
/// (islands above the queue threshold), loose spheres (small islands) and
/// a cloth sheet.
fn build_dense_world(threads: usize) -> World {
    let mut w = World::new(WorldConfig {
        threads,
        warm_starting: warm_starting(),
        digests: true,
        ..WorldConfig::default()
    });
    w.add_static_geom(Shape::plane(Vec3::UNIT_Y, 0.0));
    for s in 0..4 {
        for i in 0..4 {
            w.add_body(
                BodyDesc::dynamic(Vec3::new(s as f32 * 2.0 - 3.0, 0.5 + i as f32 * 1.001, 0.0))
                    .with_shape(Shape::cuboid(Vec3::splat(0.5)), 1.0),
            );
        }
    }
    for i in 0..6 {
        w.add_body(
            BodyDesc::dynamic(Vec3::new(i as f32 * 1.5 - 4.0, 0.5, 4.0))
                .with_shape(Shape::sphere(0.5), 1.0),
        );
    }
    w.add_cloth(parallax_physics::Cloth::rectangle(
        Vec3::new(-1.0, 3.0, -1.0),
        2.0,
        2.0,
        8,
        8,
        &[],
    ));
    w
}

#[test]
fn dense_world_is_bit_identical_across_thread_counts() {
    let baseline = record(&mut build_dense_world(1), STEPS);
    assert!(baseline.instructions.iter().all(|&i| i > 0));
    for threads in [2, 8] {
        let run = record(&mut build_dense_world(threads), STEPS);
        assert_identical(&baseline, &run, &format!("threads = {threads}"));
    }
}

#[test]
fn mix_scene_is_bit_identical_across_thread_counts() {
    // The Mix scene exercises explosions, fracture, breakables and cloth
    // on top of plain stacks — the full pipeline.
    let record_mix = |threads: usize| {
        let mut scene = BenchmarkId::Mix.build(&SceneParams {
            scale: 0.1,
            threads,
            warm_starting: warm_starting(),
            digests: true,
            ..SceneParams::default()
        });
        let mut digests = Vec::new();
        let mut instructions = Vec::new();
        for _ in 0..STEPS {
            let p = scene.step();
            digests.push(p.digests.expect("digests enabled"));
            instructions.push(StepTrace::from_profile(&p).total_instructions());
        }
        let positions: Vec<[u32; 3]> = scene
            .world
            .bodies()
            .iter()
            .map(|b| bits(b.position()))
            .collect();
        (digests, instructions, positions)
    };
    let baseline = record_mix(1);
    for threads in [2, 8] {
        let run = record_mix(threads);
        if let Some((step, phase)) = first_digest_divergence(&baseline.0, &run.0) {
            panic!("threads = {threads}: first divergence at step {step}, phase {phase}");
        }
        assert_eq!(run, baseline, "threads = {threads}");
    }
}

#[test]
fn simulation_is_bit_identical_across_simd_modes_and_threads() {
    // The full {scalar, sse2, avx2} × {1, 2, 8} grid must agree with the
    // serial scalar run bit-for-bit — SIMD lanes and the executor width
    // are both pure implementation details of the same trajectory.
    let run = |threads: usize, simd: SimdMode| {
        let mut w = build_dense_world(threads);
        w.config_mut().simd = simd;
        record(&mut w, STEPS)
    };
    let baseline = run(1, SimdMode::Scalar);
    for simd in [SimdMode::Scalar, SimdMode::Sse2, SimdMode::Avx2] {
        if simd.clamp_to_supported() != simd {
            continue; // CPU cannot execute this width.
        }
        for threads in [1, 2, 8] {
            let r = run(threads, simd);
            assert_identical(
                &baseline,
                &r,
                &format!("threads = {threads}, simd = {}", simd.name()),
            );
        }
    }
}

#[test]
fn sleeping_runs_are_bit_identical_across_simd_modes_and_threads() {
    // Sleeping on, long enough for the stacks to deactivate: the sleep
    // timers, island parking and wake passes all run serially in body
    // order, so the grid must still agree bit-for-bit — and bodies must
    // actually fall asleep, or the test proves nothing.
    const SLEEP_STEPS: usize = 200;
    let run = |threads: usize, simd: SimdMode| {
        let mut w = build_dense_world(threads);
        w.config_mut().simd = simd;
        w.config_mut().sleeping = true;
        let rec = record(&mut w, SLEEP_STEPS);
        (rec, w.sleeping_body_count())
    };
    let (baseline, slept) = run(1, SimdMode::Scalar);
    assert!(
        slept > 0,
        "no body fell asleep in {SLEEP_STEPS} steps; the sleeping grid is vacuous"
    );
    for simd in [SimdMode::Scalar, SimdMode::Sse2, SimdMode::Avx2] {
        if simd.clamp_to_supported() != simd {
            continue; // CPU cannot execute this width.
        }
        for threads in [1, 2, 8] {
            let (r, r_slept) = run(threads, simd);
            let label = format!("sleeping, threads = {threads}, simd = {}", simd.name());
            assert_identical(&baseline, &r, &label);
            assert_eq!(r_slept, slept, "{label}: sleeping-body count diverged");
        }
    }
}

#[test]
fn thread_count_change_mid_run_stays_deterministic() {
    // Switching the executor width mid-simulation (config_mut) must not
    // perturb the trajectory either.
    let mut steady = build_dense_world(1);
    let mut switching = build_dense_world(1);
    for step in 0..STEPS {
        let ps = steady.step();
        if step == 25 {
            switching.config_mut().threads = 4;
        }
        if step == 75 {
            switching.config_mut().threads = 2;
        }
        let pw = switching.step();
        if let Some((_, phase)) = first_digest_divergence(
            &[ps.digests.expect("digests enabled")],
            &[pw.digests.expect("digests enabled")],
        ) {
            panic!("first divergence at step {step}, phase {phase}");
        }
    }
    let a: Vec<[u32; 3]> = steady.bodies().iter().map(|b| bits(b.position())).collect();
    let b: Vec<[u32; 3]> = switching
        .bodies()
        .iter()
        .map(|b| bits(b.position()))
        .collect();
    assert_eq!(a, b);
}
