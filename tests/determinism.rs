//! Cross-thread determinism: the pipeline's parallel stages must produce
//! bit-identical simulations for any executor width.
//!
//! The executor writes every result by item index and the island
//! work-queue partition is derived from island order, not thread timing,
//! so a scene stepped with 1, 2 or 8 threads must agree exactly — both in
//! the simulated state (body positions, velocities) and in the derived
//! step-trace instruction counts the architecture model consumes.
//!
//! The contact cache used for solver warm starting is itself updated in
//! island order on the caller thread, so the guarantee holds with warm
//! starting on (the default) or off. `scripts/verify.sh` runs this suite
//! both ways; set `PARALLAX_WARM_START=0` (or `off`) to cover the cold
//! path.
//!
//! The same contract extends to the SIMD kernels: every `SimdMode` must
//! produce bit-identical runs, at every thread count. `verify.sh` runs
//! the suite under `PARALLAX_SIMD=0` and `=1` as well, and the grid test
//! below pins the cross-product explicitly.

use parallax_math::Vec3;
use parallax_physics::{BodyDesc, Shape, SimdMode, World, WorldConfig};
use parallax_trace::StepTrace;
use parallax_workloads::{BenchmarkId, SceneParams};

const STEPS: usize = 100;

/// Honours `PARALLAX_WARM_START=0|off` so the suite can be re-run against
/// the cold-solver path without a rebuild.
fn warm_starting() -> bool {
    !matches!(
        std::env::var("PARALLAX_WARM_START").as_deref(),
        Ok("0") | Ok("off")
    )
}

/// Bit-exact snapshot of the dynamic state plus per-step trace counts.
#[derive(PartialEq, Debug)]
struct RunRecord {
    /// (position, linear velocity) bit patterns for every body at the end.
    body_state: Vec<[u32; 6]>,
    /// Cloth vertex position bit patterns at the end.
    cloth_state: Vec<[u32; 3]>,
    /// Per-step total step-trace instructions.
    instructions: Vec<u64>,
    /// Per-step entity counts (pairs, islands, contacts).
    work: Vec<(usize, usize, usize)>,
}

fn bits(v: Vec3) -> [u32; 3] {
    [v.x.to_bits(), v.y.to_bits(), v.z.to_bits()]
}

fn record(world: &mut World, steps: usize) -> RunRecord {
    let mut instructions = Vec::with_capacity(steps);
    let mut work = Vec::with_capacity(steps);
    for _ in 0..steps {
        let p = world.step();
        instructions.push(StepTrace::from_profile(&p).total_instructions());
        work.push((p.pairs.len(), p.islands.len(), p.total_contacts()));
    }
    let body_state = world
        .bodies()
        .iter()
        .map(|b| {
            let [px, py, pz] = bits(b.position());
            let [vx, vy, vz] = bits(b.linear_velocity());
            [px, py, pz, vx, vy, vz]
        })
        .collect();
    let cloth_state = world
        .cloths()
        .iter()
        .flat_map(|c| c.vertices().iter().map(|v| bits(v.pos)))
        .collect();
    RunRecord {
        body_state,
        cloth_state,
        instructions,
        work,
    }
}

/// A dense hand-built scene touching every parallel phase: stacked boxes
/// (islands above the queue threshold), loose spheres (small islands) and
/// a cloth sheet.
fn build_dense_world(threads: usize) -> World {
    let mut w = World::new(WorldConfig {
        threads,
        warm_starting: warm_starting(),
        ..WorldConfig::default()
    });
    w.add_static_geom(Shape::plane(Vec3::UNIT_Y, 0.0));
    for s in 0..4 {
        for i in 0..4 {
            w.add_body(
                BodyDesc::dynamic(Vec3::new(s as f32 * 2.0 - 3.0, 0.5 + i as f32 * 1.001, 0.0))
                    .with_shape(Shape::cuboid(Vec3::splat(0.5)), 1.0),
            );
        }
    }
    for i in 0..6 {
        w.add_body(
            BodyDesc::dynamic(Vec3::new(i as f32 * 1.5 - 4.0, 0.5, 4.0))
                .with_shape(Shape::sphere(0.5), 1.0),
        );
    }
    w.add_cloth(parallax_physics::Cloth::rectangle(
        Vec3::new(-1.0, 3.0, -1.0),
        2.0,
        2.0,
        8,
        8,
        &[],
    ));
    w
}

#[test]
fn dense_world_is_bit_identical_across_thread_counts() {
    let baseline = record(&mut build_dense_world(1), STEPS);
    assert!(baseline.instructions.iter().all(|&i| i > 0));
    for threads in [2, 8] {
        let run = record(&mut build_dense_world(threads), STEPS);
        assert!(
            run == baseline,
            "threads = {threads} diverged from the serial run"
        );
    }
}

#[test]
fn mix_scene_is_bit_identical_across_thread_counts() {
    // The Mix scene exercises explosions, fracture, breakables and cloth
    // on top of plain stacks — the full pipeline.
    let record_mix = |threads: usize| {
        let mut scene = BenchmarkId::Mix.build(&SceneParams {
            scale: 0.1,
            threads,
            warm_starting: warm_starting(),
            ..SceneParams::default()
        });
        let mut instructions = Vec::new();
        for _ in 0..STEPS {
            let p = scene.step();
            instructions.push(StepTrace::from_profile(&p).total_instructions());
        }
        let positions: Vec<[u32; 3]> = scene
            .world
            .bodies()
            .iter()
            .map(|b| bits(b.position()))
            .collect();
        (instructions, positions)
    };
    let baseline = record_mix(1);
    for threads in [2, 8] {
        assert_eq!(record_mix(threads), baseline, "threads = {threads}");
    }
}

#[test]
fn simulation_is_bit_identical_across_simd_modes_and_threads() {
    // The full {scalar, sse2, avx2} × {1, 2, 8} grid must agree with the
    // serial scalar run bit-for-bit — SIMD lanes and the executor width
    // are both pure implementation details of the same trajectory.
    let run = |threads: usize, simd: SimdMode| {
        let mut w = build_dense_world(threads);
        w.config_mut().simd = simd;
        record(&mut w, STEPS)
    };
    let baseline = run(1, SimdMode::Scalar);
    for simd in [SimdMode::Scalar, SimdMode::Sse2, SimdMode::Avx2] {
        if simd.clamp_to_supported() != simd {
            continue; // CPU cannot execute this width.
        }
        for threads in [1, 2, 8] {
            let r = run(threads, simd);
            assert!(
                r == baseline,
                "threads = {threads}, simd = {} diverged from the scalar serial run",
                simd.name()
            );
        }
    }
}

#[test]
fn thread_count_change_mid_run_stays_deterministic() {
    // Switching the executor width mid-simulation (config_mut) must not
    // perturb the trajectory either.
    let mut steady = build_dense_world(1);
    let mut switching = build_dense_world(1);
    for step in 0..STEPS {
        steady.step();
        if step == 25 {
            switching.config_mut().threads = 4;
        }
        if step == 75 {
            switching.config_mut().threads = 2;
        }
        switching.step();
    }
    let a: Vec<[u32; 3]> = steady.bodies().iter().map(|b| bits(b.position())).collect();
    let b: Vec<[u32; 3]> = switching
        .bodies()
        .iter()
        .map(|b| bits(b.position()))
        .collect();
    assert_eq!(a, b);
}
