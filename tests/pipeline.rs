//! End-to-end pipeline tests: physics engine → work profiles → traces →
//! architecture simulator → ParallAX system model.

use parallax::arch::ParallaxSystem;
use parallax::fgcore::FgCoreType;
use parallax_archsim::config::MachineConfig;
use parallax_archsim::multicore::{MulticoreSim, SimOptions};
use parallax_archsim::offchip::Link;
use parallax_math::Vec3;
use parallax_physics::{BodyDesc, PhaseKind, Shape, World, WorldConfig};
use parallax_trace::StepTrace;
use parallax_workloads::{BenchmarkId, SceneParams};

fn small_params() -> SceneParams {
    SceneParams {
        scale: 0.1,
        ..Default::default()
    }
}

#[test]
fn every_benchmark_builds_and_steps_at_reduced_scale() {
    for id in BenchmarkId::ALL {
        let mut scene = id.build(&small_params());
        let profiles = scene.step_frame();
        assert_eq!(profiles.len(), 3, "{id:?}: a frame is 3 steps");
        for p in &profiles {
            assert!(p.body_count > 0, "{id:?}: bodies exist");
        }
    }
}

#[test]
fn profiles_convert_to_consistent_traces() {
    let mut scene = BenchmarkId::Periodic.build(&small_params());
    let profiles = scene.run_measured(1, 1);
    for p in &profiles {
        let t = StepTrace::from_profile(p);
        // Task counts per phase must match the profile.
        assert_eq!(t.phase(PhaseKind::Narrowphase).tasks.len(), p.pairs.len());
        assert_eq!(
            t.phase(PhaseKind::IslandProcessing).tasks.len(),
            p.islands.len()
        );
        assert_eq!(t.phase(PhaseKind::Cloth).tasks.len(), p.cloths.len());
        // Serial phases are single tasks.
        assert_eq!(t.phase(PhaseKind::Broadphase).tasks.len(), 1);
        assert_eq!(t.phase(PhaseKind::IslandCreation).tasks.len(), 1);
        assert!(t.total_instructions() > 0);
    }
}

#[test]
fn same_seed_reproduces_the_same_workload() {
    let run = || {
        let mut scene = BenchmarkId::Ragdoll.build(&small_params());
        let profiles = scene.run_measured(1, 1);
        profiles
            .iter()
            .map(|p| (p.pairs.len(), p.islands.len(), p.total_contacts()))
            .collect::<Vec<_>>()
    };
    assert_eq!(
        run(),
        run(),
        "scene construction and stepping are deterministic"
    );
}

#[test]
fn simulator_times_a_real_scene_plausibly() {
    let mut world = World::new(WorldConfig::default());
    world.add_static_geom(Shape::plane(Vec3::UNIT_Y, 0.0));
    for i in 0..30 {
        world.add_body(
            BodyDesc::dynamic(Vec3::new((i % 6) as f32, 0.5 + (i / 6) as f32 * 1.05, 0.0))
                .with_shape(Shape::cuboid(Vec3::splat(0.5)), 1.0),
        );
    }
    let mut sim = MulticoreSim::new(MachineConfig::baseline(1, 4), SimOptions::default());
    let mut cycles = 0;
    for _ in 0..10 {
        let p = world.step();
        cycles += sim.run_step(&StepTrace::from_profile(&p)).total();
    }
    let secs = cycles as f64 / 2.0e9;
    // 30 boxes for 10 steps should land between 10 µs and 0.1 s of
    // simulated 2 GHz core time.
    assert!(
        (1e-5..0.1).contains(&secs),
        "implausible simulated time: {secs}"
    );
}

#[test]
fn parallax_system_beats_the_cg_only_baseline() {
    let mut scene = BenchmarkId::Explosions.build(&small_params());
    let profiles = scene.run_measured(2, 1);

    // CG-only: 4 cores, 12 MB.
    let mut cg = MulticoreSim::new(MachineConfig::baseline(4, 12), SimOptions::default());
    for p in &profiles {
        cg.run_step(&StepTrace::from_profile(p));
    }
    cg.reset_stats();
    let mut cg_cycles = 0;
    for p in &profiles {
        cg_cycles += cg.run_step(&StepTrace::from_profile(p)).total();
    }

    // ParallAX: same CG plus 150 shader FG cores.
    let mut sys = ParallaxSystem::new(4, FgCoreType::Shader, 150, Link::OnChipMesh);
    let _ = sys.simulate_steps(&profiles);
    let px_cycles = sys.simulate_steps(&profiles).total_cycles();

    assert!(
        px_cycles < cg_cycles,
        "ParallAX ({px_cycles}) must beat CG-only ({cg_cycles})"
    );
}

#[test]
fn fg_pool_scales_until_serial_bound() {
    let mut scene = BenchmarkId::Highspeed.build(&small_params());
    let profiles = scene.run_measured(2, 1);
    let time = |fg: usize| {
        let mut sys = ParallaxSystem::new(4, FgCoreType::Shader, fg, Link::OnChipMesh);
        let _ = sys.simulate_steps(&profiles);
        sys.simulate_steps(&profiles).total_cycles()
    };
    let t10 = time(10);
    let t150 = time(150);
    assert!(
        t150 <= t10,
        "more FG cores cannot be slower: {t150} vs {t10}"
    );
    // Serial phases are untouched by FG scaling.
    let serial = |fg: usize| {
        let mut sys = ParallaxSystem::new(4, FgCoreType::Shader, fg, Link::OnChipMesh);
        let _ = sys.simulate_steps(&profiles);
        sys.simulate_steps(&profiles).serial_cycles
    };
    let s10 = serial(10);
    let s150 = serial(150);
    let drift = (s10 as f64 - s150 as f64).abs() / s10.max(1) as f64;
    assert!(
        drift < 0.05,
        "serial time should not depend on FG pool: {s10} vs {s150}"
    );
}

#[test]
fn multithreaded_engine_produces_equivalent_workload() {
    // The engine's parallel phases must produce the same amount of work
    // regardless of thread count (execution differs; work does not).
    let run = |threads: usize| {
        let params = SceneParams {
            scale: 0.1,
            threads,
            ..Default::default()
        };
        let mut scene = BenchmarkId::Periodic.build(&params);
        let profiles = scene.step_frame();
        profiles
            .iter()
            .map(|p| (p.pairs.len(), p.islands.len()))
            .collect::<Vec<_>>()
    };
    let serial = run(1);
    let parallel = run(4);
    // First step is fully deterministic (identical initial state).
    assert_eq!(serial[0], parallel[0]);
}
