//! Island sleeping end to end: the temporal-coherence fast path must be
//! invisible until the first sleep transition, reversible on wake, and
//! clean under the invariant monitor.
//!
//! Three contracts pin it down:
//!
//! 1. **Prefix equivalence** — a sleeping-enabled run is bit-identical
//!    to a sleeping-disabled run of the same world up to (and including)
//!    the step of the first sleep transition. Sleep timers update either
//!    way; only deactivation may change the trajectory, and only from
//!    the moment it first happens.
//! 2. **Wake reconvergence** — `wake_all` on a settled world hands every
//!    island back to the full pipeline; the bodies must re-settle and
//!    re-sleep without drifting (positions stay put to a tight epsilon),
//!    and the whole arc stays bit-identical across thread counts.
//! 3. **Monitor cleanliness** — a monitored sleeping run produces zero
//!    violations: nothing moves a sleeping body, energy stays bounded,
//!    and the `sleeping_moved` invariant never fires.

use parallax_math::Vec3;
use parallax_physics::{world_digest, BodyDesc, InvariantMonitor, Shape, World, WorldConfig};
use parallax_workloads::{BenchmarkId, SceneParams};

/// A world that settles quickly: a ground plane and a few short box
/// stacks placed at exact rest height, far enough apart to be separate
/// islands.
fn settling_world(threads: usize, sleeping: bool) -> World {
    let mut w = World::new(WorldConfig {
        threads,
        sleeping,
        sleep_steps: 20,
        digests: true,
        ..WorldConfig::default()
    });
    w.add_static_geom(Shape::plane(Vec3::UNIT_Y, 0.0));
    for s in 0..3 {
        for level in 0..3 {
            w.add_body(
                BodyDesc::dynamic(Vec3::new(
                    s as f32 * 4.0 - 4.0,
                    0.4 + level as f32 * 0.8,
                    0.0,
                ))
                .with_shape(Shape::cuboid(Vec3::splat(0.4)), 2.0),
            );
        }
    }
    w
}

fn positions_bits(w: &World) -> Vec<[u32; 3]> {
    w.bodies()
        .iter()
        .map(|b| {
            let p = b.position();
            [p.x.to_bits(), p.y.to_bits(), p.z.to_bits()]
        })
        .collect()
}

fn positions(w: &World) -> Vec<Vec3> {
    w.bodies().iter().map(|b| b.position()).collect()
}

#[test]
fn sleeping_run_matches_non_sleeping_run_until_first_sleep_event() {
    let mut on = settling_world(1, true);
    let mut off = settling_world(1, false);
    let mut first_sleep = None;
    for step in 0..300 {
        // Compare *before* stepping: state at step N is the product of
        // steps 0..N, and the transition at step N may only affect N+1.
        assert_eq!(
            world_digest(&on),
            world_digest(&off),
            "diverged at step {step} before any body slept"
        );
        on.step();
        off.step();
        if on.sleeping_body_count() > 0 {
            first_sleep = Some(step);
            break;
        }
    }
    let first = first_sleep.expect("no body slept within 300 steps");
    assert!(first > 0, "bodies cannot sleep on the very first step");
    // From the transition on, the runs are *allowed* to differ (sleeping
    // zeroes residual velocities) — but the resting positions must still
    // agree to within the residual-velocity drift the threshold admits.
    for _ in 0..60 {
        on.step();
        off.step();
    }
    for (i, (a, b)) in positions(&on).iter().zip(positions(&off)).enumerate() {
        assert!(
            (*a - b).length() < 1e-2,
            "body {i} rest position drifted: sleeping {a:?} vs awake {b:?}"
        );
    }
}

#[test]
fn wake_all_reconverges_and_stays_deterministic_across_threads() {
    let run = |threads: usize| {
        let mut w = settling_world(threads, true);
        for _ in 0..150 {
            w.step();
        }
        let slept = w.sleeping_body_count();
        let rest = positions(&w);
        w.wake_all();
        assert_eq!(w.sleeping_body_count(), 0, "wake_all left sleepers");
        for _ in 0..150 {
            w.step();
        }
        (
            slept,
            rest,
            positions(&w),
            positions_bits(&w),
            world_digest(&w),
        )
    };
    let (slept, rest, resettled, bits, digest) = run(1);
    assert!(slept > 0, "world never slept; reconvergence is vacuous");
    // Re-settling after a mass wake must not walk the stacks anywhere.
    for (i, (a, b)) in rest.iter().zip(&resettled).enumerate() {
        assert!(
            (*a - *b).length() < 1e-3,
            "body {i} drifted across wake_all: {a:?} -> {b:?}"
        );
    }
    // And the entire sleep → wake → re-sleep arc is deterministic.
    for threads in [2, 8] {
        let (s, _, _, b, d) = run(threads);
        assert_eq!(s, slept, "threads = {threads}: sleep count diverged");
        assert_eq!(b, bits, "threads = {threads}: positions diverged");
        assert_eq!(d, digest, "threads = {threads}: world digest diverged");
    }
}

#[test]
fn monitored_sleeping_scene_has_zero_violations() {
    // The Resting workload under the full default monitor: islands fall
    // asleep, cannon impacts wake them, and no invariant — including the
    // sleeping-body-moved check — may fire.
    let mut scene = BenchmarkId::Resting.build(&SceneParams {
        scale: 0.15,
        sleeping: true,
        digests: true,
        ..SceneParams::default()
    });
    let mut monitor = InvariantMonitor::default();
    let mut peak = 0usize;
    for step in 0..250 {
        let profile = scene.step();
        peak = peak.max(profile.sleeping_bodies);
        let violations = monitor.check_step(&scene.world, &profile);
        assert!(violations.is_empty(), "step {step}: {violations:?}");
    }
    assert!(peak > 0, "nothing slept; the monitored run is vacuous");
    assert_eq!(monitor.violations_total(), 0);
}
