//! Snapshot round-trip and divergence-bisector integration tests.
//!
//! The flight recorder's correctness rests on two promises:
//!
//! 1. `World::snapshot()` → `World::restore()` is a *bit-identical*
//!    round trip: the restored world has the same state digest and — the
//!    stronger claim — continues along the exact same trajectory, even
//!    when restored into a world running a different executor width or
//!    SIMD mode (those axes are already covered by the determinism
//!    guarantee, so a snapshot must be portable across them).
//! 2. The bisector turns "these two runs differ after N steps" into an
//!    exact step + phase + body range in `O(log N)` re-runs. The test
//!    injects a known single-ULP fault ([`DigestFault`]) and checks the
//!    report names exactly that step and phase.

use parallax_bench::bisect::{bisect, BisectConfig, BisectOutcome, SideSpec};
use parallax_math::Vec3;
use parallax_physics::{
    self as physics, BodyDesc, DigestFault, PhaseKind, Shape, SimdMode, World, WorldConfig,
};
use parallax_workloads::BenchmarkId;
use proptest::prelude::*;

/// Drops `n` random mixed-shape bodies above a plane, digests enabled.
fn drop_world(seed: u64, n: usize, threads: usize, simd: SimdMode) -> World {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut world = World::new(WorldConfig {
        threads,
        simd,
        digests: true,
        ..WorldConfig::default()
    });
    world.add_static_geom(Shape::plane(Vec3::UNIT_Y, 0.0));
    for _ in 0..n {
        let pos = Vec3::new(
            rng.gen_range(-3.0f32..3.0),
            rng.gen_range(1.0f32..6.0),
            rng.gen_range(-3.0f32..3.0),
        );
        let shape = match rng.gen_range(0u8..3) {
            0 => Shape::sphere(rng.gen_range(0.2f32..0.5)),
            1 => Shape::cuboid(Vec3::splat(rng.gen_range(0.2f32..0.5))),
            _ => Shape::capsule(rng.gen_range(0.15f32..0.3), rng.gen_range(0.1f32..0.4)),
        };
        world.add_body(
            BodyDesc::dynamic(pos)
                .with_shape(shape, rng.gen_range(0.5f32..5.0))
                .with_velocity(Vec3::new(
                    rng.gen_range(-2.0f32..2.0),
                    0.0,
                    rng.gen_range(-2.0f32..2.0),
                )),
        );
    }
    world
}

/// Steps `a` and `b` in lockstep, asserting per-phase digests agree at
/// every step (so a failure names the step and phase, not just "end
/// states differ").
fn step_lockstep(a: &mut World, b: &mut World, steps: usize, label: &str) {
    for step in 0..steps {
        let pa = a.step();
        let pb = b.step();
        let da = pa.digests.expect("digests enabled");
        let db = pb.digests.expect("digests enabled");
        for (phase, (x, y)) in PhaseKind::ALL.iter().zip(da.iter().zip(db.iter())) {
            assert_eq!(
                x,
                y,
                "{label}: divergence {step} steps after restore, phase {}",
                phase.name()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Mid-run snapshot → restore into a freshly built identical world
    /// is bit-identical, and the restored world continues along the
    /// exact same trajectory.
    #[test]
    fn snapshot_roundtrip_is_bit_identical(seed in 0u64..500, warm in 5usize..40) {
        let mut original = drop_world(seed, 10, 1, SimdMode::Scalar);
        for _ in 0..warm {
            original.step();
        }
        let bytes = original.snapshot();
        let mut restored = drop_world(seed, 10, 1, SimdMode::Scalar);
        restored.restore(&bytes).expect("restore");
        prop_assert_eq!(
            physics::world_digest(&original),
            physics::world_digest(&restored),
            "restored world digest differs immediately after restore"
        );
        prop_assert_eq!(original.step_count(), restored.step_count());
        step_lockstep(&mut original, &mut restored, 12, "roundtrip");
        prop_assert_eq!(
            physics::world_digest(&original),
            physics::world_digest(&restored)
        );
    }
}

/// A snapshot taken on a serial scalar world restores into worlds
/// running any executor width and SIMD mode, and every one continues
/// bit-identically — snapshots are portable across the determinism axes.
#[test]
fn snapshot_is_portable_across_threads_and_simd() {
    let mut source = drop_world(7, 12, 1, SimdMode::Scalar);
    for _ in 0..20 {
        source.step();
    }
    let bytes = source.snapshot();
    for simd in [SimdMode::Scalar, SimdMode::Sse2, SimdMode::Avx2] {
        if simd.clamp_to_supported() != simd {
            continue; // CPU cannot execute this width.
        }
        for threads in [1, 2, 8] {
            let mut reference = drop_world(7, 12, 1, SimdMode::Scalar);
            reference.restore(&bytes).expect("restore reference");
            let mut target = drop_world(7, 12, threads, simd);
            target.restore(&bytes).expect("restore target");
            assert_eq!(
                physics::world_digest(&reference),
                physics::world_digest(&target),
                "digest differs after restore (threads = {threads}, simd = {})",
                simd.name()
            );
            step_lockstep(
                &mut reference,
                &mut target,
                15,
                &format!("threads = {threads}, simd = {}", simd.name()),
            );
        }
    }
}

/// The acceptance test for the bisector: inject a single-ULP fault into
/// side B at a known step and phase, and require the report to localize
/// it to exactly that step and phase (with a body range covering the
/// perturbed body) in `O(log steps)` run segments.
#[test]
fn bisect_localizes_injected_fault_to_exact_step_and_phase() {
    let fault = DigestFault {
        step: 23,
        phase: PhaseKind::Narrowphase,
    };
    let cfg = BisectConfig {
        scene: BenchmarkId::Mix,
        steps: 64,
        scale: 0.1,
        a: SideSpec {
            threads: 1,
            simd: SimdMode::Scalar,
            sleep: false,
        },
        b: SideSpec {
            threads: 2,
            simd: SimdMode::Scalar,
            sleep: false,
        },
        fault: Some(fault),
        chunk: 32,
    };
    match bisect(&cfg, &mut |_| {}) {
        BisectOutcome::Clean { .. } => panic!("injected fault was not detected"),
        BisectOutcome::Diverged(report) => {
            assert_eq!(report.step, fault.step, "wrong step: {}", report.summary());
            assert_eq!(
                report.phase,
                Some(fault.phase),
                "wrong phase: {}",
                report.summary()
            );
            let (lo, hi) = report
                .body_range
                .expect("fault perturbs body 0, so a divergent chunk must exist");
            assert!(
                lo == 0 && hi > 0,
                "body range {lo}..{hi} does not cover perturbed body 0"
            );
            let lane = report.lane.expect("a first divergent lane must exist");
            assert_eq!(
                lane.a_bits ^ lane.b_bits,
                1,
                "fault flips exactly one ULP, lane {} differs by more",
                lane.location
            );
            // 1 full run + ceil(log2(64)) = 6 probes, plus slack for the
            // re-checkpoint pattern.
            assert!(
                report.runs <= 8,
                "bisection took {} run segments for a 64-step horizon",
                report.runs
            );
        }
    }
}
