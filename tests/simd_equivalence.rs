//! Property tests for the engine's bit-identity contract: every SIMD
//! kernel instantiation (SSE2, AVX2) must produce exactly the same bits
//! as the scalar fallback on arbitrary inputs.
//!
//! The kernels are written once, generic over the lane width, and the
//! remainder (`len % LANES`) re-uses the one-lane instantiation — so the
//! interesting cases are element counts straddling the lane boundaries
//! (1..=7 remainders), mixed static/dynamic populations, and zero
//! inverse masses. The strategies below generate exactly those.

use parallax_math::Transform;
use parallax_math::{SimdMode, Vec3};
use parallax_physics::cloth::Cloth;
use parallax_physics::contact::{ContactManifold, ContactPoint};
use parallax_physics::integrator;
use parallax_physics::shape::GeomId;
use parallax_physics::solver::{self, RowParams, RowSoA, STATIC_BODY};
use parallax_physics::{BodyDesc, BodyStore, Shape};
use proptest::prelude::*;

/// The wide modes this host can actually execute.
fn wide_modes() -> Vec<SimdMode> {
    [SimdMode::Sse2, SimdMode::Avx2]
        .into_iter()
        .filter(|m| m.clamp_to_supported() == *m)
        .collect()
}

fn bits(v: Vec3) -> [u32; 3] {
    [v.x.to_bits(), v.y.to_bits(), v.z.to_bits()]
}

/// One generated body: position, velocities, and whether it is static
/// (zero inverse mass) — the masking case the pinned/movable lanes must
/// get right.
type BodySpec = ((f32, f32, f32), (f32, f32, f32), (f32, f32, f32), bool, f32);

fn body_spec() -> impl Strategy<Value = BodySpec> {
    (
        (-10.0f32..10.0, -10.0f32..10.0, -10.0f32..10.0),
        (-5.0f32..5.0, -5.0f32..5.0, -5.0f32..5.0),
        (-3.0f32..3.0, -3.0f32..3.0, -3.0f32..3.0),
        any::<bool>(),
        0.1f32..10.0,
    )
}

fn build_store(specs: &[BodySpec]) -> BodyStore {
    let mut s = BodyStore::default();
    for &((px, py, pz), (vx, vy, vz), (ax, ay, az), is_static, mass) in specs {
        let pos = Vec3::new(px, py, pz);
        let desc = if is_static {
            BodyDesc::fixed(pos).with_shape(Shape::cuboid(Vec3::splat(0.5)), mass)
        } else {
            BodyDesc::dynamic(pos).with_shape(Shape::sphere(0.4), mass)
        };
        let i = s.push(&desc);
        if !is_static {
            s.set_linear_velocity(i, Vec3::new(vx, vy, vz));
            s.set_angular_velocity(i, Vec3::new(ax, ay, az));
            s.add_force(i, Vec3::new(az * 3.0, ax * 3.0, ay * 3.0));
            s.add_torque(i, Vec3::new(vy, vz, vx));
        }
    }
    s
}

fn store_bits(s: &BodyStore) -> Vec<u32> {
    let mut out = Vec::with_capacity(s.len() * 13);
    for i in 0..s.len() {
        out.extend(bits(s.position(i)));
        let q = s.rotation(i);
        out.extend([q.w.to_bits(), q.x.to_bits(), q.y.to_bits(), q.z.to_bits()]);
        out.extend(bits(s.linear_velocity(i)));
        out.extend(bits(s.angular_velocity(i)));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The three integrator sweeps (apply-forces, clamp, integrate) at
    /// every width, over body counts 1..=19 so every remainder 1..=7
    /// against both 4- and 8-lane chunks occurs.
    #[test]
    fn integrator_sweeps_are_bit_identical(
        specs in prop::collection::vec(body_spec(), 1..20),
        dt in 0.001f32..0.05,
        gy in -20.0f32..0.0,
    ) {
        let run = |mode: SimdMode| {
            let mut s = build_store(&specs);
            integrator::apply_forces(&mut s, Vec3::new(0.0, gy, 0.0), dt, mode);
            integrator::clamp_velocities(&mut s, 4.0, 2.5, mode);
            integrator::integrate(&mut s, dt, mode);
            store_bits(&s)
        };
        let reference = run(SimdMode::Scalar);
        for mode in wide_modes() {
            prop_assert_eq!(run(mode), reference.clone(), "{} diverged", mode.name());
        }
    }

    /// The PGS row projection over random contact manifolds (normal +
    /// friction rows, static and dynamic counterparts, zero-inv-mass
    /// bodies included).
    #[test]
    fn solver_projection_is_bit_identical(
        va in (-6.0f32..6.0, -6.0f32..6.0, -6.0f32..6.0),
        vb in (-6.0f32..6.0, -6.0f32..6.0, -6.0f32..6.0),
        depth in 0.0f32..0.3,
        friction in 0.0f32..1.5,
        n_points in 1usize..5,
        b_static in any::<bool>(),
        iters in 1usize..40,
    ) {
        let mk_vel = |v: (f32, f32, f32), inv_mass: f32| solver::VelState {
            lin: Vec3::new(v.0, v.1, v.2),
            ang: Vec3::new(v.2 * 0.3, v.0 * 0.3, v.1 * 0.3),
            inv_mass,
            inv_inertia: parallax_math::Mat3::from_diagonal(Vec3::splat(inv_mass * 2.5)),
        };
        let build = || {
            let mut vel = vec![mk_vel(va, 1.0)];
            let lb = if b_static {
                STATIC_BODY
            } else {
                vel.push(mk_vel(vb, 0.5));
                1
            };
            let mut m = ContactManifold::new(GeomId(0), GeomId(1));
            m.friction = friction;
            m.restitution = 0.0;
            for p in 0..n_points {
                m.push(ContactPoint {
                    position: Vec3::new(p as f32 * 0.2, 0.0, 0.0),
                    normal: Vec3::UNIT_Y,
                    depth,
                    feature: p as u32,
                });
            }
            let mut rows = RowSoA::new();
            solver::build_contact_rows(
                &m,
                0,
                lb,
                Vec3::new(0.0, 0.5, 0.0),
                Vec3::new(0.0, -0.5, 0.0),
                &vel,
                &RowParams::default(),
                None,
                &mut rows,
            );
            (rows, vel)
        };
        let run = |mode: SimdMode| {
            let (mut rows, mut vel) = build();
            solver::solve(&mut rows, &mut vel, iters, mode);
            let mut out: Vec<u32> = Vec::new();
            for v in &vel {
                out.extend(bits(v.lin));
                out.extend(bits(v.ang));
            }
            out.extend(rows.lambda.iter().map(|l| l.to_bits()));
            out
        };
        let reference = run(SimdMode::Scalar);
        for mode in wide_modes() {
            prop_assert_eq!(run(mode), reference.clone(), "{} diverged", mode.name());
        }
    }

    /// The cloth Verlet + relaxation kernels over random mesh sizes and
    /// pin sets (vertex counts 4..=63 cover every remainder), including
    /// the scalar collision phase on top.
    #[test]
    fn cloth_step_is_bit_identical(
        nx in 2usize..9,
        nz in 2usize..8,
        pin_mask in any::<u32>(),
        steps in 1usize..5,
        with_collider in any::<bool>(),
    ) {
        let colliders = if with_collider {
            vec![(Shape::sphere(0.45), Transform::from_position(Vec3::new(0.2, -0.3, 0.1)))]
        } else {
            Vec::new()
        };
        let run = |mode: SimdMode| {
            let pins: Vec<usize> = (0..nx * nz).filter(|i| pin_mask & (1 << (i % 32)) != 0).collect();
            let mut c = Cloth::rectangle(Vec3::new(-0.5, 0.4, -0.5), 1.0, 1.0, nx, nz, &pins);
            for _ in 0..steps {
                c.step(Vec3::new(0.0, -10.0, 0.0), 0.01, &colliders, mode);
            }
            c.vertices()
                .iter()
                .flat_map(|v| {
                    let p = bits(v.pos);
                    let q = bits(v.prev);
                    [p[0], p[1], p[2], q[0], q[1], q[2]]
                })
                .collect::<Vec<u32>>()
        };
        let reference = run(SimdMode::Scalar);
        for mode in wide_modes() {
            prop_assert_eq!(run(mode), reference.clone(), "{} diverged", mode.name());
        }
    }
}
