//! Property-based tests for the ParallAX system components.

use parallax::arbiter::HierarchicalArbiter;
use parallax::buffering::offloadable_fraction;
use parallax::fgcore::FgCoreType;
use parallax::schedule::{fg_phase_timing, ControlPacket, DataPacketHeader};
use parallax_archsim::offchip::Link;
use parallax_trace::Kernel;
use proptest::prelude::*;

proptest! {
    #[test]
    fn arbiter_is_work_conserving_and_exclusive(
        cg in 1usize..8,
        fg in 1usize..64,
        demands in prop::collection::vec(0usize..40, 1..8)
    ) {
        let cg = cg.min(demands.len());
        let arb = HierarchicalArbiter::new(cg, fg);
        let demands = &demands[..cg];
        let grants = arb.assign(demands);

        // No FG core granted twice.
        let mut seen = std::collections::HashSet::new();
        for g in &grants {
            for id in g {
                prop_assert!(seen.insert(*id), "double grant {id:?}");
            }
        }
        // No CG core over-served.
        for (c, g) in grants.iter().enumerate() {
            prop_assert!(g.len() <= demands[c], "cg {c} over-served");
        }
        // Work conservation: granted == min(total demand, fg cores).
        let total_demand: usize = demands.iter().sum();
        prop_assert_eq!(seen.len(), total_demand.min(fg));
    }

    #[test]
    fn arbiter_balanced_demand_is_fully_local(cg in 1usize..8, per in 1usize..8) {
        let fg = cg * per;
        let arb = HierarchicalArbiter::new(cg, fg);
        let grants = arb.assign(&vec![per; cg]);
        prop_assert!((arb.locality(&grants) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn control_packet_roundtrips(task in any::<u32>(), ds in any::<u32>(), size in any::<u32>(), iters in any::<u32>(), k in 0u8..5) {
        let p = ControlPacket {
            task_id: task,
            dataset_id: ds,
            data_size: size,
            iteration_count: iters,
            kernel_id: k,
        };
        prop_assert_eq!(ControlPacket::decode(p.encode()), Some(p));
    }

    #[test]
    fn data_header_roundtrips(task in any::<u32>(), ds in any::<u32>()) {
        let h = DataPacketHeader { task_id: task, dataset_id: ds };
        prop_assert_eq!(DataPacketHeader::decode(h.encode()), Some(h));
    }

    #[test]
    fn fg_timing_monotone_in_tasks(tasks in 1usize..5000, extra in 1usize..2000) {
        let a = fg_phase_timing(Kernel::IslandSolver, FgCoreType::Shader, 64, Link::OnChipMesh, tasks);
        let b = fg_phase_timing(Kernel::IslandSolver, FgCoreType::Shader, 64, Link::OnChipMesh, tasks + extra);
        prop_assert!(b.total_cycles >= a.total_cycles);
    }

    #[test]
    fn fg_timing_monotone_in_cores(tasks in 1usize..5000, cores in 1usize..200) {
        let small = fg_phase_timing(Kernel::Cloth, FgCoreType::Console, cores, Link::OnChipMesh, tasks);
        let big = fg_phase_timing(Kernel::Cloth, FgCoreType::Console, cores * 2, Link::OnChipMesh, tasks);
        prop_assert!(big.total_cycles <= small.total_cycles);
    }

    #[test]
    fn fg_timing_looser_link_never_faster(tasks in 1usize..3000) {
        for kernel in Kernel::FG {
            let on = fg_phase_timing(kernel, FgCoreType::Shader, 150, Link::OnChipMesh, tasks);
            let htx = fg_phase_timing(kernel, FgCoreType::Shader, 150, Link::Htx, tasks);
            let pcie = fg_phase_timing(kernel, FgCoreType::Shader, 150, Link::Pcie, tasks);
            prop_assert!(on.total_cycles <= htx.total_cycles, "{kernel:?}");
            prop_assert!(htx.total_cycles <= pcie.total_cycles, "{kernel:?}");
        }
    }

    #[test]
    fn offloadable_fraction_bounds_and_monotone(
        sizes in prop::collection::vec(1usize..3000, 0..40),
        lo in 1usize..100,
        hi in 100usize..3000
    ) {
        let f_lo = offloadable_fraction(&sizes, lo);
        let f_hi = offloadable_fraction(&sizes, hi);
        prop_assert!((0.0..=1.0).contains(&f_lo));
        prop_assert!(f_hi <= f_lo, "raising the filter cannot increase offloadable work");
        prop_assert_eq!(offloadable_fraction(&sizes, 0), if sizes.is_empty() { 0.0 } else { 1.0 });
    }
}
