//! **ParallAX** — the paper's proposed architecture for real-time physics.
//!
//! A set of aggressive coarse-grain (CG) cores with partitioned L2 cache
//! handles the serial and coarse-grain parallel components of physics
//! simulation; a larger pool of simple fine-grain (FG) cores with local
//! memories executes the massively parallel kernels (object pairs, LCP
//! solver iterations, cloth vertices). The key mechanisms reproduced here:
//!
//! * **Hierarchical FG↔CG arbitration** ([`arbiter`]) — FG cores are
//!   logically divided among CG cores; each group's arbiter serves CG
//!   cores in a rotated priority order, balancing locality against full
//!   utilization (paper §7.1).
//! * **Latency-hiding buffering** ([`buffering`]) — how many FG tasks must
//!   be in flight to overlap communication with computation for on-chip
//!   mesh, HTX and PCIe couplings (paper §7.2, Table 7).
//! * **Task-farming protocol** ([`schedule`]) — control/data packets with
//!   task id, data-set id, size, iteration count and kernel id (paper
//!   §7.3).
//! * **FG core candidates and area model** ([`fgcore`], [`area`]) — the
//!   Desktop/Console/Shader/Limit-study cores of Table 6 and the die-area
//!   estimates of §8.2.1.
//! * **Design-space exploration** ([`explore`]) — FG core counts required
//!   to reach 30 FPS (Figure 10b) and end-to-end frame simulation
//!   ([`arch`]).
//!
//! # Examples
//!
//! ```
//! use parallax::fgcore::FgCoreType;
//! use parallax::area;
//!
//! // The paper's headline area comparison (§8.2.1).
//! let desktop = area::pool_area_mm2(FgCoreType::Desktop, 30);
//! let shader = area::pool_area_mm2(FgCoreType::Shader, 150);
//! assert!(shader < desktop / 2.0, "simple cores are the most area-efficient");
//! ```

pub mod arbiter;
pub mod arch;
pub mod area;
pub mod buffering;
pub mod explore;
pub mod fgcore;
pub mod schedule;

pub use arbiter::HierarchicalArbiter;
pub use arch::{ParallaxSystem, SystemResult};
pub use buffering::{tasks_to_hide_latency, HidingReport};
pub use fgcore::FgCoreType;
pub use schedule::{fg_phase_timing, fg_phase_timing_for_phase, FgPhaseTiming};
