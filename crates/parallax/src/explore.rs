//! Design-space exploration: FG core counts required for 30 FPS
//! (paper Figure 10b) and related sweeps.

use parallax_archsim::offchip::Link;
use parallax_physics::{PhaseKind, StepProfile};
use parallax_trace::Kernel;
use serde::{Deserialize, Serialize};

use crate::fgcore::{iterations_per_task, task_profile, FgCoreType};
use crate::schedule::fg_phase_timing;

/// The FG workload of one displayed frame: task counts per FG kernel.
#[derive(Debug, Default, Clone, Copy, Serialize, Deserialize)]
pub struct FgWorkload {
    /// Narrow-phase object pairs.
    pub narrowphase_tasks: usize,
    /// Island-solver DOF iterations.
    pub island_tasks: usize,
    /// Cloth vertices.
    pub cloth_tasks: usize,
}

impl FgWorkload {
    /// Extracts the per-frame FG workload from a window of step profiles.
    pub fn from_profiles(profiles: &[StepProfile]) -> FgWorkload {
        let mut w = FgWorkload::default();
        for p in profiles {
            w.narrowphase_tasks += p.fg_tasks(PhaseKind::Narrowphase);
            w.island_tasks += p.fg_tasks(PhaseKind::IslandProcessing);
            w.cloth_tasks += p.fg_tasks(PhaseKind::Cloth);
        }
        w
    }

    /// (kernel, tasks) pairs.
    pub fn per_kernel(&self) -> [(Kernel, usize); 3] {
        [
            (Kernel::Narrowphase, self.narrowphase_tasks),
            (Kernel::IslandSolver, self.island_tasks),
            (Kernel::Cloth, self.cloth_tasks),
        ]
    }

    /// Total FG instructions in the frame.
    pub fn total_instructions(&self) -> f64 {
        self.per_kernel()
            .iter()
            .map(|(k, n)| task_profile(*k).0 * iterations_per_task(*k) as f64 * *n as f64)
            .sum()
    }
}

/// Cycles available per displayed frame at 30 FPS and 2 GHz.
pub const FRAME_CYCLES: f64 = 2.0e9 / 30.0;

/// FG cores needed assuming pure compute (no communication), given the
/// fraction of frame time available for FG work — the paper's
/// 100%/50%/25%/12.5% bars in Figure 10b.
pub fn cores_required_compute_only(
    core: FgCoreType,
    workload: &FgWorkload,
    budget_fraction: f64,
) -> usize {
    let budget = FRAME_CYCLES * budget_fraction;
    let mut cycles_one_core = 0.0;
    for (kernel, tasks) in workload.per_kernel() {
        let (instr, _) = task_profile(kernel);
        let ipc = core.kernel_ipc(kernel);
        cycles_one_core +=
            tasks as f64 * instr * iterations_per_task(kernel) as f64 / ipc.max(1e-6);
    }
    (cycles_one_core / budget).ceil().max(1.0) as usize
}

/// FG cores needed including interconnect effects — the paper's
/// "Simulated" bars (32% of frame time left by the 4-core CG simulation).
///
/// Searches for the smallest pool that finishes the frame's FG work within
/// the budget, accounting for startup/drain latency and link bandwidth.
pub fn cores_required_simulated(
    core: FgCoreType,
    link: Link,
    workload: &FgWorkload,
    budget_fraction: f64,
) -> Option<usize> {
    let budget = FRAME_CYCLES * budget_fraction;
    let time = |n: usize| -> f64 {
        workload
            .per_kernel()
            .iter()
            .map(|(k, tasks)| fg_phase_timing(*k, core, n, link, *tasks).total_cycles as f64)
            .sum()
    };
    // The workload may be communication-bound and unsatisfiable.
    const MAX_CORES: usize = 100_000;
    if time(MAX_CORES) > budget {
        return None;
    }
    // Binary search the smallest satisfying pool.
    let (mut lo, mut hi) = (1usize, MAX_CORES);
    while lo < hi {
        let mid = (lo + hi) / 2;
        if time(mid) <= budget {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Some(lo)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix_like_workload() -> FgWorkload {
        // Roughly Mix-scale per frame (3 steps).
        FgWorkload {
            narrowphase_tasks: 3 * 16_000,
            island_tasks: 3 * 1_500,
            cloth_tasks: 3 * 2_625,
        }
    }

    #[test]
    fn tighter_budget_needs_more_cores() {
        let w = mix_like_workload();
        let full = cores_required_compute_only(FgCoreType::Shader, &w, 1.0);
        let half = cores_required_compute_only(FgCoreType::Shader, &w, 0.5);
        let eighth = cores_required_compute_only(FgCoreType::Shader, &w, 0.125);
        assert!(full < half && half < eighth, "{full} {half} {eighth}");
        // Roughly inverse-linear.
        assert!((half as f64 / full as f64 - 2.0).abs() < 0.3);
    }

    #[test]
    fn simpler_cores_need_more_of_them() {
        let w = mix_like_workload();
        let d = cores_required_compute_only(FgCoreType::Desktop, &w, 0.32);
        let c = cores_required_compute_only(FgCoreType::Console, &w, 0.32);
        let s = cores_required_compute_only(FgCoreType::Shader, &w, 0.32);
        assert!(d <= c && c <= s, "{d} {c} {s}");
    }

    #[test]
    fn simulated_counts_exceed_compute_only() {
        let w = mix_like_workload();
        for link in Link::ALL {
            let compute = cores_required_compute_only(FgCoreType::Shader, &w, 0.32);
            let simulated =
                cores_required_simulated(FgCoreType::Shader, link, &w, 0.32).expect("satisfiable");
            assert!(
                simulated >= compute,
                "{link:?}: simulated {simulated} < compute-only {compute}"
            );
        }
    }

    #[test]
    fn offchip_needs_no_fewer_cores_than_onchip() {
        let w = mix_like_workload();
        let on = cores_required_simulated(FgCoreType::Shader, Link::OnChipMesh, &w, 0.32).unwrap();
        let htx = cores_required_simulated(FgCoreType::Shader, Link::Htx, &w, 0.32).unwrap();
        let pcie = cores_required_simulated(FgCoreType::Shader, Link::Pcie, &w, 0.32);
        assert!(htx >= on);
        if let Some(p) = pcie {
            assert!(p >= htx);
        }
    }

    #[test]
    fn workload_extraction_counts_tasks() {
        let mut p = StepProfile::default();
        p.pairs.push(parallax_physics::probe::PairWork {
            geom_a: 0,
            geom_b: 1,
            body_a: 0,
            body_b: 1,
            shape_a: "sphere",
            shape_b: "sphere",
            contacts: 1,
            active: true,
        });
        let w = FgWorkload::from_profiles(&[p.clone(), p]);
        assert_eq!(w.narrowphase_tasks, 2);
        assert!(w.total_instructions() > 0.0);
    }
}
