//! Task farming: the CG→FG protocol (paper §7.3) and the FG pipeline
//! timing model.
//!
//! "The hand-shaking between CG and FG cores for data transfers will be
//! similar to network protocols using control and data packets. The
//! control packet includes task id (unique), data-set id (unique per task
//! id), data size, iteration count, and kernel id. Each data packet's
//! header includes task id and data-set id."

use parallax_archsim::offchip::Link;
use parallax_physics::PhaseKind;
use parallax_trace::Kernel;
use serde::{Deserialize, Serialize};

use crate::fgcore::{iterations_per_task, task_profile, FgCoreType};

/// A control packet announcing an FG task batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ControlPacket {
    /// Unique task id (identifies the submitting CG thread).
    pub task_id: u32,
    /// Data-set id, unique per task id (identifies the FG core).
    pub dataset_id: u32,
    /// Payload size in bytes.
    pub data_size: u32,
    /// Kernel iterations to execute.
    pub iteration_count: u32,
    /// Which kernel to run (kernel code already resides in FG cores).
    pub kernel_id: u8,
}

impl ControlPacket {
    /// Serialized size in bytes.
    pub const WIRE_BYTES: usize = 17;

    /// Encodes the packet (big-endian fields, in declaration order).
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(Self::WIRE_BYTES);
        b.extend_from_slice(&self.task_id.to_be_bytes());
        b.extend_from_slice(&self.dataset_id.to_be_bytes());
        b.extend_from_slice(&self.data_size.to_be_bytes());
        b.extend_from_slice(&self.iteration_count.to_be_bytes());
        b.push(self.kernel_id);
        b
    }

    /// Decodes a packet.
    ///
    /// # Errors
    ///
    /// Returns `None` when the buffer is too short.
    pub fn decode(buf: impl AsRef<[u8]>) -> Option<ControlPacket> {
        let buf = buf.as_ref();
        if buf.len() < Self::WIRE_BYTES {
            return None;
        }
        let u32_at = |i: usize| u32::from_be_bytes(buf[i..i + 4].try_into().unwrap());
        Some(ControlPacket {
            task_id: u32_at(0),
            dataset_id: u32_at(4),
            data_size: u32_at(8),
            iteration_count: u32_at(12),
            kernel_id: buf[16],
        })
    }

    /// Kernel id for a [`Kernel`].
    pub fn kernel_id_of(kernel: Kernel) -> u8 {
        match kernel {
            Kernel::Narrowphase => 0,
            Kernel::IslandSolver => 1,
            Kernel::Cloth => 2,
            Kernel::Broadphase => 3,
            Kernel::IslandCreation => 4,
        }
    }
}

/// A data packet header (payload follows on the wire).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataPacketHeader {
    /// Task id this payload belongs to.
    pub task_id: u32,
    /// Data-set id (FG core).
    pub dataset_id: u32,
}

impl DataPacketHeader {
    /// Serialized size in bytes.
    pub const WIRE_BYTES: usize = 8;

    /// Encodes the header (big-endian fields, in declaration order).
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(Self::WIRE_BYTES);
        b.extend_from_slice(&self.task_id.to_be_bytes());
        b.extend_from_slice(&self.dataset_id.to_be_bytes());
        b
    }

    /// Decodes a header; `None` when too short.
    pub fn decode(buf: impl AsRef<[u8]>) -> Option<DataPacketHeader> {
        let buf = buf.as_ref();
        if buf.len() < Self::WIRE_BYTES {
            return None;
        }
        Some(DataPacketHeader {
            task_id: u32::from_be_bytes(buf[0..4].try_into().unwrap()),
            dataset_id: u32::from_be_bytes(buf[4..8].try_into().unwrap()),
        })
    }
}

/// Timing of one FG phase execution.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FgPhaseTiming {
    /// Total cycles from first transfer to last result.
    pub total_cycles: u64,
    /// Pure compute cycles on the critical FG core.
    pub compute_cycles: u64,
    /// Cycles where communication was exposed (not overlapped).
    pub exposed_comm_cycles: u64,
    /// Whether communication was fully hidden behind computation (other
    /// than the unavoidable startup/drain).
    pub hidden: bool,
}

/// Pipelined FG execution time for `tasks` tasks of `kernel` on a pool of
/// `count` cores of type `core` coupled via `link`.
///
/// Model (paper §7.2): tasks stream to the cores; task *i* on a core can
/// start once it has arrived and the previous task finished. For off-chip
/// links the single link serializes all cores' transfers; the on-chip mesh
/// provides per-core link bandwidth.
///
/// `total = max(rounds × c, L + T_ser) + L` where `rounds = ⌈tasks /
/// count⌉`, `c` is per-task compute, `T_ser` is total serialization seen
/// by the bottleneck resource, and the trailing `L` is result drain.
pub fn fg_phase_timing(
    kernel: Kernel,
    core: FgCoreType,
    count: usize,
    link: Link,
    tasks: usize,
) -> FgPhaseTiming {
    if tasks == 0 || count == 0 {
        return FgPhaseTiming {
            total_cycles: 0,
            compute_cycles: 0,
            exposed_comm_cycles: 0,
            hidden: true,
        };
    }
    let (instr, bytes) = task_profile(kernel);
    let ipc = core.kernel_ipc(kernel);
    // A task's data transfers once but is iterated over multiple times
    // (20 solver sweeps / 8 cloth relaxations) while FG-resident.
    let c = instr * iterations_per_task(kernel) as f64 / ipc.max(1e-6);
    let bw = link.bandwidth_bytes_per_sec() / 2.0e9; // bytes per cycle
    let s = bytes / bw;
    let latency = link.latency_cycles() as f64;
    let rounds = tasks.div_ceil(count) as f64;

    let ser_total = match link {
        // Mesh: transfers distribute over per-core links.
        Link::OnChipMesh => rounds * s,
        // A single shared off-chip link carries every task's data.
        Link::Htx | Link::Pcie => tasks as f64 * s,
    };
    let compute = rounds * c;
    let arrive_last = latency + ser_total;
    let busy = compute.max(arrive_last);
    let total = busy + latency; // result drain
    FgPhaseTiming {
        total_cycles: total.ceil() as u64,
        compute_cycles: compute.ceil() as u64,
        exposed_comm_cycles: (busy - compute).max(0.0).ceil() as u64,
        hidden: arrive_last <= compute + latency,
    }
}

/// [`fg_phase_timing`] keyed by the engine's phase enumeration instead of
/// the kernel: resolves the stage's kernel via [`Kernel::of_phase`], so
/// schedulers driving the pipeline stages don't need their own mapping.
pub fn fg_phase_timing_for_phase(
    phase: PhaseKind,
    core: FgCoreType,
    count: usize,
    link: Link,
    tasks: usize,
) -> FgPhaseTiming {
    fg_phase_timing(Kernel::of_phase(phase), core, count, link, tasks)
}

/// CG-side overhead instructions for dispatching one FG task: data
/// packing before send, scattering on return, queue management.
pub const CG_DISPATCH_INSTR: u64 = 90;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_packet_roundtrip() {
        let p = ControlPacket {
            task_id: 7,
            dataset_id: 42,
            data_size: 1668,
            iteration_count: 100,
            kernel_id: ControlPacket::kernel_id_of(Kernel::Narrowphase),
        };
        let decoded = ControlPacket::decode(p.encode()).expect("roundtrip");
        assert_eq!(decoded, p);
    }

    #[test]
    fn data_header_roundtrip() {
        let h = DataPacketHeader {
            task_id: 1,
            dataset_id: 2,
        };
        assert_eq!(DataPacketHeader::decode(h.encode()), Some(h));
    }

    #[test]
    fn short_buffers_rejected() {
        assert!(ControlPacket::decode([0u8; 4]).is_none());
        assert!(DataPacketHeader::decode([0u8; 4]).is_none());
    }

    #[test]
    fn onchip_narrowphase_hides_communication() {
        let t = fg_phase_timing(
            Kernel::Narrowphase,
            FgCoreType::Shader,
            150,
            Link::OnChipMesh,
            3000,
        );
        assert!(t.hidden, "{t:?}");
        assert_eq!(t.exposed_comm_cycles, 0);
    }

    #[test]
    fn huge_pcie_pool_saturates_the_link() {
        // With enough cores pulling tasks, the shared 4 GB/s link becomes
        // the bottleneck and communication is exposed.
        let t = fg_phase_timing(
            Kernel::Narrowphase,
            FgCoreType::Shader,
            4000,
            Link::Pcie,
            40_000,
        );
        assert!(!t.hidden, "{t:?}");
        assert!(t.exposed_comm_cycles > 0);
        // The on-chip mesh with per-core links stays hidden.
        let m = fg_phase_timing(
            Kernel::Narrowphase,
            FgCoreType::Shader,
            4000,
            Link::OnChipMesh,
            40_000,
        );
        assert!(m.hidden, "{m:?}");
    }

    #[test]
    fn more_cores_reduce_time_until_comm_bound() {
        let t50 = fg_phase_timing(
            Kernel::IslandSolver,
            FgCoreType::Shader,
            50,
            Link::OnChipMesh,
            10_000,
        );
        let t150 = fg_phase_timing(
            Kernel::IslandSolver,
            FgCoreType::Shader,
            150,
            Link::OnChipMesh,
            10_000,
        );
        assert!(t150.total_cycles < t50.total_cycles);
    }

    #[test]
    fn phase_keyed_timing_matches_kernel_keyed() {
        for phase in PhaseKind::ALL {
            let by_phase =
                fg_phase_timing_for_phase(phase, FgCoreType::Shader, 150, Link::OnChipMesh, 3000);
            let by_kernel = fg_phase_timing(
                Kernel::of_phase(phase),
                FgCoreType::Shader,
                150,
                Link::OnChipMesh,
                3000,
            );
            assert_eq!(by_phase.total_cycles, by_kernel.total_cycles);
            assert_eq!(by_phase.compute_cycles, by_kernel.compute_cycles);
        }
    }

    #[test]
    fn zero_tasks_cost_nothing() {
        let t = fg_phase_timing(Kernel::Cloth, FgCoreType::Console, 43, Link::Htx, 0);
        assert_eq!(t.total_cycles, 0);
    }
}
