//! Hierarchical FG↔CG arbitration (paper §7.1).
//!
//! "We logically divide the FG cores evenly among the CG cores. Each of
//! these sets of FG cores is controlled by an arbiter. The arbiter assigns
//! tasks to FG cores from CG cores in a priority ordering — a different CG
//! core has priority on each arbiter. … If the top-priority CG core for
//! that arbiter no longer has any tasks to map to FG cores, or there are
//! idle FG cores for that arbiter, the arbiter will check the next CG core
//! on its priority list."

use serde::{Deserialize, Serialize};

/// Identifier of a fine-grain core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FgId(pub u32);

/// One arbiter's group of FG cores with its CG priority rotation.
#[derive(Debug, Clone)]
struct Group {
    fg_cores: Vec<FgId>,
    /// CG core indices in priority order (rotated per group).
    priority: Vec<usize>,
}

/// The hierarchical arbiter.
///
/// # Examples
///
/// ```
/// use parallax::arbiter::HierarchicalArbiter;
///
/// let arb = HierarchicalArbiter::new(4, 16);
/// // Balanced demand: each CG core receives its local group of 4.
/// let assign = arb.assign(&[4, 4, 4, 4]);
/// assert!(assign.iter().all(|a| a.len() == 4));
///
/// // One hot CG core: it can use every FG core.
/// let assign = arb.assign(&[16, 0, 0, 0]);
/// assert_eq!(assign[0].len(), 16);
/// ```
#[derive(Debug, Clone)]
pub struct HierarchicalArbiter {
    groups: Vec<Group>,
    cg_cores: usize,
    fg_cores: usize,
}

impl HierarchicalArbiter {
    /// Builds the arbiter for `cg_cores` CG cores and `fg_cores` FG cores.
    ///
    /// FG cores are divided into `cg_cores` near-even groups; group `g`'s
    /// priority list is the CG cores rotated by `g` so that each CG core
    /// is top priority on exactly one arbiter (when counts match).
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    pub fn new(cg_cores: usize, fg_cores: usize) -> HierarchicalArbiter {
        assert!(cg_cores > 0 && fg_cores > 0, "need at least one of each");
        let mut groups = Vec::with_capacity(cg_cores);
        let mut next = 0u32;
        for g in 0..cg_cores {
            // Near-even split: earlier groups get the remainder.
            let base = fg_cores / cg_cores;
            let extra = usize::from(g < fg_cores % cg_cores);
            let count = base + extra;
            let fg: Vec<FgId> = (0..count)
                .map(|_| {
                    let id = FgId(next);
                    next += 1;
                    id
                })
                .collect();
            let priority: Vec<usize> = (0..cg_cores).map(|i| (g + i) % cg_cores).collect();
            groups.push(Group {
                fg_cores: fg,
                priority,
            });
        }
        HierarchicalArbiter {
            groups,
            cg_cores,
            fg_cores,
        }
    }

    /// Number of CG cores.
    pub fn cg_cores(&self) -> usize {
        self.cg_cores
    }

    /// Number of FG cores.
    pub fn fg_cores(&self) -> usize {
        self.fg_cores
    }

    /// Assigns FG cores given each CG core's outstanding FG-task demand
    /// (`demands[c]` = tasks CG core `c` wants to farm out).
    ///
    /// Returns, per CG core, the FG cores granted to it this round. The
    /// allocation is work-conserving (no FG core idles while any demand
    /// is unmet) and locality-preferring (balanced demand ⇒ each CG core
    /// gets its own group).
    pub fn assign(&self, demands: &[usize]) -> Vec<Vec<FgId>> {
        assert_eq!(demands.len(), self.cg_cores, "one demand per CG core");
        let mut remaining: Vec<usize> = demands.to_vec();
        let mut granted: Vec<Vec<FgId>> = vec![Vec::new(); self.cg_cores];
        for group in &self.groups {
            let mut free = group.fg_cores.iter().copied();
            'cg: for &cg in &group.priority {
                while remaining[cg] > 0 {
                    match free.next() {
                        Some(fg) => {
                            granted[cg].push(fg);
                            remaining[cg] -= 1;
                        }
                        None => break 'cg,
                    }
                }
            }
        }
        granted
    }

    /// Locality score of an assignment: fraction of granted FG cores that
    /// came from the granting CG core's own group (1.0 = perfect
    /// locality).
    pub fn locality(&self, assignment: &[Vec<FgId>]) -> f64 {
        let mut local = 0usize;
        let mut total = 0usize;
        for (cg, fgs) in assignment.iter().enumerate() {
            for fg in fgs {
                total += 1;
                if self.group_of(*fg) == cg {
                    local += 1;
                }
            }
        }
        if total == 0 {
            1.0
        } else {
            local as f64 / total as f64
        }
    }

    /// Which group (arbiter) an FG core belongs to.
    pub fn group_of(&self, fg: FgId) -> usize {
        self.groups
            .iter()
            .position(|g| g.fg_cores.contains(&fg))
            .expect("fg id out of range")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_demand_gets_local_groups() {
        let arb = HierarchicalArbiter::new(4, 32);
        let a = arb.assign(&[8, 8, 8, 8]);
        assert!(a.iter().all(|v| v.len() == 8));
        assert!(
            (arb.locality(&a) - 1.0).abs() < 1e-9,
            "balanced demand must be fully local"
        );
    }

    #[test]
    fn single_hot_core_is_work_conserving() {
        let arb = HierarchicalArbiter::new(4, 32);
        let a = arb.assign(&[100, 0, 0, 0]);
        assert_eq!(a[0].len(), 32, "one CG core can utilize all FG cores");
    }

    #[test]
    fn no_fg_core_double_granted() {
        let arb = HierarchicalArbiter::new(4, 30);
        let a = arb.assign(&[10, 3, 20, 7]);
        let mut seen = std::collections::HashSet::new();
        for fgs in &a {
            for fg in fgs {
                assert!(seen.insert(*fg), "core {fg:?} granted twice");
            }
        }
        // All 30 cores granted (total demand 40 > 30).
        assert_eq!(seen.len(), 30);
    }

    #[test]
    fn uneven_split_covers_all_cores() {
        let arb = HierarchicalArbiter::new(4, 30);
        let a = arb.assign(&[30, 30, 30, 30]);
        let total: usize = a.iter().map(|v| v.len()).sum();
        assert_eq!(total, 30);
        // Groups are 8, 8, 7, 7.
        assert!(a.iter().all(|v| v.len() >= 7));
    }

    #[test]
    fn underloaded_system_spills_to_neighbors() {
        // Two CG cores busy, two idle: busy cores should also get the idle
        // groups' FG cores.
        let arb = HierarchicalArbiter::new(4, 32);
        let a = arb.assign(&[16, 16, 0, 0]);
        assert_eq!(a[0].len() + a[1].len(), 32);
        assert!(a[0].len() >= 8 && a[1].len() >= 8);
    }

    #[test]
    fn partial_demand_leaves_cores_idle() {
        let arb = HierarchicalArbiter::new(2, 10);
        let a = arb.assign(&[2, 3]);
        assert_eq!(a[0].len(), 2);
        assert_eq!(a[1].len(), 3);
    }

    #[test]
    #[should_panic(expected = "one demand per CG core")]
    fn wrong_demand_length_panics() {
        let arb = HierarchicalArbiter::new(2, 4);
        let _ = arb.assign(&[1, 2, 3]);
    }
}
