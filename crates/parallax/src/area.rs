//! Die-area model (paper §8.2.1, 90 nm).
//!
//! Per-core areas are calibrated so that the paper's three pool sizes
//! reproduce its published totals: 30 desktop cores = 1,388 mm², 43
//! console cores = 926 mm², 150 shader cores = 591 mm² — each including
//! the Polaris-derived 2-D-mesh interconnect area.

use crate::fgcore::FgCoreType;

/// Area of one core in mm² at 90 nm (logic + L1/local store).
pub fn core_area_mm2(core: FgCoreType) -> f64 {
    match core {
        FgCoreType::Desktop => 44.27,
        FgCoreType::Console => 19.53,
        FgCoreType::Shader => 1.94,
        // Hypothetical: quadratic growth of scheduling structures makes
        // the limit-study core enormous (never deployed; for ablations).
        FgCoreType::LimitStudy => 350.0,
    }
}

/// Mesh router + link area per tile in mm² (Polaris Table III, 90 nm).
pub const ROUTER_AREA_MM2: f64 = 2.0;

/// Total area of an `n`-core FG pool including its mesh interconnect.
pub fn pool_area_mm2(core: FgCoreType, n: usize) -> f64 {
    n as f64 * (core_area_mm2(core) + ROUTER_AREA_MM2)
}

/// Area overhead of statically mapping FG cores to CG cores instead of
/// the flexible dynamic arbitration (paper: "statically mapping GPU
/// shaders only to particular CG cores will require 34% more area").
///
/// With static mapping, each CG core's private pool must be sized for its
/// *worst-case* load rather than the average; for `cg_cores` CG cores with
/// the paper's observed imbalance this needs ~`imbalance` × more FG cores.
pub fn static_mapping_overhead(dynamic_cores: usize, imbalance: f64) -> usize {
    (dynamic_cores as f64 * imbalance).ceil() as usize
}

/// The imbalance factor observed for the physics workload (yields the
/// paper's 34% figure).
pub const STATIC_IMBALANCE: f64 = 1.34;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_areas_match_paper() {
        let d = pool_area_mm2(FgCoreType::Desktop, 30);
        let c = pool_area_mm2(FgCoreType::Console, 43);
        let s = pool_area_mm2(FgCoreType::Shader, 150);
        assert!((d - 1388.0).abs() < 10.0, "desktop pool {d}");
        assert!((c - 926.0).abs() < 10.0, "console pool {c}");
        assert!((s - 591.0).abs() < 10.0, "shader pool {s}");
    }

    #[test]
    fn shader_pool_is_most_area_efficient() {
        // Same performance target, least area.
        let d = pool_area_mm2(FgCoreType::Desktop, 30);
        let c = pool_area_mm2(FgCoreType::Console, 43);
        let s = pool_area_mm2(FgCoreType::Shader, 150);
        assert!(s < c && c < d);
    }

    #[test]
    fn static_mapping_costs_34_percent() {
        let dynamic = 150;
        let static_cores = static_mapping_overhead(dynamic, STATIC_IMBALANCE);
        let overhead = pool_area_mm2(FgCoreType::Shader, static_cores)
            / pool_area_mm2(FgCoreType::Shader, dynamic);
        assert!((overhead - 1.34).abs() < 0.02, "overhead {overhead}");
    }
}
