//! Fine-grain core candidates (paper Table 6) and their kernel execution
//! characteristics.

use parallax_archsim::config::CoreConfig;
use parallax_archsim::core::CoreModel;
use parallax_trace::{Kernel, OpCounts, TaskTrace};
use serde::{Deserialize, Serialize};

/// The four FG core design points of paper Table 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FgCoreType {
    /// Intel-Core-Duo-class 4-wide out-of-order core.
    Desktop,
    /// IBM-Cell-class 2-wide core.
    Console,
    /// GPU-shader-class scalar core.
    Shader,
    /// Unrealistically aggressive ILP limit study.
    LimitStudy,
}

impl FgCoreType {
    /// The three realistic candidates plus the limit study, paper order.
    pub const ALL: [FgCoreType; 4] = [
        FgCoreType::Desktop,
        FgCoreType::Console,
        FgCoreType::Shader,
        FgCoreType::LimitStudy,
    ];

    /// The realistic candidates considered for deployment.
    pub const REALISTIC: [FgCoreType; 3] =
        [FgCoreType::Desktop, FgCoreType::Console, FgCoreType::Shader];

    /// Microarchitectural configuration.
    pub fn config(self) -> CoreConfig {
        match self {
            FgCoreType::Desktop => CoreConfig::desktop(),
            FgCoreType::Console => CoreConfig::console(),
            FgCoreType::Shader => CoreConfig::shader(),
            FgCoreType::LimitStudy => CoreConfig::limit_study(),
        }
    }

    /// Display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        self.config().name
    }

    /// Effective IPC on a kernel, assuming FG-resident data (all memory
    /// requests "hit in single-cycle local memory", paper §8.2).
    ///
    /// Memoized: the first call per (core, kernel) runs the YAGS
    /// mispredict simulation; later calls are table lookups.
    pub fn kernel_ipc(self, kernel: Kernel) -> f64 {
        use std::sync::{Mutex, OnceLock};
        static CACHE: OnceLock<Mutex<std::collections::HashMap<(FgCoreType, Kernel), f64>>> =
            OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(std::collections::HashMap::new()));
        if let Some(&ipc) = cache.lock().expect("ipc cache").get(&(self, kernel)) {
            return ipc;
        }
        let mut model = CoreModel::new(self.config());
        let task = TaskTrace {
            ops: representative_ops(kernel),
            reads: vec![],
            writes: vec![],
            fg_subtasks: 1,
        };
        let ipc = model.effective_ipc(&task, kernel, 0);
        cache.lock().expect("ipc cache").insert((self, kernel), ipc);
        ipc
    }
}

/// A large representative workload of the kernel's natural mix, used to
/// measure steady-state IPC (Figure 10a).
pub fn representative_ops(kernel: Kernel) -> OpCounts {
    use parallax_trace::kernels::KernelModel;
    let unit = match kernel {
        Kernel::Narrowphase => KernelModel::narrowphase_pair("box", "box", 2),
        Kernel::IslandSolver => KernelModel::island_solver(50, 20, 10),
        Kernel::Cloth => KernelModel::cloth(625, 5_000, 200),
        Kernel::Broadphase => KernelModel::broadphase(1_000, 10_000, 3_000),
        Kernel::IslandCreation => KernelModel::island_creation(1_000, 500, 1_500),
    };
    unit.scaled((1_000_000 / unit.total().max(1)).max(1))
}

/// Per-FG-task workload sizes used by the buffering and exploration
/// models: (instructions per task, unique bytes moved per task).
///
/// Derived from the paper's §8.1.2 measurements (unique data per 100
/// iterations: 1,668/604/376 B read and 100/128/308 B written).
pub fn task_profile(kernel: Kernel) -> (f64, f64) {
    match kernel {
        // One object pair (×6 ODE-cost calibration, see
        // `parallax_trace::kernels`).
        Kernel::Narrowphase => (3_100.0, 17.7),
        // One LCP solver row relaxation for ONE iteration (the task's
        // data stays FG-resident across the solver's 20 iterations).
        Kernel::IslandSolver => (230.0, 7.3),
        // One cloth vertex update for ONE relaxation iteration.
        Kernel::Cloth => (6_700.0, 6.8),
        // Serial phases have no FG tasks; give whole-phase placeholders.
        Kernel::Broadphase | Kernel::IslandCreation => (0.0, 0.0),
    }
}

/// Sequential iterations each FG task executes over its resident data
/// (the paper's ∆t uses 20 solver iterations and our cloth uses 8
/// relaxation passes). Data transfers once; compute repeats.
pub fn iterations_per_task(kernel: Kernel) -> u64 {
    match kernel {
        Kernel::IslandSolver => 20,
        Kernel::Cloth => 8,
        _ => 1,
    }
}

/// Local instruction memory needed to hold all three kernels (paper
/// §8.1.2: 2.7 KB with 32-bit instructions).
pub fn kernel_code_bytes() -> usize {
    Kernel::FG.iter().map(|k| k.static_instructions() * 4).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_code_fits_in_2_7_kb() {
        let bytes = kernel_code_bytes();
        assert_eq!(bytes, (277 + 177 + 221) * 4);
        assert!(bytes <= 2_700, "paper: 2.7KB for 32-bit instructions");
    }

    #[test]
    fn ipc_ordering_island_kernel() {
        let d = FgCoreType::Desktop.kernel_ipc(Kernel::IslandSolver);
        let c = FgCoreType::Console.kernel_ipc(Kernel::IslandSolver);
        let s = FgCoreType::Shader.kernel_ipc(Kernel::IslandSolver);
        let l = FgCoreType::LimitStudy.kernel_ipc(Kernel::IslandSolver);
        assert!(l > 4.0, "limit study island IPC {l}");
        assert!(d > c && c > s, "d={d} c={c} s={s}");
    }

    #[test]
    fn narrowphase_best_on_modest_cores() {
        let d = FgCoreType::Desktop.kernel_ipc(Kernel::Narrowphase);
        let l = FgCoreType::LimitStudy.kernel_ipc(Kernel::Narrowphase);
        assert!(l < d, "narrowphase degrades with more resources");
    }

    #[test]
    fn task_profiles_are_positive_for_fg_kernels() {
        for k in Kernel::FG {
            let (instr, bytes) = task_profile(k);
            assert!(instr > 0.0 && bytes > 0.0, "{k:?}");
        }
    }
}
