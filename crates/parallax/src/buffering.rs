//! Latency-hiding buffering analysis (paper §7.2, §8.2.2, Table 7).
//!
//! "The more tasks that are sent to each FG core at once, the more
//! potential communication latency we can hide, and the looser we can
//! make the coupling between CG and FG cores."
//!
//! A core that has `n` tasks buffered computes for `n × c` cycles while
//! the next batch transfers (`L + n × s` cycles: link latency plus
//! serialization). Communication is fully hidden when `n·c ≥ L + n·s`,
//! i.e. `n ≥ L / (c − s)` — impossible when a task's serialization time
//! exceeds its compute time.

use parallax_archsim::offchip::Link;
use parallax_trace::Kernel;
use serde::{Deserialize, Serialize};

use crate::fgcore::{task_profile, FgCoreType};

/// Result of the hiding analysis for one (kernel, core, link) point.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct HidingReport {
    /// Tasks that must be buffered per FG core.
    pub tasks_per_core: Option<u64>,
    /// Total in-flight tasks for a pool of the given size.
    pub total_tasks: Option<u64>,
    /// Bytes of local buffering needed per core.
    pub buffer_bytes_per_core: Option<u64>,
    /// Per-task compute cycles on this core.
    pub compute_per_task: f64,
    /// Per-task serialization cycles on this link.
    pub ser_per_task: f64,
}

/// Computes the buffering requirement for `pool_size` FG cores of type
/// `core` running `kernel` over `link`.
///
/// Returns `tasks_per_core = None` when hiding is impossible (per-task
/// transfer time exceeds per-task compute time).
pub fn tasks_to_hide_latency(
    kernel: Kernel,
    core: FgCoreType,
    link: Link,
    pool_size: usize,
) -> HidingReport {
    let (instr, bytes) = task_profile(kernel);
    let ipc = core.kernel_ipc(kernel);
    // Only the task's FIRST iteration can overlap its own transfer, so
    // buffering is sized against single-iteration compute.
    let compute = instr / ipc.max(1e-6);
    let bw_bytes_per_cycle = link.bandwidth_bytes_per_sec() / 2.0e9;
    let ser = bytes / bw_bytes_per_cycle;
    let latency = link.latency_cycles() as f64;

    if compute <= ser || instr == 0.0 {
        return HidingReport {
            tasks_per_core: None,
            total_tasks: None,
            buffer_bytes_per_core: None,
            compute_per_task: compute,
            ser_per_task: ser,
        };
    }
    let per_core = (latency / (compute - ser)).ceil().max(1.0) as u64;
    HidingReport {
        tasks_per_core: Some(per_core),
        total_tasks: Some(per_core * pool_size as u64),
        buffer_bytes_per_core: Some((per_core as f64 * bytes).ceil() as u64),
        compute_per_task: compute,
        ser_per_task: ser,
    }
}

/// The paper's pool sizes per core type (from Figure 10b's simulated
/// column: 30 desktop, 43 console, 150 shader).
pub fn paper_pool_size(core: FgCoreType) -> usize {
    match core {
        FgCoreType::Desktop => 30,
        FgCoreType::Console => 43,
        FgCoreType::Shader => 150,
        FgCoreType::LimitStudy => 8,
    }
}

/// §8.2.2 feasibility: fraction of a phase's FG work that can be offloaded
/// when only work units with at least `min_tasks` parallel FG tasks can
/// hide the link latency.
///
/// `unit_sizes` holds the FG-task count of every independent work unit
/// (islands or cloths) in a step.
pub fn offloadable_fraction(unit_sizes: &[usize], min_tasks: usize) -> f64 {
    let total: usize = unit_sizes.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let offloadable: usize = unit_sizes.iter().filter(|&&s| s >= min_tasks).sum();
    offloadable as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn narrowphase_hides_with_minimal_buffering() {
        // Narrowphase tasks are big: one buffered task per core suffices
        // on-chip (paper Table 7: counts equal the pool size).
        let r = tasks_to_hide_latency(
            Kernel::Narrowphase,
            FgCoreType::Desktop,
            Link::OnChipMesh,
            30,
        );
        assert_eq!(r.tasks_per_core, Some(1));
        assert_eq!(r.total_tasks, Some(30));
    }

    #[test]
    fn island_needs_more_buffering_than_narrowphase() {
        for link in Link::ALL {
            let nw = tasks_to_hide_latency(Kernel::Narrowphase, FgCoreType::Desktop, link, 30);
            let is = tasks_to_hide_latency(Kernel::IslandSolver, FgCoreType::Desktop, link, 30);
            assert!(
                is.total_tasks.unwrap() >= nw.total_tasks.unwrap(),
                "{link:?}: island {:?} vs narrowphase {:?}",
                is.total_tasks,
                nw.total_tasks
            );
        }
    }

    #[test]
    fn looser_coupling_needs_more_tasks() {
        for k in Kernel::FG {
            let on = tasks_to_hide_latency(k, FgCoreType::Shader, Link::OnChipMesh, 150);
            let htx = tasks_to_hide_latency(k, FgCoreType::Shader, Link::Htx, 150);
            let pcie = tasks_to_hide_latency(k, FgCoreType::Shader, Link::Pcie, 150);
            let (a, b, c) = (
                on.total_tasks.unwrap(),
                htx.total_tasks.unwrap(),
                pcie.total_tasks.unwrap(),
            );
            assert!(a <= b && b <= c, "{k:?}: {a} {b} {c}");
        }
    }

    #[test]
    fn buffer_fits_in_2kb_for_onchip_and_htx() {
        // Paper: "2KB of local storage is enough to buffer the minimum
        // amount of data to hide communication latency for all cases"
        // (on-chip and HTX).
        for core in FgCoreType::REALISTIC {
            for k in Kernel::FG {
                for link in [Link::OnChipMesh, Link::Htx] {
                    let r = tasks_to_hide_latency(k, core, link, paper_pool_size(core));
                    let b = r.buffer_bytes_per_core.expect("hidable");
                    assert!(b <= 2048, "{core:?}/{k:?}/{link:?}: {b} B");
                }
            }
        }
    }

    #[test]
    fn offloadable_fraction_filters_small_units() {
        // Islands of sizes 5, 30, 100: with a 25-task minimum, 130 of 135
        // tasks remain offloadable.
        let f = offloadable_fraction(&[5, 30, 100], 25);
        assert!((f - 130.0 / 135.0).abs() < 1e-9);
        assert_eq!(offloadable_fraction(&[], 10), 0.0);
        assert_eq!(offloadable_fraction(&[5, 5], 10), 0.0);
        assert_eq!(offloadable_fraction(&[50], 10), 1.0);
    }
}
