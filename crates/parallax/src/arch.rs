//! The full ParallAX system model: CG cores + partitioned L2 + FG pool
//! (paper Figure 8), simulated end-to-end from physics step profiles.

use std::sync::OnceLock;

use parallax_archsim::config::{L2Config, MachineConfig};
use parallax_archsim::multicore::{kernel_of, MulticoreSim, SimOptions};
use parallax_archsim::offchip::Link;
use parallax_physics::{PhaseKind, StepProfile};
use parallax_telemetry as telemetry;
use parallax_trace::kernels::KernelModel;
use parallax_trace::{OpCounts, StepTrace};
use serde::{Deserialize, Serialize};

/// Telemetry for the full-system model: FG-pool utilization (via the
/// hierarchical arbiter) and the CG/FG cycle split, flushed per step.
struct SysMetrics {
    steps: telemetry::Counter,
    fg_tasks: telemetry::Counter,
    fg_cores_granted: telemetry::Counter,
    fg_occupancy_pct: telemetry::Gauge,
    arbiter_queue_depth: telemetry::Gauge,
    fg_cycles: telemetry::Counter,
    cg_parallel_cycles: telemetry::Counter,
    serial_cycles: telemetry::Counter,
    exposed_comm_cycles: telemetry::Counter,
}

fn sys_metrics() -> &'static SysMetrics {
    static M: OnceLock<SysMetrics> = OnceLock::new();
    M.get_or_init(|| SysMetrics {
        steps: telemetry::counter("parallax.steps"),
        fg_tasks: telemetry::counter("parallax.fg_tasks"),
        fg_cores_granted: telemetry::counter("parallax.fg_cores_granted"),
        fg_occupancy_pct: telemetry::gauge("parallax.fg_occupancy_pct"),
        arbiter_queue_depth: telemetry::gauge("parallax.arbiter_queue_depth"),
        fg_cycles: telemetry::counter("parallax.fg_cycles"),
        cg_parallel_cycles: telemetry::counter("parallax.cg_parallel_cycles"),
        serial_cycles: telemetry::counter("parallax.serial_cycles"),
        exposed_comm_cycles: telemetry::counter("parallax.exposed_comm_cycles"),
    })
}

use crate::arbiter::HierarchicalArbiter;
use crate::fgcore::FgCoreType;
use crate::schedule::{fg_phase_timing, CG_DISPATCH_INSTR};

/// Result of simulating a window of steps on a ParallAX system.
#[derive(Debug, Default, Clone, Copy, Serialize, Deserialize)]
pub struct SystemResult {
    /// Per-phase cycles in [`PhaseKind::ALL`] order (CG and FG parts
    /// overlapped: each entry is the phase's critical path).
    pub per_phase: [u64; 5],
    /// Serial-phase cycles (Broadphase + Island Creation, on one CG core).
    pub serial_cycles: u64,
    /// CG-side cycles spent in the parallel phases (setup + packing +
    /// dispatch).
    pub cg_parallel_cycles: u64,
    /// FG-pool cycles across the parallel phases.
    pub fg_cycles: u64,
    /// Communication cycles that could not be overlapped.
    pub exposed_comm_cycles: u64,
}

impl SystemResult {
    /// Total cycles.
    pub fn total_cycles(&self) -> u64 {
        self.per_phase.iter().sum()
    }

    /// Seconds at 2 GHz.
    pub fn seconds(&self) -> f64 {
        self.total_cycles() as f64 / 2.0e9
    }

    /// Frames per second when this result covers one displayed frame.
    pub fn fps(&self) -> f64 {
        1.0 / self.seconds().max(1e-12)
    }
}

/// A configured ParallAX system.
pub struct ParallaxSystem {
    cg_sim: MulticoreSim,
    cg_cores: usize,
    fg_type: FgCoreType,
    fg_count: usize,
    link: Link,
    arbiter: HierarchicalArbiter,
}

impl std::fmt::Debug for ParallaxSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParallaxSystem")
            .field("cg_cores", &self.cg_cores)
            .field("fg_type", &self.fg_type)
            .field("fg_count", &self.fg_count)
            .field("link", &self.link)
            .finish()
    }
}

impl ParallaxSystem {
    /// Builds the paper's reference configuration: `cg_cores` desktop CG
    /// cores with a 12 MB way-partitioned L2 (serial phases protected),
    /// plus `fg_count` FG cores of `fg_type` coupled via `link`.
    pub fn new(cg_cores: usize, fg_type: FgCoreType, fg_count: usize, link: Link) -> Self {
        let mut machine = MachineConfig::baseline(cg_cores, 12);
        // Partition: way 0 → Broadphase (geom data + spatial hash fit in
        // 3 MB), ways 1-2 → Island Creation (object + joint + contact
        // data need ~6 MB), way 3 → parallel phases (streaming).
        machine.l2 = L2Config::partitioned(12, vec![1, 2, 1]);
        let options = SimOptions {
            partition_of_phase: Some([0, 2, 1, 2, 2]),
            ..Default::default()
        };
        ParallaxSystem {
            cg_sim: MulticoreSim::new(machine, options),
            cg_cores,
            fg_type,
            fg_count: fg_count.max(1),
            link,
            arbiter: HierarchicalArbiter::new(cg_cores.max(1), fg_count.max(1)),
        }
    }

    /// The FG arbiter (exposed for inspection).
    pub fn arbiter(&self) -> &HierarchicalArbiter {
        &self.arbiter
    }

    /// Simulates one physics step. Parallel phases run their CG setup on
    /// the CG cores and their kernels on the FG pool, overlapped.
    pub fn simulate_step(&mut self, profile: &StepProfile) -> SystemResult {
        // CG-side trace: serial phases unchanged; parallel-phase tasks
        // keep their memory references (the CG cores read the data to
        // pack/send it) but execute only setup + dispatch instructions.
        let mut trace = StepTrace::from_profile(profile);
        replace_parallel_ops_with_cg_side(&mut trace, profile);
        let cg_time = self.cg_sim.run_step(&trace);

        // FG side, per parallel phase.
        let mut result = SystemResult::default();
        for (pi, phase) in PhaseKind::ALL.iter().enumerate() {
            if phase.is_serial() {
                result.per_phase[pi] = cg_time.cycles[pi];
                result.serial_cycles += cg_time.cycles[pi];
                continue;
            }
            let tasks = profile.fg_tasks(*phase);
            let kernel = kernel_of(*phase);
            let fg = fg_phase_timing(kernel, self.fg_type, self.fg_count, self.link, tasks);
            let cg = cg_time.cycles[pi];
            result.cg_parallel_cycles += cg;
            result.fg_cycles += fg.total_cycles;
            result.exposed_comm_cycles += fg.exposed_comm_cycles;
            // CG packing streams to the FG pool; the phase's critical path
            // is the slower of the two sides.
            result.per_phase[pi] = cg.max(fg.total_cycles);
        }
        self.flush_telemetry(profile, &result);
        result
    }

    /// Records the step's FG utilization and cycle split: per parallel
    /// phase, the FG-task demand is spread over the CG cores and pushed
    /// through the hierarchical arbiter, yielding the granted-core count
    /// (occupancy) and the unmet demand (queue depth).
    fn flush_telemetry(&self, profile: &StepProfile, result: &SystemResult) {
        if !telemetry::enabled() {
            return;
        }
        let m = sys_metrics();
        m.steps.add(1);
        let mut max_occupancy = 0u64;
        let mut max_queue = 0u64;
        for phase in PhaseKind::ALL {
            if phase.is_serial() {
                continue;
            }
            let tasks = profile.fg_tasks(phase);
            if tasks == 0 {
                continue;
            }
            m.fg_tasks.add(tasks as u64);
            // Near-even demand split across CG cores, as each CG core
            // packs and dispatches its share of the phase's tasks.
            let demands: Vec<usize> = (0..self.cg_cores)
                .map(|c| tasks / self.cg_cores + usize::from(c < tasks % self.cg_cores))
                .collect();
            let granted: usize = self.arbiter.assign(&demands).iter().map(Vec::len).sum();
            m.fg_cores_granted.add(granted as u64);
            max_occupancy = max_occupancy.max(granted as u64 * 100 / self.fg_count as u64);
            max_queue = max_queue.max(tasks.saturating_sub(granted) as u64);
        }
        m.fg_occupancy_pct.set(max_occupancy);
        m.arbiter_queue_depth.set(max_queue);
        m.fg_cycles.add(result.fg_cycles);
        m.cg_parallel_cycles.add(result.cg_parallel_cycles);
        m.serial_cycles.add(result.serial_cycles);
        m.exposed_comm_cycles.add(result.exposed_comm_cycles);
    }

    /// Simulates a window of steps (e.g. one displayed frame = 3 steps).
    pub fn simulate_steps(&mut self, profiles: &[StepProfile]) -> SystemResult {
        let mut acc = SystemResult::default();
        for p in profiles {
            let r = self.simulate_step(p);
            for i in 0..5 {
                acc.per_phase[i] += r.per_phase[i];
            }
            acc.serial_cycles += r.serial_cycles;
            acc.cg_parallel_cycles += r.cg_parallel_cycles;
            acc.fg_cycles += r.fg_cycles;
            acc.exposed_comm_cycles += r.exposed_comm_cycles;
        }
        acc
    }
}

/// Replaces parallel-phase task ops with their CG-side portions: per-unit
/// setup plus dispatch overhead. Memory references are preserved (the CG
/// core touches the data to pack it).
fn replace_parallel_ops_with_cg_side(trace: &mut StepTrace, profile: &StepProfile) {
    for pt in &mut trace.phases {
        match pt.phase {
            PhaseKind::Narrowphase => {
                for task in &mut pt.tasks {
                    task.ops = dispatch_ops(CG_DISPATCH_INSTR + 8);
                }
            }
            PhaseKind::IslandProcessing => {
                for (task, island) in pt.tasks.iter_mut().zip(&profile.islands) {
                    // Per-island setup/integration stays on CG; solver
                    // sweeps go to FG.
                    let setup = KernelModel::island_solver(0, 0, island.bodies.len());
                    task.ops = setup
                        + dispatch_ops(CG_DISPATCH_INSTR + 8 * island.dof_removed.max(1) as u64);
                }
            }
            PhaseKind::Cloth => {
                for (task, cw) in pt.tasks.iter_mut().zip(&profile.cloths) {
                    task.ops =
                        dispatch_ops(CG_DISPATCH_INSTR + 8 * cw.stats.vertices.max(1) as u64);
                }
            }
            _ => {}
        }
    }
}

/// Integer/branch/memory mix of dispatch code.
fn dispatch_ops(instr: u64) -> OpCounts {
    OpCounts {
        int_alu: instr * 40 / 100,
        branch: instr * 10 / 100,
        load: instr * 30 / 100,
        store: instr * 15 / 100,
        other: instr * 5 / 100,
        ..Default::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parallax_physics::probe::{ClothWork, IslandWork, PairWork};

    fn demo_profile(pairs: usize, islands: usize, dof_per_island: usize) -> StepProfile {
        let mut p = StepProfile::default();
        p.broadphase.geoms = pairs + 5;
        p.broadphase.sort_ops = pairs * 8;
        p.broadphase.overlap_tests = pairs * 2;
        p.broadphase.pairs = pairs;
        for k in 0..pairs as u32 {
            p.pairs.push(PairWork {
                geom_a: k,
                geom_b: k + 1,
                body_a: k,
                body_b: k + 1,
                shape_a: "box",
                shape_b: "sphere",
                contacts: 2,
                active: true,
            });
        }
        p.island_creation.bodies = pairs;
        p.island_creation.union_ops = pairs / 2;
        p.island_creation.find_ops = pairs;
        for i in 0..islands {
            p.islands.push(IslandWork {
                bodies: (0..6).map(|b| (i * 6 + b) as u32).collect(),
                joints: vec![],
                manifolds: 6,
                rows: dof_per_island,
                dof_removed: dof_per_island,
                iterations: 20,
                residual: 0.0,
                queued: dof_per_island > 25,
                lambda_digest: 0,
            });
        }
        p.cloths.push(ClothWork {
            cloth: 0,
            stats: parallax_physics::cloth::ClothStats {
                vertices: 625,
                projections: 625 * 8,
                collision_tests: 300,
                collisions_resolved: 20,
            },
            colliders: 3,
        });
        p
    }

    #[test]
    fn fg_pool_accelerates_parallel_phases() {
        let profile = demo_profile(800, 40, 60);
        let mut small = ParallaxSystem::new(4, FgCoreType::Shader, 10, Link::OnChipMesh);
        let mut big = ParallaxSystem::new(4, FgCoreType::Shader, 150, Link::OnChipMesh);
        let rs = small.simulate_step(&profile);
        let rb = big.simulate_step(&profile);
        assert!(
            rb.total_cycles() < rs.total_cycles(),
            "150 FG cores ({}) should beat 10 ({})",
            rb.total_cycles(),
            rs.total_cycles()
        );
        // Serial phases are identical.
        assert_eq!(rb.serial_cycles, rs.serial_cycles);
    }

    #[test]
    fn offchip_coupling_is_never_faster() {
        let profile = demo_profile(400, 60, 80);
        let run = |link: Link| {
            let mut sys = ParallaxSystem::new(4, FgCoreType::Shader, 150, link);
            sys.simulate_step(&profile).fg_cycles
        };
        let onchip = run(Link::OnChipMesh);
        let htx = run(Link::Htx);
        let pcie = run(Link::Pcie);
        assert!(
            onchip <= htx && htx <= pcie,
            "FG time must grow with coupling looseness: {onchip} {htx} {pcie}"
        );
    }

    #[test]
    fn result_accumulates_over_steps() {
        let profile = demo_profile(100, 10, 30);
        let mut sys = ParallaxSystem::new(2, FgCoreType::Console, 43, Link::OnChipMesh);
        let one = sys.simulate_steps(std::slice::from_ref(&profile));
        let mut sys2 = ParallaxSystem::new(2, FgCoreType::Console, 43, Link::OnChipMesh);
        let three = sys2.simulate_steps(&[profile.clone(), profile.clone(), profile]);
        assert!(three.total_cycles() > one.total_cycles() * 2);
        assert!(three.fps() < 2.0e9_f64);
    }
}
