//! The live telemetry plane: an in-process HTTP exporter for a running
//! simulation.
//!
//! `parallax-telemetry` gives every layer cheap recording and post-hoc
//! files; this crate is the *live* surface the ROADMAP's multi-world
//! server will scrape. [`serve`] binds a loopback address and answers:
//!
//! | endpoint | payload |
//! |---|---|
//! | `GET /metrics` | Prometheus text v0.0.4: every registry counter, gauge and log2 histogram (cumulative `_bucket`/`_sum`/`_count` plus `_p50`/`_p95`/`_p99` gauges) |
//! | `GET /trace?steps=N` | Chrome `trace_event` JSON of the last `N` retained steps (loads in Perfetto) |
//! | `GET /steps?n=N` | JSONL tail of the last `N` retained [`StepRecord`]s |
//! | `GET /health` | JSON verdict: invariant-monitor counters, spans dropped, steps observed |
//!
//! The driver calls [`Observe::record_step`] once per step with the
//! step's [`StepRecord`]; the handle retains the last [`RING_STEPS`]
//! records in a ring, publishes per-phase wall gauges
//! (`physics.phase_wall_ns.<phase>`) and the critical-path attribution
//! gauges (`telemetry.attribution.*`), and the exporter thread serves
//! scrapes without ever touching the simulation thread — `/metrics`
//! reads the lock-free registry, the ring is a mutex held for a push or
//! a clone of at most [`RING_STEPS`] records.
//!
//! Everything is hand-rolled on `std`: no tokio, no hyper, no serde-json
//! (the workspace builds with no registry access).

use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use parallax_telemetry as telemetry;
use telemetry::json::write_str;
use telemetry::net::{HttpServer, Request, Response};
use telemetry::report::{CHECKED_STEPS_COUNTER, SPANS_DROPPED_GAUGE, VIOLATION_PREFIX};
use telemetry::StepRecord;

/// Steps retained for `/trace` and `/steps` (a ring; older steps fall
/// off). At Mix's ~130 steps/s this is ~4 s of history — enough for a
/// Perfetto look at "what just happened" without unbounded memory.
pub const RING_STEPS: usize = 512;

/// Registry gauge-name prefix for the per-phase wall gauges published by
/// [`Observe::record_step`] (`physics.phase_wall_ns.Broadphase` →
/// `physics_phase_wall_ns_broadphase` on `/metrics`).
pub const PHASE_WALL_PREFIX: &str = "physics.phase_wall_ns.";

/// One step's flight-recorder entry: the per-phase state digests plus the
/// discrete events (explosions, broken joints, …) that occurred. Cheap to
/// retain — a black-box dump of these is what the divergence bisector and
/// post-mortem debugging start from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEntry {
    /// Step index (the world's step counter *before* the step ran).
    pub step: u64,
    /// Per-phase digests in pipeline order (Broadphase, Narrowphase,
    /// Island Serial, Island Parallel, Cloth).
    pub digests: [u64; 5],
    /// Non-zero discrete event counts this step, as `(name, count)`.
    pub events: Vec<(String, u64)>,
}

impl FlightEntry {
    /// One-line JSON form (digests as hex strings — they are bit
    /// patterns, not magnitudes).
    pub fn to_json_line(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(128);
        let _ = write!(out, "{{\"step\":{},\"digests\":[", self.step);
        for (i, d) in self.digests.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{d:#018x}\"");
        }
        out.push_str("],\"events\":{");
        for (i, (name, count)) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_str(&mut out, name);
            let _ = write!(out, ":{count}");
        }
        out.push_str("}}");
        out
    }
}

/// A fixed-capacity ring of [`FlightEntry`]s — the flight recorder
/// proper. Standalone (no server needed): `run_scene` keeps one even
/// without `--serve` so a black box can always be dumped.
#[derive(Debug)]
pub struct FlightRing {
    cap: usize,
    ring: VecDeque<FlightEntry>,
}

impl FlightRing {
    /// A ring retaining the last `cap` steps (`cap` ≥ 1).
    pub fn new(cap: usize) -> Self {
        FlightRing {
            cap: cap.max(1),
            ring: VecDeque::with_capacity(cap.max(1)),
        }
    }

    /// Pushes one step's entry, dropping the oldest beyond capacity.
    pub fn push(&mut self, entry: FlightEntry) {
        if self.ring.len() == self.cap {
            self.ring.pop_front();
        }
        self.ring.push_back(entry);
    }

    /// Retained entries, oldest first.
    pub fn entries(&self) -> Vec<FlightEntry> {
        self.ring.iter().cloned().collect()
    }

    /// Entries currently retained.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// `true` when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }
}

/// Writes a black box to `dir`: `snapshot.bin` (the world snapshot),
/// `digests.jsonl` (the flight-recorder tail) and `steps.jsonl` (full
/// [`StepRecord`]s for the same window, possibly shorter). Creates the
/// directory; returns its path.
pub fn dump_blackbox(
    dir: &Path,
    snapshot: &[u8],
    flight: &[FlightEntry],
    records: &[StepRecord],
) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join("snapshot.bin"), snapshot)?;
    let mut digests = String::new();
    for e in flight {
        digests.push_str(&e.to_json_line());
        digests.push('\n');
    }
    std::fs::write(dir.join("digests.jsonl"), digests)?;
    let mut steps = String::new();
    for r in records {
        steps.push_str(&r.to_json_line());
        steps.push('\n');
    }
    std::fs::write(dir.join("steps.jsonl"), steps)?;
    Ok(dir.to_path_buf())
}

struct State {
    ring: Mutex<VecDeque<StepRecord>>,
    /// Set by `GET /blackbox`; drained by the stepping thread through
    /// [`Observe::take_blackbox_request`].
    blackbox_requested: AtomicBool,
}

impl State {
    /// Locks the step ring, recovering the guard if a previous holder
    /// panicked: the ring only ever holds complete `StepRecord`s (each
    /// push/pop is a single non-panicking operation on an already-built
    /// record), so a poisoned lock means a panic elsewhere in the
    /// holder's stack — the exporter degrades to serving the retained
    /// tail instead of failing every later `/steps` and `/trace` scrape.
    fn ring(&self) -> std::sync::MutexGuard<'_, VecDeque<StepRecord>> {
        self.ring
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// Handle to a live exporter. Dropping it stops the server thread.
pub struct Observe {
    state: Arc<State>,
    server: HttpServer,
}

/// Binds `addr` (port 0 for ephemeral) and starts serving the telemetry
/// plane on a background thread.
pub fn serve(addr: impl ToSocketAddrs) -> io::Result<Observe> {
    let state = Arc::new(State {
        ring: Mutex::new(VecDeque::with_capacity(RING_STEPS)),
        blackbox_requested: AtomicBool::new(false),
    });
    let routes = Arc::clone(&state);
    let server = HttpServer::serve(addr, move |req| route(&routes, req))?;
    Ok(Observe { state, server })
}

impl Observe {
    /// The bound address (resolves an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.server.addr()
    }

    /// Feeds one completed step into the plane: retains the record,
    /// publishes the per-phase wall gauges and the critical-path
    /// attribution gauges. Call from the stepping thread, once per step,
    /// after spans are drained into the record.
    pub fn record_step(&self, record: StepRecord) {
        for (phase, ns) in &record.wall_ns {
            telemetry::gauge(&format!("{PHASE_WALL_PREFIX}{phase}")).set_always(*ns);
        }
        telemetry::attribute_step(&record).publish_gauges();
        let mut ring = self.state.ring();
        if ring.len() == RING_STEPS {
            ring.pop_front();
        }
        ring.push_back(record);
    }

    /// Steps currently retained.
    pub fn steps_retained(&self) -> usize {
        self.state.ring().len()
    }

    /// Returns `true` (once) if a `GET /blackbox` arrived since the last
    /// call. The stepping thread polls this between steps and performs
    /// the dump itself — the server thread never touches the world.
    pub fn take_blackbox_request(&self) -> bool {
        self.state.blackbox_requested.swap(false, Ordering::Relaxed)
    }

    /// The retained [`StepRecord`] tail, oldest first (for black-box
    /// dumps; same data `/steps` serves).
    pub fn step_records(&self, n: usize) -> Vec<StepRecord> {
        tail_records(&self.state, n)
    }
}

impl std::fmt::Debug for Observe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Observe")
            .field("addr", &self.addr())
            .field("steps", &self.steps_retained())
            .finish()
    }
}

fn route(state: &State, req: &Request) -> Response {
    // Every exporter route is read-only; the server layer (`telemetry::
    // net`) passes all methods through, so the policy lives here.
    if req.method != "GET" {
        return Response::method_not_allowed(&req.method, "GET");
    }
    match req.path.as_str() {
        "/metrics" => Response::ok(
            "text/plain; version=0.0.4; charset=utf-8",
            telemetry::prometheus_text(&telemetry::snapshot()),
        ),
        "/trace" => {
            let tail = tail_records(state, req.query_u64("steps").unwrap_or(64) as usize);
            Response::ok("application/json", telemetry::chrome_trace(&tail))
        }
        "/steps" => {
            let tail = tail_records(state, req.query_u64("n").unwrap_or(32) as usize);
            let mut body = String::new();
            for r in &tail {
                body.push_str(&r.to_json_line());
                body.push('\n');
            }
            Response::ok("application/x-ndjson", body)
        }
        "/health" => Response::ok("application/json", health_json(state)),
        "/blackbox" => {
            state.blackbox_requested.store(true, Ordering::Relaxed);
            Response::ok("application/json", "{\"armed\":true}".to_string())
        }
        p => Response::not_found(p),
    }
}

fn tail_records(state: &State, n: usize) -> Vec<StepRecord> {
    let ring = state.ring();
    ring.iter()
        .skip(ring.len().saturating_sub(n))
        .cloned()
        .collect()
}

/// The `/health` verdict, computed from the live registry: `"ok"` when
/// the invariant monitors have recorded no violations, `"degraded"`
/// otherwise. Dropped spans are reported but do not degrade the status
/// (the trace is incomplete; the simulation is not wrong).
fn health_json(state: &State) -> String {
    use std::fmt::Write as _;

    let snap = telemetry::snapshot();
    let violations: Vec<(&str, u64)> = snap
        .counters_with_prefix(VIOLATION_PREFIX)
        .map(|(n, v)| (n.strip_prefix(VIOLATION_PREFIX).unwrap_or(n), v))
        .collect();
    let status = if violations.is_empty() {
        "ok"
    } else {
        "degraded"
    };
    let mut out = String::with_capacity(256);
    let _ = write!(
        out,
        "{{\"status\":\"{status}\",\"checked_steps\":{},\"spans_dropped\":{},\"steps_retained\":{},\"violations\":{{",
        snap.counter(CHECKED_STEPS_COUNTER),
        snap.gauge(SPANS_DROPPED_GAUGE),
        state.ring().len()
    );
    for (i, (kind, v)) in violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_str(&mut out, kind);
        let _ = write!(out, ":{v}");
    }
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use telemetry::http_get;
    use telemetry::json::Json;
    use telemetry::span::SpanRecord;

    fn record(step: u64) -> StepRecord {
        StepRecord {
            source: "physics".into(),
            scene: "unit".into(),
            step,
            wall_ns: vec![("Broadphase".into(), 1000), ("Narrowphase".into(), 3000)],
            metrics: Default::default(),
            spans: vec![SpanRecord {
                name: "Narrowphase region".into(),
                track: 0,
                start_ns: step * 4000 + 1000,
                dur_ns: 2500,
            }],
        }
    }

    #[test]
    fn endpoints_serve_ring_and_health() {
        let obs = serve("127.0.0.1:0").expect("bind");
        for step in 0..5 {
            obs.record_step(record(step));
        }
        assert_eq!(obs.steps_retained(), 5);
        let addr = obs.addr();

        let (status, body) = http_get(addr, "/steps?n=2").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body.lines().count(), 2, "{body}");
        let last = StepRecord::from_json_line(body.lines().last().unwrap()).unwrap();
        assert_eq!(last.step, 4);

        let (status, trace) = http_get(addr, "/trace?steps=1").unwrap();
        assert_eq!(status, 200);
        let events = Json::parse(&trace).unwrap();
        assert!(events.get("traceEvents").is_some(), "{trace}");

        let (status, health) = http_get(addr, "/health").unwrap();
        assert_eq!(status, 200);
        let h = Json::parse(&health).unwrap();
        assert_eq!(h.get("status").and_then(|s| s.as_str()), Some("ok"));
        assert_eq!(h.get("steps_retained").and_then(|v| v.as_u64()), Some(5));

        let (status, _) = http_get(addr, "/nope").unwrap();
        assert_eq!(status, 404);
    }

    #[test]
    fn record_step_publishes_wall_and_attribution_gauges() {
        let obs = serve("127.0.0.1:0").expect("bind");
        obs.record_step(record(0));
        let snap = telemetry::snapshot();
        assert_eq!(snap.gauge("physics.phase_wall_ns.Broadphase"), 1000);
        assert_eq!(snap.gauge("physics.phase_wall_ns.Narrowphase"), 3000);
        // Serial = Broadphase (1000) + Narrowphase outside the region
        // (3000 − 2500 = 500); wall = 4000 → 375 permille.
        assert_eq!(
            snap.gauge(telemetry::attribution::SERIAL_PERMILLE_GAUGE),
            375
        );
        let (_, text) = http_get(obs.addr(), "/metrics").unwrap();
        assert!(
            text.contains("physics_phase_wall_ns_broadphase 1000"),
            "{text}"
        );
    }

    #[test]
    fn flight_ring_retains_tail_and_serializes() {
        let mut ring = FlightRing::new(4);
        assert!(ring.is_empty());
        for step in 0..6 {
            ring.push(FlightEntry {
                step,
                digests: [step, 2, 3, 4, 5],
                events: vec![("explosions".into(), step)],
            });
        }
        assert_eq!(ring.len(), 4);
        let entries = ring.entries();
        assert_eq!(entries[0].step, 2, "oldest two dropped");
        assert_eq!(entries[3].step, 5);
        let line = entries[3].to_json_line();
        assert!(line.contains("\"step\":5"), "{line}");
        assert!(line.contains("0x0000000000000005"), "{line}");
        assert!(line.contains("\"explosions\":5"), "{line}");
        Json::parse(&line).expect("valid JSON");
    }

    #[test]
    fn blackbox_endpoint_arms_once_and_dump_writes_files() {
        let obs = serve("127.0.0.1:0").expect("bind");
        obs.record_step(record(0));
        assert!(!obs.take_blackbox_request(), "nothing armed yet");
        let (status, body) = http_get(obs.addr(), "/blackbox").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("armed"), "{body}");
        assert!(obs.take_blackbox_request());
        assert!(!obs.take_blackbox_request(), "request is drained");

        let dir = std::env::temp_dir().join(format!("parallax-blackbox-{}", std::process::id()));
        let entry = FlightEntry {
            step: 7,
            digests: [1, 2, 3, 4, 5],
            events: vec![],
        };
        let out = dump_blackbox(&dir, b"SNAP", &[entry], &obs.step_records(8)).unwrap();
        assert_eq!(std::fs::read(out.join("snapshot.bin")).unwrap(), b"SNAP");
        let digests = std::fs::read_to_string(out.join("digests.jsonl")).unwrap();
        assert_eq!(digests.lines().count(), 1);
        let steps = std::fs::read_to_string(out.join("steps.jsonl")).unwrap();
        assert_eq!(steps.lines().count(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn poisoned_ring_degrades_instead_of_dying() {
        let obs = serve("127.0.0.1:0").expect("bind");
        for step in 0..3 {
            obs.record_step(record(step));
        }
        // Poison the ring mutex: panic while holding the guard, the way
        // any panic in a ring-holding stack frame would.
        let state = Arc::clone(&obs.state);
        let _ = std::thread::spawn(move || {
            let _guard = state.ring.lock().unwrap();
            panic!("deliberate poison");
        })
        .join();
        assert!(obs.state.ring.is_poisoned(), "test must actually poison");

        // Every later scrape and record still works on the recovered
        // guard — the exporter degrades, it does not die.
        let (status, body) = http_get(obs.addr(), "/steps?n=8").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body.lines().count(), 3, "{body}");
        let (status, health) = http_get(obs.addr(), "/health").unwrap();
        assert_eq!(status, 200);
        assert!(health.contains("\"steps_retained\":3"), "{health}");
        obs.record_step(record(3));
        assert_eq!(obs.steps_retained(), 4);
        let (status, _) = http_get(obs.addr(), "/trace?steps=2").unwrap();
        assert_eq!(status, 200);
    }

    #[test]
    fn non_get_methods_are_rejected() {
        let obs = serve("127.0.0.1:0").expect("bind");
        let (status, _) =
            telemetry::http_request(obs.addr(), "POST", "/metrics", "", b"x").unwrap();
        assert_eq!(status, 405);
        let (status, _) = telemetry::http_request(obs.addr(), "DELETE", "/steps", "", &[]).unwrap();
        assert_eq!(status, 405);
        let (status, _) = http_get(obs.addr(), "/metrics").unwrap();
        assert_eq!(status, 200);
    }

    #[test]
    fn ring_drops_oldest_beyond_capacity() {
        let obs = serve("127.0.0.1:0").expect("bind");
        for step in 0..(RING_STEPS as u64 + 10) {
            obs.record_step(record(step));
        }
        assert_eq!(obs.steps_retained(), RING_STEPS);
        let (_, body) = http_get(obs.addr(), "/steps?n=1").unwrap();
        let last = StepRecord::from_json_line(body.trim()).unwrap();
        assert_eq!(last.step, RING_STEPS as u64 + 9);
    }
}
