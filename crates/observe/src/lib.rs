//! The live telemetry plane: an in-process HTTP exporter for a running
//! simulation.
//!
//! `parallax-telemetry` gives every layer cheap recording and post-hoc
//! files; this crate is the *live* surface the ROADMAP's multi-world
//! server will scrape. [`serve`] binds a loopback address and answers:
//!
//! | endpoint | payload |
//! |---|---|
//! | `GET /metrics` | Prometheus text v0.0.4: every registry counter, gauge and log2 histogram (cumulative `_bucket`/`_sum`/`_count` plus `_p50`/`_p95`/`_p99` gauges) |
//! | `GET /trace?steps=N` | Chrome `trace_event` JSON of the last `N` retained steps (loads in Perfetto) |
//! | `GET /steps?n=N` | JSONL tail of the last `N` retained [`StepRecord`]s |
//! | `GET /health` | JSON verdict: invariant-monitor counters, spans dropped, steps observed |
//!
//! The driver calls [`Observe::record_step`] once per step with the
//! step's [`StepRecord`]; the handle retains the last [`RING_STEPS`]
//! records in a ring, publishes per-phase wall gauges
//! (`physics.phase_wall_ns.<phase>`) and the critical-path attribution
//! gauges (`telemetry.attribution.*`), and the exporter thread serves
//! scrapes without ever touching the simulation thread — `/metrics`
//! reads the lock-free registry, the ring is a mutex held for a push or
//! a clone of at most [`RING_STEPS`] records.
//!
//! Everything is hand-rolled on `std`: no tokio, no hyper, no serde-json
//! (the workspace builds with no registry access).

use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::{Arc, Mutex};

use parallax_telemetry as telemetry;
use telemetry::json::write_str;
use telemetry::net::{HttpServer, Request, Response};
use telemetry::report::{CHECKED_STEPS_COUNTER, SPANS_DROPPED_GAUGE, VIOLATION_PREFIX};
use telemetry::StepRecord;

/// Steps retained for `/trace` and `/steps` (a ring; older steps fall
/// off). At Mix's ~130 steps/s this is ~4 s of history — enough for a
/// Perfetto look at "what just happened" without unbounded memory.
pub const RING_STEPS: usize = 512;

/// Registry gauge-name prefix for the per-phase wall gauges published by
/// [`Observe::record_step`] (`physics.phase_wall_ns.Broadphase` →
/// `physics_phase_wall_ns_broadphase` on `/metrics`).
pub const PHASE_WALL_PREFIX: &str = "physics.phase_wall_ns.";

struct State {
    ring: Mutex<VecDeque<StepRecord>>,
}

/// Handle to a live exporter. Dropping it stops the server thread.
pub struct Observe {
    state: Arc<State>,
    server: HttpServer,
}

/// Binds `addr` (port 0 for ephemeral) and starts serving the telemetry
/// plane on a background thread.
pub fn serve(addr: impl ToSocketAddrs) -> io::Result<Observe> {
    let state = Arc::new(State {
        ring: Mutex::new(VecDeque::with_capacity(RING_STEPS)),
    });
    let routes = Arc::clone(&state);
    let server = HttpServer::serve(addr, move |req| route(&routes, req))?;
    Ok(Observe { state, server })
}

impl Observe {
    /// The bound address (resolves an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.server.addr()
    }

    /// Feeds one completed step into the plane: retains the record,
    /// publishes the per-phase wall gauges and the critical-path
    /// attribution gauges. Call from the stepping thread, once per step,
    /// after spans are drained into the record.
    pub fn record_step(&self, record: StepRecord) {
        for (phase, ns) in &record.wall_ns {
            telemetry::gauge(&format!("{PHASE_WALL_PREFIX}{phase}")).set_always(*ns);
        }
        telemetry::attribute_step(&record).publish_gauges();
        let mut ring = self.state.ring.lock().expect("step ring");
        if ring.len() == RING_STEPS {
            ring.pop_front();
        }
        ring.push_back(record);
    }

    /// Steps currently retained.
    pub fn steps_retained(&self) -> usize {
        self.state.ring.lock().expect("step ring").len()
    }
}

impl std::fmt::Debug for Observe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Observe")
            .field("addr", &self.addr())
            .field("steps", &self.steps_retained())
            .finish()
    }
}

fn route(state: &State, req: &Request) -> Response {
    match req.path.as_str() {
        "/metrics" => Response::ok(
            "text/plain; version=0.0.4; charset=utf-8",
            telemetry::prometheus_text(&telemetry::snapshot()),
        ),
        "/trace" => {
            let tail = tail_records(state, req.query_u64("steps").unwrap_or(64) as usize);
            Response::ok("application/json", telemetry::chrome_trace(&tail))
        }
        "/steps" => {
            let tail = tail_records(state, req.query_u64("n").unwrap_or(32) as usize);
            let mut body = String::new();
            for r in &tail {
                body.push_str(&r.to_json_line());
                body.push('\n');
            }
            Response::ok("application/x-ndjson", body)
        }
        "/health" => Response::ok("application/json", health_json(state)),
        p => Response::not_found(p),
    }
}

fn tail_records(state: &State, n: usize) -> Vec<StepRecord> {
    let ring = state.ring.lock().expect("step ring");
    ring.iter()
        .skip(ring.len().saturating_sub(n))
        .cloned()
        .collect()
}

/// The `/health` verdict, computed from the live registry: `"ok"` when
/// the invariant monitors have recorded no violations, `"degraded"`
/// otherwise. Dropped spans are reported but do not degrade the status
/// (the trace is incomplete; the simulation is not wrong).
fn health_json(state: &State) -> String {
    use std::fmt::Write as _;

    let snap = telemetry::snapshot();
    let violations: Vec<(&str, u64)> = snap
        .counters_with_prefix(VIOLATION_PREFIX)
        .map(|(n, v)| (n.strip_prefix(VIOLATION_PREFIX).unwrap_or(n), v))
        .collect();
    let status = if violations.is_empty() {
        "ok"
    } else {
        "degraded"
    };
    let mut out = String::with_capacity(256);
    let _ = write!(
        out,
        "{{\"status\":\"{status}\",\"checked_steps\":{},\"spans_dropped\":{},\"steps_retained\":{},\"violations\":{{",
        snap.counter(CHECKED_STEPS_COUNTER),
        snap.gauge(SPANS_DROPPED_GAUGE),
        state.ring.lock().expect("step ring").len()
    );
    for (i, (kind, v)) in violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_str(&mut out, kind);
        let _ = write!(out, ":{v}");
    }
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use telemetry::http_get;
    use telemetry::json::Json;
    use telemetry::span::SpanRecord;

    fn record(step: u64) -> StepRecord {
        StepRecord {
            source: "physics".into(),
            scene: "unit".into(),
            step,
            wall_ns: vec![("Broadphase".into(), 1000), ("Narrowphase".into(), 3000)],
            metrics: Default::default(),
            spans: vec![SpanRecord {
                name: "Narrowphase region".into(),
                track: 0,
                start_ns: step * 4000 + 1000,
                dur_ns: 2500,
            }],
        }
    }

    #[test]
    fn endpoints_serve_ring_and_health() {
        let obs = serve("127.0.0.1:0").expect("bind");
        for step in 0..5 {
            obs.record_step(record(step));
        }
        assert_eq!(obs.steps_retained(), 5);
        let addr = obs.addr();

        let (status, body) = http_get(addr, "/steps?n=2").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body.lines().count(), 2, "{body}");
        let last = StepRecord::from_json_line(body.lines().last().unwrap()).unwrap();
        assert_eq!(last.step, 4);

        let (status, trace) = http_get(addr, "/trace?steps=1").unwrap();
        assert_eq!(status, 200);
        let events = Json::parse(&trace).unwrap();
        assert!(events.get("traceEvents").is_some(), "{trace}");

        let (status, health) = http_get(addr, "/health").unwrap();
        assert_eq!(status, 200);
        let h = Json::parse(&health).unwrap();
        assert_eq!(h.get("status").and_then(|s| s.as_str()), Some("ok"));
        assert_eq!(h.get("steps_retained").and_then(|v| v.as_u64()), Some(5));

        let (status, _) = http_get(addr, "/nope").unwrap();
        assert_eq!(status, 404);
    }

    #[test]
    fn record_step_publishes_wall_and_attribution_gauges() {
        let obs = serve("127.0.0.1:0").expect("bind");
        obs.record_step(record(0));
        let snap = telemetry::snapshot();
        assert_eq!(snap.gauge("physics.phase_wall_ns.Broadphase"), 1000);
        assert_eq!(snap.gauge("physics.phase_wall_ns.Narrowphase"), 3000);
        // Serial = Broadphase (1000) + Narrowphase outside the region
        // (3000 − 2500 = 500); wall = 4000 → 375 permille.
        assert_eq!(
            snap.gauge(telemetry::attribution::SERIAL_PERMILLE_GAUGE),
            375
        );
        let (_, text) = http_get(obs.addr(), "/metrics").unwrap();
        assert!(
            text.contains("physics_phase_wall_ns_broadphase 1000"),
            "{text}"
        );
    }

    #[test]
    fn ring_drops_oldest_beyond_capacity() {
        let obs = serve("127.0.0.1:0").expect("bind");
        for step in 0..(RING_STEPS as u64 + 10) {
            obs.record_step(record(step));
        }
        assert_eq!(obs.steps_retained(), RING_STEPS);
        let (_, body) = http_get(obs.addr(), "/steps?n=1").unwrap();
        let last = StepRecord::from_json_line(body.trim()).unwrap();
        assert_eq!(last.step, RING_STEPS as u64 + 9);
    }
}
