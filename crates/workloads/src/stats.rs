//! Benchmark statistics: the measured columns of paper Table 4 and the
//! fine-grain task counts of Figure 11.

use parallax_physics::{PhaseKind, StepProfile};
use serde::{Deserialize, Serialize};

use crate::{Scene, SceneMeta};

/// Measured benchmark statistics (Table 4 row + Figure 11 series).
#[derive(Debug, Default, Clone, Copy, Serialize, Deserialize)]
pub struct BenchStats {
    /// Average broad-phase candidate object-pairs per step.
    pub obj_pairs: f64,
    /// Average islands per step.
    pub islands: f64,
    /// Cloth objects.
    pub cloth_objs: usize,
    /// Total cloth vertices.
    pub cloth_vertices: usize,
    /// Static objects.
    pub static_objs: usize,
    /// Dynamic objects.
    pub dynamic_objs: usize,
    /// Pre-fractured debris bodies.
    pub prefractured_objs: usize,
    /// Permanent joints.
    pub static_joints: usize,
    /// Average fine-grain Narrowphase tasks (object-pairs) per step.
    pub fg_narrowphase: f64,
    /// Average fine-grain Island-Processing tasks (DOF removed) per step.
    pub fg_island: f64,
    /// Average fine-grain Cloth tasks (vertices) per step.
    pub fg_cloth: f64,
    /// Largest single island's DOF removed (the CG-parallelism limiter).
    pub max_island_dof: usize,
    /// Largest single cloth's vertex count.
    pub max_cloth_vertices: usize,
}

/// Aggregates step profiles and static metadata into a stats row.
pub fn aggregate(meta: &SceneMeta, profiles: &[StepProfile]) -> BenchStats {
    let n = profiles.len().max(1) as f64;
    let mut s = BenchStats {
        cloth_objs: meta.cloth_objs,
        cloth_vertices: meta.cloth_vertices,
        static_objs: meta.static_objs,
        dynamic_objs: meta.dynamic_objs,
        prefractured_objs: meta.prefractured_objs,
        static_joints: meta.static_joints,
        ..Default::default()
    };
    for p in profiles {
        s.obj_pairs += p.pairs.len() as f64 / n;
        s.islands += p.islands.len() as f64 / n;
        s.fg_narrowphase += p.fg_tasks(PhaseKind::Narrowphase) as f64 / n;
        s.fg_island += p.fg_tasks(PhaseKind::IslandProcessing) as f64 / n;
        s.fg_cloth += p.fg_tasks(PhaseKind::Cloth) as f64 / n;
        for i in &p.islands {
            s.max_island_dof = s.max_island_dof.max(i.dof_removed);
        }
        for c in &p.cloths {
            s.max_cloth_vertices = s.max_cloth_vertices.max(c.stats.vertices);
        }
    }
    s
}

/// Builds, warms up, and measures a scene over the paper's window (warm-up
/// then `frames` measured frames).
pub fn measure(scene: &mut Scene, warm_frames: usize, frames: usize) -> BenchStats {
    let profiles = scene.run_measured(warm_frames, frames);
    aggregate(&scene.meta, &profiles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BenchmarkId, SceneParams};

    #[test]
    fn aggregate_averages_over_steps() {
        let mut scene = BenchmarkId::Ragdoll.build(&SceneParams {
            scale: 0.1,
            ..Default::default()
        });
        let stats = measure(&mut scene, 1, 1);
        assert!(stats.obj_pairs > 0.0, "falling ragdolls touch the ground");
        assert_eq!(stats.dynamic_objs, 3 * 16);
        assert!(stats.fg_narrowphase > 0.0);
    }

    #[test]
    fn deformable_reports_cloth_tasks() {
        let mut scene = BenchmarkId::Deformable.build(&SceneParams {
            scale: 0.1,
            ..Default::default()
        });
        let stats = measure(&mut scene, 0, 1);
        assert!(stats.fg_cloth > 0.0);
        assert!(stats.max_cloth_vertices >= 625);
    }
}
