//! Generated per-session worlds for the multi-world simulation service.
//!
//! The server's unit of scale is "thousands of concurrent ~100-body
//! worlds at 60 Hz" — a fleet of small game levels, not one huge scene.
//! [`SessionWorld`] builds such a level deterministically from a body
//! count and a seed: a ground plane and a floor of box stacks placed at
//! exact rest height (the same shape as the Resting benchmark, scaled
//! down), so that with island sleeping enabled the world settles within
//! a few dozen steps and its steady-state step cost collapses to the
//! broad-phase walk — which is what lets one process sustain thousands
//! of them. The seed jitters stack placement so distinct sessions have
//! distinct trajectories (and distinct digests, which the determinism
//! suite relies on).

use parallax_math::Vec3;
use parallax_physics::{BodyDesc, Shape, World, WorldConfig};

use crate::scenes::{grid, ground};

/// Boxes per stack (stacks shorter than this appear for the remainder).
const STACK: usize = 5;
/// Box half-extent (m).
const HALF: f32 = 0.4;

/// Parameters for a generated session world.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionWorld {
    /// Dynamic bodies in the world (exact).
    pub bodies: usize,
    /// Placement-jitter seed: distinct seeds give distinct trajectories.
    pub seed: u64,
    /// Island sleeping. On by default — a session world is mostly at
    /// rest, which is exactly what the server's throughput story needs.
    pub sleeping: bool,
}

impl Default for SessionWorld {
    fn default() -> Self {
        SessionWorld {
            bodies: 100,
            seed: 0,
            sleeping: true,
        }
    }
}

/// SplitMix64 — the workspace's stock deterministic scrambler.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform in [-1, 1) from a SplitMix64 draw.
fn unit(state: &mut u64) -> f32 {
    (splitmix(state) >> 40) as f32 / (1u64 << 23) as f32 * 2.0 - 1.0
}

impl SessionWorld {
    /// Builds the world: `bodies` boxes in stacks of [`STACK`] on a
    /// ground plane, each stack's base jittered from `seed`. Worlds are
    /// single-threaded (`threads: 1`) — the server parallelizes *across*
    /// sessions, not within one.
    pub fn build(&self) -> World {
        let mut world = World::new(WorldConfig {
            threads: 1,
            sleeping: self.sleeping,
            ..WorldConfig::default()
        });
        ground(&mut world);
        let stacks = self.bodies.div_ceil(STACK);
        let mut rng = self.seed ^ 0x5E55_10F1; // session-world domain tag
        let mut remaining = self.bodies;
        for base in grid(Vec3::ZERO, 3.0, 0.0, stacks) {
            let jx = unit(&mut rng) * 0.25;
            let jz = unit(&mut rng) * 0.25;
            for level in 0..STACK.min(remaining) {
                let y = HALF + level as f32 * 2.0 * HALF;
                world.add_body(
                    BodyDesc::dynamic(Vec3::new(base.x + jx, y, base.z + jz))
                        .with_shape(Shape::cuboid(Vec3::splat(HALF)), 4.0),
                );
            }
            remaining = remaining.saturating_sub(STACK);
        }
        world
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_exact_body_count() {
        for bodies in [1, 5, 27, 100, 101] {
            let w = SessionWorld {
                bodies,
                ..Default::default()
            }
            .build();
            assert_eq!(w.enabled_dynamic_bodies(), bodies, "bodies = {bodies}");
        }
    }

    #[test]
    fn distinct_seeds_give_distinct_trajectories() {
        let mut a = SessionWorld {
            seed: 1,
            bodies: 25,
            ..Default::default()
        }
        .build();
        let mut b = SessionWorld {
            seed: 2,
            bodies: 25,
            ..Default::default()
        }
        .build();
        for _ in 0..5 {
            a.step();
            b.step();
        }
        assert_ne!(
            parallax_physics::world_digest(&a),
            parallax_physics::world_digest(&b)
        );
    }

    #[test]
    fn same_seed_is_bit_identical() {
        let cfg = SessionWorld {
            seed: 9,
            bodies: 30,
            ..Default::default()
        };
        let (mut a, mut b) = (cfg.build(), cfg.build());
        for _ in 0..10 {
            a.step();
            b.step();
        }
        assert_eq!(
            parallax_physics::world_digest(&a),
            parallax_physics::world_digest(&b)
        );
    }

    #[test]
    fn settles_to_sleep_with_sleeping_on() {
        let mut w = SessionWorld {
            bodies: 50,
            seed: 3,
            sleeping: true,
        }
        .build();
        let mut asleep = 0;
        for _ in 0..300 {
            w.step();
            asleep = asleep.max(w.sleeping_body_count());
        }
        assert!(
            asleep >= 40,
            "session world must mostly fall asleep, peak {asleep}/50"
        );
    }
}
