//! The ParallAX forward-looking physics benchmark suite (paper §4).
//!
//! Eight parameterized scenes cover the high-level physical actions of
//! future interactive-entertainment workloads: continuous contact, periodic
//! contact, high-velocity impulses, explosions and deformations — each
//! matched to a representative game genre (paper Tables 1–3).
//!
//! | Benchmark | Genre | Features |
//! |---|---|---|
//! | [`BenchmarkId::Periodic`] | RPG | humanoid melee combat |
//! | [`BenchmarkId::Ragdoll`] | FPS | falling ragdolls |
//! | [`BenchmarkId::Continuous`] | racing | cars on terrain |
//! | [`BenchmarkId::Breakable`] | FPS | walls, bridges, explosions, debris |
//! | [`BenchmarkId::Deformable`] | sports | cloth uniforms + drapery |
//! | [`BenchmarkId::Explosions`] | RTS | urban battlefield, cannons |
//! | [`BenchmarkId::Highspeed`] | action | high-speed impacts, no blasts |
//! | [`BenchmarkId::Mix`] | — | everything combined |
//! | [`BenchmarkId::Resting`] | — | settled stacks + rare projectiles (sleeping stress) |
//!
//! # Examples
//!
//! ```
//! use parallax_workloads::{BenchmarkId, SceneParams};
//!
//! // Build a 10%-scale Ragdoll scene and run one frame.
//! let params = SceneParams { scale: 0.1, ..SceneParams::default() };
//! let mut scene = BenchmarkId::Ragdoll.build(&params);
//! let profiles = scene.world.step_frame();
//! assert_eq!(profiles.len(), 3);
//! ```

pub mod entities;
pub mod scenes;
pub mod session;
pub mod stats;

use parallax_physics::{SimdMode, World, WorldConfig};
use serde::{Deserialize, Serialize};

pub use session::SessionWorld;
pub use stats::{measure, BenchStats};

/// The eight benchmarks of the suite (paper Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BenchmarkId {
    /// Role-playing genre: groups of humanoids in hand-to-hand combat.
    Periodic,
    /// FPS genre: ragdolls falling from projectile impacts.
    Ragdoll,
    /// Racing genre: rally cars over heightfield/trimesh terrain.
    Continuous,
    /// FPS genre: walls and bridges fractured by cannon fire.
    Breakable,
    /// Sports/action genre: cloth uniforms and large drapery.
    Deformable,
    /// RTS genre: an army with exploding projectiles in an urban area.
    Explosions,
    /// Action genre: high-speed projectiles and crashes, no blasts.
    Highspeed,
    /// Combination of all features.
    Mix,
    /// Temporal-coherence stress: large pre-settled box stacks with a
    /// slow cannon waking one corner — the island-sleeping showcase
    /// (not in the paper's table; most of a game level is at rest most
    /// of the time, which is exactly what sleeping exploits).
    Resting,
}

impl BenchmarkId {
    /// All benchmarks in paper order (plus the post-paper Resting scene).
    pub const ALL: [BenchmarkId; 9] = [
        BenchmarkId::Periodic,
        BenchmarkId::Ragdoll,
        BenchmarkId::Continuous,
        BenchmarkId::Breakable,
        BenchmarkId::Deformable,
        BenchmarkId::Explosions,
        BenchmarkId::Highspeed,
        BenchmarkId::Mix,
        BenchmarkId::Resting,
    ];

    /// Full name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            BenchmarkId::Periodic => "Periodic",
            BenchmarkId::Ragdoll => "Ragdoll",
            BenchmarkId::Continuous => "Continuous",
            BenchmarkId::Breakable => "Breakable",
            BenchmarkId::Deformable => "Deformable",
            BenchmarkId::Explosions => "Explosions",
            BenchmarkId::Highspeed => "Highspeed",
            BenchmarkId::Mix => "Mix",
            BenchmarkId::Resting => "Resting",
        }
    }

    /// Three-letter abbreviation used in the paper's figures.
    pub fn abbrev(self) -> &'static str {
        match self {
            BenchmarkId::Periodic => "Per",
            BenchmarkId::Ragdoll => "Rag",
            BenchmarkId::Continuous => "Con",
            BenchmarkId::Breakable => "Bre",
            BenchmarkId::Deformable => "Def",
            BenchmarkId::Explosions => "Exp",
            BenchmarkId::Highspeed => "Hig",
            BenchmarkId::Mix => "Mix",
            BenchmarkId::Resting => "Res",
        }
    }

    /// Looks a benchmark up by its full name (case-insensitive), the
    /// inverse of [`BenchmarkId::name`]. Used by every CLI and API
    /// surface that accepts a scene by name.
    pub fn by_name(name: &str) -> Option<BenchmarkId> {
        BenchmarkId::ALL
            .into_iter()
            .find(|b| b.name().eq_ignore_ascii_case(name))
    }

    /// Builds the scene at the given parameters.
    pub fn build(self, params: &SceneParams) -> Scene {
        match self {
            BenchmarkId::Periodic => scenes::periodic::build(params),
            BenchmarkId::Ragdoll => scenes::ragdoll::build(params),
            BenchmarkId::Continuous => scenes::continuous::build(params),
            BenchmarkId::Breakable => scenes::breakable::build(params),
            BenchmarkId::Deformable => scenes::deformable::build(params),
            BenchmarkId::Explosions => scenes::explosions::build(params),
            BenchmarkId::Highspeed => scenes::highspeed::build(params),
            BenchmarkId::Mix => scenes::mix::build(params),
            BenchmarkId::Resting => scenes::resting::build(params),
        }
    }
}

/// Parameters scaling a scene's computational load (paper: "all benchmarks
/// have a set of parameters that scale its computational load").
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SceneParams {
    /// Entity-count multiplier (1.0 = the paper's scale).
    pub scale: f32,
    /// RNG seed for deterministic placement jitter.
    pub seed: u64,
    /// Worker threads for the engine's parallel phases.
    pub threads: usize,
    /// Warm-start the solver from the previous step's contact impulses.
    pub warm_starting: bool,
    /// SIMD kernel width for the engine's vectorized sweeps.
    pub simd: SimdMode,
    /// Compute per-phase state digests each step (flight recorder /
    /// divergence bisection). Defaults from `PARALLAX_DIGEST`.
    pub digests: bool,
    /// Island sleeping: settled islands stop simulating until disturbed.
    /// Defaults from `PARALLAX_SLEEP`.
    pub sleeping: bool,
}

impl Default for SceneParams {
    fn default() -> Self {
        SceneParams {
            scale: 1.0,
            seed: 0x7A11AC5,
            threads: 1,
            warm_starting: true,
            simd: SimdMode::resolve(),
            digests: parallax_physics::digest::digests_from_env(),
            sleeping: parallax_physics::sleeping_from_env(),
        }
    }
}

impl SceneParams {
    /// Scales an entity count, keeping at least `min`.
    pub fn count(&self, base: usize, min: usize) -> usize {
        ((base as f32 * self.scale).round() as usize).max(min)
    }

    /// Standard world configuration for the suite (∆t = 0.01 s, 20 solver
    /// iterations, 3 steps per frame).
    pub fn world_config(&self) -> WorldConfig {
        WorldConfig {
            threads: self.threads,
            warm_starting: self.warm_starting,
            simd: self.simd,
            digests: self.digests,
            sleeping: self.sleeping,
            ..WorldConfig::default()
        }
    }
}

/// Static composition of a scene, recorded at build time (Table 4 columns
/// that do not vary per step).
#[derive(Debug, Default, Clone, Copy, Serialize, Deserialize)]
pub struct SceneMeta {
    /// Immobile collision-only objects.
    pub static_objs: usize,
    /// Dynamic rigid bodies (enabled at start).
    pub dynamic_objs: usize,
    /// Debris bodies created for pre-fractured objects.
    pub prefractured_objs: usize,
    /// Permanent joints.
    pub static_joints: usize,
    /// Cloth objects.
    pub cloth_objs: usize,
    /// Total cloth vertices.
    pub cloth_vertices: usize,
}

/// A cloth vertex pinned to a rigid body (e.g. a uniform on a player's
/// shoulders): the world position of `vertex` follows `body`'s frame.
#[derive(Debug, Clone, Copy)]
pub struct ClothAttachment {
    /// Which cloth.
    pub cloth: parallax_physics::ClothId,
    /// Pinned vertex index.
    pub vertex: usize,
    /// Body the vertex follows.
    pub body: parallax_physics::BodyId,
    /// Attachment point in the body's local frame.
    pub local: parallax_math::Vec3,
}

/// Scripted actors that keep a scene active: cannons fire, cars drive,
/// combat groups shove each other, attached cloths follow their wearers.
#[derive(Debug, Default)]
pub struct Actors {
    /// Projectile launchers, updated every step.
    pub cannons: Vec<entities::Cannon>,
    /// Cars with a drive torque applied every step.
    pub cars: Vec<(entities::Car, f32)>,
    /// Combat groups: members periodically shove the next member.
    pub combat_groups: Vec<Vec<entities::Humanoid>>,
    /// Cloth vertices pinned to bodies.
    pub cloth_attachments: Vec<ClothAttachment>,
}

impl Actors {
    /// Runs one tick of actor logic before a physics step.
    pub fn update(&mut self, world: &mut World, step: u64) {
        for c in &mut self.cannons {
            c.update(world);
        }
        // Attached cloth vertices ride their bodies.
        for a in &self.cloth_attachments {
            let pos = world.body(a.body).transform().apply(a.local);
            world.cloth_mut(a.cloth).move_pinned(a.vertex, pos);
        }
        for (car, torque) in &self.cars {
            car.drive(world, *torque);
        }
        // Combat: every 15 steps each member lunges at the next.
        if step.is_multiple_of(15) {
            for group in &self.combat_groups {
                for (i, h) in group.iter().enumerate() {
                    let target = &group[(i + 1) % group.len()];
                    let from = world.body(h.segments[0]).position();
                    let to = world.body(target.segments[0]).position();
                    let dir = (to - from).normalized();
                    h.shove(world, dir * 40.0);
                }
            }
        }
    }
}

/// A built benchmark scene.
pub struct Scene {
    /// The populated world.
    pub world: World,
    /// Which benchmark this is.
    pub id: BenchmarkId,
    /// Static composition counts.
    pub meta: SceneMeta,
    /// Scripted actors driving the scenario.
    pub actors: Actors,
}

impl std::fmt::Debug for Scene {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scene")
            .field("id", &self.id)
            .field("meta", &self.meta)
            .finish()
    }
}

/// A resumable checkpoint of a running [`Scene`]: the world snapshot plus
/// the mutable actor state (only cannons mutate as a scene runs — cars,
/// combat groups and cloth attachments are static body-id lists).
///
/// Restoring into a scene built from the *same* `BenchmarkId` and
/// [`SceneParams`] resumes the run bit-identically; restoring into a
/// structurally different scene is rejected by the snapshot layer.
#[derive(Debug, Clone)]
pub struct SceneCheckpoint {
    /// Serialized world (see `parallax_physics::snapshot`).
    pub world: Vec<u8>,
    /// Cannon firing state (countdowns, shots left, fired projectiles).
    pub cannons: Vec<entities::Cannon>,
}

impl Scene {
    /// Captures a resumable checkpoint of the scene.
    pub fn checkpoint(&self) -> SceneCheckpoint {
        SceneCheckpoint {
            world: self.world.snapshot(),
            cannons: self.actors.cannons.clone(),
        }
    }

    /// Restores a checkpoint taken from a scene built with the same
    /// benchmark and parameters (thread count / SIMD mode may differ —
    /// those live in the config, which a restore never touches).
    pub fn restore(&mut self, cp: &SceneCheckpoint) -> Result<(), parallax_physics::SnapshotError> {
        self.world.restore(&cp.world)?;
        self.actors.cannons = cp.cannons.clone();
        Ok(())
    }

    /// Advances one step, running actor logic first.
    pub fn step(&mut self) -> parallax_physics::StepProfile {
        let step = self.world.step_count();
        self.actors.update(&mut self.world, step);
        self.world.step()
    }

    /// Runs one displayed frame (3 steps) and returns the profiles.
    pub fn step_frame(&mut self) -> Vec<parallax_physics::StepProfile> {
        (0..self.world.config().steps_per_frame)
            .map(|_| self.step())
            .collect()
    }

    /// Warms the scene up and returns profiles for the paper's measured
    /// window: warm-up for `warm_frames`, then profile `measure_frames`
    /// (paper: activity in the first 10 frames, frames 5–7 measured).
    pub fn run_measured(
        &mut self,
        warm_frames: usize,
        measure_frames: usize,
    ) -> Vec<parallax_physics::StepProfile> {
        for _ in 0..warm_frames {
            self.step_frame();
        }
        let mut out = Vec::new();
        for _ in 0..measure_frames {
            out.extend(self.step_frame());
        }
        out
    }
}

#[cfg(test)]
mod actor_tests {
    use super::*;

    #[test]
    fn checkpoint_restore_resumes_bit_identically() {
        let params = SceneParams {
            scale: 0.1,
            digests: true,
            ..Default::default()
        };
        let mut a = BenchmarkId::Mix.build(&params);
        for _ in 0..20 {
            a.step();
        }
        let cp = a.checkpoint();
        let mut b = BenchmarkId::Mix.build(&params);
        b.restore(&cp).expect("same-scene restore");
        assert_eq!(
            parallax_physics::world_digest(&a.world),
            parallax_physics::world_digest(&b.world),
            "restored scene must match the checkpoint source"
        );
        // Both continue in lockstep: cannons keep the same schedule,
        // physics stays bit-identical.
        for step in 0..15 {
            let pa = a.step();
            let pb = b.step();
            assert_eq!(pa.digests, pb.digests, "phase digests diverged at {step}");
            assert_eq!(
                parallax_physics::world_digest(&a.world),
                parallax_physics::world_digest(&b.world),
                "world diverged at {step}"
            );
        }
    }

    #[test]
    fn attached_cloth_follows_its_body() {
        // Regression: uniform pins must track the wearer, not stay at
        // their spawn coordinates.
        let mut scene = BenchmarkId::Deformable.build(&SceneParams {
            scale: 0.1,
            ..Default::default()
        });
        assert!(
            !scene.actors.cloth_attachments.is_empty(),
            "deformable must attach uniforms"
        );
        let a = scene.actors.cloth_attachments[0];
        // Launch the wearer sideways: the pinned vertex must move with it.
        let before = scene.world.cloth(a.cloth).vertices()[a.vertex].pos;
        scene
            .world
            .body_mut(a.body)
            .set_linear_velocity(parallax_math::Vec3::new(50.0, 0.0, 0.0));
        for _ in 0..5 {
            scene.step();
        }
        let after = scene.world.cloth(a.cloth).vertices()[a.vertex].pos;
        assert!(
            (after - before).x > 0.5,
            "pinned vertex did not follow the body: {before:?} -> {after:?}"
        );
    }
}
