//! **Ragdoll Effects** — FPS genre: "30 ragdolls all falling away from
//! each other" due to projectile impacts.

use parallax_math::Vec3;
use parallax_physics::World;

use crate::entities::spawn_humanoid;
use crate::scenes::{finish, ground, ring};
use crate::{Actors, BenchmarkId, Scene, SceneParams};

/// Builds the Ragdoll scene.
pub fn build(params: &SceneParams) -> Scene {
    let mut world = World::new(params.world_config());
    ground(&mut world);

    let n = params.count(30, 2);
    for (i, pos) in ring(Vec3::ZERO, 2.5, 1.5, n).into_iter().enumerate() {
        let yaw = i as f32 / n as f32 * std::f32::consts::TAU;
        let h = spawn_humanoid(&mut world, pos, yaw);
        // Impact impulse: outward and slightly up, as if hit by a
        // projectile from the centre.
        let dir = Vec3::new(pos.x, 0.0, pos.z).normalized() + Vec3::new(0.0, 0.4, 0.0);
        for seg in [h.segments[0], h.segments[2]] {
            let p = world.body(seg).position();
            world.body_mut(seg).apply_impulse_at(dir * 60.0, p);
        }
    }
    finish(world, BenchmarkId::Ragdoll, Actors::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_matches_paper_composition() {
        let scene = build(&SceneParams::default());
        assert_eq!(scene.meta.dynamic_objs, 480);
        assert_eq!(scene.meta.static_joints, 450);
    }

    #[test]
    fn ragdolls_fly_apart() {
        let mut scene = build(&SceneParams {
            scale: 0.1,
            ..Default::default()
        });
        let r0: f32 = scene
            .world
            .bodies()
            .iter()
            .filter(|b| !b.is_static())
            .map(|b| (b.position() - Vec3::new(0.0, b.position().y, 0.0)).length())
            .sum();
        for _ in 0..30 {
            scene.step();
        }
        let r1: f32 = scene
            .world
            .bodies()
            .iter()
            .filter(|b| !b.is_static())
            .map(|b| (b.position() - Vec3::new(0.0, b.position().y, 0.0)).length())
            .sum();
        assert!(r1 > r0, "ragdolls should scatter outward: {r0} -> {r1}");
    }
}
