//! **Continuous Contact** — racing genre: "a rally race with 30 cars
//! driving over terrain formed by heightfields and trimeshes" between
//! static obstacles (paper: 1,700 static objects).

use parallax_math::Vec3;
use parallax_physics::{Shape, World};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::entities::{heightfield_terrain, spawn_car, trimesh_terrain};
use crate::scenes::finish;
use crate::{Actors, BenchmarkId, Scene, SceneParams};

/// Builds the Continuous scene.
pub fn build(params: &SceneParams) -> Scene {
    let mut world = World::new(params.world_config());
    let mut rng = SmallRng::seed_from_u64(params.seed);

    // Rolling heightfield course plus trimesh patches.
    heightfield_terrain(&mut world, 48, 48, 3.0, 0.6, params.seed);
    let patches = params.count(4, 1);
    for i in 0..patches {
        let a = i as f32 / patches as f32 * std::f32::consts::TAU;
        trimesh_terrain(
            &mut world,
            Vec3::new(a.cos() * 30.0, 0.7, a.sin() * 30.0),
            8.0,
            10,
        );
    }

    // Static obstacles densely lining the rally course — the cars slalom
    // between them (paper: 1,700 static objects).
    let obstacles = params.count(1695, 10);
    for _ in 0..obstacles {
        let x = rng.gen_range(-30.0f32..55.0);
        let z = rng.gen_range(-16.0f32..16.0);
        let shape = if rng.gen_bool(0.5) {
            Shape::cuboid(Vec3::new(0.3, 0.5, 0.3))
        } else {
            Shape::capsule(0.25, 0.4)
        };
        world.add_static_geom_at(
            shape,
            parallax_math::Transform::from_position(Vec3::new(x, 0.6, z)),
        );
    }

    // 30 rally cars on the start grid, driving.
    let mut actors = Actors::default();
    let cars = params.count(30, 1);
    for i in 0..cars {
        let lane = (i % 6) as f32;
        let row = (i / 6) as f32;
        let pos = Vec3::new(-20.0 + row * 4.0, 2.2, -10.0 + lane * 3.5);
        let car = spawn_car(&mut world, pos, 0.0, None);
        actors.cars.push((car, -40.0));
    }
    finish(world, BenchmarkId::Continuous, actors)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_matches_paper_composition() {
        let scene = build(&SceneParams::default());
        // 30 cars × 9 bodies.
        assert_eq!(scene.meta.dynamic_objs, 270);
        // Heightfield + 4 trimesh patches + 1,695 obstacles + 60 static
        // anchors... no anchors here: exactly 1 + 4 + 1695.
        assert_eq!(scene.meta.static_objs, 1700);
        assert_eq!(scene.meta.static_joints, 240);
    }

    #[test]
    fn cars_stay_on_terrain() {
        let mut scene = build(&SceneParams {
            scale: 0.1,
            ..Default::default()
        });
        for _ in 0..20 {
            scene.step();
        }
        for (car, _) in &scene.actors.cars {
            let y = scene.world.body(car.chassis).position().y;
            assert!(y > -3.0, "car fell through terrain at y={y}");
        }
    }
}
