//! **Explosions** — RTS genre: "10 areas are enclosed on three sides by
//! walls. 50 vehicles roam the area with 10 cannons shooting exploding
//! projectiles. There are no breakable joints or prefractured objects."

use parallax_math::Vec3;
use parallax_physics::{ExplosionConfig, World};

use crate::entities::{spawn_building, spawn_car, BuildingSpec, Cannon, WallSpec};
use crate::scenes::{finish, ground};
use crate::{Actors, BenchmarkId, Scene, SceneParams};

/// Solid (non-fracturing) wall of 100 bricks.
pub(crate) fn solid_wall() -> WallSpec {
    WallSpec {
        bricks_x: 10,
        courses: 10,
        brick_half: Vec3::new(0.4, 0.2, 0.2),
        debris_per_brick: 0,
    }
}

/// Builds the Explosions scene.
pub fn build(params: &SceneParams) -> Scene {
    let mut world = World::new(params.world_config());
    ground(&mut world);

    let areas = params.count(10, 1);
    let spec = BuildingSpec {
        wall: solid_wall(),
        half_size: 7.0,
    };
    for a in 0..areas {
        let center = Vec3::new(
            (a % 5) as f32 * 25.0 - 50.0,
            0.0,
            (a / 5) as f32 * 25.0 - 12.0,
        );
        spawn_building(&mut world, center, &spec);
    }

    let mut actors = Actors::default();
    // 50 roaming vehicles.
    let cars = params.count(50, 1);
    for i in 0..cars {
        let pos = Vec3::new(
            (i % 10) as f32 * 8.0 - 36.0,
            0.9,
            (i / 10) as f32 * 8.0 - 16.0,
        );
        let car = spawn_car(&mut world, pos, i as f32 * 0.6, None);
        actors.cars.push((car, -35.0));
    }

    // 10 cannons with exploding projectiles.
    let cannons = params.count(10, 1);
    for i in 0..cannons {
        let a = i as f32 / cannons as f32 * std::f32::consts::TAU;
        let pos = Vec3::new(a.cos() * 60.0, 3.0, a.sin() * 60.0);
        let dir = (Vec3::new(0.0, 8.0, 0.0) - pos).normalized() + Vec3::new(0.0, 0.35, 0.0);
        actors.cannons.push(Cannon::new(
            pos,
            dir,
            35.0,
            9,
            20,
            Some(ExplosionConfig {
                blast_radius: 4.0,
                duration_steps: 8,
                impulse: 70.0,
            }),
        ));
    }
    finish(world, BenchmarkId::Explosions, actors)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_composition_near_paper() {
        let scene = build(&SceneParams::default());
        // Paper: 3,459 dynamic. Ours: 10 areas × 300 bricks + 50 cars × 9
        // = 3,000 + 450 = 3,450 (projectiles appear at runtime).
        assert_eq!(scene.meta.dynamic_objs, 3_450);
        assert_eq!(scene.meta.prefractured_objs, 0);
        assert_eq!(scene.actors.cannons.len(), 10);
    }

    #[test]
    fn cannons_cause_explosions() {
        let mut scene = build(&SceneParams {
            scale: 0.1,
            ..Default::default()
        });
        let mut explosions = 0;
        for _ in 0..400 {
            let p = scene.step();
            explosions += p.events.explosions;
        }
        assert!(explosions > 0, "projectiles should detonate on impact");
    }
}
