//! **Highspeed** — action genre: "there are 10 buildings and 20 moving
//! cars. 10 cannons shoot high-speed projectiles at the buildings. There
//! are no explosions — just the complexity of detecting high-speed
//! impacts."

use parallax_math::Vec3;
use parallax_physics::World;

use crate::entities::{spawn_building, spawn_car, BuildingSpec, Cannon};
use crate::scenes::{finish, ground};
use crate::{Actors, BenchmarkId, Scene, SceneParams};

/// Builds the Highspeed scene.
pub fn build(params: &SceneParams) -> Scene {
    let mut world = World::new(params.world_config());
    ground(&mut world);

    let buildings = params.count(10, 1);
    let spec = BuildingSpec {
        wall: super::explosions::solid_wall(),
        half_size: 7.0,
    };
    let mut targets = Vec::with_capacity(buildings);
    for b in 0..buildings {
        let center = Vec3::new(
            (b % 5) as f32 * 25.0 - 50.0,
            0.0,
            (b / 5) as f32 * 25.0 - 12.0,
        );
        spawn_building(&mut world, center, &spec);
        targets.push(center);
    }

    let mut actors = Actors::default();
    let cars = params.count(20, 1);
    for i in 0..cars {
        let pos = Vec3::new(
            (i % 5) as f32 * 10.0 - 20.0,
            0.9,
            (i / 5) as f32 * 10.0 - 15.0,
        );
        let car = spawn_car(&mut world, pos, i as f32, None);
        // Crashing cars: send them fast toward the buildings.
        let target = targets[i % targets.len()] + Vec3::new(0.0, 1.0, 0.0);
        let dir = (target - pos).normalized();
        car.set_velocity(&mut world, dir * 20.0);
        actors.cars.push((car, -50.0));
    }

    // High-speed, inert projectiles (120 m/s — the paper's stress on
    // fast-object collision detection).
    let cannons = params.count(10, 1);
    for i in 0..cannons {
        let a = i as f32 / cannons as f32 * std::f32::consts::TAU;
        let pos = Vec3::new(a.cos() * 70.0, 4.0, a.sin() * 70.0);
        let target = targets[i % targets.len()] + Vec3::new(0.0, 2.0, 0.0);
        let dir = (target - pos).normalized();
        actors
            .cannons
            .push(Cannon::new(pos, dir, 120.0, 6, 30, None));
    }
    finish(world, BenchmarkId::Highspeed, actors)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_composition_near_paper() {
        let scene = build(&SceneParams::default());
        // Paper: 3,309 dynamic. Ours: 10 × 300 bricks + 20 cars × 9 = 3,180.
        assert_eq!(scene.meta.dynamic_objs, 3_180);
        assert_eq!(scene.meta.cloth_objs, 0);
        assert_eq!(scene.meta.prefractured_objs, 0);
    }

    #[test]
    fn no_explosions_occur() {
        let mut scene = build(&SceneParams {
            scale: 0.1,
            ..Default::default()
        });
        let mut explosions = 0;
        for _ in 0..100 {
            explosions += scene.step().events.explosions;
        }
        assert_eq!(explosions, 0, "highspeed has no explosive payloads");
    }
}
