//! The eight benchmark scenes (paper Table 3), plus the post-paper
//! Resting scene exercising the island-sleeping fast path.

pub mod breakable;
pub mod continuous;
pub mod deformable;
pub mod explosions;
pub mod highspeed;
pub mod mix;
pub mod periodic;
pub mod ragdoll;
pub mod resting;

use parallax_math::Vec3;
use parallax_physics::{BodyFlags, Shape, World};

use crate::{Actors, BenchmarkId, Scene, SceneMeta};

/// Adds the standard ground plane.
pub(crate) fn ground(world: &mut World) {
    world.add_static_geom(Shape::plane(Vec3::UNIT_Y, 0.0));
}

/// Computes [`SceneMeta`] from the built world and wraps everything into a
/// [`Scene`].
pub(crate) fn finish(world: World, id: BenchmarkId, actors: Actors) -> Scene {
    let mut meta = SceneMeta::default();
    for b in world.bodies() {
        if b.flags().contains(BodyFlags::DEBRIS) {
            meta.prefractured_objs += 1;
        } else if b.is_static() {
            meta.static_objs += 1;
        } else if !b.is_disabled() {
            meta.dynamic_objs += 1;
        }
    }
    // World-static geoms (planes, terrain, obstacles without bodies).
    meta.static_objs += world.geoms().iter().filter(|g| g.body().is_none()).count();
    meta.static_joints = world.joints().len();
    meta.cloth_objs = world.cloths().len();
    meta.cloth_vertices = world.cloths().iter().map(|c| c.vertices().len()).sum();
    Scene {
        world,
        id,
        meta,
        actors,
    }
}

/// Deterministic placement ring: `n` positions on a circle of `radius`
/// around `center`, at height `y`.
pub(crate) fn ring(center: Vec3, radius: f32, y: f32, n: usize) -> Vec<Vec3> {
    (0..n)
        .map(|i| {
            let a = i as f32 / n as f32 * std::f32::consts::TAU;
            center + Vec3::new(a.cos() * radius, y, a.sin() * radius)
        })
        .collect()
}

/// Deterministic grid: up to `n` positions spaced `spacing` apart centred
/// on `center` at height `y`.
pub(crate) fn grid(center: Vec3, spacing: f32, y: f32, n: usize) -> Vec<Vec3> {
    let cols = (n as f32).sqrt().ceil() as usize;
    (0..n)
        .map(|i| {
            let (r, c) = (i / cols, i % cols);
            let off = (cols as f32 - 1.0) * 0.5;
            center
                + Vec3::new(
                    (c as f32 - off) * spacing,
                    y,
                    (r as f32 - (n as f32 / cols as f32 - 1.0) * 0.5) * spacing,
                )
        })
        .collect()
}
