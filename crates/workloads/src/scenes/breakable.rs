//! **Breakable** — FPS genre: "Three areas are each enclosed by three
//! walls. Two bridges are in each area. 30 humans are scattered in groups
//! of 10. The wall bricks fracture into pieces due to explosions from the
//! cannonballs. Six vehicles ram the walls and explode upon contact."

use parallax_math::Vec3;
use parallax_physics::{ExplosionConfig, World};

use crate::entities::{spawn_bridge, spawn_building, spawn_humanoid, BuildingSpec, WallSpec};
use crate::scenes::{finish, grid, ground};
use crate::{Actors, BenchmarkId, Scene, SceneParams};

/// Wall specification matching the paper's debris counts (≈5,650 debris
/// pieces at full scale: 9 walls × 60 bricks × ~10 pieces).
pub(crate) fn breakable_wall() -> WallSpec {
    WallSpec {
        bricks_x: 10,
        courses: 6,
        brick_half: Vec3::new(0.4, 0.2, 0.2),
        debris_per_brick: 10,
    }
}

/// Builds the Breakable scene.
pub fn build(params: &SceneParams) -> Scene {
    let mut world = World::new(params.world_config());
    ground(&mut world);

    let areas = params.count(3, 1);
    let spec = BuildingSpec {
        wall: breakable_wall(),
        half_size: 6.0,
    };
    let mut actors = Actors::default();
    for a in 0..areas {
        let center = Vec3::new(a as f32 * 25.0 - 25.0, 0.0, 0.0);
        spawn_building(&mut world, center, &spec);

        // Two bridges per area.
        for b in 0..2 {
            let z = if b == 0 { -3.0 } else { 3.0 };
            spawn_bridge(
                &mut world,
                center + Vec3::new(-4.0, 2.5, z),
                center + Vec3::new(4.0, 2.5, z),
                8,
                25.0,
            );
        }

        // 10 humans per area.
        for pos in grid(center + Vec3::new(0.0, 0.0, 0.0), 1.6, 0.0, 10) {
            spawn_humanoid(&mut world, pos, 0.7 * a as f32);
        }

        // Two ramming vehicles per area, aimed at the back wall, explosive.
        for v in 0..2 {
            let z = if v == 0 { -2.0 } else { 2.0 };
            let car = crate::entities::spawn_car(
                &mut world,
                center + Vec3::new(10.0, 0.9, z),
                std::f32::consts::PI,
                Some(30.0),
            );
            car.set_velocity(&mut world, Vec3::new(-14.0, 0.0, 0.0));
            world.make_explosive(
                car.chassis,
                ExplosionConfig {
                    blast_radius: 5.0,
                    duration_steps: 8,
                    impulse: 90.0,
                },
            );
            actors.cars.push((car, -30.0));
        }
    }
    finish(world, BenchmarkId::Breakable, actors)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_composition_near_paper() {
        let scene = build(&SceneParams::default());
        // Paper: 1,608 dynamic, 5,652 prefractured, 564 static joints.
        // Ours: 9 walls × 60 bricks + 30 humans × 16 + 6 cars × 9 +
        // 6 bridges × 8 planks = 540 + 480 + 54 + 48 = 1,122 dynamic;
        // 5,400 debris; 450 + 48 + 54 = 552 joints.
        assert_eq!(scene.meta.prefractured_objs, 5_400);
        assert_eq!(scene.meta.dynamic_objs, 1_122);
        assert_eq!(scene.meta.static_joints, 552);
    }

    #[test]
    fn ramming_cars_explode_and_shatter_bricks() {
        let mut scene = build(&SceneParams {
            scale: 0.34,
            ..Default::default()
        });
        let mut explosions = 0;
        let mut shattered = 0;
        for _ in 0..250 {
            let p = scene.step();
            explosions += p.events.explosions;
            shattered += p.events.shattered;
        }
        assert!(explosions > 0, "a ramming car should detonate");
        assert!(shattered > 0, "bricks should shatter in the blast");
    }
}
