//! **Resting** — temporal-coherence stress: a warehouse floor of box
//! stacks placed at exact rest height, plus one slow cannon lobbing a
//! ball into a corner every few seconds.
//!
//! Not one of the paper's eight scenes; it models the part of a game
//! level the paper's activity-dense benchmarks deliberately exclude —
//! the 95% of objects that just sit there. With island sleeping enabled
//! the settled stacks deactivate after `sleep_steps` quiet steps and
//! the per-step cost collapses to the few islands the cannon keeps
//! disturbing; with sleeping disabled every stack re-solves its resting
//! contacts every step. The `bench_gate --sleep` A/B comparison runs on
//! exactly this contrast.

use parallax_math::Vec3;
use parallax_physics::{BodyDesc, Shape, World};

use crate::entities::Cannon;
use crate::scenes::{finish, grid, ground};
use crate::{Actors, BenchmarkId, Scene, SceneParams};

/// Box half-extent: stacks are columns of 0.8 m cubes.
const HALF: f32 = 0.4;
/// Boxes per stack.
const STACK: usize = 5;

/// Builds the Resting scene.
pub fn build(params: &SceneParams) -> Scene {
    let mut world = World::new(params.world_config());
    ground(&mut world);

    // A floor of stacks, spaced far enough apart that each stack is its
    // own island. Placed at exact rest height so they settle within a
    // few dozen steps instead of slamming down.
    let stacks = params.count(49, 4);
    for base in grid(Vec3::ZERO, 3.0, 0.0, stacks) {
        for level in 0..STACK {
            let y = HALF + level as f32 * 2.0 * HALF;
            world.add_body(
                BodyDesc::dynamic(Vec3::new(base.x, y, base.z))
                    .with_shape(Shape::cuboid(Vec3::splat(HALF)), 4.0),
            );
        }
    }

    // One cannon at a corner, lobbing a heavy ball into the nearest
    // stacks every 45 steps: most of the floor stays asleep while the
    // impact corner keeps waking and re-settling.
    let extent = (stacks as f32).sqrt().ceil() * 1.5 + 3.0;
    let mut actors = Actors::default();
    actors.cannons.push(Cannon::new(
        Vec3::new(-extent - 4.0, 2.5, -extent - 4.0),
        Vec3::new(1.0, 0.1, 1.0),
        30.0,
        45,
        usize::MAX,
        None,
    ));
    finish(world, BenchmarkId::Resting, actors)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_composition() {
        let scene = build(&SceneParams::default());
        assert_eq!(scene.meta.dynamic_objs, 49 * STACK);
        assert_eq!(scene.meta.static_joints, 0);
        assert_eq!(scene.actors.cannons.len(), 1);
    }

    #[test]
    fn stacks_fall_asleep_and_projectiles_wake_them() {
        let mut scene = build(&SceneParams {
            scale: 0.1,
            sleeping: true,
            ..Default::default()
        });
        let mut slept = 0usize;
        for _ in 0..200 {
            let p = scene.step();
            slept = slept.max(p.sleeping_bodies);
        }
        assert!(
            slept >= STACK,
            "at least one stack must fall asleep in 200 steps, peak was {slept}"
        );
        assert!(
            !scene.actors.cannons[0].fired().is_empty(),
            "cannon must have fired"
        );
    }
}
