//! **Deformable** — sports/action genre: "30 uniformed players and 2 large
//! cloth objects each in contact with one player. Each uniform is a small
//! cloth object attached on a player." Small cloths are 25 vertices, large
//! cloths 625 (paper Table 2).

use parallax_math::Vec3;
use parallax_physics::{Cloth, World};

use crate::entities::spawn_humanoid;
use crate::scenes::{finish, grid, ground};
use crate::{Actors, BenchmarkId, Scene, SceneParams};

/// Builds the Deformable scene.
pub fn build(params: &SceneParams) -> Scene {
    let mut world = World::new(params.world_config());
    ground(&mut world);

    let players = params.count(30, 2);
    let mut player_handles = Vec::with_capacity(players);
    let mut actors = Actors::default();
    for (i, pos) in grid(Vec3::ZERO, 2.5, 0.0, players).into_iter().enumerate() {
        let h = spawn_humanoid(&mut world, pos, i as f32 * 0.4);
        // Uniform: a 5×5 cloth draped over the shoulders, pinned at the two
        // top corners which follow the upper torso.
        let cloth = Cloth::rectangle(pos + Vec3::new(-0.2, 1.55, -0.2), 0.4, 0.4, 5, 5, &[0, 4]);
        let cid = world.add_cloth(cloth);
        let torso = h.segments[2];
        for (vertex, local) in [
            (0usize, Vec3::new(-0.2, 0.12, -0.2)),
            (4usize, Vec3::new(0.2, 0.12, -0.2)),
        ] {
            actors.cloth_attachments.push(crate::ClothAttachment {
                cloth: cid,
                vertex,
                body: torso,
                local,
            });
        }
        player_handles.push(h);
    }

    // Two large drapery cloths (25×25 = 625 vertices), hanging over the
    // first players.
    let large = params.count(2, 1);
    for i in 0..large {
        let anchor = world
            .body(player_handles[i % player_handles.len()].segments[0])
            .position();
        let mut cloth =
            Cloth::rectangle(anchor + Vec3::new(-1.5, 2.4, -1.5), 3.0, 3.0, 25, 25, &[]);
        // Pin the whole +X edge so the drape hangs.
        for k in 0..25 {
            cloth.pin(k);
        }
        world.add_cloth(cloth);
    }
    finish(world, BenchmarkId::Deformable, actors)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_matches_paper_composition() {
        let scene = build(&SceneParams::default());
        // Paper Table 4: 32 cloths [2000 vertices], 480 dynamic objects.
        assert_eq!(scene.meta.cloth_objs, 32);
        assert_eq!(scene.meta.cloth_vertices, 30 * 25 + 2 * 625);
        assert_eq!(scene.meta.dynamic_objs, 480);
    }

    #[test]
    fn cloths_interact_with_players() {
        let mut scene = build(&SceneParams {
            scale: 0.1,
            ..Default::default()
        });
        let mut touched = false;
        for _ in 0..40 {
            scene.step();
            touched |= scene
                .world
                .cloths()
                .iter()
                .any(|c| !c.contact_bodies().is_empty());
        }
        assert!(touched, "some cloth should contact a player");
    }
}
