//! **Periodic** — role-playing genre: "30 humanoids with 3 groups of 5,
//! 3 groups of 3, and 3 groups of 2 where all members of each group are
//! engaged in combat with one another."

use parallax_math::Vec3;
use parallax_physics::World;

use crate::entities::spawn_humanoid;
use crate::scenes::{finish, ground, ring};
use crate::{Actors, BenchmarkId, Scene, SceneParams};

/// Builds the Periodic scene.
pub fn build(params: &SceneParams) -> Scene {
    let mut world = World::new(params.world_config());
    ground(&mut world);

    // Group sizes from the paper, replicated `scale` times each.
    let replicas = params.count(3, 1);
    let mut actors = Actors::default();
    let mut arena = 0usize;
    for &group_size in &[5usize, 3, 2] {
        for _ in 0..replicas {
            let center = arena_center(arena);
            arena += 1;
            let mut group = Vec::with_capacity(group_size);
            for (i, pos) in ring(center, 0.9, 0.0, group_size).into_iter().enumerate() {
                // Face roughly towards the group centre.
                let yaw =
                    std::f32::consts::PI + i as f32 / group_size as f32 * std::f32::consts::TAU;
                group.push(spawn_humanoid(&mut world, pos, yaw));
            }
            actors.combat_groups.push(group);
        }
    }
    finish(world, BenchmarkId::Periodic, actors)
}

fn arena_center(i: usize) -> Vec3 {
    let cols = 3;
    Vec3::new(
        (i % cols) as f32 * 8.0 - 8.0,
        0.0,
        (i / cols) as f32 * 8.0 - 8.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_matches_paper_composition() {
        let scene = build(&SceneParams::default());
        // 3×(5+3+2) = 30 humanoids of 16 segments.
        assert_eq!(scene.meta.dynamic_objs, 480);
        assert_eq!(scene.meta.static_joints, 450);
        assert_eq!(scene.meta.cloth_objs, 0);
        assert_eq!(scene.actors.combat_groups.len(), 9);
    }

    #[test]
    fn scaled_scene_runs_and_generates_contacts() {
        let mut scene = build(&SceneParams {
            scale: 0.34,
            ..Default::default()
        });
        let profiles = scene.run_measured(1, 1);
        let pairs: usize = profiles.iter().map(|p| p.pairs.len()).sum();
        assert!(pairs > 0, "combatants should touch the ground at least");
    }
}
