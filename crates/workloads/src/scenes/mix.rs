//! **Mix** — "a combination of all the features and entities used in the
//! previous 7 benchmarks. There are 3 buildings, 6 bridges, 30 humanoids
//! and 6 vehicles in the area. The humanoids are draped in cloth, and the
//! buildings' openings are covered by large cloths. Heightfield terrain,
//! breakable joints, prefractured objects, and exploding projectiles are
//! all used."

use parallax_math::Vec3;
use parallax_physics::{Cloth, ExplosionConfig, World};

use crate::entities::{
    heightfield_terrain, spawn_bridge, spawn_building, spawn_car, spawn_humanoid, BuildingSpec,
    Cannon,
};
use crate::scenes::{finish, grid};
use crate::{Actors, BenchmarkId, Scene, SceneParams};

/// Builds the Mix scene.
pub fn build(params: &SceneParams) -> Scene {
    let mut world = World::new(params.world_config());
    // Heightfield terrain instead of a flat plane.
    heightfield_terrain(&mut world, 64, 64, 2.5, 0.4, params.seed);

    let buildings = params.count(3, 1);
    let spec = BuildingSpec {
        wall: super::breakable::breakable_wall(),
        half_size: 6.0,
    };
    let mut centers = Vec::with_capacity(buildings);
    for b in 0..buildings {
        let center = Vec3::new(b as f32 * 28.0 - 28.0, 1.0, 0.0);
        spawn_building(&mut world, center, &spec);
        centers.push(center);

        // Large cloth covering each building's opening (25×25 = 625).
        let mut cloth = Cloth::rectangle(center + Vec3::new(4.5, 4.0, -1.5), 3.0, 3.0, 25, 25, &[]);
        for k in 0..25 {
            cloth.pin(k);
        }
        world.add_cloth(cloth);

        // Two bridges per building.
        for i in 0..2 {
            let z = if i == 0 { -4.0 } else { 4.0 };
            spawn_bridge(
                &mut world,
                center + Vec3::new(-4.0, 3.0, z),
                center + Vec3::new(4.0, 3.0, z),
                8,
                25.0,
            );
        }
    }

    // 30 humanoids draped in small cloths that follow their torsos.
    let mut actors = Actors::default();
    let humans = params.count(30, 2);
    for (i, pos) in grid(Vec3::new(0.0, 1.2, 14.0), 2.2, 0.0, humans)
        .into_iter()
        .enumerate()
    {
        let h = spawn_humanoid(&mut world, pos, i as f32 * 0.5);
        let cloth = Cloth::rectangle(pos + Vec3::new(-0.2, 1.55, -0.2), 0.4, 0.4, 5, 5, &[0, 4]);
        let cid = world.add_cloth(cloth);
        for (vertex, local) in [
            (0usize, Vec3::new(-0.2, 0.12, -0.2)),
            (4usize, Vec3::new(0.2, 0.12, -0.2)),
        ] {
            actors.cloth_attachments.push(crate::ClothAttachment {
                cloth: cid,
                vertex,
                body: h.segments[2],
                local,
            });
        }
    }
    // 6 vehicles.
    let cars = params.count(6, 1);
    for i in 0..cars {
        let pos = Vec3::new(i as f32 * 6.0 - 15.0, 2.0, -14.0);
        let car = spawn_car(&mut world, pos, 0.3 * i as f32, Some(40.0));
        actors.cars.push((car, -35.0));
    }

    // Exploding projectiles aimed at the buildings.
    let cannons = params.count(6, 1);
    for i in 0..cannons {
        let a = i as f32 / cannons as f32 * std::f32::consts::TAU;
        let pos = Vec3::new(a.cos() * 50.0, 4.0, a.sin() * 50.0);
        let target = centers[i % centers.len()] + Vec3::new(0.0, 2.0, 0.0);
        let dir = (target - pos).normalized() + Vec3::new(0.0, 0.25, 0.0);
        actors.cannons.push(Cannon::new(
            pos,
            dir,
            40.0,
            8,
            24,
            Some(ExplosionConfig {
                blast_radius: 4.5,
                duration_steps: 8,
                impulse: 80.0,
            }),
        ));
    }
    finish(world, BenchmarkId::Mix, actors)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_composition_near_paper() {
        let scene = build(&SceneParams::default());
        // Paper: 33 cloths [2,625 vertices], 1,608 dynamic, 5,652 debris.
        assert_eq!(scene.meta.cloth_objs, 33);
        assert_eq!(scene.meta.cloth_vertices, 30 * 25 + 3 * 625);
        assert_eq!(scene.meta.prefractured_objs, 5_400);
        // 540 bricks + 480 human segments + 54 car bodies + 48 planks.
        assert_eq!(scene.meta.dynamic_objs, 1_122);
    }

    #[test]
    fn mix_exercises_every_feature() {
        let mut scene = build(&SceneParams {
            scale: 0.34,
            ..Default::default()
        });
        let mut explosions = 0;
        let mut cloth_work = 0;
        for _ in 0..150 {
            let p = scene.step();
            explosions += p.events.explosions;
            cloth_work += p.cloths.len();
        }
        assert!(explosions > 0, "cannons should hit something");
        assert!(cloth_work > 0, "cloth must be simulated");
    }
}
