//! Cannons: periodic launchers of (optionally explosive) projectiles —
//! "time bombs and cannonballs are used" (paper Table 2).

use parallax_math::Vec3;
use parallax_physics::{BodyDesc, BodyId, ExplosionConfig, Shape, World};

/// A projectile launcher. Call [`Cannon::update`] once per step; it fires
/// every `period_steps` steps until `max_shots` is reached.
#[derive(Debug, Clone)]
pub struct Cannon {
    /// Muzzle position.
    pub position: Vec3,
    /// Firing direction (normalized at construction).
    pub direction: Vec3,
    /// Muzzle speed (m/s).
    pub speed: f32,
    /// Steps between shots.
    pub period_steps: u64,
    /// Shots remaining.
    pub shots_left: usize,
    /// Explosive payload configuration; `None` fires inert cannonballs
    /// (the Highspeed scenario).
    pub explosive: Option<ExplosionConfig>,
    /// Projectile radius.
    pub radius: f32,
    /// Projectile mass.
    pub mass: f32,
    fired: Vec<BodyId>,
    countdown: u64,
}

impl Cannon {
    /// Creates a cannon with `max_shots` rounds.
    pub fn new(
        position: Vec3,
        direction: Vec3,
        speed: f32,
        period_steps: u64,
        max_shots: usize,
        explosive: Option<ExplosionConfig>,
    ) -> Self {
        Cannon {
            position,
            direction: direction.normalized(),
            speed,
            period_steps: period_steps.max(1),
            shots_left: max_shots,
            explosive,
            radius: 0.2,
            mass: 8.0,
            fired: Vec::new(),
            countdown: 1,
        }
    }

    /// Steps the cannon; fires when the period elapses. Returns the
    /// projectile id when a shot is fired.
    pub fn update(&mut self, world: &mut World) -> Option<BodyId> {
        if self.shots_left == 0 {
            return None;
        }
        self.countdown -= 1;
        if self.countdown > 0 {
            return None;
        }
        self.countdown = self.period_steps;
        self.shots_left -= 1;

        let id = world.add_body(
            BodyDesc::dynamic(self.position)
                .with_shape(Shape::sphere(self.radius), self.mass)
                .with_velocity(self.direction * self.speed),
        );
        if let Some(cfg) = self.explosive {
            world.make_explosive(id, cfg);
        }
        self.fired.push(id);
        Some(id)
    }

    /// Projectiles fired so far.
    pub fn fired(&self) -> &[BodyId] {
        &self.fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parallax_physics::WorldConfig;

    #[test]
    fn cannon_fires_on_schedule() {
        let mut w = World::new(WorldConfig::default());
        let mut c = Cannon::new(Vec3::ZERO, Vec3::UNIT_X, 50.0, 3, 2, None);
        let mut shots = Vec::new();
        for step in 0..10 {
            if let Some(id) = c.update(&mut w) {
                shots.push((step, id));
            }
            w.step();
        }
        assert_eq!(shots.len(), 2);
        assert_eq!(shots[0].0, 0);
        assert_eq!(shots[1].0, 3);
        assert_eq!(c.fired().len(), 2);
    }

    #[test]
    fn projectile_has_muzzle_velocity() {
        let mut w = World::new(WorldConfig::default());
        let mut c = Cannon::new(Vec3::ZERO, Vec3::new(2.0, 0.0, 0.0), 40.0, 1, 1, None);
        let id = c.update(&mut w).expect("fires immediately");
        assert!((w.body(id).linear_velocity().x - 40.0).abs() < 1e-3);
    }

    #[test]
    fn explosive_projectile_is_flagged() {
        let mut w = World::new(WorldConfig::default());
        let mut c = Cannon::new(
            Vec3::ZERO,
            Vec3::UNIT_X,
            40.0,
            1,
            1,
            Some(ExplosionConfig::default()),
        );
        let id = c.update(&mut w).unwrap();
        assert!(w
            .body(id)
            .flags()
            .contains(parallax_physics::BodyFlags::EXPLOSIVE));
    }
}
