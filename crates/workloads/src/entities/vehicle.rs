//! Vehicles: "a body, rotating wheels, and a suspension system of slider
//! joints" (paper Table 2).

use parallax_math::{Quat, Vec3};
use parallax_physics::{BodyDesc, BodyId, Joint, JointId, JointKind, Shape, World};

/// Handle to a spawned car: chassis + 4 (hub, wheel) pairs = 9 bodies,
/// 8 joints (4 suspension sliders + 4 wheel hinges).
#[derive(Debug, Clone)]
pub struct Car {
    /// The chassis body.
    pub chassis: BodyId,
    /// Suspension hub bodies (front-left, front-right, rear-left,
    /// rear-right).
    pub hubs: [BodyId; 4],
    /// Wheel bodies in the same order.
    pub wheels: [BodyId; 4],
    /// All 8 joints.
    pub joints: Vec<JointId>,
}

/// Spawns a car at `pos` (chassis centre), facing `yaw` radians about Y,
/// optionally with breakable suspension (threshold in impulse units).
pub fn spawn_car(world: &mut World, pos: Vec3, yaw: f32, breakable: Option<f32>) -> Car {
    let rot = Quat::from_axis_angle(Vec3::UNIT_Y, yaw);
    let chassis_half = Vec3::new(1.0, 0.25, 0.5);
    let chassis = world.add_body(
        BodyDesc::dynamic(pos)
            .with_rotation(rot)
            .with_shape(Shape::cuboid(chassis_half), 800.0)
            .with_damping(0.05, 0.3),
    );

    let wheel_r = 0.3;
    let mut hubs = Vec::with_capacity(4);
    let mut wheels = Vec::with_capacity(4);
    let mut joints = Vec::new();
    for (lx, lz) in [(0.7f32, 0.55f32), (0.7, -0.55), (-0.7, 0.55), (-0.7, -0.55)] {
        let hub_local = Vec3::new(lx, -0.25, lz);
        let hub_pos = pos + rot.rotate(hub_local);
        let hub = world.add_body(
            BodyDesc::dynamic(hub_pos)
                .with_rotation(rot)
                .with_shape(Shape::sphere(0.08), 25.0)
                .with_damping(0.1, 0.5),
        );
        // Suspension: vertical slider between chassis and hub, anchored at
        // the hub's rest position on the chassis.
        let mut slider = Joint::new(
            JointKind::Slider {
                axis_a: Vec3::UNIT_Y,
                anchor_a: hub_local,
            },
            chassis,
            hub,
        );
        if let Some(thr) = breakable {
            slider = slider.breakable(thr);
        }
        joints.push(world.add_joint(slider));

        let wheel_pos = hub_pos + rot.rotate(Vec3::new(0.0, -0.1, 0.0));
        let wheel = world.add_body(
            BodyDesc::dynamic(wheel_pos)
                .with_rotation(rot)
                .with_shape(Shape::sphere(wheel_r), 20.0)
                .with_damping(0.02, 0.05),
        );
        // Wheel spins about the car's local Z (lateral) axis.
        joints.push(world.add_joint(Joint::new(
            JointKind::Hinge {
                anchor_a: Vec3::new(0.0, -0.1, 0.0),
                anchor_b: Vec3::ZERO,
                axis_a: Vec3::UNIT_Z,
                axis_b: Vec3::UNIT_Z,
            },
            hub,
            wheel,
        )));
        // Wheels overlap the chassis skirt by design; exclude the pair so
        // an explosive chassis is not detonated by its own wheels.
        world.exclude_collision(chassis, wheel);
        hubs.push(hub);
        wheels.push(wheel);
    }
    // Hubs and wheels of the same car may brush each other; exclude them
    // all pairwise within the axle cluster.
    for i in 0..4 {
        for j in (i + 1)..4 {
            world.exclude_collision(hubs[i], hubs[j]);
            world.exclude_collision(wheels[i], wheels[j]);
            world.exclude_collision(hubs[i], wheels[j]);
            world.exclude_collision(wheels[i], hubs[j]);
        }
    }

    Car {
        chassis,
        hubs: hubs.try_into().expect("4 hubs"),
        wheels: wheels.try_into().expect("4 wheels"),
        joints,
    }
}

impl Car {
    /// Total bodies per car.
    pub const BODIES: usize = 9;
    /// Total joints per car.
    pub const JOINTS: usize = 8;

    /// Drives the car by spinning its wheels (crude torque drive).
    pub fn drive(&self, world: &mut World, torque: f32) {
        for w in self.wheels {
            let axis = world
                .body(self.chassis)
                .transform()
                .apply_vector(Vec3::UNIT_Z);
            world.body_mut(w).add_torque(axis * torque);
        }
    }

    /// Sets the whole car's velocity (used for ramming scenarios).
    pub fn set_velocity(&self, world: &mut World, v: Vec3) {
        for id in std::iter::once(self.chassis)
            .chain(self.hubs.iter().copied())
            .chain(self.wheels.iter().copied())
        {
            world.body_mut(id).set_linear_velocity(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parallax_physics::WorldConfig;

    #[test]
    fn car_has_expected_composition() {
        let mut w = World::new(WorldConfig::default());
        let c = spawn_car(&mut w, Vec3::new(0.0, 1.0, 0.0), 0.0, None);
        assert_eq!(c.joints.len(), Car::JOINTS);
        assert_eq!(w.bodies().len(), Car::BODIES);
    }

    #[test]
    fn car_rests_on_plane_without_collapsing() {
        let mut w = World::new(WorldConfig::default());
        w.add_static_geom(Shape::plane(Vec3::UNIT_Y, 0.0));
        let c = spawn_car(&mut w, Vec3::new(0.0, 0.8, 0.0), 0.0, None);
        for _ in 0..300 {
            w.step();
        }
        let chassis_y = w.body(c.chassis).position().y;
        assert!(
            chassis_y > 0.4 && chassis_y < 1.2,
            "chassis settled at {chassis_y}"
        );
        // Suspension intact.
        for j in &c.joints {
            assert!(!w.joint(*j).is_broken());
        }
    }

    #[test]
    fn driven_car_moves_forward() {
        let mut w = World::new(WorldConfig::default());
        w.add_static_geom(Shape::plane(Vec3::UNIT_Y, 0.0));
        let c = spawn_car(&mut w, Vec3::new(0.0, 0.8, 0.0), 0.0, None);
        for _ in 0..100 {
            w.step();
        }
        let x0 = w.body(c.chassis).position().x;
        for _ in 0..200 {
            c.drive(&mut w, -60.0);
            w.step();
        }
        let x1 = w.body(c.chassis).position().x;
        assert!((x1 - x0).abs() > 0.3, "car did not move: {x0} -> {x1}");
    }
}
