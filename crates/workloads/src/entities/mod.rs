//! Reusable scene entities: humanoids, vehicles, buildings, bridges,
//! terrain and cannons (paper Table 2 features).

pub mod building;
pub mod cannon;
pub mod humanoid;
pub mod terrain;
pub mod vehicle;

pub use building::{spawn_bridge, spawn_building, spawn_wall, BuildingSpec, WallSpec};
pub use cannon::Cannon;
pub use humanoid::{spawn_humanoid, Humanoid};
pub use terrain::{heightfield_terrain, trimesh_terrain};
pub use vehicle::{spawn_car, Car};
