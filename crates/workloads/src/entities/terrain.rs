//! Terrain: "uneven surfaces described by heightfields or trimeshes"
//! (paper Table 2).

use parallax_math::Vec3;
use parallax_physics::{GeomId, Heightfield, Shape, TriMesh, World};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Adds a rolling heightfield of `nx × nz` samples with `cell` spacing,
/// height amplitude `amp`, centred at the world origin.
pub fn heightfield_terrain(
    world: &mut World,
    nx: usize,
    nz: usize,
    cell: f32,
    amp: f32,
    seed: u64,
) -> GeomId {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut heights = Vec::with_capacity(nx * nz);
    for iz in 0..nz {
        for ix in 0..nx {
            let x = ix as f32 * 0.7;
            let z = iz as f32 * 0.5;
            let rolling = (x.sin() + (z * 1.3).cos()) * 0.5;
            let noise: f32 = rng.gen_range(-0.15..0.15);
            heights.push((rolling + noise) * amp);
        }
    }
    world.add_static_geom(Shape::heightfield(Heightfield::new(nx, nz, cell, heights)))
}

/// Adds a fan-triangulated trimesh terrain patch of `segments` triangles
/// around `center` with the given radius — used alongside the heightfield
/// in the racing scene ("terrain formed by heightfields and trimeshes").
pub fn trimesh_terrain(world: &mut World, center: Vec3, radius: f32, segments: usize) -> GeomId {
    assert!(segments >= 3, "need at least 3 segments");
    let mut vertices = vec![center];
    for i in 0..segments {
        let a = i as f32 / segments as f32 * std::f32::consts::TAU;
        // A gentle bowl: rim slightly above the centre.
        vertices.push(center + Vec3::new(a.cos() * radius, 0.15 * radius * 0.2, a.sin() * radius));
    }
    let mut triangles = Vec::with_capacity(segments);
    for i in 0..segments {
        let b = 1 + i as u32;
        let c = 1 + ((i + 1) % segments) as u32;
        // Wind upward-facing.
        triangles.push([0, c, b]);
    }
    world.add_static_geom(Shape::trimesh(TriMesh::new(vertices, triangles)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use parallax_physics::{BodyDesc, WorldConfig};

    #[test]
    fn heightfield_is_static_geom() {
        let mut w = World::new(WorldConfig::default());
        heightfield_terrain(&mut w, 16, 16, 2.0, 1.0, 7);
        assert_eq!(w.geoms().len(), 1);
        assert!(w.geoms()[0].body().is_none());
    }

    #[test]
    fn sphere_rests_on_heightfield() {
        let mut w = World::new(WorldConfig::default());
        heightfield_terrain(&mut w, 16, 16, 2.0, 1.0, 7);
        let ball = w.add_body(
            BodyDesc::dynamic(Vec3::new(0.0, 5.0, 0.0)).with_shape(Shape::sphere(0.5), 1.0),
        );
        for _ in 0..400 {
            w.step();
        }
        let p = w.body(ball).position();
        assert!(p.y > -1.5 && p.y < 3.0, "ball at {p:?}");
        assert!(w.body(ball).linear_velocity().length() < 2.0);
    }

    #[test]
    fn sphere_rests_on_trimesh() {
        let mut w = World::new(WorldConfig::default());
        trimesh_terrain(&mut w, Vec3::ZERO, 10.0, 12);
        let ball = w.add_body(
            BodyDesc::dynamic(Vec3::new(1.0, 3.0, 1.0)).with_shape(Shape::sphere(0.5), 1.0),
        );
        for _ in 0..300 {
            w.step();
        }
        let p = w.body(ball).position();
        assert!(p.y > 0.0, "ball fell through trimesh: {p:?}");
    }
}
