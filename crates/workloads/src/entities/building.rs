//! Walls, buildings and bridges. Walls are built of pre-fractured bricks
//! (paper: "the wall bricks fracture into pieces due to explosions");
//! bridges use planks connected by breakable fixed joints.

use parallax_math::{Quat, Vec3};
use parallax_physics::{
    fracture::FractureConfig, BodyDesc, BodyId, Joint, JointId, JointKind, Shape, World,
};

/// Specification for a brick wall.
#[derive(Debug, Clone, Copy)]
pub struct WallSpec {
    /// Bricks along the wall's length.
    pub bricks_x: usize,
    /// Brick courses (rows).
    pub courses: usize,
    /// Half-extents of one brick.
    pub brick_half: Vec3,
    /// Debris pieces per brick when pre-fractured (0 = solid bricks).
    pub debris_per_brick: usize,
}

impl Default for WallSpec {
    fn default() -> Self {
        WallSpec {
            bricks_x: 6,
            courses: 4,
            brick_half: Vec3::new(0.4, 0.2, 0.2),
            debris_per_brick: 4,
        }
    }
}

/// Spawns a wall centred at `pos` facing `yaw`; returns the brick parent
/// bodies. Pre-fractured when `spec.debris_per_brick > 0`.
pub fn spawn_wall(world: &mut World, pos: Vec3, yaw: f32, spec: &WallSpec) -> Vec<BodyId> {
    let rot = Quat::from_axis_angle(Vec3::UNIT_Y, yaw);
    let bw = spec.brick_half.x * 2.0;
    let bh = spec.brick_half.y * 2.0;
    let total_w = bw * spec.bricks_x as f32;
    let mut bricks = Vec::with_capacity(spec.bricks_x * spec.courses);
    for row in 0..spec.courses {
        // Offset alternating courses by half a brick (running bond).
        let stagger = if row % 2 == 0 { 0.0 } else { bw * 0.5 };
        for col in 0..spec.bricks_x {
            let local = Vec3::new(
                -total_w * 0.5 + bw * (col as f32 + 0.5) + stagger,
                bh * (row as f32 + 0.5),
                0.0,
            );
            let p = pos + rot.rotate(local);
            let id = if spec.debris_per_brick > 0 {
                world.add_prefractured(
                    p,
                    rot,
                    spec.brick_half,
                    6.0,
                    FractureConfig {
                        pieces: spec.debris_per_brick,
                        scatter_speed: 4.0,
                    },
                )
            } else {
                world.add_body(
                    BodyDesc::dynamic(p)
                        .with_rotation(rot)
                        .with_shape(Shape::cuboid(spec.brick_half), 6.0),
                )
            };
            bricks.push(id);
        }
    }
    bricks
}

/// Specification for a three-walled building/area (paper: areas "enclosed
/// by three walls").
#[derive(Debug, Clone, Copy)]
pub struct BuildingSpec {
    /// Per-wall specification.
    pub wall: WallSpec,
    /// Enclosed area half-width (walls sit on three sides of a square of
    /// this half-size).
    pub half_size: f32,
}

impl Default for BuildingSpec {
    fn default() -> Self {
        BuildingSpec {
            wall: WallSpec::default(),
            half_size: 3.0,
        }
    }
}

/// Spawns three walls around `center` (open on +X). Returns all brick
/// bodies.
pub fn spawn_building(world: &mut World, center: Vec3, spec: &BuildingSpec) -> Vec<BodyId> {
    let h = spec.half_size;
    let mut bricks = Vec::new();
    // Back wall (facing +X) and two side walls.
    bricks.extend(spawn_wall(
        world,
        center + Vec3::new(-h, 0.0, 0.0),
        std::f32::consts::FRAC_PI_2,
        &spec.wall,
    ));
    bricks.extend(spawn_wall(
        world,
        center + Vec3::new(0.0, 0.0, -h),
        0.0,
        &spec.wall,
    ));
    bricks.extend(spawn_wall(
        world,
        center + Vec3::new(0.0, 0.0, h),
        0.0,
        &spec.wall,
    ));
    bricks
}

/// Spawns a plank bridge from `from` to `to` with `planks` segments joined
/// by breakable fixed joints anchored at both ends to static posts.
///
/// Returns the plank bodies and the joints.
pub fn spawn_bridge(
    world: &mut World,
    from: Vec3,
    to: Vec3,
    planks: usize,
    break_threshold: f32,
) -> (Vec<BodyId>, Vec<JointId>) {
    assert!(planks >= 1, "bridge needs at least one plank");
    let span = to - from;
    let dir = span.normalized();
    let plank_len = span.length() / planks as f32;
    let half = Vec3::new(plank_len * 0.45, 0.05, 0.5);
    let yaw = (-dir.z).atan2(dir.x);
    let rot = Quat::from_axis_angle(Vec3::UNIT_Y, yaw);

    // Static anchor posts at both ends.
    let post_a =
        world.add_body(BodyDesc::fixed(from).with_shape(Shape::cuboid(Vec3::splat(0.1)), 1.0));
    let post_b =
        world.add_body(BodyDesc::fixed(to).with_shape(Shape::cuboid(Vec3::splat(0.1)), 1.0));

    let mut bodies = Vec::with_capacity(planks);
    let mut joints = Vec::new();
    for i in 0..planks {
        let center = from + span * ((i as f32 + 0.5) / planks as f32);
        let id = world.add_body(
            BodyDesc::dynamic(center)
                .with_rotation(rot)
                .with_shape(Shape::cuboid(half), 12.0)
                .with_damping(0.1, 0.3),
        );
        bodies.push(id);
    }
    // Anchor first and last planks to the posts; link consecutive planks.
    let half_step = plank_len * 0.5;
    joints.push(
        world.add_joint(
            Joint::new(
                JointKind::Fixed {
                    anchor_a: Vec3::ZERO,
                    anchor_b: Vec3::new(-half_step, 0.0, 0.0),
                },
                post_a,
                bodies[0],
            )
            .breakable(break_threshold),
        ),
    );
    for i in 0..planks - 1 {
        joints.push(
            world.add_joint(
                Joint::new(
                    JointKind::Fixed {
                        anchor_a: Vec3::new(half_step, 0.0, 0.0),
                        anchor_b: Vec3::new(-half_step, 0.0, 0.0),
                    },
                    bodies[i],
                    bodies[i + 1],
                )
                .breakable(break_threshold),
            ),
        );
    }
    joints.push(
        world.add_joint(
            Joint::new(
                JointKind::Fixed {
                    anchor_a: Vec3::new(half_step, 0.0, 0.0),
                    anchor_b: Vec3::ZERO,
                },
                bodies[planks - 1],
                post_b,
            )
            .breakable(break_threshold),
        ),
    );
    (bodies, joints)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parallax_physics::WorldConfig;

    #[test]
    fn wall_brick_count() {
        let mut w = World::new(WorldConfig::default());
        let spec = WallSpec {
            bricks_x: 5,
            courses: 3,
            debris_per_brick: 0,
            ..Default::default()
        };
        let bricks = spawn_wall(&mut w, Vec3::ZERO, 0.0, &spec);
        assert_eq!(bricks.len(), 15);
        assert_eq!(w.bodies().len(), 15);
    }

    #[test]
    fn prefractured_wall_creates_disabled_debris() {
        let mut w = World::new(WorldConfig::default());
        let spec = WallSpec {
            bricks_x: 2,
            courses: 1,
            debris_per_brick: 4,
            ..Default::default()
        };
        let bricks = spawn_wall(&mut w, Vec3::ZERO, 0.0, &spec);
        assert_eq!(bricks.len(), 2);
        // 2 parents + 8 debris.
        assert_eq!(w.bodies().len(), 10);
        let disabled = w.bodies().iter().filter(|b| b.is_disabled()).count();
        assert_eq!(disabled, 8);
    }

    #[test]
    fn rotated_prefractured_wall_keeps_its_orientation() {
        let mut w = World::new(WorldConfig::default());
        let spec = WallSpec {
            bricks_x: 2,
            courses: 1,
            debris_per_brick: 4,
            ..Default::default()
        };
        let yaw = std::f32::consts::FRAC_PI_2;
        let bricks = spawn_wall(&mut w, Vec3::ZERO, yaw, &spec);
        for b in &bricks {
            let q = w.body(*b).rotation();
            let fwd = q.rotate(parallax_math::Vec3::UNIT_X);
            assert!(
                fwd.z.abs() > 0.99,
                "brick not rotated by yaw: local X maps to {fwd:?}"
            );
        }
        // Bricks of a 90-degree wall must be adjacent along world Z.
        let d = (w.body(bricks[1]).position() - w.body(bricks[0]).position()).abs();
        assert!(d.z > d.x, "bricks should run along Z after rotation: {d:?}");
    }

    #[test]
    fn building_has_three_walls() {
        let mut w = World::new(WorldConfig::default());
        let spec = BuildingSpec {
            wall: WallSpec {
                bricks_x: 2,
                courses: 1,
                debris_per_brick: 0,
                ..Default::default()
            },
            half_size: 2.0,
        };
        let bricks = spawn_building(&mut w, Vec3::ZERO, &spec);
        assert_eq!(bricks.len(), 6);
    }

    #[test]
    fn bridge_holds_then_breaks_under_load() {
        let mut w = World::new(WorldConfig::default());
        w.add_static_geom(Shape::plane(Vec3::UNIT_Y, 0.0));
        let (planks, joints) = spawn_bridge(
            &mut w,
            Vec3::new(-2.0, 2.0, 0.0),
            Vec3::new(2.0, 2.0, 0.0),
            4,
            20.0,
        );
        for _ in 0..100 {
            w.step();
        }
        // Bridge holds its own weight.
        assert!(joints.iter().all(|j| !w.joint(*j).is_broken()));
        let mid_y = w.body(planks[1]).position().y;
        assert!(mid_y > 1.0, "bridge sagged to {mid_y}");

        // Drop a heavy weight on the middle.
        w.add_body(
            BodyDesc::dynamic(Vec3::new(0.0, 4.0, 0.0))
                .with_shape(Shape::cuboid(Vec3::splat(0.4)), 500.0)
                .with_velocity(Vec3::new(0.0, -15.0, 0.0)),
        );
        let mut broke = false;
        for _ in 0..200 {
            let p = w.step();
            if p.events.joints_broken > 0 {
                broke = true;
                break;
            }
        }
        assert!(broke, "bridge should break under a 500 kg impact");
    }
}
