//! Articulated virtual humans: "16 segments of anthropomorphic dimensions"
//! connected by ideal joints (paper Table 2).

use parallax_math::{Quat, Vec3};
use parallax_physics::{BodyDesc, BodyId, Joint, JointId, JointKind, Shape, World};

/// Handle to a spawned humanoid.
#[derive(Debug, Clone)]
pub struct Humanoid {
    /// All 16 segment bodies; `segments[0]` is the pelvis (root).
    pub segments: Vec<BodyId>,
    /// The 15 connecting joints.
    pub joints: Vec<JointId>,
}

/// Segment description: name, capsule (radius, half-length), offset of the
/// segment centre from the pelvis, parent index, and joint anchor (world
/// offset from pelvis).
struct Seg {
    name: &'static str,
    radius: f32,
    half_len: f32,
    offset: Vec3,
    parent: usize,
    anchor: Vec3,
}

/// Anthropomorphic segment table (metres), standing pose, pelvis at origin.
/// 16 segments: pelvis, lower torso, upper torso, head, and L/R
/// {upper arm, forearm, hand, thigh, shin, foot}.
fn segment_table() -> Vec<Seg> {
    let mut t = vec![
        Seg {
            name: "pelvis",
            radius: 0.12,
            half_len: 0.08,
            offset: Vec3::new(0.0, 1.0, 0.0),
            parent: usize::MAX,
            anchor: Vec3::ZERO,
        },
        Seg {
            name: "lower_torso",
            radius: 0.12,
            half_len: 0.10,
            offset: Vec3::new(0.0, 1.22, 0.0),
            parent: 0,
            anchor: Vec3::new(0.0, 1.11, 0.0),
        },
        Seg {
            name: "upper_torso",
            radius: 0.13,
            half_len: 0.12,
            offset: Vec3::new(0.0, 1.46, 0.0),
            parent: 1,
            anchor: Vec3::new(0.0, 1.34, 0.0),
        },
        Seg {
            name: "head",
            radius: 0.10,
            half_len: 0.05,
            offset: Vec3::new(0.0, 1.72, 0.0),
            parent: 2,
            anchor: Vec3::new(0.0, 1.62, 0.0),
        },
    ];
    for (side, sx) in [("l", -1.0f32), ("r", 1.0f32)] {
        let _ = side;
        t.push(Seg {
            name: "upper_arm",
            radius: 0.05,
            half_len: 0.14,
            offset: Vec3::new(sx * 0.25, 1.38, 0.0),
            parent: 2,
            anchor: Vec3::new(sx * 0.2, 1.52, 0.0),
        });
        let ua = t.len() - 1;
        t.push(Seg {
            name: "forearm",
            radius: 0.04,
            half_len: 0.13,
            offset: Vec3::new(sx * 0.25, 1.06, 0.0),
            parent: ua,
            anchor: Vec3::new(sx * 0.25, 1.22, 0.0),
        });
        let fa = t.len() - 1;
        t.push(Seg {
            name: "hand",
            radius: 0.04,
            half_len: 0.05,
            offset: Vec3::new(sx * 0.25, 0.86, 0.0),
            parent: fa,
            anchor: Vec3::new(sx * 0.25, 0.92, 0.0),
        });
        t.push(Seg {
            name: "thigh",
            radius: 0.07,
            half_len: 0.18,
            offset: Vec3::new(sx * 0.1, 0.68, 0.0),
            parent: 0,
            anchor: Vec3::new(sx * 0.1, 0.9, 0.0),
        });
        let th = t.len() - 1;
        t.push(Seg {
            name: "shin",
            radius: 0.05,
            half_len: 0.17,
            offset: Vec3::new(sx * 0.1, 0.28, 0.0),
            parent: th,
            anchor: Vec3::new(sx * 0.1, 0.47, 0.0),
        });
        let sh = t.len() - 1;
        t.push(Seg {
            name: "foot",
            radius: 0.04,
            half_len: 0.07,
            offset: Vec3::new(sx * 0.1, 0.06, 0.05),
            parent: sh,
            anchor: Vec3::new(sx * 0.1, 0.1, 0.0),
        });
    }
    t
}

/// Spawns a 16-segment humanoid standing at `pos` (feet near the ground),
/// rotated `yaw` radians about Y, with total mass ~70 kg.
///
/// Each joint is a ball joint; the knees and elbows are hinges, matching
/// the constrained-rigid-body feature of the paper's suite.
pub fn spawn_humanoid(world: &mut World, pos: Vec3, yaw: f32) -> Humanoid {
    let rot = Quat::from_axis_angle(Vec3::UNIT_Y, yaw);
    let table = segment_table();
    let total_volume: f32 = table
        .iter()
        .map(|s| Shape::capsule(s.radius, s.half_len).volume())
        .sum();
    let density = 70.0 / total_volume;

    let mut segments = Vec::with_capacity(table.len());
    for seg in &table {
        let shape = Shape::capsule(seg.radius, seg.half_len);
        let mass = shape.volume() * density;
        let world_pos = pos + rot.rotate(seg.offset);
        let id = world.add_body(
            BodyDesc::dynamic(world_pos)
                .with_rotation(rot)
                .with_shape(shape, mass)
                .with_damping(0.05, 0.2),
        );
        segments.push(id);
    }

    let mut joints = Vec::with_capacity(table.len() - 1);
    for (i, seg) in table.iter().enumerate() {
        if seg.parent == usize::MAX {
            continue;
        }
        let parent_seg = &table[seg.parent];
        let anchor_world = pos + rot.rotate(seg.anchor);
        let parent_pos = pos + rot.rotate(parent_seg.offset);
        let child_pos = pos + rot.rotate(seg.offset);
        let rot_inv = rot.conjugate();
        let anchor_a = rot_inv.rotate(anchor_world - parent_pos);
        let anchor_b = rot_inv.rotate(anchor_world - child_pos);
        // Knees, elbows: hinges about local X; everything else: balls.
        let kind = if seg.name == "shin" || seg.name == "forearm" {
            JointKind::Hinge {
                anchor_a,
                anchor_b,
                axis_a: Vec3::UNIT_X,
                axis_b: Vec3::UNIT_X,
            }
        } else {
            JointKind::Ball { anchor_a, anchor_b }
        };
        joints.push(world.add_joint(Joint::new(kind, segments[seg.parent], segments[i])));
    }

    Humanoid { segments, joints }
}

impl Humanoid {
    /// Number of segments (always 16).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Applies a punch/shove impulse through the root, used by the combat
    /// scenes to keep groups interacting.
    pub fn shove(&self, world: &mut World, impulse: Vec3) {
        let root = self.segments[0];
        let p = world.body(root).position();
        world.body_mut(root).apply_impulse_at(impulse, p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parallax_physics::WorldConfig;

    #[test]
    fn humanoid_has_sixteen_segments_fifteen_joints() {
        let mut w = World::new(WorldConfig::default());
        let h = spawn_humanoid(&mut w, Vec3::ZERO, 0.0);
        assert_eq!(h.segment_count(), 16);
        assert_eq!(h.joints.len(), 15);
    }

    #[test]
    fn humanoid_mass_is_anthropomorphic() {
        let mut w = World::new(WorldConfig::default());
        let h = spawn_humanoid(&mut w, Vec3::ZERO, 0.0);
        let total: f32 = h.segments.iter().map(|s| w.body(*s).mass()).sum();
        assert!((total - 70.0).abs() < 1.0, "total mass {total}");
    }

    #[test]
    fn ragdoll_falls_but_stays_connected() {
        let mut w = World::new(WorldConfig::default());
        w.add_static_geom(Shape::plane(Vec3::UNIT_Y, 0.0));
        let h = spawn_humanoid(&mut w, Vec3::new(0.0, 0.5, 0.0), 0.3);
        for _ in 0..150 {
            w.step();
        }
        // The head must stay within ~2 body lengths of the pelvis.
        let pelvis = w.body(h.segments[0]).position();
        let head = w.body(h.segments[3]).position();
        assert!(
            pelvis.distance(head) < 1.5,
            "ragdoll came apart: pelvis {pelvis:?}, head {head:?}"
        );
        // And nothing sank below the floor.
        for s in &h.segments {
            assert!(w.body(*s).position().y > -0.2);
        }
    }
}
