//! Integration tests live in the workspace-level `tests/` directory.
