//! Main-memory model.
//!
//! The paper charges a flat 340 cycles per memory access (Table 5); that
//! remains the default. This module adds an optional open-page DRAM model
//! (banks + row buffers) for finer-grained studies: sequential streams hit
//! open rows and pay much less than random pointer chases.

use serde::{Deserialize, Serialize};

/// Open-page DRAM timing model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dram {
    /// Number of banks (row buffers).
    banks: usize,
    /// Bytes per row.
    row_bytes: u64,
    /// Cycles for a row-buffer hit (CAS + transfer).
    pub hit_cycles: u64,
    /// Cycles for a row miss (precharge + activate + CAS).
    pub miss_cycles: u64,
    /// Currently open row per bank (`u64::MAX` = closed).
    open_rows: Vec<u64>,
    row_hits: u64,
    row_misses: u64,
}

impl Dram {
    /// A DDR2-era device matching the paper's 340-cycle average on a
    /// random-access stream: 8 banks, 8 KB rows, 120-cycle row hits,
    /// 340-cycle row misses (at the 2 GHz core clock).
    pub fn new() -> Dram {
        Dram::with_geometry(8, 8 * 1024, 120, 340)
    }

    /// Creates a model with explicit geometry and timings.
    ///
    /// # Panics
    ///
    /// Panics if `banks` or `row_bytes` is zero.
    pub fn with_geometry(banks: usize, row_bytes: u64, hit: u64, miss: u64) -> Dram {
        assert!(banks > 0 && row_bytes > 0, "degenerate DRAM geometry");
        Dram {
            banks,
            row_bytes,
            hit_cycles: hit,
            miss_cycles: miss,
            open_rows: vec![u64::MAX; banks],
            row_hits: 0,
            row_misses: 0,
        }
    }

    #[inline]
    fn map(&self, addr: u64) -> (usize, u64) {
        let row_id = addr / self.row_bytes;
        (
            (row_id % self.banks as u64) as usize,
            row_id / self.banks as u64,
        )
    }

    /// Performs one access, returning its latency in cycles.
    pub fn access(&mut self, addr: u64) -> u64 {
        let (bank, row) = self.map(addr);
        if self.open_rows[bank] == row {
            self.row_hits += 1;
            self.hit_cycles
        } else {
            self.open_rows[bank] = row;
            self.row_misses += 1;
            self.miss_cycles
        }
    }

    /// (row hits, row misses) so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.row_hits, self.row_misses)
    }

    /// Row-buffer hit rate.
    pub fn hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }
}

impl Default for Dram {
    fn default() -> Self {
        Dram::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_stream_mostly_hits_rows() {
        let mut d = Dram::new();
        for i in 0..10_000u64 {
            d.access(i * 64);
        }
        assert!(d.hit_rate() > 0.95, "hit rate {}", d.hit_rate());
    }

    #[test]
    fn random_stream_mostly_misses_rows() {
        let mut d = Dram::new();
        let mut x = 0x1234_5678u64;
        for _ in 0..10_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            d.access(x % (1 << 30));
        }
        assert!(d.hit_rate() < 0.2, "hit rate {}", d.hit_rate());
    }

    #[test]
    fn same_line_twice_is_a_row_hit() {
        let mut d = Dram::new();
        assert_eq!(d.access(0x1000), d.miss_cycles);
        assert_eq!(d.access(0x1040), d.hit_cycles);
    }

    #[test]
    fn distinct_banks_keep_independent_rows() {
        let mut d = Dram::with_geometry(2, 1024, 100, 300);
        d.access(0); // bank 0, row 0
        d.access(1024); // bank 1, row 0
                        // Returning to bank 0's open row is a hit.
        assert_eq!(d.access(64), 100);
    }

    #[test]
    fn average_latency_between_hit_and_miss() {
        let mut d = Dram::new();
        let mut total = 0;
        let n = 5_000u64;
        // Mixed: pairs of accesses to the same row.
        for i in 0..n {
            total += d.access((i / 2) * 16 * 1024 + (i % 2) * 64);
        }
        let avg = total / n;
        assert!(avg > d.hit_cycles && avg < d.miss_cycles);
    }
}
