//! The memory hierarchy: per-core L1s, a shared banked L2 (optionally
//! way-partitioned per phase), and main memory, with a lightweight
//! MOESI-style sharing model (writes by one core force a coherence
//! transfer on the next access by a different core).

use std::collections::HashMap;

use crate::cache::{AccessResult, BankedCache, Cache};
use crate::config::MachineConfig;
use crate::dram::Dram;

/// Aggregate memory statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MemStats {
    /// L1 hits.
    pub l1_hits: u64,
    /// L1 misses.
    pub l1_misses: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// L2 misses (memory accesses).
    pub l2_misses: u64,
    /// Coherence transfers (dirty line moved between cores).
    pub coherence_transfers: u64,
    /// Total access latency accumulated (cycles).
    pub total_latency: u64,
}

impl MemStats {
    /// L2 miss rate over L2 accesses.
    pub fn l2_miss_rate(&self) -> f64 {
        let acc = self.l2_hits + self.l2_misses;
        if acc == 0 {
            0.0
        } else {
            self.l2_misses as f64 / acc as f64
        }
    }
}

/// The simulated hierarchy.
#[derive(Debug)]
pub struct Hierarchy {
    l1: Vec<Cache>,
    l2: BankedCache,
    l1_latency: u64,
    l2_latency: u64,
    mem_latency: u64,
    hop_latency: u64,
    /// Last core to write each line (for the sharing model).
    writers: HashMap<u64, u8>,
    /// Next-line prefetch on L2 miss (paper future work).
    prefetch: bool,
    /// Optional open-page DRAM model (None = flat `mem_latency`).
    dram: Option<Dram>,
    /// Prefetches issued.
    prefetches: u64,
    stats: MemStats,
    /// Per-partition L2 miss counts (indexed by partition id).
    partition_misses: Vec<u64>,
}

impl Hierarchy {
    /// Builds the hierarchy for `machine`.
    pub fn new(machine: &MachineConfig) -> Hierarchy {
        let mut l2 = BankedCache::new(machine.l2.banks, 1024 * 1024, machine.l2.assoc, 64);
        if let Some(ways) = &machine.l2.partition_ways {
            l2.set_partitions(ways);
        }
        Hierarchy {
            l1: (0..machine.cores)
                .map(|_| Cache::new(machine.l1_bytes, machine.l1_assoc, 64))
                .collect(),
            l2,
            l1_latency: machine.l1_latency,
            l2_latency: machine.l2.latency,
            mem_latency: machine.mem_latency,
            hop_latency: machine.hop_latency,
            writers: HashMap::new(),
            prefetch: machine.l2.latency > 0 && machine.l2_prefetch,
            dram: machine.dram_model.then(Dram::new),
            prefetches: 0,
            stats: MemStats::default(),
            partition_misses: vec![0; 16],
        }
    }

    /// Performs one access by `core` to line `addr` under L2 `partition`.
    /// Returns the latency in cycles.
    pub fn access(&mut self, core: usize, addr: u64, write: bool, partition: u8) -> u64 {
        let mut latency = self.l1_latency;
        // A write invalidates every other core's L1 copy (MOESI
        // ownership): later readers must fetch through the L2 and pay the
        // coherence transfer.
        if write {
            for (c, l1) in self.l1.iter_mut().enumerate() {
                if c != core {
                    l1.invalidate(addr);
                }
            }
        }
        let l1 = &mut self.l1[core];
        match l1.access(addr, 0) {
            AccessResult::Hit => {
                self.stats.l1_hits += 1;
                if write {
                    self.writers.insert(addr, core as u8);
                }
                self.stats.total_latency += latency;
                return latency;
            }
            AccessResult::Miss => {
                self.stats.l1_misses += 1;
            }
        }

        // L2 access: a couple of network hops to the bank plus bank
        // latency.
        latency += self.hop_latency * 2 + self.l2_latency;
        match self.l2.access(addr, partition) {
            AccessResult::Hit => {
                self.stats.l2_hits += 1;
                // Sharing: if another core wrote this line since, pay a
                // coherence transfer (owner's cache → requester). The
                // transfer downgrades the line to shared, so it is paid
                // once per write, not forever.
                if self.writers.get(&addr).is_some_and(|&w| w != core as u8) {
                    latency += self.hop_latency * 2 + self.l1_latency;
                    self.stats.coherence_transfers += 1;
                    self.writers.remove(&addr);
                }
            }
            AccessResult::Miss => {
                self.stats.l2_misses += 1;
                let p = (partition as usize).min(self.partition_misses.len() - 1);
                self.partition_misses[p] += 1;
                latency += match &mut self.dram {
                    Some(d) => d.access(addr),
                    None => self.mem_latency,
                };
                // Next-line prefetch: fill the following line into the L2
                // without charging the requester (the memory controller
                // overlaps it with the demand fill).
                if self.prefetch {
                    self.l2.access(addr + 64, partition);
                    self.prefetches += 1;
                }
            }
        }
        if write {
            self.writers.insert(addr, core as u8);
        }
        self.stats.total_latency += latency;
        latency
    }

    /// Statistics so far.
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    /// Per-partition L2 miss counts.
    pub fn partition_misses(&self) -> &[u64] {
        &self.partition_misses
    }

    /// Resets statistics (cache contents are preserved — used between the
    /// warm-up and measurement windows).
    pub fn reset_stats(&mut self) {
        self.stats = MemStats::default();
        self.partition_misses.fill(0);
        for c in &mut self.l1 {
            c.reset_stats();
        }
        self.l2.reset_stats();
    }

    /// Flushes all caches (cold start).
    pub fn flush(&mut self) {
        for c in &mut self.l1 {
            c.flush();
        }
        self.l2.flush();
        self.writers.clear();
    }

    /// Prefetches issued so far.
    pub fn prefetches(&self) -> u64 {
        self.prefetches
    }

    /// Open-row DRAM statistics `(row_hits, row_misses)`; zeros when the
    /// DRAM model is disabled.
    pub fn dram_stats(&self) -> (u64, u64) {
        self.dram.as_ref().map_or((0, 0), |d| d.stats())
    }

    /// Number of cores (L1s).
    pub fn cores(&self) -> usize {
        self.l1.len()
    }

    /// Total L2 capacity in bytes.
    pub fn l2_bytes(&self) -> usize {
        self.l2.bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;

    fn machine(cores: usize, l2_mb: usize) -> MachineConfig {
        MachineConfig::baseline(cores, l2_mb)
    }

    #[test]
    fn first_access_goes_to_memory() {
        let mut h = Hierarchy::new(&machine(1, 1));
        let lat = h.access(0, 0x1000, false, 0);
        // L1 (2) + hops (4) + L2 (15) + memory (340).
        assert_eq!(lat, 2 + 4 + 15 + 340);
        assert_eq!(h.stats().l2_misses, 1);
    }

    #[test]
    fn second_access_hits_l1() {
        let mut h = Hierarchy::new(&machine(1, 1));
        h.access(0, 0x1000, false, 0);
        let lat = h.access(0, 0x1000, false, 0);
        assert_eq!(lat, 2);
        assert_eq!(h.stats().l1_hits, 1);
    }

    #[test]
    fn cross_core_access_hits_l2_not_l1() {
        let mut h = Hierarchy::new(&machine(2, 1));
        h.access(0, 0x1000, false, 0);
        let lat = h.access(1, 0x1000, false, 0);
        assert_eq!(lat, 2 + 4 + 15, "clean L2 hit for the second core");
        assert_eq!(h.stats().l2_hits, 1);
    }

    #[test]
    fn dirty_sharing_pays_coherence_transfer() {
        let mut h = Hierarchy::new(&machine(2, 1));
        h.access(0, 0x2000, true, 0);
        let lat = h.access(1, 0x2000, false, 0);
        assert!(lat > 2 + 4 + 15, "dirty transfer costs extra: {lat}");
        assert_eq!(h.stats().coherence_transfers, 1);
    }

    #[test]
    fn bigger_l2_reduces_misses_on_large_working_set() {
        let run = |mb: usize| {
            let mut h = Hierarchy::new(&machine(1, mb));
            // 2 MB working set streamed three times.
            for _ in 0..3 {
                for i in 0..(2 * 1024 * 1024 / 64) as u64 {
                    h.access(0, i * 64, false, 0);
                }
            }
            h.stats().l2_misses
        };
        let small = run(1);
        let big = run(4);
        assert!(
            big < small / 2,
            "4MB ({big} misses) must beat 1MB ({small} misses)"
        );
    }

    #[test]
    fn dram_model_rewards_streaming_over_random() {
        let run = |sequential: bool| {
            let mut m = machine(1, 1);
            m.dram_model = true;
            let mut h = Hierarchy::new(&m);
            let mut total = 0u64;
            let mut x = 7u64;
            for i in 0..20_000u64 {
                let addr = if sequential {
                    0x4000_0000 + i * 64
                } else {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    0x4000_0000 + (x % (1 << 28)) / 64 * 64
                };
                total += h.access(0, addr, false, 0);
            }
            total
        };
        let seq = run(true);
        let rnd = run(false);
        assert!(
            seq * 2 < rnd,
            "streaming ({seq}) should be far cheaper than random ({rnd})"
        );
    }

    #[test]
    fn next_line_prefetch_helps_streaming() {
        let run = |prefetch: bool| {
            let mut m = machine(1, 2);
            m.l2_prefetch = prefetch;
            let mut h = Hierarchy::new(&m);
            // Stream 4MB of sequential lines twice; with next-line
            // prefetch the second line of each miss-pair is already
            // resident.
            for _ in 0..2 {
                for i in 0..(4 * 1024 * 1024 / 64) as u64 {
                    h.access(0, 0x1000_0000 + i * 64, false, 0);
                }
            }
            h.stats().l2_misses
        };
        let without = run(false);
        let with = run(true);
        assert!(
            with < without / 2 + 1000,
            "prefetch should halve streaming misses: {with} vs {without}"
        );
    }

    #[test]
    fn partitioning_protects_a_small_working_set() {
        // Partition 0 (1 way/bank = 256KB of a 1MB L2) holds a small set;
        // partition 1 streams. Without partitioning the stream evicts
        // everything; with it, partition 0 keeps hitting.
        let run = |partitioned: bool| {
            let mut m = machine(1, 1);
            if partitioned {
                m.l2.partition_ways = Some(vec![1, 3]);
            }
            let mut h = Hierarchy::new(&m);
            let small: Vec<u64> = (0..2048).map(|i| 0x1000_0000 + i * 64).collect(); // 128 KB
                                                                                     // Warm the small set.
            for &a in &small {
                h.access(0, a, false, 0);
            }
            // Stream 8 MB through partition 1.
            for i in 0..(8 * 1024 * 1024 / 64) as u64 {
                h.access(0, 0x4000_0000 + i * 64, false, 1);
            }
            // L1 is tiny; flush it so we measure L2 retention only.
            h.reset_stats();
            for c in &mut h.l1 {
                c.flush();
            }
            for &a in &small {
                h.access(0, a, false, 0);
            }
            h.stats().l2_misses
        };
        let unprotected = run(false);
        let protected = run(true);
        assert!(
            protected < unprotected / 4,
            "partitioning should retain the small set: {protected} vs {unprotected}"
        );
    }
}
