//! First-order interval core model.
//!
//! Converts a task's instruction counts into cycles for a given
//! [`CoreConfig`] using three terms:
//!
//! 1. **Compute**: instructions at the kernel's window-limited IPC
//!    (an ILP curve per kernel fitted to the paper's Figure 10a shapes),
//! 2. **Branches**: mispredictions (YAGS rate from [`crate::branchgen`])
//!    flush the pipeline *and* the speculated window — this is why
//!    Narrowphase *degrades* on wider cores, as the paper observes, and
//! 3. **Memory**: stall cycles from the cache hierarchy, discounted by a
//!    window-dependent memory-level-parallelism factor.

use parallax_trace::{Kernel, OpCounts, TaskTrace};

use crate::branchgen::MispredictTable;
use crate::config::CoreConfig;

/// Per-kernel ILP curve parameters: `ipc(window) = floor + inf·(1 −
/// e^(−window/tau))`, capped by the issue width.
fn ilp_params(kernel: Kernel) -> (f64, f64, f64) {
    // (floor, inf, tau)
    match kernel {
        Kernel::Narrowphase => (0.6, 1.4, 20.0),
        Kernel::IslandSolver => (0.6, 6.5, 50.0),
        Kernel::Cloth => (0.6, 1.8, 30.0),
        Kernel::Broadphase => (0.6, 1.2, 25.0),
        Kernel::IslandCreation => (0.6, 1.0, 25.0),
    }
}

/// Latency of an unpipelined FP divide/sqrt.
const DIV_SQRT_LATENCY: f64 = 12.0;

/// The interval core model.
#[derive(Debug)]
pub struct CoreModel {
    cfg: CoreConfig,
    mispredicts: MispredictTable,
    /// When `true`, branches never mispredict (the paper's "ideal branch
    /// prediction" experiment, §8.2).
    pub ideal_branch_prediction: bool,
}

impl CoreModel {
    /// Creates a model for `cfg`.
    pub fn new(cfg: CoreConfig) -> CoreModel {
        CoreModel {
            cfg,
            mispredicts: MispredictTable::new(),
            ideal_branch_prediction: false,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Window-limited base IPC for `kernel` on this core.
    pub fn ipc_base(&self, kernel: Kernel) -> f64 {
        let (floor, inf, tau) = ilp_params(kernel);
        let ilp = floor + inf * (1.0 - (-(self.cfg.window as f64) / tau).exp());
        ilp.min(self.cfg.width as f64)
    }

    /// Misprediction flush penalty: pipeline refill plus the speculative
    /// state (window × ROB, geometric mean) that must be discarded and
    /// re-established. Grows with core aggressiveness — this reproduces
    /// the paper\'s observation that Narrowphase *degrades* on bigger
    /// cores.
    pub fn flush_penalty(&self) -> f64 {
        self.cfg.pipeline_depth as f64 + ((self.cfg.rob * self.cfg.window) as f64).sqrt()
    }

    /// Cycles for the compute portion of `ops` (no cache misses).
    pub fn compute_cycles(&mut self, ops: &OpCounts, kernel: Kernel) -> u64 {
        let instr = ops.total() as f64;
        if instr == 0.0 {
            return 0;
        }
        let base = instr / self.ipc_base(kernel);
        let mispred_rate = if self.ideal_branch_prediction {
            0.0
        } else {
            self.mispredicts.rate(kernel, self.cfg.predictor_bytes)
        };
        let branch_cycles = ops.branch as f64 * mispred_rate * self.flush_penalty();
        // Long-latency FP ops partially hidden by the window.
        let hide = (self.cfg.window as f64 / 16.0).min(0.75);
        let div_cycles = ops.fp_div_sqrt as f64 * DIV_SQRT_LATENCY * (1.0 - hide);
        (base + branch_cycles + div_cycles).ceil() as u64
    }

    /// Fraction of beyond-L1 memory latency that the window cannot hide
    /// (memory-level-parallelism discount).
    pub fn stall_exposure(&self) -> f64 {
        let mlp = (self.cfg.window as f64).sqrt() / 2.0;
        1.0 / (1.0 + mlp)
    }

    /// Full task cycles: compute plus exposed memory stalls.
    ///
    /// `mem_stall_cycles` is the sum of beyond-L1 latencies the hierarchy
    /// reported for this task's accesses.
    pub fn task_cycles(&mut self, task: &TaskTrace, kernel: Kernel, mem_stall_cycles: u64) -> u64 {
        let compute = self.compute_cycles(&task.ops, kernel);
        compute + (mem_stall_cycles as f64 * self.stall_exposure()).round() as u64
    }

    /// Effective IPC of a finished task (diagnostic, Figure 10a).
    pub fn effective_ipc(
        &mut self,
        task: &TaskTrace,
        kernel: Kernel,
        mem_stall_cycles: u64,
    ) -> f64 {
        let cycles = self.task_cycles(task, kernel, mem_stall_cycles).max(1);
        task.ops.total() as f64 / cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel_task(kernel: Kernel, instr: u64) -> TaskTrace {
        // Build a task with the kernel's natural mix.
        use parallax_trace::kernels::KernelModel;
        let ops = match kernel {
            Kernel::Narrowphase => KernelModel::narrowphase_pair("box", "box", 2),
            Kernel::IslandSolver => KernelModel::island_solver(50, 20, 10),
            Kernel::Cloth => KernelModel::cloth(625, 5000, 200),
            Kernel::Broadphase => KernelModel::broadphase(1000, 10_000, 3_000),
            Kernel::IslandCreation => KernelModel::island_creation(1000, 500, 1500),
        };
        let k = (instr / ops.total().max(1)).max(1);
        TaskTrace {
            ops: ops.scaled(k),
            reads: vec![],
            writes: vec![],
            fg_subtasks: 1,
        }
    }

    #[test]
    fn island_solver_ipc_ordering_matches_fig10a() {
        // Island kernel: desktop ≫ console > shader; limit study > 4.
        let ipc = |cfg: CoreConfig| {
            let mut m = CoreModel::new(cfg);
            let t = kernel_task(Kernel::IslandSolver, 1_000_000);
            m.effective_ipc(&t, Kernel::IslandSolver, 0)
        };
        let d = ipc(CoreConfig::desktop());
        let c = ipc(CoreConfig::console());
        let s = ipc(CoreConfig::shader());
        let l = ipc(CoreConfig::limit_study());
        assert!(d > 2.0, "desktop island IPC {d}");
        assert!(d > c && c > s, "ordering d={d} c={c} s={s}");
        assert!(l > 4.0, "limit-study island IPC {l}");
    }

    #[test]
    fn narrowphase_degrades_with_more_resources() {
        // Paper: "Narrowphase degrades with more resources due to
        // mispredicted branch instructions."
        let ipc = |cfg: CoreConfig| {
            let mut m = CoreModel::new(cfg);
            let t = kernel_task(Kernel::Narrowphase, 1_000_000);
            m.effective_ipc(&t, Kernel::Narrowphase, 0)
        };
        let d = ipc(CoreConfig::desktop());
        let l = ipc(CoreConfig::limit_study());
        assert!(
            l < d,
            "limit study ({l}) should degrade vs desktop ({d}) on narrowphase"
        );
    }

    #[test]
    fn ideal_branch_prediction_helps_narrowphase_about_30pct() {
        // Paper §8.2: "ideal branch prediction resulted in a 30%
        // improvement in performance" for Narrowphase. Check the
        // console-class FG core lands near that; wider cores gain more.
        let t = kernel_task(Kernel::Narrowphase, 1_000_000);
        let mut m = CoreModel::new(CoreConfig::console());
        let real = m.task_cycles(&t, Kernel::Narrowphase, 0);
        m.ideal_branch_prediction = true;
        let ideal = m.task_cycles(&t, Kernel::Narrowphase, 0);
        let speedup = real as f64 / ideal as f64;
        assert!(
            (1.1..1.75).contains(&speedup),
            "ideal BP speedup {speedup} (paper: ~30%)"
        );
    }

    #[test]
    fn cloth_ipc_below_island_on_limit_core() {
        let mut m = CoreModel::new(CoreConfig::limit_study());
        let cloth = kernel_task(Kernel::Cloth, 1_000_000);
        let island = kernel_task(Kernel::IslandSolver, 1_000_000);
        let ci = m.effective_ipc(&cloth, Kernel::Cloth, 0);
        let ii = m.effective_ipc(&island, Kernel::IslandSolver, 0);
        assert!(ci < ii, "cloth {ci} vs island {ii}");
        assert!(
            (1.0..2.5).contains(&ci),
            "paper: limit cloth IPC ≈ 1.5, got {ci}"
        );
    }

    #[test]
    fn memory_stalls_add_cycles_with_window_discount() {
        let t = kernel_task(Kernel::IslandSolver, 10_000);
        let mut desk = CoreModel::new(CoreConfig::desktop());
        let mut shad = CoreModel::new(CoreConfig::shader());
        let base_d = desk.task_cycles(&t, Kernel::IslandSolver, 0);
        let stall_d = desk.task_cycles(&t, Kernel::IslandSolver, 10_000);
        let base_s = shad.task_cycles(&t, Kernel::IslandSolver, 0);
        let stall_s = shad.task_cycles(&t, Kernel::IslandSolver, 10_000);
        let added_d = stall_d - base_d;
        let added_s = stall_s - base_s;
        assert!(added_d > 0);
        assert!(
            added_s > added_d,
            "the shader's 1-entry window hides less latency ({added_s} vs {added_d})"
        );
    }

    #[test]
    fn empty_task_is_free() {
        let mut m = CoreModel::new(CoreConfig::desktop());
        let t = TaskTrace::default();
        assert_eq!(m.task_cycles(&t, Kernel::Cloth, 0), 0);
    }
}
