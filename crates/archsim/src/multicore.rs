//! Multi-core frame simulation: turns step traces into per-phase cycle
//! counts on a configurable CG machine (the engine behind Figures 2–6).

use std::sync::OnceLock;

use parallax_physics::PhaseKind;
use parallax_telemetry as telemetry;
use parallax_trace::{Kernel, StepTrace, TaskTrace};

use crate::config::MachineConfig;
use crate::core::CoreModel;
use crate::hierarchy::{Hierarchy, MemStats};
use crate::os;

/// Telemetry counters for the architecture simulation, fed with per-step
/// deltas of the simulator's own statistics (the access hot path is left
/// untouched — stats are flushed once per simulated step).
struct ArchMetrics {
    steps: telemetry::Counter,
    l1_hits: telemetry::Counter,
    l1_misses: telemetry::Counter,
    l2_hits: telemetry::Counter,
    l2_misses: telemetry::Counter,
    coherence_transfers: telemetry::Counter,
    prefetches: telemetry::Counter,
    /// Open-row DRAM behaviour stands in for queue occupancy: the model
    /// has no request queue, so pressure shows up as row misses.
    dram_row_hits: telemetry::Counter,
    dram_row_misses: telemetry::Counter,
    dram_row_hit_rate_pct: telemetry::Gauge,
    kernel_l2_misses: telemetry::Counter,
    user_l2_misses: telemetry::Counter,
    phase_cycles: telemetry::Histogram,
}

fn arch_metrics() -> &'static ArchMetrics {
    static M: OnceLock<ArchMetrics> = OnceLock::new();
    M.get_or_init(|| ArchMetrics {
        steps: telemetry::counter("archsim.steps"),
        l1_hits: telemetry::counter("archsim.l1_hits"),
        l1_misses: telemetry::counter("archsim.l1_misses"),
        l2_hits: telemetry::counter("archsim.l2_hits"),
        l2_misses: telemetry::counter("archsim.l2_misses"),
        coherence_transfers: telemetry::counter("archsim.coherence_transfers"),
        prefetches: telemetry::counter("archsim.prefetches"),
        dram_row_hits: telemetry::counter("archsim.dram_row_hits"),
        dram_row_misses: telemetry::counter("archsim.dram_row_misses"),
        dram_row_hit_rate_pct: telemetry::gauge("archsim.dram_row_hit_rate_pct"),
        kernel_l2_misses: telemetry::counter("archsim.kernel_l2_misses"),
        user_l2_misses: telemetry::counter("archsim.user_l2_misses"),
        phase_cycles: telemetry::histogram("archsim.phase_cycles"),
    })
}

/// Cumulative simulator statistics at the last telemetry flush, so each
/// step contributes exactly its delta to the counters.
#[derive(Debug, Default, Clone, Copy)]
struct StatTotals {
    mem: MemStats,
    prefetches: u64,
    dram_row_hits: u64,
    dram_row_misses: u64,
    kernel_l2_misses: u64,
    user_l2_misses: u64,
}

/// Which kernel model a phase uses.
///
/// Thin alias over [`Kernel::of_phase`], kept for existing callers; the
/// mapping itself lives in the trace crate next to the kernel models.
pub fn kernel_of(phase: PhaseKind) -> Kernel {
    Kernel::of_phase(phase)
}

/// Simulation options.
#[derive(Debug, Clone, Default)]
pub struct SimOptions {
    /// Model the OS kernel-memory overhead of worker threads (Fig 6b).
    pub os_overhead: bool,
    /// Give every phase its own private L2 hierarchy — the paper's
    /// "dedicated cache space per computation phase" experiment
    /// (Figures 3–5a).
    pub dedicated_per_phase: bool,
    /// Way-partition assignment per phase (ids into
    /// `MachineConfig::l2.partition_ways`); `None` = unpartitioned.
    pub partition_of_phase: Option<[u8; 5]>,
}

/// Per-phase timing of one simulated window.
#[derive(Debug, Default, Clone, Copy)]
pub struct PhaseTime {
    /// Cycles per phase in [`PhaseKind::ALL`] order.
    pub cycles: [u64; 5],
}

impl PhaseTime {
    /// Cycles of one phase.
    pub fn of(&self, phase: PhaseKind) -> u64 {
        let i = PhaseKind::ALL
            .iter()
            .position(|p| *p == phase)
            .expect("phase");
        self.cycles[i]
    }

    /// Total cycles.
    pub fn total(&self) -> u64 {
        self.cycles.iter().sum()
    }

    /// Serial-phase (Broadphase + Island Creation) cycles.
    pub fn serial(&self) -> u64 {
        self.of(PhaseKind::Broadphase) + self.of(PhaseKind::IslandCreation)
    }

    /// Seconds at `clock_hz`.
    pub fn seconds(&self, clock_hz: u64) -> f64 {
        self.total() as f64 / clock_hz as f64
    }
}

/// Aggregate result of a simulated window.
#[derive(Debug, Default, Clone, Copy)]
pub struct FrameResult {
    /// Per-phase cycles, summed over the simulated steps.
    pub time: PhaseTime,
    /// Memory statistics over the window.
    pub mem: MemStats,
    /// L2 misses to kernel-space lines (OS model).
    pub kernel_l2_misses: u64,
    /// L2 misses to user-space lines.
    pub user_l2_misses: u64,
}

impl FrameResult {
    /// Seconds for the window at the machine clock.
    pub fn seconds(&self, clock_hz: u64) -> f64 {
        self.time.seconds(clock_hz)
    }
}

/// The multi-core trace-driven simulator.
pub struct MulticoreSim {
    machine: MachineConfig,
    options: SimOptions,
    /// One hierarchy normally; five (one per phase) in dedicated mode.
    hierarchies: Vec<Hierarchy>,
    cores: Vec<CoreModel>,
    kernel_l2_misses: u64,
    user_l2_misses: u64,
    /// Totals already flushed to the telemetry registry.
    flushed: StatTotals,
}

impl std::fmt::Debug for MulticoreSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MulticoreSim")
            .field("cores", &self.machine.cores)
            .field("l2_mb", &self.machine.l2.banks)
            .finish()
    }
}

impl MulticoreSim {
    /// Builds the simulator.
    pub fn new(machine: MachineConfig, options: SimOptions) -> MulticoreSim {
        let n_hier = if options.dedicated_per_phase { 5 } else { 1 };
        MulticoreSim {
            hierarchies: (0..n_hier).map(|_| Hierarchy::new(&machine)).collect(),
            cores: (0..machine.cores)
                .map(|_| CoreModel::new(machine.core))
                .collect(),
            machine,
            options,
            kernel_l2_misses: 0,
            user_l2_misses: 0,
            flushed: StatTotals::default(),
        }
    }

    /// The machine being simulated.
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    fn partition(&self, phase: PhaseKind) -> u8 {
        match &self.options.partition_of_phase {
            Some(map) => {
                let i = PhaseKind::ALL
                    .iter()
                    .position(|p| *p == phase)
                    .expect("phase");
                map[i]
            }
            None => 0,
        }
    }

    fn hierarchy_index(&self, phase: PhaseKind) -> usize {
        if self.options.dedicated_per_phase {
            PhaseKind::ALL
                .iter()
                .position(|p| *p == phase)
                .expect("phase")
        } else {
            0
        }
    }

    /// Feeds one task's memory references through the hierarchy on behalf
    /// of `core`, returning the beyond-L1 stall cycles.
    fn task_mem_stalls(&mut self, phase: PhaseKind, core: usize, task: &TaskTrace) -> u64 {
        let part = self.partition(phase);
        let hi = self.hierarchy_index(phase);
        let l1_lat = self.machine.l1_latency;
        let h = &mut self.hierarchies[hi];
        let mut stall = 0;
        let before = h.stats().l2_misses;
        for &r in &task.reads {
            stall += h.access(core, r, false, part).saturating_sub(l1_lat);
        }
        for &w in &task.writes {
            stall += h.access(core, w, true, part).saturating_sub(l1_lat);
        }
        let new_misses = self.hierarchies[hi].stats().l2_misses - before;
        // Attribute the L2 misses of this task to user space (kernel lines
        // are injected separately).
        self.user_l2_misses += new_misses;
        stall
    }

    /// Injects the OS kernel working set for `threads` workers during a
    /// parallel phase; returns added cycles on the busiest core.
    fn os_kernel_traffic(&mut self, phase: PhaseKind, threads: usize, tasks: usize) -> u64 {
        if !self.options.os_overhead || threads <= 1 || tasks == 0 {
            return 0;
        }
        let part = self.partition(phase);
        let hi = self.hierarchy_index(phase);
        let l1_lat = self.machine.l1_latency;
        // Each thread touches a fraction of its kernel footprint per
        // phase, proportional to how much queue work it does.
        let fraction = (tasks as f64 / 4_000.0).clamp(0.02, 0.2);
        let mut worst = 0u64;
        for t in 0..threads {
            let lines = os::kernel_lines(t, threads, fraction);
            let before = self.hierarchies[hi].stats().l2_misses;
            let mut stall = 0;
            for l in lines {
                stall += self.hierarchies[hi]
                    .access(t % self.machine.cores, l, true, part)
                    .saturating_sub(l1_lat);
            }
            let misses = self.hierarchies[hi].stats().l2_misses - before;
            self.kernel_l2_misses += misses;
            worst = worst.max(stall);
        }
        worst
    }

    /// Simulates one step trace; returns per-phase cycles.
    pub fn run_step(&mut self, trace: &StepTrace) -> PhaseTime {
        let mut time = PhaseTime::default();
        for (pi, phase) in PhaseKind::ALL.iter().enumerate() {
            let kernel = kernel_of(*phase);
            let ptrace = trace.phase(*phase);
            if phase.is_serial() {
                // Serial phases run on core 0.
                let mut cycles = 0;
                for task in &ptrace.tasks {
                    let stalls = self.task_mem_stalls(*phase, 0, task);
                    cycles += self.cores[0].task_cycles(task, kernel, stalls);
                }
                time.cycles[pi] = cycles;
            } else {
                // Parallel phases: dynamic work queue — each task goes to
                // the currently least-loaded core.
                let threads = self.machine.cores;
                let mut load = vec![0u64; threads];
                for task in &ptrace.tasks {
                    let core = (0..threads).min_by_key(|&c| load[c]).expect("cores");
                    let stalls = self.task_mem_stalls(*phase, core, task);
                    let mut cycles = self.cores[core].task_cycles(task, kernel, stalls);
                    if self.options.os_overhead && threads > 1 {
                        cycles += os::KERNEL_INSTR_PER_TASK / self.machine.core.width as u64;
                    }
                    load[core] += cycles;
                }
                let os_cycles = self.os_kernel_traffic(*phase, threads, ptrace.tasks.len());
                time.cycles[pi] = load.into_iter().max().unwrap_or(0) + os_cycles;
            }
        }
        self.flush_telemetry(&time);
        time
    }

    /// Cumulative statistics across all hierarchies plus the OS split.
    fn stat_totals(&self) -> StatTotals {
        let mut t = StatTotals {
            kernel_l2_misses: self.kernel_l2_misses,
            user_l2_misses: self.user_l2_misses,
            ..Default::default()
        };
        for h in &self.hierarchies {
            let s = h.stats();
            t.mem.l1_hits += s.l1_hits;
            t.mem.l1_misses += s.l1_misses;
            t.mem.l2_hits += s.l2_hits;
            t.mem.l2_misses += s.l2_misses;
            t.mem.coherence_transfers += s.coherence_transfers;
            t.prefetches += h.prefetches();
            let (rh, rm) = h.dram_stats();
            t.dram_row_hits += rh;
            t.dram_row_misses += rm;
        }
        t
    }

    /// Flushes the step's statistics delta into the telemetry registry.
    fn flush_telemetry(&mut self, time: &PhaseTime) {
        if !telemetry::enabled() {
            return;
        }
        let m = arch_metrics();
        m.steps.add(1);
        for c in time.cycles {
            m.phase_cycles.record(c);
        }
        let now = self.stat_totals();
        let was = self.flushed;
        m.l1_hits
            .add(now.mem.l1_hits.saturating_sub(was.mem.l1_hits));
        m.l1_misses
            .add(now.mem.l1_misses.saturating_sub(was.mem.l1_misses));
        m.l2_hits
            .add(now.mem.l2_hits.saturating_sub(was.mem.l2_hits));
        m.l2_misses
            .add(now.mem.l2_misses.saturating_sub(was.mem.l2_misses));
        m.coherence_transfers.add(
            now.mem
                .coherence_transfers
                .saturating_sub(was.mem.coherence_transfers),
        );
        m.prefetches
            .add(now.prefetches.saturating_sub(was.prefetches));
        let row_hits = now.dram_row_hits.saturating_sub(was.dram_row_hits);
        let row_misses = now.dram_row_misses.saturating_sub(was.dram_row_misses);
        m.dram_row_hits.add(row_hits);
        m.dram_row_misses.add(row_misses);
        if let Some(rate) = (row_hits * 100).checked_div(row_hits + row_misses) {
            m.dram_row_hit_rate_pct.set(rate);
        }
        m.kernel_l2_misses
            .add(now.kernel_l2_misses.saturating_sub(was.kernel_l2_misses));
        m.user_l2_misses
            .add(now.user_l2_misses.saturating_sub(was.user_l2_misses));
        self.flushed = now;
    }

    /// Simulates a window of steps, aggregating phase times.
    pub fn run_steps(&mut self, traces: &[StepTrace]) -> FrameResult {
        let mut result = FrameResult::default();
        for t in traces {
            let pt = self.run_step(t);
            for i in 0..5 {
                result.time.cycles[i] += pt.cycles[i];
            }
        }
        result.mem = self.hierarchies.iter().fold(MemStats::default(), |acc, h| {
            let s = h.stats();
            MemStats {
                l1_hits: acc.l1_hits + s.l1_hits,
                l1_misses: acc.l1_misses + s.l1_misses,
                l2_hits: acc.l2_hits + s.l2_hits,
                l2_misses: acc.l2_misses + s.l2_misses,
                coherence_transfers: acc.coherence_transfers + s.coherence_transfers,
                total_latency: acc.total_latency + s.total_latency,
            }
        });
        result.kernel_l2_misses = self.kernel_l2_misses;
        result.user_l2_misses = self.user_l2_misses;
        result
    }

    /// Resets statistics after warm-up (cache contents are kept).
    pub fn reset_stats(&mut self) {
        for h in &mut self.hierarchies {
            h.reset_stats();
        }
        self.kernel_l2_misses = 0;
        self.user_l2_misses = 0;
        // Re-baseline so the next telemetry flush sees post-reset deltas.
        self.flushed = self.stat_totals();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;
    use parallax_physics::probe::{IslandWork, PairWork};
    use parallax_physics::StepProfile;

    fn synthetic_trace(pairs: usize, bodies_per_island: usize, islands: usize) -> StepTrace {
        let mut p = StepProfile::default();
        p.broadphase.geoms = pairs + 10;
        p.broadphase.sort_ops = pairs * 10;
        p.broadphase.overlap_tests = pairs * 3;
        p.broadphase.pairs = pairs;
        for k in 0..pairs as u32 {
            p.pairs.push(PairWork {
                geom_a: k,
                geom_b: k + 1,
                body_a: k,
                body_b: k + 1,
                shape_a: "box",
                shape_b: "box",
                contacts: 2,
                active: true,
            });
        }
        p.island_creation.bodies = pairs + 1;
        p.island_creation.union_ops = pairs;
        p.island_creation.find_ops = pairs * 2;
        for i in 0..islands {
            p.islands.push(IslandWork {
                bodies: (0..bodies_per_island as u32)
                    .map(|b| (i * bodies_per_island) as u32 + b)
                    .collect(),
                joints: vec![],
                manifolds: bodies_per_island,
                rows: bodies_per_island * 6,
                dof_removed: bodies_per_island * 6,
                iterations: 20,
                residual: 0.0,
                queued: bodies_per_island * 6 > 25,
                lambda_digest: 0,
            });
        }
        p.joint_count = 0;
        StepTrace::from_profile(&p)
    }

    #[test]
    fn more_cores_speed_up_parallel_phases() {
        let trace = synthetic_trace(200, 8, 12);
        let run = |cores: usize| {
            let mut sim =
                MulticoreSim::new(MachineConfig::baseline(cores, 4), SimOptions::default());
            sim.run_step(&trace)
        };
        let one = run(1);
        let four = run(4);
        assert!(
            four.of(PhaseKind::Narrowphase) < one.of(PhaseKind::Narrowphase) / 2,
            "narrowphase should scale: {} vs {}",
            four.of(PhaseKind::Narrowphase),
            one.of(PhaseKind::Narrowphase)
        );
        // Serial phases do not scale.
        let s1 = one.of(PhaseKind::Broadphase);
        let s4 = four.of(PhaseKind::Broadphase);
        assert!(
            s4 as f64 > s1 as f64 * 0.8,
            "broadphase serial: {s1} vs {s4}"
        );
    }

    #[test]
    fn bigger_l2_never_slower() {
        let trace = synthetic_trace(600, 10, 20);
        let run = |mb: usize| {
            let mut sim = MulticoreSim::new(MachineConfig::baseline(1, mb), SimOptions::default());
            // Warm one step, measure the second (steady state).
            sim.run_step(&trace);
            sim.reset_stats();
            sim.run_step(&trace).total()
        };
        let small = run(1);
        let big = run(16);
        assert!(big <= small, "16MB ({big}) vs 1MB ({small})");
    }

    #[test]
    fn os_overhead_hurts_at_eight_threads() {
        let trace = synthetic_trace(400, 10, 32);
        let run = |cores: usize, os: bool| {
            let mut sim = MulticoreSim::new(
                MachineConfig::baseline(cores, 4),
                SimOptions {
                    os_overhead: os,
                    ..Default::default()
                },
            );
            sim.run_step(&trace);
            sim.reset_stats();
            let _ = sim.run_step(&trace);
            sim.run_steps(&[]).kernel_l2_misses
        };
        let four = run(4, true);
        let eight = run(8, true);
        assert!(
            eight > four * 3,
            "8T kernel misses ({eight}) should dwarf 4T ({four})"
        );
    }

    #[test]
    fn dedicated_phases_do_not_interfere() {
        let trace = synthetic_trace(800, 10, 30);
        let run = |dedicated: bool| {
            let mut sim = MulticoreSim::new(
                MachineConfig::baseline(1, 1),
                SimOptions {
                    dedicated_per_phase: dedicated,
                    ..Default::default()
                },
            );
            for _ in 0..2 {
                sim.run_step(&trace);
            }
            sim.reset_stats();
            let t = sim.run_step(&trace);
            t.serial()
        };
        let shared = run(false);
        let dedicated = run(true);
        assert!(
            dedicated <= shared,
            "dedicated serial time ({dedicated}) should not exceed shared ({shared})"
        );
    }

    #[test]
    fn empty_trace_runs() {
        let mut sim = MulticoreSim::new(MachineConfig::baseline(2, 1), SimOptions::default());
        let t = sim.run_step(&StepTrace::from_profile(&StepProfile::default()));
        assert_eq!(t.total(), 0);
    }
}
