//! Machine configurations (paper Tables 5 and 6).

use serde::{Deserialize, Serialize};

/// A core's microarchitectural parameters.
///
/// The four named constructors correspond to paper Table 6 (fine-grain
/// core candidates); [`CoreConfig::desktop`] doubles as the coarse-grain
/// core of Table 5.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct CoreConfig {
    /// Issue width (instructions/cycle).
    pub width: usize,
    /// Scheduler / instruction-window entries.
    pub window: usize,
    /// Reorder-buffer entries.
    pub rob: usize,
    /// Pipeline depth (stages) — sets the branch-misprediction penalty.
    pub pipeline_depth: usize,
    /// YAGS predictor storage in bytes.
    pub predictor_bytes: usize,
    /// Clock frequency in Hz (paper: all cores at 2 GHz).
    pub clock_hz: u64,
    /// Display name.
    pub name: &'static str,
}

impl CoreConfig {
    /// Desktop-class core: "Intel Core Duo"-like, 4-wide, 14-stage,
    /// 96-entry ROB / 32-entry window, 17 KB YAGS (Tables 5/6).
    pub fn desktop() -> CoreConfig {
        CoreConfig {
            width: 4,
            window: 32,
            rob: 96,
            pipeline_depth: 14,
            predictor_bytes: 17 * 1024,
            clock_hz: 2_000_000_000,
            name: "Desktop",
        }
    }

    /// Console-class core: "IBM Cell"-like, 2-wide, 12-stage, 32-entry
    /// ROB / 8-entry window, 17 KB YAGS (Table 6).
    pub fn console() -> CoreConfig {
        CoreConfig {
            width: 2,
            window: 8,
            rob: 32,
            pipeline_depth: 12,
            predictor_bytes: 17 * 1024,
            clock_hz: 2_000_000_000,
            name: "Console",
        }
    }

    /// GPU-shader-class core: 1-wide, 8-stage, 32-entry ROB / 1-entry
    /// window, 1 KB YAGS (Table 6).
    pub fn shader() -> CoreConfig {
        CoreConfig {
            width: 1,
            window: 1,
            rob: 32,
            pipeline_depth: 8,
            predictor_bytes: 1024,
            clock_hz: 2_000_000_000,
            name: "GPU shader",
        }
    }

    /// Limit-study core: unrealistic 128-wide, 512-entry ROB / 128-entry
    /// window, 64 KB YAGS (Table 6).
    pub fn limit_study() -> CoreConfig {
        CoreConfig {
            width: 128,
            window: 128,
            rob: 512,
            pipeline_depth: 14,
            predictor_bytes: 64 * 1024,
            clock_hz: 2_000_000_000,
            name: "Limit Study",
        }
    }

    /// Branch misprediction penalty in cycles (front-end refill).
    pub fn mispredict_penalty(&self) -> u64 {
        self.pipeline_depth as u64
    }
}

/// Shared-L2 configuration: `banks` 1 MB 4-way banks (paper §5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct L2Config {
    /// Number of 1 MB banks (total size in MB).
    pub banks: usize,
    /// Associativity per bank.
    pub assoc: usize,
    /// Bank access latency in cycles (paper: 15).
    pub latency: u64,
    /// Way-partitioning: when set, accesses carry a partition id and each
    /// partition may only *replace* within its assigned ways
    /// (columnization, paper §6.2). `partition_ways[p]` = ways owned by
    /// partition `p`; the sum must not exceed `assoc`.
    pub partition_ways: Option<Vec<usize>>,
}

impl L2Config {
    /// Unpartitioned L2 of `megabytes` total (1 MB 4-way banks).
    pub fn unified(megabytes: usize) -> L2Config {
        L2Config {
            banks: megabytes.max(1),
            assoc: 4,
            latency: 15,
            partition_ways: None,
        }
    }

    /// Partitioned L2: `ways[p]` ways of every bank belong to partition
    /// `p`.
    ///
    /// # Panics
    ///
    /// Panics if the way assignment exceeds the associativity.
    pub fn partitioned(megabytes: usize, ways: Vec<usize>) -> L2Config {
        let assoc = 4;
        assert!(
            ways.iter().sum::<usize>() <= assoc,
            "partition ways exceed associativity"
        );
        L2Config {
            banks: megabytes.max(1),
            assoc,
            latency: 15,
            partition_ways: Some(ways),
        }
    }

    /// Total capacity in bytes.
    pub fn bytes(&self) -> usize {
        self.banks * 1024 * 1024
    }
}

/// A full machine: CG cores + L2 + memory (paper Table 5).
#[derive(Debug, Clone, Serialize)]
pub struct MachineConfig {
    /// Core configuration for every CG core.
    pub core: CoreConfig,
    /// Number of CG cores.
    pub cores: usize,
    /// L1 data cache size in bytes (paper: 32 KB, 4-way, 2-cycle).
    pub l1_bytes: usize,
    /// L1 associativity.
    pub l1_assoc: usize,
    /// L1 hit latency.
    pub l1_latency: u64,
    /// L2 configuration.
    pub l2: L2Config,
    /// Main-memory latency in cycles (paper: 340).
    pub mem_latency: u64,
    /// Point-to-point hop latency between tiles (paper: 2 cycles/hop).
    pub hop_latency: u64,
    /// Next-line L2 prefetching (the paper's future-work item for
    /// reducing the required L2 size). Off by default to match the
    /// paper's baseline machine.
    pub l2_prefetch: bool,
    /// Use the open-page DRAM model instead of the flat `mem_latency`
    /// (paper Table 5 charges a flat 340 cycles; this refines it).
    pub dram_model: bool,
}

impl MachineConfig {
    /// The paper's baseline: one desktop CG core with `l2_mb` MB of L2.
    pub fn baseline(cores: usize, l2_mb: usize) -> MachineConfig {
        MachineConfig {
            core: CoreConfig::desktop(),
            cores: cores.max(1),
            l1_bytes: 32 * 1024,
            l1_assoc: 4,
            l1_latency: 2,
            l2: L2Config::unified(l2_mb),
            mem_latency: 340,
            hop_latency: 2,
            l2_prefetch: false,
            dram_model: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table6_configs() {
        let d = CoreConfig::desktop();
        assert_eq!((d.width, d.window, d.rob), (4, 32, 96));
        let c = CoreConfig::console();
        assert_eq!((c.width, c.window, c.rob), (2, 8, 32));
        let s = CoreConfig::shader();
        assert_eq!((s.width, s.window, s.rob), (1, 1, 32));
        let l = CoreConfig::limit_study();
        assert_eq!((l.width, l.window, l.rob), (128, 128, 512));
        assert!(s.predictor_bytes < d.predictor_bytes);
    }

    #[test]
    fn l2_capacity() {
        assert_eq!(L2Config::unified(4).bytes(), 4 * 1024 * 1024);
        assert_eq!(L2Config::unified(0).banks, 1);
    }

    #[test]
    #[should_panic(expected = "partition ways exceed associativity")]
    fn overcommitted_partition_panics() {
        let _ = L2Config::partitioned(4, vec![3, 3]);
    }

    #[test]
    fn baseline_matches_table5() {
        let m = MachineConfig::baseline(1, 1);
        assert_eq!(m.l1_bytes, 32 * 1024);
        assert_eq!(m.l1_latency, 2);
        assert_eq!(m.l2.latency, 15);
        assert_eq!(m.mem_latency, 340);
        assert_eq!(m.core.width, 4);
    }
}
