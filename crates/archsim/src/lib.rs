//! Trace-driven architecture simulator for the ParallAX study.
//!
//! Substitutes for the paper's Simics/GEMS full-system infrastructure. The
//! physics engine's step profiles are converted to instruction/memory
//! traces by `parallax-trace`; this crate turns those traces into cycle
//! counts using:
//!
//! * a first-order **interval core model** ([`core`]) parameterized by the
//!   paper's core configurations (Tables 5 and 6),
//! * a **YAGS branch predictor** ([`yags`]) driven by per-kernel synthetic
//!   branch streams ([`branchgen`]),
//! * set-associative **L1/banked-L2 caches** with way-partitioning /
//!   columnization ([`cache`], [`hierarchy`]),
//! * an on-chip **2-D mesh** and **HTX/PCIe** off-chip links ([`mesh`],
//!   [`offchip`]),
//! * an **OS overhead model** reproducing the Solaris kernel-memory blowup
//!   the paper measured at 8 threads ([`os`]), and
//! * a **multi-core frame simulator** ([`multicore`]) that produces the
//!   per-phase execution times of the paper's figures.
//!
//! # Examples
//!
//! ```
//! use parallax_archsim::config::CoreConfig;
//! use parallax_archsim::core::CoreModel;
//! use parallax_trace::{OpCounts, TaskTrace};
//!
//! let mut core = CoreModel::new(CoreConfig::desktop());
//! let task = TaskTrace {
//!     ops: OpCounts { int_alu: 4000, branch: 800, load: 3000,
//!                     store: 800, fp_add: 700, fp_mul: 500,
//!                     fp_div_sqrt: 0, other: 200 },
//!     reads: vec![],
//!     writes: vec![],
//!     fg_subtasks: 1,
//! };
//! // With no memory stalls the task runs at the core's compute-bound IPC.
//! let cycles = core.task_cycles(&task, parallax_trace::Kernel::Narrowphase, 0);
//! assert!(cycles > 0);
//! ```

pub mod branchgen;
pub mod cache;
pub mod config;
pub mod core;
pub mod dram;
pub mod hierarchy;
pub mod mesh;
pub mod multicore;
pub mod offchip;
pub mod os;
pub mod yags;

pub use config::{CoreConfig, L2Config, MachineConfig};
pub use hierarchy::{Hierarchy, MemStats};
pub use multicore::{FrameResult, MulticoreSim, PhaseTime};
