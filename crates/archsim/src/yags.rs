//! The YAGS branch predictor (Eden & Mudge, MICRO 1998).
//!
//! YAGS ("Yet Another Global Scheme") keeps a bimodal choice PHT plus two
//! small tagged caches that record only the *exceptions* to the bimodal
//! bias: a "taken cache" consulted when the choice table says not-taken,
//! and a "not-taken cache" consulted when it says taken. The paper's cores
//! use 17 KB (desktop/console), 1 KB (shader) and 64 KB (limit-study)
//! YAGS predictors.

/// A 2-bit saturating counter.
#[derive(Debug, Default, Clone, Copy)]
struct Counter2(u8);

impl Counter2 {
    fn taken(self) -> bool {
        self.0 >= 2
    }
    fn update(&mut self, taken: bool) {
        if taken {
            self.0 = (self.0 + 1).min(3);
        } else {
            self.0 = self.0.saturating_sub(1);
        }
    }
}

/// A direction-cache entry: partial tag + 2-bit counter.
#[derive(Debug, Default, Clone, Copy)]
struct DirEntry {
    tag: u8,
    ctr: Counter2,
    valid: bool,
}

/// The YAGS predictor.
///
/// # Examples
///
/// ```
/// use parallax_archsim::yags::Yags;
///
/// let mut p = Yags::with_budget(17 * 1024);
/// // A strongly biased branch becomes predictable.
/// let mut correct = 0;
/// for i in 0..1000u64 {
///     let outcome = true;
///     if p.predict_and_update(0x400, outcome) { correct += 1; }
///     let _ = i;
/// }
/// assert!(correct > 950);
/// ```
#[derive(Debug)]
pub struct Yags {
    choice: Vec<Counter2>,
    taken_cache: Vec<DirEntry>,
    not_taken_cache: Vec<DirEntry>,
    history: u64,
    history_bits: u32,
}

impl Yags {
    /// Builds a predictor using roughly `budget_bytes` of storage.
    ///
    /// The budget is split half to the choice PHT (2 bits/entry) and a
    /// quarter to each direction cache (10 bits/entry ≈ tag + counter).
    pub fn with_budget(budget_bytes: usize) -> Yags {
        let choice_entries = ((budget_bytes * 8 / 2) / 2).next_power_of_two().max(64);
        let cache_entries = ((budget_bytes * 8 / 4) / 10).next_power_of_two().max(16);
        let history_bits = cache_entries.trailing_zeros().min(16);
        Yags {
            choice: vec![Counter2::default(); choice_entries],
            taken_cache: vec![DirEntry::default(); cache_entries],
            not_taken_cache: vec![DirEntry::default(); cache_entries],
            history: 0,
            history_bits,
        }
    }

    fn choice_index(&self, pc: u64) -> usize {
        (pc >> 2) as usize & (self.choice.len() - 1)
    }

    fn cache_index(&self, pc: u64) -> usize {
        let h = self.history & ((1 << self.history_bits) - 1);
        ((pc >> 2) ^ h) as usize & (self.taken_cache.len() - 1)
    }

    fn tag_of(pc: u64) -> u8 {
        ((pc >> 2) & 0xff) as u8
    }

    /// Predicts `pc`, then updates with the actual `outcome`. Returns
    /// `true` when the prediction was correct.
    pub fn predict_and_update(&mut self, pc: u64, outcome: bool) -> bool {
        let ci = self.choice_index(pc);
        let choice_taken = self.choice[ci].taken();
        let idx = self.cache_index(pc);
        let tag = Self::tag_of(pc);

        // Consult the exception cache opposite to the bias.
        let (cache_hit, cache_pred) = if choice_taken {
            let e = &self.not_taken_cache[idx];
            (e.valid && e.tag == tag, e.ctr.taken())
        } else {
            let e = &self.taken_cache[idx];
            (e.valid && e.tag == tag, e.ctr.taken())
        };
        let prediction = if cache_hit { cache_pred } else { choice_taken };

        // Update: the exception cache is written when the bimodal choice
        // was wrong (or when the entry already tracks this branch).
        if choice_taken {
            if outcome != choice_taken || cache_hit {
                let e = &mut self.not_taken_cache[idx];
                if !e.valid || e.tag != tag {
                    *e = DirEntry {
                        tag,
                        ctr: Counter2(if outcome { 2 } else { 1 }),
                        valid: true,
                    };
                } else {
                    e.ctr.update(outcome);
                }
            }
        } else if outcome != choice_taken || cache_hit {
            let e = &mut self.taken_cache[idx];
            if !e.valid || e.tag != tag {
                *e = DirEntry {
                    tag,
                    ctr: Counter2(if outcome { 2 } else { 1 }),
                    valid: true,
                };
            } else {
                e.ctr.update(outcome);
            }
        }
        // The choice PHT is not updated when the exception cache was
        // correct and the choice was wrong (standard YAGS rule).
        let cache_was_correct = cache_hit && cache_pred == outcome;
        if !(cache_was_correct && choice_taken != outcome) {
            self.choice[ci].update(outcome);
        }

        self.history = (self.history << 1) | outcome as u64;
        prediction == outcome
    }

    /// Storage entries (for tests/diagnostics).
    pub fn sizes(&self) -> (usize, usize) {
        (self.choice.len(), self.taken_cache.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Simple deterministic xorshift for reproducible streams.
    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    fn accuracy(p: &mut Yags, branches: impl Iterator<Item = (u64, bool)>) -> f64 {
        let mut total = 0u64;
        let mut correct = 0u64;
        for (pc, outcome) in branches {
            total += 1;
            if p.predict_and_update(pc, outcome) {
                correct += 1;
            }
        }
        correct as f64 / total as f64
    }

    #[test]
    fn biased_branches_are_learned() {
        let mut p = Yags::with_budget(17 * 1024);
        let acc = accuracy(&mut p, (0..10_000u64).map(|i| (0x100 + (i % 16) * 4, true)));
        assert!(acc > 0.98, "accuracy {acc}");
    }

    #[test]
    fn alternating_pattern_is_learned_via_history() {
        let mut p = Yags::with_budget(17 * 1024);
        // T,N,T,N... is perfectly predictable with global history.
        let acc = accuracy(&mut p, (0..20_000u64).map(|i| (0x200, i % 2 == 0)));
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn loop_branch_mostly_correct() {
        let mut p = Yags::with_budget(17 * 1024);
        // A loop of 20 iterations: taken 19×, not-taken once.
        let stream = (0..40_000u64).map(|i| (0x300, i % 20 != 19));
        let acc = accuracy(&mut p, stream);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn random_branches_are_hard() {
        let mut p = Yags::with_budget(17 * 1024);
        let mut st = 0x1234_5678_9abc_def0u64;
        let acc = accuracy(
            &mut p,
            (0..50_000u64).map(|i| {
                let r = xorshift(&mut st);
                (0x400 + (i % 8) * 4, r & 1 == 1)
            }),
        );
        assert!(acc < 0.65, "random stream should be near chance: {acc}");
    }

    #[test]
    fn bigger_budget_never_much_worse() {
        // Data-dependent but biased branches: a bigger predictor should do
        // at least as well as a tiny one.
        let run = |bytes: usize| {
            let mut p = Yags::with_budget(bytes);
            let mut st = 99u64;
            accuracy(
                &mut p,
                (0..50_000u64).map(|i| {
                    let r = xorshift(&mut st);
                    // 80% taken, many distinct PCs (aliasing pressure).
                    (0x1000 + (i % 512) * 4, r % 10 < 8)
                }),
            )
        };
        let small = run(1024);
        let big = run(64 * 1024);
        assert!(
            big >= small - 0.02,
            "64KB ({big}) should not lose to 1KB ({small})"
        );
    }

    #[test]
    fn budget_controls_table_sizes() {
        let small = Yags::with_budget(1024);
        let big = Yags::with_budget(64 * 1024);
        assert!(big.sizes().0 > small.sizes().0);
        assert!(big.sizes().1 > small.sizes().1);
    }
}
