//! Synthetic per-kernel branch streams.
//!
//! The trace layer counts *how many* branches each kernel executes; this
//! module models *how predictable* they are. Each kernel gets a small set
//! of static branch sites (sized from its static instruction count) with
//! per-site bias and correlation chosen to match the paper's observations:
//! Narrowphase is branchy and data-dependent ("Narrowphase degrades with
//! more resources due to mispredicted branch instructions"), the island
//! solver's branches are loop branches (highly predictable), and cloth is
//! in between.

use parallax_trace::Kernel;

use crate::yags::Yags;

/// A static branch site: program counter, taken bias, and correlation with
/// the previous outcome of the same site (1.0 = always repeats, 0.0 =
/// independent draws).
#[derive(Debug, Clone, Copy)]
struct Site {
    pc: u64,
    bias: f64,
    correlation: f64,
}

/// Per-kernel site tables.
fn sites(kernel: Kernel) -> Vec<Site> {
    let make = |n: usize, base: u64, bias: f64, correlation: f64| -> Vec<Site> {
        (0..n)
            .map(|i| Site {
                pc: base + i as u64 * 4,
                bias,
                correlation,
            })
            .collect()
    };
    match kernel {
        // 277 static instr, 8% branches ≈ 22 sites; geometry tests are
        // data-dependent: weak bias, little correlation.
        Kernel::Narrowphase => {
            let mut v = make(10, 0x1000, 0.8, 0.6);
            v.extend(make(8, 0x1100, 0.97, 0.92)); // loop back-edges
            v.extend(make(4, 0x1200, 0.65, 0.35)); // data-dependent clips
            v
        }
        // Solver sweeps: dominated by loop branches and rare clamp
        // exceptions.
        Kernel::IslandSolver => {
            let mut v = make(4, 0x2000, 0.995, 0.98);
            v.extend(make(2, 0x2100, 0.96, 0.9));
            v
        }
        // Cloth: loop branches plus pin/collision tests.
        Kernel::Cloth => {
            let mut v = make(5, 0x3000, 0.99, 0.96);
            v.extend(make(4, 0x3100, 0.95, 0.92));
            v
        }
        // Broad-phase: hash-cell iteration branches are loopy and fairly
        // predictable; AABB rejections are biased toward "no overlap".
        Kernel::Broadphase => {
            let mut v = make(6, 0x4000, 0.78, 0.55);
            v.extend(make(4, 0x4100, 0.93, 0.85));
            v
        }
        // Island creation: union-find branches moderately biased.
        Kernel::IslandCreation => {
            let mut v = make(5, 0x5000, 0.8, 0.55);
            v.extend(make(3, 0x5100, 0.95, 0.9));
            v
        }
    }
}

/// Deterministic xorshift PRNG.
#[derive(Debug, Clone)]
struct XorShift(u64);

impl XorShift {
    fn next_f64(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Measures the misprediction rate of `predictor_bytes` of YAGS on
/// `kernel`'s synthetic branch stream.
///
/// The result is deterministic for a given (kernel, budget) pair; call
/// sites should cache it (see [`MispredictTable`]).
pub fn mispredict_rate(kernel: Kernel, predictor_bytes: usize) -> f64 {
    let sites = sites(kernel);
    let mut predictor = Yags::with_budget(predictor_bytes);
    let mut rng = XorShift(0x9E37_79B9_7F4A_7C15 ^ kernel as u64);
    let mut last: Vec<bool> = sites.iter().map(|s| s.bias >= 0.5).collect();

    const WARMUP: usize = 20_000;
    const MEASURE: usize = 100_000;
    let mut wrong = 0usize;
    for n in 0..WARMUP + MEASURE {
        let i = (rng.next_f64() * sites.len() as f64) as usize % sites.len();
        let s = sites[i];
        let outcome = if rng.next_f64() < s.correlation {
            last[i]
        } else {
            rng.next_f64() < s.bias
        };
        last[i] = outcome;
        let correct = predictor.predict_and_update(s.pc, outcome);
        if n >= WARMUP && !correct {
            wrong += 1;
        }
    }
    wrong as f64 / MEASURE as f64
}

/// A memoized table of misprediction rates.
#[derive(Debug, Default)]
pub struct MispredictTable {
    cache: std::collections::HashMap<(Kernel, usize), f64>,
}

impl MispredictTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up (computing on first use) the misprediction rate.
    pub fn rate(&mut self, kernel: Kernel, predictor_bytes: usize) -> f64 {
        *self
            .cache
            .entry((kernel, predictor_bytes))
            .or_insert_with(|| mispredict_rate(kernel, predictor_bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn narrowphase_is_hardest_to_predict() {
        let nw = mispredict_rate(Kernel::Narrowphase, 17 * 1024);
        let is = mispredict_rate(Kernel::IslandSolver, 17 * 1024);
        let cl = mispredict_rate(Kernel::Cloth, 17 * 1024);
        assert!(nw > is, "narrowphase {nw} vs solver {is}");
        assert!(nw > cl, "narrowphase {nw} vs cloth {cl}");
        assert!(is < 0.03, "solver loops are predictable: {is}");
        assert!(nw > 0.05, "narrowphase is data-dependent: {nw}");
    }

    #[test]
    fn bigger_predictor_helps_or_ties() {
        for k in Kernel::FG {
            let small = mispredict_rate(k, 1024);
            let big = mispredict_rate(k, 64 * 1024);
            assert!(
                big <= small + 0.02,
                "{k:?}: 64KB ({big}) worse than 1KB ({small})"
            );
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            mispredict_rate(Kernel::Cloth, 4096),
            mispredict_rate(Kernel::Cloth, 4096)
        );
    }

    #[test]
    fn table_memoizes() {
        let mut t = MispredictTable::new();
        let a = t.rate(Kernel::Broadphase, 17 * 1024);
        let b = t.rate(Kernel::Broadphase, 17 * 1024);
        assert_eq!(a, b);
    }
}
