//! Operating-system overhead model (paper §6.2, Figure 6b).
//!
//! The paper measured (with Solaris 10 `pmap`) that each worker thread
//! uses ~850 KB of kernel memory at 2–4 threads, jumping to ~5 MB per
//! thread at 8 threads. These kernel working sets contend with user data
//! in the L2 and are the main source of the 5× L2-miss increase when
//! scaling from 4 to 8 threads.

use parallax_trace::memmap::{Region, LINE};

/// Kernel-memory footprint per worker thread, in bytes.
///
/// Matches the paper's `pmap` measurements: ~850 KB up to 4 threads,
/// ~5 MB at 8 threads (interpolated between).
pub fn kernel_bytes_per_thread(threads: usize) -> u64 {
    match threads {
        0..=4 => 850 * 1024,
        5 => 1_400 * 1024,
        6 => 2_300 * 1024,
        7 => 3_600 * 1024,
        _ => 5 * 1024 * 1024,
    }
}

/// Generates the kernel-space cache lines a worker thread touches during a
/// parallel-phase invocation.
///
/// `fraction` scales how much of the per-thread footprint one phase
/// touches (work-queue management, malloc arenas, scheduling).
pub fn kernel_lines(thread: usize, threads: usize, fraction: f64) -> Vec<u64> {
    let per_thread = kernel_bytes_per_thread(threads);
    let touch = (per_thread as f64 * fraction.clamp(0.0, 1.0)) as u64;
    let base = Region::Kernel.base() + thread as u64 * 8 * 1024 * 1024;
    (0..touch / LINE).map(|i| base + i * LINE).collect()
}

/// Extra kernel instructions per FG task dispatched through the work
/// queue (locking, queue manipulation).
pub const KERNEL_INSTR_PER_TASK: u64 = 220;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprint_matches_pmap_measurements() {
        assert_eq!(kernel_bytes_per_thread(2), 850 * 1024);
        assert_eq!(kernel_bytes_per_thread(4), 850 * 1024);
        assert_eq!(kernel_bytes_per_thread(8), 5 * 1024 * 1024);
        assert!(kernel_bytes_per_thread(6) > kernel_bytes_per_thread(4));
        assert!(kernel_bytes_per_thread(6) < kernel_bytes_per_thread(8));
    }

    #[test]
    fn eight_threads_touch_far_more_kernel_memory() {
        let four: usize = (0..4).map(|t| kernel_lines(t, 4, 0.25).len()).sum();
        let eight: usize = (0..8).map(|t| kernel_lines(t, 8, 0.25).len()).sum();
        assert!(
            eight as f64 / four as f64 > 4.0,
            "4T {four} lines vs 8T {eight} lines"
        );
    }

    #[test]
    fn threads_use_disjoint_kernel_regions() {
        let a = kernel_lines(0, 8, 1.0);
        let b = kernel_lines(1, 8, 1.0);
        let bset: std::collections::HashSet<_> = b.into_iter().collect();
        assert!(a.iter().all(|l| !bset.contains(l)));
    }

    #[test]
    fn all_kernel_lines_in_kernel_region() {
        for l in kernel_lines(3, 8, 0.1) {
            assert!(Region::Kernel.contains(l), "addr {l:#x}");
        }
    }
}
