//! Off-chip interconnects: HyperTransport (HTX) and PCI Express (paper
//! §5.1/§7.2).
//!
//! PCIe: "a system interconnect with a maximum half-duplex bandwidth of
//! 4 GB/s, used by both GPUs and PhysX." HTX: "a co-processor interconnect
//! with a maximum half-duplex bandwidth of 20.8 GB/s."

use serde::{Deserialize, Serialize};

/// An interconnect between the CG cores and the FG pool.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Link {
    /// On-chip 2-D mesh (tight coupling).
    OnChipMesh,
    /// HyperTransport co-processor link.
    Htx,
    /// PCI Express system bus.
    Pcie,
}

impl Link {
    /// All three alternatives in the paper's order.
    pub const ALL: [Link; 3] = [Link::OnChipMesh, Link::Htx, Link::Pcie];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Link::OnChipMesh => "On-chip",
            Link::Htx => "HTX",
            Link::Pcie => "PCIe",
        }
    }

    /// Half-duplex bandwidth in bytes per second.
    pub fn bandwidth_bytes_per_sec(self) -> f64 {
        match self {
            // On-chip mesh: one 56-bit payload per cycle per link at 2 GHz.
            Link::OnChipMesh => 7.0 * 2.0e9,
            Link::Htx => 20.8e9,
            Link::Pcie => 4.0e9,
        }
    }

    /// One-way latency in core cycles at 2 GHz.
    ///
    /// On-chip: a handful of mesh hops. HTX: a co-processor hop
    /// (~65 ns). PCIe: a full system-bus round (~350 ns) — the ~12×
    /// on-chip-to-PCIe ratio reflected in the paper's Table 7 task
    /// requirements.
    pub fn latency_cycles(self) -> u64 {
        match self {
            Link::OnChipMesh => 60,
            Link::Htx => 135,
            Link::Pcie => 700,
        }
    }

    /// Cycles to transfer `bytes` one way, latency + serialization at
    /// 2 GHz.
    pub fn transfer_cycles(self, bytes: u64) -> u64 {
        let ser = (bytes as f64) / self.bandwidth_bytes_per_sec() * 2.0e9;
        self.latency_cycles() + ser.ceil() as u64
    }

    /// Seconds to transfer `bytes` one way.
    pub fn transfer_seconds(self, bytes: u64) -> f64 {
        self.transfer_cycles(bytes) as f64 / 2.0e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_ordering() {
        assert!(Link::OnChipMesh.latency_cycles() < Link::Htx.latency_cycles());
        assert!(Link::Htx.latency_cycles() < Link::Pcie.latency_cycles());
    }

    #[test]
    fn bandwidth_matches_paper() {
        assert_eq!(Link::Htx.bandwidth_bytes_per_sec(), 20.8e9);
        assert_eq!(Link::Pcie.bandwidth_bytes_per_sec(), 4.0e9);
    }

    #[test]
    fn pcie_frame_sync_cost_matches_paper_estimate() {
        // Paper §8.3: communicating 1,000 object poses (60 B), 10,000
        // particle positions (12 B) and 5,000 mesh vertices (12 B) over
        // PCIe takes ~0.00006 s.
        let bytes = 1_000 * 60 + 10_000 * 12 + 5_000 * 12;
        let t = Link::Pcie.transfer_seconds(bytes);
        assert!(
            (3e-5..1.2e-4).contains(&t),
            "frame sync {t} s, paper says ~6e-5"
        );
    }

    #[test]
    fn serialization_grows_with_size() {
        let small = Link::Htx.transfer_cycles(64);
        let big = Link::Htx.transfer_cycles(64 * 1024);
        assert!(big > small);
    }
}
