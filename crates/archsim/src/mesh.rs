//! The on-chip 2-D mesh interconnect (paper §5.1).
//!
//! Parameters from the paper's Polaris-derived model at 90 nm: 1-cycle
//! per-hop link delay, a 5-cycle router pipeline, 64-bit flits with an
//! 8-bit header (56-bit payload), and four virtual channels.

use serde::{Deserialize, Serialize};

/// A `w × h` 2-D mesh of tiles.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Mesh2D {
    /// Tiles along X.
    pub width: usize,
    /// Tiles along Y.
    pub height: usize,
    /// Link traversal cycles per hop (paper: 1).
    pub link_cycles: u64,
    /// Router pipeline depth in cycles (paper: 5).
    pub router_cycles: u64,
    /// Flit size in bits (paper: 64).
    pub flit_bits: u64,
    /// Header bits per packet (paper: 8).
    pub header_bits: u64,
    /// Virtual channels (paper: 4) — scales sustainable throughput.
    pub virtual_channels: usize,
}

impl Mesh2D {
    /// A mesh just large enough for `tiles` tiles (near-square).
    pub fn for_tiles(tiles: usize) -> Mesh2D {
        let w = (tiles as f64).sqrt().ceil().max(1.0) as usize;
        let h = tiles.div_ceil(w).max(1);
        Mesh2D {
            width: w,
            height: h,
            link_cycles: 1,
            router_cycles: 5,
            flit_bits: 64,
            header_bits: 8,
            virtual_channels: 4,
        }
    }

    /// XY-routing hop count between tile indices (row-major).
    pub fn hops(&self, from: usize, to: usize) -> u64 {
        let (fx, fy) = (from % self.width, from / self.width);
        let (tx, ty) = (to % self.width, to / self.width);
        (fx.abs_diff(tx) + fy.abs_diff(ty)) as u64
    }

    /// Average hop count over all tile pairs (≈ (w+h)/3 for a mesh).
    pub fn average_hops(&self) -> f64 {
        (self.width as f64 + self.height as f64) / 3.0
    }

    /// Flits needed for a `bytes`-byte message (payload = flit −
    /// header bits).
    pub fn flits(&self, bytes: u64) -> u64 {
        let payload = self.flit_bits - self.header_bits;
        (bytes * 8).div_ceil(payload).max(1)
    }

    /// Latency of one `bytes`-byte packet over `hops` hops: per-hop link +
    /// router delays for the head flit plus serialization of the body.
    pub fn packet_latency(&self, bytes: u64, hops: u64) -> u64 {
        let head = hops * (self.link_cycles + self.router_cycles);
        head + self.flits(bytes) - 1
    }

    /// Latency using the average hop distance.
    pub fn average_latency(&self, bytes: u64) -> u64 {
        self.packet_latency(bytes, self.average_hops().round() as u64)
    }

    /// Peak bandwidth of one link in bytes/cycle (payload bits per flit
    /// per cycle).
    pub fn link_bandwidth(&self) -> f64 {
        (self.flit_bits - self.header_bits) as f64 / 8.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_tiles_covers_requested_count() {
        for n in [1, 4, 30, 43, 150] {
            let m = Mesh2D::for_tiles(n);
            assert!(m.width * m.height >= n, "{n} tiles");
        }
    }

    #[test]
    fn xy_routing_hops() {
        let m = Mesh2D::for_tiles(16); // 4x4
        assert_eq!(m.hops(0, 0), 0);
        assert_eq!(m.hops(0, 3), 3);
        assert_eq!(m.hops(0, 15), 6);
        assert_eq!(m.hops(5, 10), 2);
    }

    #[test]
    fn packet_latency_scales_with_size_and_distance() {
        let m = Mesh2D::for_tiles(16);
        let small_near = m.packet_latency(8, 1);
        let small_far = m.packet_latency(8, 6);
        let big_near = m.packet_latency(512, 1);
        assert!(small_far > small_near);
        assert!(big_near > small_near);
        // Head-flit latency: hops × (1 + 5).
        assert_eq!(m.packet_latency(7, 4), 4 * 6);
    }

    #[test]
    fn flit_count_uses_56bit_payload() {
        let m = Mesh2D::for_tiles(4);
        assert_eq!(m.flits(7), 1);
        assert_eq!(m.flits(8), 2); // 64 bits > 56-bit payload
        assert_eq!(m.flits(56), 8);
    }
}
