//! Set-associative caches with LRU replacement and way-partitioning
//! (columnization, paper §6.2 / Chiou et al.).

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessResult {
    /// Line present.
    Hit,
    /// Line absent; it has been filled.
    Miss,
}

/// One set-associative cache (or one bank of a banked cache).
///
/// # Examples
///
/// ```
/// use parallax_archsim::cache::{Cache, AccessResult};
///
/// let mut c = Cache::new(32 * 1024, 4, 64);
/// assert_eq!(c.access(0x1000, 0), AccessResult::Miss);
/// assert_eq!(c.access(0x1000, 0), AccessResult::Hit);
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    sets: usize,
    assoc: usize,
    line: u64,
    /// tags[set * assoc + way]; `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// LRU stamps, larger = more recent.
    stamps: Vec<u64>,
    /// Partition owning each way-slot's line (for partition-aware
    /// replacement); `u8::MAX` = unowned.
    owners: Vec<u8>,
    clock: u64,
    /// When set, partition p may replace only in ways
    /// `[way_start[p], way_start[p] + way_count[p])`.
    partition_ranges: Option<Vec<(usize, usize)>>,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates a cache of `bytes` capacity, `assoc` ways and `line`-byte
    /// lines.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sets).
    pub fn new(bytes: usize, assoc: usize, line: u64) -> Cache {
        let sets = bytes / (assoc * line as usize);
        assert!(sets > 0, "cache too small for its associativity");
        // Sets need not be a power of two (e.g. 12 MB L2); we use modulo
        // indexing.
        Cache {
            sets,
            assoc,
            line,
            tags: vec![u64::MAX; sets * assoc],
            stamps: vec![0; sets * assoc],
            owners: vec![u8::MAX; sets * assoc],
            clock: 0,
            partition_ranges: None,
            hits: 0,
            misses: 0,
        }
    }

    /// Restricts replacement by partition: `ways[p]` consecutive ways per
    /// set belong to partition `p`. Unassigned ways are usable by
    /// partition ids beyond the table (treated as sharing the remainder).
    ///
    /// # Panics
    ///
    /// Panics if the assignment exceeds the associativity.
    pub fn set_partitions(&mut self, ways: &[usize]) {
        let total: usize = ways.iter().sum();
        assert!(total <= self.assoc, "partition ways exceed associativity");
        assert!(
            ways.iter().all(|&w| w >= 1),
            "every partition needs at least one way (0 would silently \
             fall back to the whole set)"
        );
        let mut ranges = Vec::with_capacity(ways.len() + 1);
        let mut start = 0;
        for &w in ways {
            ranges.push((start, w));
            start += w;
        }
        // Partition ids beyond the table share the leftover ways, or the
        // whole set when every way is assigned.
        let rem = self.assoc - total;
        if rem > 0 {
            ranges.push((start, rem));
        } else {
            ranges.push((0, self.assoc));
        }
        self.partition_ranges = Some(ranges);
    }

    #[inline]
    fn set_of(&self, addr: u64) -> usize {
        ((addr / self.line) % self.sets as u64) as usize
    }

    #[inline]
    fn tag_of(&self, addr: u64) -> u64 {
        addr / self.line / self.sets as u64
    }

    /// Accesses `addr` on behalf of `partition`. Lookup checks all ways;
    /// on a miss, the victim is chosen within the partition's ways when
    /// partitioning is enabled.
    pub fn access(&mut self, addr: u64, partition: u8) -> AccessResult {
        self.clock += 1;
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let base = set * self.assoc;

        // Hit check across every way (partitioning restricts replacement,
        // not lookup).
        for w in 0..self.assoc {
            if self.tags[base + w] == tag {
                self.stamps[base + w] = self.clock;
                self.hits += 1;
                return AccessResult::Hit;
            }
        }
        self.misses += 1;

        // Victim selection (zero-way ranges are rejected at construction,
        // so every range here is non-empty).
        let (start, count) = match &self.partition_ranges {
            Some(ranges) => ranges[(partition as usize).min(ranges.len() - 1)],
            None => (0, self.assoc),
        };
        let mut victim = start;
        let mut oldest = u64::MAX;
        for w in start..(start + count).min(self.assoc) {
            if self.tags[base + w] == u64::MAX {
                victim = w;
                break;
            }
            if self.stamps[base + w] < oldest {
                oldest = self.stamps[base + w];
                victim = w;
            }
        }
        self.tags[base + victim] = tag;
        self.stamps[base + victim] = self.clock;
        self.owners[base + victim] = partition;
        AccessResult::Miss
    }

    /// Invalidates the line containing `addr` if resident (coherence).
    pub fn invalidate(&mut self, addr: u64) {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let base = set * self.assoc;
        for w in 0..self.assoc {
            if self.tags[base + w] == tag {
                self.tags[base + w] = u64::MAX;
                self.stamps[base + w] = 0;
                self.owners[base + w] = u8::MAX;
            }
        }
    }

    /// Returns `true` without updating state if `addr` is resident.
    pub fn probe(&self, addr: u64) -> bool {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let base = set * self.assoc;
        (0..self.assoc).any(|w| self.tags[base + w] == tag)
    }

    /// (hits, misses) so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Resets statistics but keeps cache contents.
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Invalidates everything (cold cache).
    pub fn flush(&mut self) {
        self.tags.fill(u64::MAX);
        self.stamps.fill(0);
        self.owners.fill(u8::MAX);
    }

    /// Capacity in bytes.
    pub fn bytes(&self) -> usize {
        self.sets * self.assoc * self.line as usize
    }
}

/// A multi-bank cache: line-interleaved across `banks` banks.
#[derive(Debug, Clone)]
pub struct BankedCache {
    banks: Vec<Cache>,
    line: u64,
}

impl BankedCache {
    /// Creates `banks` banks of `bank_bytes` each.
    pub fn new(banks: usize, bank_bytes: usize, assoc: usize, line: u64) -> BankedCache {
        BankedCache {
            banks: (0..banks.max(1))
                .map(|_| Cache::new(bank_bytes, assoc, line))
                .collect(),
            line,
        }
    }

    /// Applies way-partitioning to every bank.
    pub fn set_partitions(&mut self, ways: &[usize]) {
        for b in &mut self.banks {
            b.set_partitions(ways);
        }
    }

    /// Which bank serves `addr`.
    pub fn bank_of(&self, addr: u64) -> usize {
        ((addr / self.line) % self.banks.len() as u64) as usize
    }

    /// Bank-local address: lines are interleaved across banks, so within a
    /// bank consecutive resident lines are `banks` lines apart globally.
    /// Folding by the bank count lets every bank use all of its sets.
    fn local_addr(&self, addr: u64) -> u64 {
        let line_id = addr / self.line;
        (line_id / self.banks.len() as u64) * self.line + (addr % self.line)
    }

    /// Accesses the line through its bank.
    pub fn access(&mut self, addr: u64, partition: u8) -> AccessResult {
        let b = self.bank_of(addr);
        let local = self.local_addr(addr);
        self.banks[b].access(local, partition)
    }

    /// Probes without side effects.
    pub fn probe(&self, addr: u64) -> bool {
        self.banks[self.bank_of(addr)].probe(self.local_addr(addr))
    }

    /// Aggregate (hits, misses).
    pub fn stats(&self) -> (u64, u64) {
        self.banks
            .iter()
            .map(|b| b.stats())
            .fold((0, 0), |(h, m), (bh, bm)| (h + bh, m + bm))
    }

    /// Resets statistics on every bank.
    pub fn reset_stats(&mut self) {
        for b in &mut self.banks {
            b.reset_stats();
        }
    }

    /// Invalidates every bank.
    pub fn flush(&mut self) {
        for b in &mut self.banks {
            b.flush();
        }
    }

    /// Number of banks.
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    /// Total capacity in bytes.
    pub fn bytes(&self) -> usize {
        self.banks.iter().map(|b| b.bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_fill() {
        let mut c = Cache::new(1024, 2, 64);
        assert_eq!(c.access(0, 0), AccessResult::Miss);
        assert_eq!(c.access(0, 0), AccessResult::Hit);
        assert_eq!(c.access(32, 0), AccessResult::Hit, "same line");
        assert_eq!(c.stats(), (2, 1));
    }

    #[test]
    fn lru_evicts_oldest() {
        // 2-way cache: three conflicting lines evict the least recent.
        let mut c = Cache::new(2 * 64, 2, 64); // 1 set, 2 ways
        c.access(0, 0);
        c.access(64, 0);
        c.access(0, 0); // refresh line 0
        c.access(128, 0); // evicts line 64
        assert!(c.probe(0));
        assert!(!c.probe(64));
        assert!(c.probe(128));
    }

    #[test]
    fn capacity_miss_behavior() {
        // Working set larger than capacity thrashes; smaller fits.
        let mut c = Cache::new(4 * 1024, 4, 64);
        let lines = 4 * 1024 / 64;
        for pass in 0..3 {
            for i in 0..(lines as u64) * 2 {
                c.access(i * 64, 0);
            }
            let _ = pass;
        }
        let (h, m) = c.stats();
        assert!(m > h, "2x working set must thrash: {h} hits {m} misses");

        let mut c2 = Cache::new(4 * 1024, 4, 64);
        for _ in 0..3 {
            for i in 0..(lines as u64) / 2 {
                c2.access(i * 64, 0);
            }
        }
        let (h2, m2) = c2.stats();
        assert!(
            h2 >= m2 * 2,
            "half working set must mostly hit: {h2} hits {m2} misses"
        );
    }

    #[test]
    fn partitioned_replacement_protects_other_partition() {
        // 4-way, 1 set. Partition 0 gets 2 ways, partition 1 gets 2 ways.
        let mut c = Cache::new(4 * 64, 4, 64);
        c.set_partitions(&[2, 2]);
        // Partition 0 loads two lines.
        c.access(0, 0);
        c.access(256, 0);
        // Partition 1 streams many lines; partition 0's data must survive.
        for i in 0..100u64 {
            c.access(64 * (1000 + i), 1);
        }
        assert!(c.probe(0), "partition 0 line evicted by partition 1");
        assert!(c.probe(256));
    }

    #[test]
    fn lookup_hits_across_partitions() {
        let mut c = Cache::new(4 * 64, 4, 64);
        c.set_partitions(&[2, 2]);
        c.access(0, 0);
        // Partition 1 can *hit* on partition 0's line.
        assert_eq!(c.access(0, 1), AccessResult::Hit);
    }

    #[test]
    fn banked_cache_distributes_lines() {
        let mut b = BankedCache::new(4, 1024, 4, 64);
        let mut seen = std::collections::HashSet::new();
        for i in 0..8u64 {
            seen.insert(b.bank_of(i * 64));
            b.access(i * 64, 0);
        }
        assert_eq!(seen.len(), 4, "consecutive lines hit all banks");
        assert_eq!(b.stats().1, 8);
        for i in 0..8u64 {
            assert_eq!(b.access(i * 64, 0), AccessResult::Hit);
        }
    }

    #[test]
    fn flush_empties_cache() {
        let mut c = Cache::new(1024, 2, 64);
        c.access(0, 0);
        c.flush();
        assert!(!c.probe(0));
    }

    #[test]
    fn non_power_of_two_sets_work() {
        // 12 KB, 4-way, 64B lines → 48 sets. 100 lines (≈2 per set) fit.
        let mut c = Cache::new(12 * 1024, 4, 64);
        for i in 0..100u64 {
            c.access(i * 64, 0);
        }
        for i in 0..100u64 {
            c.access(i * 64, 0);
        }
        let (h, _) = c.stats();
        assert!(h > 0);
        assert_eq!(c.bytes(), 12 * 1024);
    }
}
