//! Property-based tests for the architecture simulator's data structures.

use parallax_archsim::cache::{AccessResult, BankedCache, Cache};
use parallax_archsim::mesh::Mesh2D;
use parallax_archsim::yags::Yags;
use proptest::prelude::*;

proptest! {
    #[test]
    fn cache_inclusion_after_access(addrs in prop::collection::vec(0u64..1_000_000, 1..200)) {
        // The most recently accessed line is always resident.
        let mut c = Cache::new(4 * 1024, 4, 64);
        for &a in &addrs {
            c.access(a, 0);
            prop_assert!(c.probe(a), "line {a:#x} missing right after access");
        }
    }

    #[test]
    fn cache_hit_plus_miss_equals_accesses(addrs in prop::collection::vec(0u64..100_000, 1..300)) {
        let mut c = Cache::new(2 * 1024, 2, 64);
        for &a in &addrs {
            c.access(a, 0);
        }
        let (h, m) = c.stats();
        prop_assert_eq!(h + m, addrs.len() as u64);
    }

    #[test]
    fn repeated_single_line_always_hits_after_first(addr in 0u64..1_000_000, n in 2usize..50) {
        let mut c = Cache::new(1024, 2, 64);
        c.access(addr, 0);
        for _ in 1..n {
            prop_assert_eq!(c.access(addr, 0), AccessResult::Hit);
        }
    }

    #[test]
    fn banked_cache_agrees_with_itself_on_residency(
        addrs in prop::collection::vec(0u64..10_000_000, 1..300)
    ) {
        // probe() must agree with a subsequent access being a hit.
        let mut b = BankedCache::new(4, 64 * 1024, 4, 64);
        for &a in &addrs {
            b.access(a, 0);
        }
        for &a in addrs.iter().rev().take(3) {
            if b.probe(a) {
                prop_assert_eq!(b.access(a, 0), AccessResult::Hit);
            }
        }
    }

    #[test]
    fn working_set_within_capacity_converges_to_hits(
        lines in 1usize..30, passes in 2usize..6
    ) {
        // Any working set smaller than half the capacity must stop missing
        // after the first pass (LRU with enough associativity).
        let mut c = Cache::new(16 * 1024, 8, 64);
        let addrs: Vec<u64> = (0..lines as u64).map(|i| i * 64).collect();
        for &a in &addrs {
            c.access(a, 0);
        }
        c.reset_stats();
        for _ in 1..passes {
            for &a in &addrs {
                c.access(a, 0);
            }
        }
        let (_, m) = c.stats();
        prop_assert_eq!(m, 0, "resident working set must not miss");
    }

    #[test]
    fn partitioned_cache_never_loses_lookup_correctness(
        addrs in prop::collection::vec(0u64..100_000, 1..200),
        parts in prop::collection::vec(0u8..3, 1..200)
    ) {
        // Partitioning restricts replacement, not correctness: a line
        // reported resident must hit for every partition id.
        let mut c = Cache::new(4 * 1024, 4, 64);
        c.set_partitions(&[1, 2, 1]);
        for (i, &a) in addrs.iter().enumerate() {
            let p = parts[i % parts.len()];
            c.access(a, p);
            prop_assert!(c.probe(a));
        }
    }

    #[test]
    fn mesh_hops_form_a_metric(tiles in 2usize..64, a in 0usize..64, b in 0usize..64, c in 0usize..64) {
        let m = Mesh2D::for_tiles(tiles);
        let n = m.width * m.height;
        let (a, b, c) = (a % n, b % n, c % n);
        prop_assert_eq!(m.hops(a, a), 0);
        prop_assert_eq!(m.hops(a, b), m.hops(b, a), "symmetry");
        prop_assert!(m.hops(a, c) <= m.hops(a, b) + m.hops(b, c), "triangle inequality");
    }

    #[test]
    fn mesh_latency_monotone_in_size(bytes in 1u64..4096, hops in 0u64..12) {
        let m = Mesh2D::for_tiles(16);
        prop_assert!(m.packet_latency(bytes + 64, hops) >= m.packet_latency(bytes, hops));
        prop_assert!(m.packet_latency(bytes, hops + 1) >= m.packet_latency(bytes, hops));
    }

    #[test]
    fn yags_never_panics_and_learns_constants(pcs in prop::collection::vec(0u64..1_000_000, 10..100)) {
        let mut y = Yags::with_budget(4096);
        // Arbitrary PC stream with constant outcome: accuracy must exceed 90%
        // after warm-up (several passes so the 2-bit counters saturate).
        for _ in 0..3 {
            for &pc in &pcs {
                y.predict_and_update(pc, true);
            }
        }
        let mut correct = 0;
        for &pc in &pcs {
            if y.predict_and_update(pc, true) {
                correct += 1;
            }
        }
        prop_assert!(correct as f64 / pcs.len() as f64 > 0.9);
    }
}
