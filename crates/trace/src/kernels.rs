//! Per-kernel cost models.
//!
//! Calibrated to the paper's measurements: the per-kernel static code sizes
//! (§8.1.2: 277/177/221 unique static instructions for Narrowphase /
//! Island Processing / Cloth), the per-kernel unique data footprints
//! (1,668/604/376 B read and 100/128/308 B written per 100 iterations),
//! and the instruction mixes of Figures 7b and 9b.

use parallax_physics::PhaseKind;
use serde::{Deserialize, Serialize};

use crate::opmix::OpCounts;

/// The three fine-grain kernels plus the two serial phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Kernel {
    /// Broad-phase sweep (serial).
    Broadphase,
    /// Narrow-phase object-pair kernel (FG).
    Narrowphase,
    /// Island creation / connected components (serial).
    IslandCreation,
    /// Island-processing LCP solver kernel (FG).
    IslandSolver,
    /// Cloth vertex/constraint kernel (FG).
    Cloth,
}

impl Kernel {
    /// The three kernels that run on FG cores (paper §8.1).
    pub const FG: [Kernel; 3] = [Kernel::Narrowphase, Kernel::IslandSolver, Kernel::Cloth];

    /// The kernel model a pipeline stage uses. This is the single mapping
    /// from the engine's phase enumeration to the kernel cost models; the
    /// architecture simulator and the CG→FG scheduler both key off it.
    pub fn of_phase(phase: PhaseKind) -> Kernel {
        match phase {
            PhaseKind::Broadphase => Kernel::Broadphase,
            PhaseKind::Narrowphase => Kernel::Narrowphase,
            PhaseKind::IslandCreation => Kernel::IslandCreation,
            PhaseKind::IslandProcessing => Kernel::IslandSolver,
            PhaseKind::Cloth => Kernel::Cloth,
        }
    }

    /// Unique static instructions of the kernel (paper §8.1.2). Only
    /// defined for the FG kernels; serial phases return an estimate.
    pub fn static_instructions(self) -> usize {
        match self {
            Kernel::Narrowphase => 277,
            Kernel::IslandSolver => 177,
            Kernel::Cloth => 221,
            Kernel::Broadphase => 410,
            Kernel::IslandCreation => 130,
        }
    }

    /// Unique bytes read per 100 kernel iterations (paper §8.1.2).
    pub fn unique_read_bytes_per_100(self) -> usize {
        match self {
            Kernel::Narrowphase => 1_668,
            Kernel::IslandSolver => 604,
            Kernel::Cloth => 376,
            Kernel::Broadphase => 2_000,
            Kernel::IslandCreation => 1_200,
        }
    }

    /// Unique bytes written per 100 kernel iterations (paper §8.1.2).
    pub fn unique_write_bytes_per_100(self) -> usize {
        match self {
            Kernel::Narrowphase => 100,
            Kernel::IslandSolver => 128,
            Kernel::Cloth => 308,
            Kernel::Broadphase => 400,
            Kernel::IslandCreation => 600,
        }
    }
}

/// Per-kernel calibration multipliers, fitted so the suite's instructions
/// per frame approach the paper's Table 3 measurements (34M for Periodic
/// up to 829M for Mix). Our from-scratch kernels are leaner than ODE's
/// (no dLCP matrix assembly, simpler cloth collision), so each unit of
/// engine work maps to this many times the base instruction estimate.
mod calibration {
    /// Broad-phase scale.
    pub const BROADPHASE: u64 = 5;
    /// Narrow-phase scale (ODE's per-pair dispatch and dContactGeom
    /// bookkeeping).
    pub const NARROWPHASE: u64 = 6;
    /// Considered-only pair rejection scale: ODE's near callback still
    /// runs the primitive collider before discarding contacts between
    /// disabled/static geoms, so rejection is a sizeable fraction of a
    /// full pair test.
    pub const PAIR_REJECT: u64 = 16;
    /// Island-creation scale.
    pub const ISLAND_CREATION: u64 = 5;
    /// Island-solver scale (dLCP row updates are heavier than our PGS).
    pub const ISLAND_SOLVER: u64 = 6;
    /// Cloth scale (the paper's cloth uses ray-casting + AABB-hierarchy
    /// collision per vertex and more relaxation work).
    pub const CLOTH: u64 = 70;
}

/// Cost model: instructions per unit of kernel work, with the class mix of
/// the paper's Figures 7b / 9b.
#[derive(Debug, Clone, Copy)]
pub struct KernelModel;

impl KernelModel {
    /// Broad-phase cost: `sort_ops` comparisons plus `overlap_tests` AABB
    /// tests plus per-geom bookkeeping.
    ///
    /// Mix target (Fig 7b, Broadphase bar): integer-dominant with a large
    /// branch share.
    pub fn broadphase(geoms: usize, sort_ops: usize, overlap_tests: usize) -> OpCounts {
        let g = geoms as u64;
        let s = sort_ops as u64;
        let t = overlap_tests as u64;
        // Per-geom hash update and insertion costs carry the ODE-cost
        // calibration; the AABB interval test itself is a handful of
        // instructions and is left unscaled.
        let scaled = OpCounts {
            int_alu: 14 * g + 8 * s,
            branch: 3 * g + 2 * s,
            fp_add: 2 * g,
            fp_mul: 0,
            fp_div_sqrt: 0,
            load: 8 * g + 3 * s,
            store: 4 * g + s,
            other: 2 * g + s,
        }
        .scaled(calibration::BROADPHASE);
        scaled
            + OpCounts {
                int_alu: 4 * t,
                branch: 3 * t,
                load: 4 * t,
                other: t,
                ..Default::default()
            }
    }

    /// Narrow-phase cost for one object pair of the given shape kinds
    /// producing `contacts` contact points.
    ///
    /// Mix target (Fig 9b, Narrowphase): integer ops and reads dominant,
    /// ~8% branches, few FP adds/muls.
    pub fn narrowphase_pair(shape_a: &str, shape_b: &str, contacts: usize) -> OpCounts {
        // Base complexity by shape pair (dispatch + primitive test).
        let complexity = |s: &str| -> u64 {
            match s {
                "sphere" => 60,
                "plane" => 40,
                "capsule" => 130,
                "box" => 260,
                "heightfield" => 420,
                "trimesh" => 900,
                _ => 120,
            }
        };
        let base = complexity(shape_a) + complexity(shape_b);
        let c = contacts as u64;
        let total = base + 90 * c;
        // Distribute per the Narrowphase mix: 40% int, 8% branch, 30% rd,
        // 8% wr, 5% fp add, 4% fp mul, 5% other.
        OpCounts {
            int_alu: total * 40 / 100,
            branch: total * 8 / 100,
            fp_add: total * 5 / 100,
            fp_mul: total * 4 / 100,
            fp_div_sqrt: total / 100,
            load: total * 30 / 100,
            store: total * 8 / 100,
            other: total * 4 / 100,
        }
        .scaled(calibration::NARROWPHASE)
    }

    /// Cheap rejection of a considered-only pair (near-callback filter).
    pub fn pair_reject() -> OpCounts {
        OpCounts {
            int_alu: 14,
            branch: 6,
            load: 12,
            store: 2,
            other: 2,
            ..Default::default()
        }
        .scaled(calibration::PAIR_REJECT)
    }

    /// Island-creation cost: the serial connected-components scan.
    ///
    /// Mix target (Fig 7b, Island Serial): integer/branch/read heavy.
    pub fn island_creation(bodies: usize, union_ops: usize, find_ops: usize) -> OpCounts {
        let b = bodies as u64;
        let u = union_ops as u64;
        let f = find_ops as u64;
        OpCounts {
            int_alu: 10 * b + 8 * u + 6 * f,
            branch: 4 * b + 3 * u + 4 * f,
            fp_add: 0,
            fp_mul: 0,
            fp_div_sqrt: 0,
            load: 7 * b + 4 * u + 5 * f,
            store: 2 * b + 2 * u + f,
            other: b + u,
        }
        .scaled(calibration::ISLAND_CREATION)
    }

    /// Island-solver cost: `rows` constraint rows relaxed for
    /// `iterations` sweeps plus per-body integration.
    ///
    /// Mix target (Figs 7b/9b, Island Parallel): FP-dominant (≈32% FP
    /// add+mul), int and reads next.
    pub fn island_solver(rows: usize, iterations: usize, bodies: usize) -> OpCounts {
        let sweeps = (rows * iterations) as u64;
        let b = bodies as u64;
        OpCounts {
            int_alu: 9 * sweeps + 20 * b,
            branch: 2 * sweeps + 4 * b,
            fp_add: 8 * sweeps + 14 * b,
            fp_mul: 7 * sweeps + 12 * b,
            fp_div_sqrt: sweeps / 8,
            load: 10 * sweeps + 16 * b,
            store: 3 * sweeps + 8 * b,
            other: sweeps + 4 * b,
        }
        .scaled(calibration::ISLAND_SOLVER)
    }

    /// Cloth cost: Verlet integration over `vertices`, `projections`
    /// constraint relaxations, and `collision_tests` vertex-collider tests.
    ///
    /// Mix target (Fig 9b, Cloth): FP heavy (≈28% add+mul) with more
    /// branches than the island kernel plus FP divide/sqrt use.
    pub fn cloth(vertices: usize, projections: usize, collision_tests: usize) -> OpCounts {
        let v = vertices as u64;
        let p = projections as u64;
        let t = collision_tests as u64;
        OpCounts {
            int_alu: 10 * v + 6 * p + 8 * t,
            branch: 3 * v + 3 * p + 5 * t,
            fp_add: 9 * v + 6 * p + 5 * t,
            fp_mul: 7 * v + 5 * p + 4 * t,
            fp_div_sqrt: v / 2 + p + t / 4,
            load: 9 * v + 7 * p + 7 * t,
            store: 5 * v + 3 * p + t,
            other: 2 * v + p + t,
        }
        .scaled(calibration::CLOTH)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_sizes_match_paper() {
        assert_eq!(Kernel::Narrowphase.static_instructions(), 277);
        assert_eq!(Kernel::IslandSolver.static_instructions(), 177);
        assert_eq!(Kernel::Cloth.static_instructions(), 221);
        // Largest kernel fits in 1.1 KB with 32-bit instructions (paper).
        assert!(Kernel::Narrowphase.static_instructions() * 4 <= 1_108);
    }

    #[test]
    fn narrowphase_mix_is_int_dominant_with_8pct_branches() {
        let ops = KernelModel::narrowphase_pair("box", "box", 4);
        let f = ops.fractions();
        assert!(f[0] > 0.3, "int fraction {}", f[0]);
        assert!((f[1] - 0.08).abs() < 0.02, "branch fraction {}", f[1]);
        // Few FP ops.
        assert!(f[2] + f[3] < 0.15);
    }

    #[test]
    fn island_solver_mix_is_fp_dominant() {
        let ops = KernelModel::island_solver(120, 20, 10);
        let f = ops.fractions();
        let fp = f[2] + f[3];
        assert!((0.25..0.45).contains(&fp), "fp fraction {fp}");
        assert!(f[1] < 0.1, "solver has few branches: {}", f[1]);
    }

    #[test]
    fn cloth_mix_has_more_branches_than_solver_and_uses_sqrt() {
        let cloth = KernelModel::cloth(625, 625 * 8, 100);
        let solver = KernelModel::island_solver(120, 20, 10);
        let fc = cloth.fractions();
        let fs = solver.fractions();
        assert!(
            fc[1] > fs[1],
            "cloth branches {} vs solver {}",
            fc[1],
            fs[1]
        );
        assert!(cloth.fp_div_sqrt > 0);
    }

    #[test]
    fn costs_scale_with_work() {
        let small = KernelModel::narrowphase_pair("sphere", "sphere", 1);
        let big = KernelModel::narrowphase_pair("trimesh", "box", 4);
        assert!(big.total() > small.total() * 3);
        let one_iter = KernelModel::island_solver(10, 1, 2);
        let twenty = KernelModel::island_solver(10, 20, 2);
        assert!(twenty.total() > one_iter.total() * 10);
    }

    #[test]
    fn broadphase_is_integer_dominant() {
        let ops = KernelModel::broadphase(1000, 10_000, 4_000);
        let f = ops.fractions();
        assert!(f[0] > 0.3);
        assert!(f[2] + f[3] < 0.05, "broadphase has almost no FP");
        assert!(f[1] > 0.10, "broadphase is branchy: {}", f[1]);
    }
}
