//! Conversion of [`StepProfile`]s into per-phase instruction and memory
//! traces.

use parallax_physics::{PhaseKind, StepProfile};

use crate::kernels::KernelModel;
use crate::memmap::{self, Region};
use crate::opmix::OpCounts;

/// Telemetry counters for trace generation: how many synthetic
/// instructions and memory references the profiles expand into.
struct TraceMetrics {
    steps: parallax_telemetry::Counter,
    tasks: parallax_telemetry::Counter,
    instructions: parallax_telemetry::Counter,
    mem_refs: parallax_telemetry::Counter,
}

impl TraceMetrics {
    fn record(&self, t: &StepTrace) {
        self.steps.add(1);
        self.tasks
            .add(t.phases.iter().map(|p| p.tasks.len() as u64).sum());
        self.instructions.add(t.total_instructions());
        self.mem_refs.add(t.total_mem_refs() as u64);
    }
}

fn trace_metrics() -> &'static TraceMetrics {
    static M: std::sync::OnceLock<TraceMetrics> = std::sync::OnceLock::new();
    M.get_or_init(|| TraceMetrics {
        steps: parallax_telemetry::counter("trace.steps"),
        tasks: parallax_telemetry::counter("trace.tasks"),
        instructions: parallax_telemetry::counter("trace.instructions"),
        mem_refs: parallax_telemetry::counter("trace.mem_refs"),
    })
}

/// One task's workload: instruction counts plus the cache lines it touches.
#[derive(Debug, Default, Clone)]
pub struct TaskTrace {
    /// Instruction counts by class.
    pub ops: OpCounts,
    /// Cache-line addresses read (in program order, duplicates allowed).
    pub reads: Vec<u64>,
    /// Cache-line addresses written.
    pub writes: Vec<u64>,
    /// Number of fine-grain subtasks this task decomposes into (1 for
    /// serial tasks; pairs=1 each; DOF for islands; vertices for cloth).
    pub fg_subtasks: usize,
}

impl TaskTrace {
    /// Total memory references.
    pub fn mem_refs(&self) -> usize {
        self.reads.len() + self.writes.len()
    }
}

/// All tasks of one phase in one step.
#[derive(Debug, Clone)]
pub struct PhaseTrace {
    /// Which phase.
    pub phase: PhaseKind,
    /// The tasks, in creation order. Serial phases have exactly one task.
    pub tasks: Vec<TaskTrace>,
}

impl PhaseTrace {
    /// Total instructions across tasks.
    pub fn instructions(&self) -> u64 {
        self.tasks.iter().map(|t| t.ops.total()).sum()
    }

    /// Aggregate op counts.
    pub fn ops(&self) -> OpCounts {
        self.tasks.iter().map(|t| t.ops).sum()
    }

    /// Total fine-grain subtasks.
    pub fn fg_subtasks(&self) -> usize {
        self.tasks.iter().map(|t| t.fg_subtasks).sum()
    }
}

/// The full trace of one simulation step: five phases in pipeline order.
#[derive(Debug, Clone)]
pub struct StepTrace {
    /// Per-phase traces, ordered as [`PhaseKind::ALL`].
    pub phases: Vec<PhaseTrace>,
}

impl StepTrace {
    /// Builds the trace for one step from its work profile.
    pub fn from_profile(p: &StepProfile) -> StepTrace {
        let t = StepTrace {
            phases: PhaseKind::ALL.iter().map(|k| phase_trace(p, *k)).collect(),
        };
        if parallax_telemetry::enabled() {
            trace_metrics().record(&t);
        }
        t
    }

    /// The trace of one phase.
    pub fn phase(&self, phase: PhaseKind) -> &PhaseTrace {
        let idx = PhaseKind::ALL
            .iter()
            .position(|k| *k == phase)
            .expect("valid phase");
        &self.phases[idx]
    }

    /// Total instructions in the step.
    pub fn total_instructions(&self) -> u64 {
        self.phases.iter().map(|p| p.instructions()).sum()
    }

    /// Total memory references in the step.
    pub fn total_mem_refs(&self) -> usize {
        self.phases
            .iter()
            .flat_map(|p| p.tasks.iter())
            .map(|t| t.mem_refs())
            .sum()
    }
}

/// Builds the trace of one phase from the stage's profile slice.
///
/// Each pipeline stage emits its own slice of the [`StepProfile`]
/// (broad-phase stats, per-pair work, island stats, per-island work,
/// per-cloth work); this maps a stage's phase to its trace without
/// requiring the other phases' outputs.
pub fn phase_trace(p: &StepProfile, phase: PhaseKind) -> PhaseTrace {
    match phase {
        PhaseKind::Broadphase => broadphase_trace(p),
        PhaseKind::Narrowphase => narrowphase_trace(p),
        PhaseKind::IslandCreation => island_creation_trace(p),
        PhaseKind::IslandProcessing => island_processing_trace(p),
        PhaseKind::Cloth => cloth_trace(p),
    }
}

fn broadphase_trace(p: &StepProfile) -> PhaseTrace {
    let bp = &p.broadphase;
    let mut task = TaskTrace {
        ops: KernelModel::broadphase(bp.geoms, bp.sort_ops, bp.overlap_tests),
        fg_subtasks: 1,
        ..Default::default()
    };
    // Broad-phase updates a spatial hash each step: every geom's AABB is
    // recomputed from its object's pose (object + geom reads) and inserted
    // into hash cells at scattered addresses. The hash occupies
    // ~256 B/geom, so large scenes carry a multi-megabyte broad-phase
    // working set — the source of the paper's serial-phase L2 demand.
    // Broad-phase works on geom (shape) data only — the paper notes there
    // is little sharing with Island Creation's object/joint data.
    let hash_span_lines = ((bp.geoms as u64 * 256).max(2 * 1024 * 1024)) / memmap::LINE;
    for g in 0..bp.geoms as u64 {
        memmap::geom_lines(&mut task.reads, g);
    }
    // Cell insertions: read-modify-write of a pseudorandom hash line.
    for i in 0..bp.sort_ops as u64 {
        let h = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) % hash_span_lines;
        let addr = Region::SortAxis.base() + h * memmap::LINE;
        task.reads.push(addr);
        task.writes.push(addr);
    }
    // Overlap tests read cached AABB entries from the compact cell-member
    // arrays (16 B each) — a small, mostly cache-resident footprint.
    for i in 0..bp.overlap_tests as u64 {
        let g = i.wrapping_mul(0x2545_F491_4F6C_DD1D) % (bp.geoms.max(1) as u64);
        memmap::push_lines(
            &mut task.reads,
            memmap::entity_addr(Region::PairBuffer, g, memmap::SORT_ENTRY_BYTES),
            8,
        );
    }
    for k in 0..bp.pairs as u64 {
        memmap::push_lines(
            &mut task.writes,
            memmap::entity_addr(Region::PairBuffer, k, 8),
            8,
        );
    }
    PhaseTrace {
        phase: PhaseKind::Broadphase,
        tasks: vec![task],
    }
}

fn narrowphase_trace(p: &StepProfile) -> PhaseTrace {
    let tasks = p
        .pairs
        .iter()
        .enumerate()
        .map(|(k, pair)| {
            if !pair.active {
                // Considered-only pair: a cheap near-callback rejection
                // touching just the two geom headers.
                let mut task = TaskTrace {
                    ops: KernelModel::pair_reject(),
                    fg_subtasks: 1,
                    ..Default::default()
                };
                memmap::geom_lines(&mut task.reads, pair.geom_a as u64);
                memmap::geom_lines(&mut task.reads, pair.geom_b as u64);
                for b in [pair.body_a, pair.body_b] {
                    if b != u32::MAX {
                        memmap::object_lines(&mut task.reads, b as u64);
                    }
                }
                return task;
            }
            let mut task = TaskTrace {
                ops: KernelModel::narrowphase_pair(pair.shape_a, pair.shape_b, pair.contacts),
                fg_subtasks: 1,
                ..Default::default()
            };
            // Each pair reads both geoms and both owning objects...
            memmap::geom_lines(&mut task.reads, pair.geom_a as u64);
            memmap::geom_lines(&mut task.reads, pair.geom_b as u64);
            for b in [pair.body_a, pair.body_b] {
                if b != u32::MAX {
                    memmap::object_lines(&mut task.reads, b as u64);
                }
            }
            // ...and writes the created contact joints.
            if pair.contacts > 0 {
                memmap::contact_lines(&mut task.writes, k as u64);
            }
            task
        })
        .collect();
    PhaseTrace {
        phase: PhaseKind::Narrowphase,
        tasks,
    }
}

fn island_creation_trace(p: &StepProfile) -> PhaseTrace {
    let ic = &p.island_creation;
    let mut task = TaskTrace {
        ops: KernelModel::island_creation(ic.bodies, ic.union_ops, ic.find_ops),
        fg_subtasks: 1,
        ..Default::default()
    };
    // The serial scan walks the object list and the joint/contact edges
    // (the paper: Island Creation uses object and joint data).
    for b in 0..ic.bodies as u64 {
        memmap::object_lines(&mut task.reads, b);
        // Island assignment write-back (one field per object).
        memmap::push_lines(
            &mut task.writes,
            memmap::entity_addr(Region::Objects, b, memmap::OBJECT_BYTES),
            8,
        );
    }
    for j in 0..p.joint_count as u64 {
        memmap::joint_lines(&mut task.reads, j);
    }
    for (k, pair) in p.pairs.iter().enumerate() {
        if pair.contacts > 0 {
            memmap::contact_lines(&mut task.reads, k as u64);
        }
    }
    PhaseTrace {
        phase: PhaseKind::IslandCreation,
        tasks: vec![task],
    }
}

fn island_processing_trace(p: &StepProfile) -> PhaseTrace {
    // Map from manifold ordinal to pair index for contact addresses: the
    // profile stores islands with manifold *counts*, so approximate by
    // attributing contact lines round-robin over contact-producing pairs.
    let contact_pairs: Vec<u64> = p
        .pairs
        .iter()
        .enumerate()
        .filter(|(_, pw)| pw.contacts > 0)
        .map(|(k, _)| k as u64)
        .collect();
    let mut next_contact = 0usize;

    let tasks = p
        .islands
        .iter()
        .map(|island| {
            let mut task = TaskTrace {
                ops: KernelModel::island_solver(
                    island.rows,
                    island.iterations,
                    island.bodies.len(),
                ),
                fg_subtasks: island.dof_removed.max(1),
                ..Default::default()
            };
            for &b in &island.bodies {
                memmap::object_lines(&mut task.reads, b as u64);
                // Velocity write-back.
                memmap::push_lines(
                    &mut task.writes,
                    memmap::entity_addr(Region::Objects, b as u64, memmap::OBJECT_BYTES) + 64,
                    48,
                );
            }
            for &j in &island.joints {
                memmap::joint_lines(&mut task.reads, j as u64);
            }
            for _ in 0..island.manifolds {
                if let Some(&pair) = contact_pairs.get(next_contact) {
                    memmap::contact_lines(&mut task.reads, pair);
                    next_contact += 1;
                }
            }
            // Solver scratch (rows) — grows with island size.
            let scratch_bytes = island.rows as u64 * 96;
            memmap::push_lines(
                &mut task.reads,
                Region::SolverScratch.base(),
                scratch_bytes.min(0x0400_0000),
            );
            task
        })
        .collect();
    PhaseTrace {
        phase: PhaseKind::IslandProcessing,
        tasks,
    }
}

fn cloth_trace(p: &StepProfile) -> PhaseTrace {
    let tasks = p
        .cloths
        .iter()
        .map(|cw| {
            let s = &cw.stats;
            let mut task = TaskTrace {
                ops: KernelModel::cloth(s.vertices, s.projections, s.collision_tests),
                fg_subtasks: s.vertices.max(1),
                ..Default::default()
            };
            for v in 0..s.vertices as u64 {
                memmap::cloth_vertex_lines(&mut task.reads, cw.cloth as u64, v);
                memmap::cloth_vertex_lines(&mut task.writes, cw.cloth as u64, v);
            }
            // Constraint table reads (12 B per projection, but unique
            // constraints only: projections / iterations ≈ constraints).
            let constraints = (s.projections / 8).max(1) as u64;
            memmap::push_lines(
                &mut task.reads,
                Region::ClothConstraints.base() + cw.cloth as u64 * 0x10_0000,
                constraints * 12,
            );
            // Collider snapshots.
            for c in 0..cw.colliders as u64 {
                memmap::push_lines(
                    &mut task.reads,
                    memmap::entity_addr(Region::Geoms, c, memmap::GEOM_BYTES),
                    memmap::GEOM_BYTES,
                );
            }
            task
        })
        .collect();
    PhaseTrace {
        phase: PhaseKind::Cloth,
        tasks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parallax_physics::probe::{ClothWork, IslandWork, PairWork};

    fn sample_profile() -> StepProfile {
        let mut p = StepProfile::default();
        p.broadphase.geoms = 10;
        p.broadphase.sort_ops = 40;
        p.broadphase.overlap_tests = 20;
        p.broadphase.pairs = 3;
        for k in 0..3u32 {
            p.pairs.push(PairWork {
                geom_a: k,
                geom_b: k + 1,
                body_a: k,
                body_b: k + 1,
                shape_a: "sphere",
                shape_b: "box",
                contacts: 2,
                active: true,
            });
        }
        p.island_creation.bodies = 4;
        p.island_creation.union_ops = 3;
        p.island_creation.find_ops = 6;
        p.islands.push(IslandWork {
            bodies: vec![0, 1, 2, 3],
            joints: vec![0],
            manifolds: 3,
            rows: 21,
            dof_removed: 21,
            iterations: 20,
            residual: 0.0,
            queued: false,
            lambda_digest: 0,
        });
        p.cloths.push(ClothWork {
            cloth: 0,
            stats: parallax_physics::cloth::ClothStats {
                vertices: 25,
                projections: 25 * 8,
                collision_tests: 50,
                collisions_resolved: 5,
            },
            colliders: 2,
        });
        p.joint_count = 1;
        p.body_count = 4;
        p.geom_count = 10;
        p
    }

    #[test]
    fn trace_has_five_phases_in_order() {
        let t = StepTrace::from_profile(&sample_profile());
        assert_eq!(t.phases.len(), 5);
        for (i, k) in PhaseKind::ALL.iter().enumerate() {
            assert_eq!(t.phases[i].phase, *k);
        }
    }

    #[test]
    fn serial_phases_have_one_task() {
        let t = StepTrace::from_profile(&sample_profile());
        assert_eq!(t.phase(PhaseKind::Broadphase).tasks.len(), 1);
        assert_eq!(t.phase(PhaseKind::IslandCreation).tasks.len(), 1);
    }

    #[test]
    fn parallel_phases_have_per_entity_tasks() {
        let t = StepTrace::from_profile(&sample_profile());
        assert_eq!(t.phase(PhaseKind::Narrowphase).tasks.len(), 3);
        assert_eq!(t.phase(PhaseKind::IslandProcessing).tasks.len(), 1);
        assert_eq!(t.phase(PhaseKind::Cloth).tasks.len(), 1);
        assert_eq!(t.phase(PhaseKind::IslandProcessing).fg_subtasks(), 21);
        assert_eq!(t.phase(PhaseKind::Cloth).fg_subtasks(), 25);
    }

    #[test]
    fn pair_tasks_touch_geom_and_object_lines() {
        let t = StepTrace::from_profile(&sample_profile());
        let task = &t.phase(PhaseKind::Narrowphase).tasks[0];
        assert!(task.reads.iter().any(|a| Region::Geoms.contains(*a)));
        assert!(task.reads.iter().any(|a| Region::Objects.contains(*a)));
        assert!(task.writes.iter().all(|a| Region::Contacts.contains(*a)));
    }

    #[test]
    fn island_creation_reads_contacts() {
        let t = StepTrace::from_profile(&sample_profile());
        let task = &t.phase(PhaseKind::IslandCreation).tasks[0];
        assert!(task.reads.iter().any(|a| Region::Contacts.contains(*a)));
        assert!(task.reads.iter().any(|a| Region::Objects.contains(*a)));
    }

    #[test]
    fn totals_are_positive() {
        let t = StepTrace::from_profile(&sample_profile());
        assert!(t.total_instructions() > 1000);
        assert!(t.total_mem_refs() > 50);
    }

    #[test]
    fn empty_profile_produces_empty_but_valid_trace() {
        let t = StepTrace::from_profile(&StepProfile::default());
        assert_eq!(t.phases.len(), 5);
        assert_eq!(t.phase(PhaseKind::Narrowphase).tasks.len(), 0);
        assert_eq!(t.total_mem_refs(), 0);
    }
}
