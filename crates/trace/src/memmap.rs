//! Synthetic memory map of the engine's entities.
//!
//! The trace layer assigns every entity a stable address range sized per
//! the paper's measurements: "the memory required per object and geom is
//! 412 B and 116 B respectively. The memory required per joint varies
//! between 148 B to 392 B depending on the type." Cache-line addresses
//! derived from these ranges drive the architecture simulator's cache
//! model.

/// Cache-line size (paper: 64-byte blocks).
pub const LINE: u64 = 64;

/// Bytes per rigid-body object record.
pub const OBJECT_BYTES: u64 = 412;
/// Bytes per geom record.
pub const GEOM_BYTES: u64 = 116;
/// Bytes per (average) joint record.
pub const JOINT_BYTES: u64 = 256;
/// Bytes per contact-joint record created by narrow-phase.
pub const CONTACT_BYTES: u64 = 256;
/// Bytes per cloth vertex (position + previous position + flags).
pub const CLOTH_VERTEX_BYTES: u64 = 40;
/// Bytes per broad-phase sort-axis entry.
pub const SORT_ENTRY_BYTES: u64 = 16;

/// Region bases: entity arrays live in disjoint address regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Region {
    /// Rigid-body records.
    Objects,
    /// Geom (shape) records.
    Geoms,
    /// Permanent joints.
    Joints,
    /// Per-step contact joints.
    Contacts,
    /// Cloth vertex arrays (per cloth object).
    ClothVertices,
    /// Cloth constraint arrays.
    ClothConstraints,
    /// Broad-phase sort axis.
    SortAxis,
    /// Broad-phase pair output buffer.
    PairBuffer,
    /// Island work-queue and solver scratch.
    SolverScratch,
    /// Per-thread kernel (OS) memory — used by the OS-overhead model.
    Kernel,
}

impl Region {
    /// Base address of the region.
    pub fn base(self) -> u64 {
        match self {
            Region::Objects => 0x1000_0000,
            Region::Geoms => 0x2000_0000,
            Region::Joints => 0x3000_0000,
            Region::Contacts => 0x4000_0000,
            Region::ClothVertices => 0x5000_0000,
            Region::ClothConstraints => 0x5800_0000,
            Region::SortAxis => 0x6000_0000,
            Region::PairBuffer => 0x6800_0000,
            Region::SolverScratch => 0x7000_0000,
            Region::Kernel => 0x8000_0000,
        }
    }

    /// `true` if an address falls inside this region (regions are 128 MiB).
    pub fn contains(self, addr: u64) -> bool {
        let b = self.base();
        (b..b + 0x0800_0000).contains(&addr)
    }
}

/// Byte address of entity `index` in `region` with a per-entity `stride`.
#[inline]
pub fn entity_addr(region: Region, index: u64, stride: u64) -> u64 {
    region.base() + index * stride
}

/// Appends the cache-line addresses covering `[addr, addr + bytes)` to
/// `out`.
pub fn push_lines(out: &mut Vec<u64>, addr: u64, bytes: u64) {
    let first = addr / LINE;
    let last = (addr + bytes.max(1) - 1) / LINE;
    for l in first..=last {
        out.push(l * LINE);
    }
}

/// Convenience: lines of an object record.
pub fn object_lines(out: &mut Vec<u64>, body: u64) {
    push_lines(
        out,
        entity_addr(Region::Objects, body, OBJECT_BYTES),
        OBJECT_BYTES,
    );
}

/// Convenience: lines of a geom record.
pub fn geom_lines(out: &mut Vec<u64>, geom: u64) {
    push_lines(
        out,
        entity_addr(Region::Geoms, geom, GEOM_BYTES),
        GEOM_BYTES,
    );
}

/// Convenience: lines of a permanent joint.
pub fn joint_lines(out: &mut Vec<u64>, joint: u64) {
    push_lines(
        out,
        entity_addr(Region::Joints, joint, JOINT_BYTES),
        JOINT_BYTES,
    );
}

/// Convenience: lines of a contact-joint record for broad-phase pair `k`.
pub fn contact_lines(out: &mut Vec<u64>, pair: u64) {
    push_lines(
        out,
        entity_addr(Region::Contacts, pair, CONTACT_BYTES),
        CONTACT_BYTES,
    );
}

/// Convenience: lines of cloth `c`'s vertex `v`.
pub fn cloth_vertex_lines(out: &mut Vec<u64>, cloth: u64, vertex: u64) {
    let base = Region::ClothVertices.base() + cloth * 0x10_0000;
    push_lines(out, base + vertex * CLOTH_VERTEX_BYTES, CLOTH_VERTEX_BYTES);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_disjoint() {
        let regions = [
            Region::Objects,
            Region::Geoms,
            Region::Joints,
            Region::Contacts,
            Region::ClothVertices,
            Region::ClothConstraints,
            Region::SortAxis,
            Region::PairBuffer,
            Region::SolverScratch,
            Region::Kernel,
        ];
        for (i, a) in regions.iter().enumerate() {
            for b in &regions[i + 1..] {
                assert!(!b.contains(a.base()), "{a:?} overlaps {b:?}");
                assert!(!a.contains(b.base()), "{a:?} overlaps {b:?}");
            }
        }
    }

    #[test]
    fn push_lines_covers_span() {
        let mut v = Vec::new();
        // Bytes 100..512 span lines 1..=7.
        push_lines(&mut v, 100, 412);
        assert_eq!(v.len(), 7);
        assert_eq!(v[0], 64);
        assert!(v.windows(2).all(|w| w[1] == w[0] + 64));
    }

    #[test]
    fn object_records_do_not_collide() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        object_lines(&mut a, 0);
        object_lines(&mut b, 1);
        // Consecutive objects may share one boundary line at most.
        let shared = a.iter().filter(|l| b.contains(l)).count();
        assert!(shared <= 1);
    }

    #[test]
    fn cloth_vertices_are_per_cloth_isolated() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        cloth_vertex_lines(&mut a, 0, 0);
        cloth_vertex_lines(&mut b, 1, 0);
        assert!(a.iter().all(|l| !b.contains(l)));
    }

    #[test]
    fn single_byte_touches_one_line() {
        let mut v = Vec::new();
        push_lines(&mut v, 64, 1);
        assert_eq!(v, vec![64]);
    }
}
