//! Workload instrumentation for the ParallAX architecture study.
//!
//! The paper instruments its (real, compiled) physics engine with Simics
//! MAGIC instructions and feeds the resulting full-system traces to GEMS.
//! This crate is the equivalent layer for our reproduction: it converts the
//! [`parallax_physics::StepProfile`] work records that every simulation
//! step produces into
//!
//! * **instruction workloads** — operation counts per kernel invocation,
//!   classed as in the paper's instruction-mix figures (7b and 9b), and
//! * **memory reference streams** — cache-line addresses derived from a
//!   synthetic memory map of the engine's entities, using the footprints
//!   the paper reports (412 B/object, 116 B/geom, 148–392 B/joint).
//!
//! The architecture simulator (`parallax-archsim`) consumes these
//! [`StepTrace`]s to produce cycle counts.
//!
//! # Examples
//!
//! ```
//! use parallax_trace::StepTrace;
//! use parallax_physics::{World, WorldConfig, BodyDesc, Shape};
//! use parallax_math::Vec3;
//!
//! let mut world = World::new(WorldConfig::default());
//! world.add_static_geom(Shape::plane(Vec3::UNIT_Y, 0.0));
//! world.add_body(BodyDesc::dynamic(Vec3::new(0.0, 0.4, 0.0))
//!     .with_shape(Shape::sphere(0.5), 1.0));
//! let profile = world.step();
//! let trace = StepTrace::from_profile(&profile);
//! assert!(trace.total_instructions() > 0);
//! ```

pub mod kernels;
pub mod memmap;
pub mod opmix;
pub mod steptrace;

pub use kernels::{Kernel, KernelModel};
pub use opmix::OpCounts;
pub use steptrace::{phase_trace, PhaseTrace, StepTrace, TaskTrace};
