//! Instruction-class accounting (paper Figures 7b and 9b).

use std::ops::{Add, AddAssign};

use serde::{Deserialize, Serialize};

/// Instruction counts by class, matching the categories of the paper's
/// instruction-mix figures ("int alu", "branch", "float add", "float mult",
/// "rd port", "wr port", "other").
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpCounts {
    /// Integer ALU operations (including integer multiplies).
    pub int_alu: u64,
    /// Branches and FP compares.
    pub branch: u64,
    /// Floating-point adds/subtracts.
    pub fp_add: u64,
    /// Floating-point multiplies.
    pub fp_mul: u64,
    /// Floating-point divides and square roots.
    pub fp_div_sqrt: u64,
    /// Memory reads (rd port).
    pub load: u64,
    /// Memory writes (wr port).
    pub store: u64,
    /// Everything else (moves, conversions, NOP-adjacent work).
    pub other: u64,
}

impl OpCounts {
    /// Total instruction count.
    pub fn total(&self) -> u64 {
        self.int_alu
            + self.branch
            + self.fp_add
            + self.fp_mul
            + self.fp_div_sqrt
            + self.load
            + self.store
            + self.other
    }

    /// Total floating-point operations.
    pub fn fp_total(&self) -> u64 {
        self.fp_add + self.fp_mul + self.fp_div_sqrt
    }

    /// Scales all counts by `k` (building an `n`-task workload from a
    /// single-task cost model).
    pub fn scaled(&self, k: u64) -> OpCounts {
        OpCounts {
            int_alu: self.int_alu * k,
            branch: self.branch * k,
            fp_add: self.fp_add * k,
            fp_mul: self.fp_mul * k,
            fp_div_sqrt: self.fp_div_sqrt * k,
            load: self.load * k,
            store: self.store * k,
            other: self.other * k,
        }
    }

    /// Fraction of instructions in each class, in the order used by the
    /// paper's stacked bars: (int alu, branch, fp add, fp mul, rd, wr,
    /// other). `fp_div_sqrt` is folded into "other" as the paper does.
    pub fn fractions(&self) -> [f64; 7] {
        let t = self.total().max(1) as f64;
        [
            self.int_alu as f64 / t,
            self.branch as f64 / t,
            self.fp_add as f64 / t,
            self.fp_mul as f64 / t,
            self.load as f64 / t,
            self.store as f64 / t,
            (self.other + self.fp_div_sqrt) as f64 / t,
        ]
    }
}

impl Add for OpCounts {
    type Output = OpCounts;
    fn add(self, rhs: OpCounts) -> OpCounts {
        OpCounts {
            int_alu: self.int_alu + rhs.int_alu,
            branch: self.branch + rhs.branch,
            fp_add: self.fp_add + rhs.fp_add,
            fp_mul: self.fp_mul + rhs.fp_mul,
            fp_div_sqrt: self.fp_div_sqrt + rhs.fp_div_sqrt,
            load: self.load + rhs.load,
            store: self.store + rhs.store,
            other: self.other + rhs.other,
        }
    }
}

impl AddAssign for OpCounts {
    fn add_assign(&mut self, rhs: OpCounts) {
        *self = *self + rhs;
    }
}

impl std::iter::Sum for OpCounts {
    fn sum<I: Iterator<Item = OpCounts>>(iter: I) -> OpCounts {
        iter.fold(OpCounts::default(), Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> OpCounts {
        OpCounts {
            int_alu: 40,
            branch: 10,
            fp_add: 10,
            fp_mul: 10,
            fp_div_sqrt: 2,
            load: 20,
            store: 6,
            other: 2,
        }
    }

    #[test]
    fn total_sums_all_classes() {
        assert_eq!(sample().total(), 100);
        assert_eq!(sample().fp_total(), 22);
    }

    #[test]
    fn scaled_multiplies_uniformly() {
        let s = sample().scaled(3);
        assert_eq!(s.total(), 300);
        assert_eq!(s.int_alu, 120);
    }

    #[test]
    fn fractions_sum_to_one() {
        let f = sample().fractions();
        let sum: f64 = f.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!((f[0] - 0.4).abs() < 1e-9);
    }

    #[test]
    fn add_and_sum() {
        let two = sample() + sample();
        assert_eq!(two.total(), 200);
        let many: OpCounts = (0..5).map(|_| sample()).sum();
        assert_eq!(many.total(), 500);
    }
}
