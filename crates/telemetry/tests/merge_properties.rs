//! Property tests for the snapshot algebra: `merge` must be associative
//! and commutative (so per-step deltas can be re-aggregated in any
//! order), `delta_since` must invert `merge` for counters, and histogram
//! bucketing must tile the `u64` range.

use parallax_telemetry::registry::{bucket_bounds, bucket_of, HIST_BUCKETS};
use parallax_telemetry::{HistogramSnapshot, Snapshot};
use proptest::prelude::*;

/// A small pool of names so generated snapshots overlap (merging
/// disjoint snapshots never exercises the combine path).
fn name() -> impl Strategy<Value = String> {
    (0u32..6).prop_map(|i| format!("metric.{i}"))
}

fn counters() -> impl Strategy<Value = Vec<(String, u64)>> {
    prop::collection::vec((name(), 0u64..1_000_000), 0..6).prop_map(dedup_by_name)
}

fn histograms() -> impl Strategy<Value = Vec<(String, HistogramSnapshot)>> {
    prop::collection::vec(
        (name(), prop::collection::vec(0u64..50, 0..10), 0u64..10_000),
        0..4,
    )
    .prop_map(|entries| {
        dedup_by_name(
            entries
                .into_iter()
                .map(|(n, buckets, sum)| (n, HistogramSnapshot { buckets, sum }))
                .collect(),
        )
    })
}

fn dedup_by_name<T>(mut v: Vec<(String, T)>) -> Vec<(String, T)> {
    let mut seen = std::collections::HashSet::new();
    v.retain(|(n, _)| seen.insert(n.clone()));
    v
}

fn snapshot_strategy() -> impl Strategy<Value = Snapshot> {
    (counters(), counters(), histograms()).prop_map(|(counters, gauges, histograms)| Snapshot {
        counters,
        gauges,
        histograms,
    })
}

/// Canonical form for equality: merge output is name-sorted, but a raw
/// generated snapshot is not — normalize through a merge with empty.
fn canon(s: &Snapshot) -> Snapshot {
    s.merge(&Snapshot::default())
}

/// Histogram a single shard would have produced from `values`.
fn hist_of(values: &[u64]) -> HistogramSnapshot {
    let mut buckets = vec![0u64; HIST_BUCKETS];
    let mut sum = 0u64;
    for &v in values {
        buckets[bucket_of(v)] += 1;
        sum += v;
    }
    HistogramSnapshot { buckets, sum }
}

fn snap_with_hist(h: HistogramSnapshot) -> Snapshot {
    Snapshot {
        counters: Vec::new(),
        gauges: Vec::new(),
        histograms: vec![("h".to_string(), h)],
    }
}

proptest! {
    #[test]
    fn merge_is_commutative(a in snapshot_strategy(), b in snapshot_strategy()) {
        prop_assert_eq!(a.merge(&b), b.merge(&a));
    }

    #[test]
    fn merge_is_associative(
        a in snapshot_strategy(),
        b in snapshot_strategy(),
        c in snapshot_strategy(),
    ) {
        prop_assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)));
    }

    #[test]
    fn empty_is_identity(a in snapshot_strategy()) {
        let e = Snapshot::default();
        prop_assert_eq!(a.merge(&e), canon(&a));
        prop_assert_eq!(e.merge(&a), canon(&a));
    }

    #[test]
    fn delta_inverts_merge_for_counters(a in snapshot_strategy(), b in snapshot_strategy()) {
        // Cumulative-then-delta: (a + b) - a == b on every counter a knows.
        let cumulative = a.merge(&b);
        let delta = cumulative.delta_since(&a);
        for (name, v) in &b.counters {
            prop_assert_eq!(delta.counter(name), *v, "counter {}", name);
        }
    }

    #[test]
    fn quantile_upper_bound_is_monotone_in_q(
        values in prop::collection::vec(0u64..1_000_000_000, 1..50),
        qs in prop::collection::vec(0.0f64..1.0, 2..6),
    ) {
        // The q-th quantile bound can only grow with q: the regression
        // gate reads p50 and p99 off the same histogram and assumes
        // p50 <= p99.
        let h = hist_of(&values);
        let mut qs = qs;
        qs.sort_by(f64::total_cmp);
        let bounds: Vec<u64> = qs
            .iter()
            .map(|&q| h.quantile_upper_bound(q).expect("nonempty histogram"))
            .collect();
        for w in bounds.windows(2) {
            prop_assert!(w[0] <= w[1], "quantile bounds not monotone: {:?} for {:?}", bounds, qs);
        }
    }

    #[test]
    fn quantile_is_invariant_under_shard_merge(
        values in prop::collection::vec(0u64..1_000_000_000, 1..60),
        split in 0usize..60,
        q in 0.0f64..1.0,
    ) {
        // Recording thread assignment is arbitrary, so any split of the
        // samples across two shards must merge to the same quantiles as
        // one shard seeing everything.
        let split = split.min(values.len());
        let whole = snap_with_hist(hist_of(&values));
        let a = snap_with_hist(hist_of(&values[..split]));
        let b = snap_with_hist(hist_of(&values[split..]));
        let merged = a.merge(&b);
        prop_assert_eq!(
            merged.histogram("h").expect("merged").quantile_upper_bound(q),
            whole.histogram("h").expect("whole").quantile_upper_bound(q)
        );
    }

    #[test]
    fn buckets_tile_the_u64_range(v in proptest::arbitrary::any::<u64>()) {
        let b = bucket_of(v);
        prop_assert!(b < HIST_BUCKETS);
        let (lo, hi) = bucket_bounds(b);
        prop_assert!(lo <= v && v <= hi, "value {} outside bucket {} [{}, {}]", v, b, lo, hi);
    }
}
