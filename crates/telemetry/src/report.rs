//! Rendering snapshot files into the paper's per-phase breakdown form.
//!
//! Consumed by the `telemetry_report` binary in `parallax-bench` and by
//! the tier-1 smoke test: [`phase_breakdown`] reproduces the shape of
//! the paper's Figure 2(a) (per-phase time and share of the step), and
//! [`worker_utilization`] reproduces the executor-side load-imbalance
//! view the span tracks carry.

use std::collections::BTreeMap;

use crate::export::StepRecord;

/// Per-phase aggregate over a set of step records.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseRow {
    /// Phase name as recorded (pipeline order preserved).
    pub phase: String,
    /// Mean nanoseconds per step.
    pub mean_ns: f64,
    /// Share of the summed per-phase time, in `[0, 1]`.
    pub share: f64,
}

/// Aggregates `wall_ns` across records (first occurrence order is kept,
/// which is pipeline order for records written by the step pipeline).
pub fn phase_breakdown(records: &[StepRecord]) -> Vec<PhaseRow> {
    let mut order: Vec<String> = Vec::new();
    let mut total_ns: BTreeMap<String, u64> = BTreeMap::new();
    let mut steps = 0u64;
    for r in records {
        if r.wall_ns.is_empty() {
            continue;
        }
        steps += 1;
        for (phase, ns) in &r.wall_ns {
            if !order.contains(phase) {
                order.push(phase.clone());
            }
            *total_ns.entry(phase.clone()).or_insert(0) += ns;
        }
    }
    if steps == 0 {
        return Vec::new();
    }
    let grand: u64 = total_ns.values().sum();
    order
        .into_iter()
        .map(|phase| {
            let t = total_ns[&phase];
            PhaseRow {
                phase,
                mean_ns: t as f64 / steps as f64,
                share: if grand == 0 {
                    0.0
                } else {
                    t as f64 / grand as f64
                },
            }
        })
        .collect()
}

/// Per-track (executor worker) span totals.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerRow {
    /// Span track (0 = calling thread, `i` = worker `i`).
    pub track: u32,
    /// Total busy nanoseconds (sum of span durations on the track).
    pub busy_ns: u64,
    /// Spans recorded on the track.
    pub spans: usize,
}

/// Sums span time per track across records, plus the imbalance ratio
/// (max busy / mean busy over the *worker* tracks; 1.0 = perfectly
/// balanced, meaningless when fewer than two tracks carried work).
pub fn worker_utilization(records: &[StepRecord]) -> (Vec<WorkerRow>, f64) {
    let mut per: BTreeMap<u32, (u64, usize)> = BTreeMap::new();
    for r in records {
        for s in &r.spans {
            let e = per.entry(s.track).or_insert((0, 0));
            e.0 += s.dur_ns;
            e.1 += 1;
        }
    }
    let rows: Vec<WorkerRow> = per
        .into_iter()
        .map(|(track, (busy_ns, spans))| WorkerRow {
            track,
            busy_ns,
            spans,
        })
        .collect();
    let workers: Vec<u64> = rows
        .iter()
        .filter(|r| r.track > 0)
        .map(|r| r.busy_ns)
        .collect();
    let imbalance = if workers.len() >= 2 && workers.iter().sum::<u64>() > 0 {
        let max = *workers.iter().max().expect("nonempty") as f64;
        let mean = workers.iter().sum::<u64>() as f64 / workers.len() as f64;
        max / mean
    } else {
        1.0
    };
    (rows, imbalance)
}

/// Counter-name prefix the physics invariant monitors record
/// violations under (see `parallax_physics::monitor`).
pub const VIOLATION_PREFIX: &str = "physics.monitor.violation.";

/// Counter the invariant monitor bumps once per checked step; zero means
/// no monitor ran (so "no violations" is vacuous).
pub const CHECKED_STEPS_COUNTER: &str = "physics.monitor.checked_steps";

/// Gauge name carrying the cumulative dropped-span count of the
/// recording process (set by the bench sink before each snapshot).
pub const SPANS_DROPPED_GAUGE: &str = "telemetry.spans_dropped";

/// Gauge: bodies asleep at the end of a step (see the physics pipeline).
pub const SLEEPING_BODIES_GAUGE: &str = "physics.sleeping_bodies";

/// Gauge: sleeping islands at the end of a step.
pub const SLEEPING_ISLANDS_GAUGE: &str = "physics.sleeping_islands";

/// Counter: island-graph components actually rebuilt by the incremental
/// builder (the from-scratch cost this PR's fast path avoids).
pub const ISLANDS_REBUILT_COUNTER: &str = "physics.islands_rebuilt";

/// Largest `telemetry.spans_dropped` gauge value across records: the
/// cumulative number of spans the recording process lost to full ring
/// buffers (0 when the gauge was never set — nothing was dropped).
pub fn spans_dropped(records: &[StepRecord]) -> u64 {
    records
        .iter()
        .map(|r| r.metrics.gauge(SPANS_DROPPED_GAUGE))
        .max()
        .unwrap_or(0)
}

/// Formats nanoseconds for the report tables.
pub fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Renders the full report (per-phase table, counters, histograms,
/// worker utilization) as plain text.
pub fn render(records: &[StepRecord]) -> String {
    use std::fmt::Write as _;

    let mut out = String::new();
    let physics: Vec<StepRecord> = records
        .iter()
        .filter(|r| r.source != "archsim")
        .cloned()
        .collect();
    let _ = writeln!(out, "telemetry report — {} record(s)", records.len());

    let rows = phase_breakdown(if physics.is_empty() {
        records
    } else {
        &physics
    });
    if !rows.is_empty() {
        let total: f64 = rows.iter().map(|r| r.mean_ns).sum();
        let _ = writeln!(out, "\nPer-phase breakdown (mean per step):");
        let _ = writeln!(out, "  {:<18} {:>12} {:>7}", "Phase", "Time", "Share");
        for r in &rows {
            let _ = writeln!(
                out,
                "  {:<18} {:>12} {:>6.1}%",
                r.phase,
                fmt_ns(r.mean_ns),
                r.share * 100.0
            );
        }
        let _ = writeln!(
            out,
            "  {:<18} {:>12} {:>6.1}%",
            "total",
            fmt_ns(total),
            100.0
        );
    }

    // Merge all per-step metric deltas for the summary.
    let merged = records
        .iter()
        .fold(crate::Snapshot::default(), |acc, r| acc.merge(&r.metrics));
    if !merged.counters.is_empty() {
        let _ = writeln!(out, "\nCounters (summed over steps):");
        for (name, v) in &merged.counters {
            let _ = writeln!(out, "  {name:<42} {v:>14}");
        }
    }
    if !merged.histograms.is_empty() {
        let _ = writeln!(out, "\nHistograms:");
        let _ = write!(out, "  {:<34} {:>10} {:>12}", "Name", "Count", "Mean");
        for (_, label) in crate::registry::SUMMARY_QUANTILES {
            let _ = write!(out, " {:>10}", format!("{label}<="));
        }
        let _ = writeln!(out);
        for (name, h) in &merged.histograms {
            let _ = write!(out, "  {:<34} {:>10} {:>12.1}", name, h.count(), h.mean());
            for bound in h.summary_quantiles() {
                let _ = write!(out, " {bound:>10}");
            }
            let _ = writeln!(out);
        }
    }

    // Invariant-monitor verdict: only rendered when a monitor ran
    // (its check counter is nonzero in the merged deltas).
    let checks = merged.counter(CHECKED_STEPS_COUNTER);
    let violations: Vec<(&String, &u64)> = merged
        .counters
        .iter()
        .filter(|(n, _)| n.starts_with(VIOLATION_PREFIX))
        .map(|(n, v)| (n, v))
        .collect();
    if checks > 0 || !violations.is_empty() {
        let _ = writeln!(out, "\nInvariant violations ({checks} step(s) checked):");
        if violations.is_empty() {
            let _ = writeln!(out, "  none");
        }
        for (name, v) in &violations {
            let kind = name.strip_prefix(VIOLATION_PREFIX).unwrap_or(name);
            let _ = writeln!(out, "  {kind:<20} {v:>10}");
        }
    }

    // Island sleeping: the gauges are per-step *levels*, so summing them
    // is meaningless — report the final and peak levels instead, plus the
    // total incremental rebuild work.
    let peak = |name: &str| records.iter().map(|r| r.metrics.gauge(name)).max();
    let last = |name: &str| records.last().map(|r| r.metrics.gauge(name));
    let peak_bodies = peak(SLEEPING_BODIES_GAUGE).unwrap_or(0);
    let rebuilt = merged.counter(ISLANDS_REBUILT_COUNTER);
    if peak_bodies > 0 || rebuilt > 0 {
        let _ = writeln!(out, "\nIsland sleeping:");
        let _ = writeln!(
            out,
            "  {:<20} final {:>8}, peak {:>8}",
            "sleeping bodies",
            last(SLEEPING_BODIES_GAUGE).unwrap_or(0),
            peak_bodies
        );
        let _ = writeln!(
            out,
            "  {:<20} final {:>8}, peak {:>8}",
            "sleeping islands",
            last(SLEEPING_ISLANDS_GAUGE).unwrap_or(0),
            peak(SLEEPING_ISLANDS_GAUGE).unwrap_or(0)
        );
        let _ = writeln!(
            out,
            "  {:<20} {rebuilt} component(s) over all steps",
            "incremental rebuilds"
        );
    }

    let dropped = spans_dropped(records);
    if dropped > 0 {
        let _ = writeln!(
            out,
            "\nspans dropped: {dropped} (ring buffers overflowed; trace is incomplete)"
        );
    }

    let (workers, imbalance) = worker_utilization(records);
    if !workers.is_empty() {
        let _ = writeln!(out, "\nSpan tracks (executor workers):");
        let _ = writeln!(out, "  {:<10} {:>12} {:>8}", "Track", "Busy", "Spans");
        for w in &workers {
            let label = if w.track == 0 {
                "main".to_string()
            } else {
                format!("worker-{}", w.track)
            };
            let _ = writeln!(
                out,
                "  {:<10} {:>12} {:>8}",
                label,
                fmt_ns(w.busy_ns as f64),
                w.spans
            );
        }
        let _ = writeln!(out, "  imbalance (max/mean worker busy): {imbalance:.2}x");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanRecord;

    fn rec(step: u64, broad: u64, narrow: u64) -> StepRecord {
        StepRecord {
            source: "physics".into(),
            scene: "t".into(),
            step,
            wall_ns: vec![("Broadphase".into(), broad), ("Narrowphase".into(), narrow)],
            metrics: Default::default(),
            spans: vec![
                SpanRecord {
                    name: "Narrowphase".into(),
                    track: 1,
                    start_ns: 0,
                    dur_ns: 300,
                },
                SpanRecord {
                    name: "Narrowphase".into(),
                    track: 2,
                    start_ns: 0,
                    dur_ns: 100,
                },
            ],
        }
    }

    #[test]
    fn breakdown_means_and_shares() {
        let rows = phase_breakdown(&[rec(0, 100, 300), rec(1, 300, 500)]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].phase, "Broadphase");
        assert!((rows[0].mean_ns - 200.0).abs() < 1e-9);
        assert!((rows[0].share - 400.0 / 1200.0).abs() < 1e-9);
        assert!((rows[1].share - 800.0 / 1200.0).abs() < 1e-9);
    }

    #[test]
    fn imbalance_over_worker_tracks() {
        let (rows, imbalance) = worker_utilization(&[rec(0, 1, 1)]);
        assert_eq!(rows.len(), 2);
        // workers 1 and 2: busy 300 and 100 → max 300 / mean 200.
        assert!((imbalance - 1.5).abs() < 1e-9);
    }

    #[test]
    fn render_contains_phases_and_tracks() {
        let text = render(&[rec(0, 100, 300)]);
        assert!(text.contains("Broadphase"));
        assert!(text.contains("worker-2"));
        assert!(text.contains("imbalance"));
    }

    #[test]
    fn empty_records_render_without_panic() {
        assert!(render(&[]).contains("0 record(s)"));
        assert!(phase_breakdown(&[]).is_empty());
    }

    #[test]
    fn violations_section_lists_monitor_counters() {
        let mut r = rec(0, 100, 300);
        r.metrics.counters = vec![
            ("physics.monitor.checked_steps".into(), 12),
            (format!("{VIOLATION_PREFIX}non_finite"), 2),
        ];
        let text = render(std::slice::from_ref(&r));
        assert!(text.contains("Invariant violations (12 step(s) checked):"));
        assert!(text.contains("non_finite"));

        // A monitored run with no violations renders "none"; an
        // unmonitored run renders no section at all.
        r.metrics.counters = vec![("physics.monitor.checked_steps".into(), 5)];
        let text = render(std::slice::from_ref(&r));
        assert!(text.contains("Invariant violations (5 step(s) checked):"));
        assert!(text.contains("none"));
        assert!(!render(&[rec(0, 1, 1)]).contains("Invariant violations"));
    }

    #[test]
    fn histogram_table_has_shared_quantile_columns() {
        let mut r = rec(0, 100, 300);
        r.metrics.histograms = vec![(
            "island_size".into(),
            crate::HistogramSnapshot {
                buckets: vec![0, 96, 0, 0, 4], // 96 ones, 4 in [8,15]
                sum: 96 + 4 * 8,
            },
        )];
        let text = render(std::slice::from_ref(&r));
        for (_, label) in crate::registry::SUMMARY_QUANTILES {
            assert!(text.contains(&format!("{label}<=")), "{text}");
        }
        // p50 and p95 land in the ones bucket, p99 in [8,15].
        let row = text.lines().find(|l| l.contains("island_size")).unwrap();
        assert!(row.trim_end().ends_with("1          1         15"), "{row}");
    }

    #[test]
    fn sleeping_section_reports_levels_not_sums() {
        let mut a = rec(0, 1, 1);
        a.metrics.gauges = vec![
            (SLEEPING_BODIES_GAUGE.into(), 240),
            (SLEEPING_ISLANDS_GAUGE.into(), 48),
        ];
        a.metrics.counters = vec![(ISLANDS_REBUILT_COUNTER.into(), 3)];
        let mut b = rec(1, 1, 1);
        b.metrics.gauges = vec![
            (SLEEPING_BODIES_GAUGE.into(), 235),
            (SLEEPING_ISLANDS_GAUGE.into(), 47),
        ];
        b.metrics.counters = vec![(ISLANDS_REBUILT_COUNTER.into(), 2)];
        let text = render(&[a, b]);
        assert!(text.contains("Island sleeping:"), "{text}");
        // Final level is the last record's, peak is the max — not 475.
        assert!(text.contains("final      235, peak      240"), "{text}");
        assert!(text.contains("final       47, peak       48"), "{text}");
        assert!(text.contains("5 component(s)"), "{text}");
        // A run that never slept and never rebuilt renders no section.
        assert!(!render(&[rec(0, 1, 1)]).contains("Island sleeping"));
    }

    #[test]
    fn spans_dropped_is_max_gauge_across_records() {
        let mut a = rec(0, 1, 1);
        a.metrics.gauges = vec![(SPANS_DROPPED_GAUGE.into(), 3)];
        let mut b = rec(1, 1, 1);
        b.metrics.gauges = vec![(SPANS_DROPPED_GAUGE.into(), 7)];
        assert_eq!(spans_dropped(&[a.clone(), b.clone()]), 7);
        assert_eq!(spans_dropped(&[rec(2, 1, 1)]), 0);
        let text = render(&[a, b]);
        assert!(text.contains("spans dropped: 7"));
        assert!(!render(&[rec(0, 1, 1)]).contains("spans dropped"));
    }
}
