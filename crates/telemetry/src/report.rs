//! Rendering snapshot files into the paper's per-phase breakdown form.
//!
//! Consumed by the `telemetry_report` binary in `parallax-bench` and by
//! the tier-1 smoke test: [`phase_breakdown`] reproduces the shape of
//! the paper's Figure 2(a) (per-phase time and share of the step), and
//! [`worker_utilization`] reproduces the executor-side load-imbalance
//! view the span tracks carry.

use std::collections::BTreeMap;

use crate::export::StepRecord;

/// Per-phase aggregate over a set of step records.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseRow {
    /// Phase name as recorded (pipeline order preserved).
    pub phase: String,
    /// Mean nanoseconds per step.
    pub mean_ns: f64,
    /// Share of the summed per-phase time, in `[0, 1]`.
    pub share: f64,
}

/// Aggregates `wall_ns` across records (first occurrence order is kept,
/// which is pipeline order for records written by the step pipeline).
pub fn phase_breakdown(records: &[StepRecord]) -> Vec<PhaseRow> {
    let mut order: Vec<String> = Vec::new();
    let mut total_ns: BTreeMap<String, u64> = BTreeMap::new();
    let mut steps = 0u64;
    for r in records {
        if r.wall_ns.is_empty() {
            continue;
        }
        steps += 1;
        for (phase, ns) in &r.wall_ns {
            if !order.contains(phase) {
                order.push(phase.clone());
            }
            *total_ns.entry(phase.clone()).or_insert(0) += ns;
        }
    }
    if steps == 0 {
        return Vec::new();
    }
    let grand: u64 = total_ns.values().sum();
    order
        .into_iter()
        .map(|phase| {
            let t = total_ns[&phase];
            PhaseRow {
                phase,
                mean_ns: t as f64 / steps as f64,
                share: if grand == 0 {
                    0.0
                } else {
                    t as f64 / grand as f64
                },
            }
        })
        .collect()
}

/// Per-track (executor worker) span totals.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerRow {
    /// Span track (0 = calling thread, `i` = worker `i`).
    pub track: u32,
    /// Total busy nanoseconds (sum of span durations on the track).
    pub busy_ns: u64,
    /// Spans recorded on the track.
    pub spans: usize,
}

/// Sums span time per track across records, plus the imbalance ratio
/// (max busy / mean busy over the *worker* tracks; 1.0 = perfectly
/// balanced, meaningless when fewer than two tracks carried work).
pub fn worker_utilization(records: &[StepRecord]) -> (Vec<WorkerRow>, f64) {
    let mut per: BTreeMap<u32, (u64, usize)> = BTreeMap::new();
    for r in records {
        for s in &r.spans {
            let e = per.entry(s.track).or_insert((0, 0));
            e.0 += s.dur_ns;
            e.1 += 1;
        }
    }
    let rows: Vec<WorkerRow> = per
        .into_iter()
        .map(|(track, (busy_ns, spans))| WorkerRow {
            track,
            busy_ns,
            spans,
        })
        .collect();
    let workers: Vec<u64> = rows
        .iter()
        .filter(|r| r.track > 0)
        .map(|r| r.busy_ns)
        .collect();
    let imbalance = if workers.len() >= 2 && workers.iter().sum::<u64>() > 0 {
        let max = *workers.iter().max().expect("nonempty") as f64;
        let mean = workers.iter().sum::<u64>() as f64 / workers.len() as f64;
        max / mean
    } else {
        1.0
    };
    (rows, imbalance)
}

/// Formats nanoseconds for the report tables.
pub fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Renders the full report (per-phase table, counters, histograms,
/// worker utilization) as plain text.
pub fn render(records: &[StepRecord]) -> String {
    use std::fmt::Write as _;

    let mut out = String::new();
    let physics: Vec<StepRecord> = records
        .iter()
        .filter(|r| r.source != "archsim")
        .cloned()
        .collect();
    let _ = writeln!(out, "telemetry report — {} record(s)", records.len());

    let rows = phase_breakdown(if physics.is_empty() {
        records
    } else {
        &physics
    });
    if !rows.is_empty() {
        let total: f64 = rows.iter().map(|r| r.mean_ns).sum();
        let _ = writeln!(out, "\nPer-phase breakdown (mean per step):");
        let _ = writeln!(out, "  {:<18} {:>12} {:>7}", "Phase", "Time", "Share");
        for r in &rows {
            let _ = writeln!(
                out,
                "  {:<18} {:>12} {:>6.1}%",
                r.phase,
                fmt_ns(r.mean_ns),
                r.share * 100.0
            );
        }
        let _ = writeln!(
            out,
            "  {:<18} {:>12} {:>6.1}%",
            "total",
            fmt_ns(total),
            100.0
        );
    }

    // Merge all per-step metric deltas for the summary.
    let merged = records
        .iter()
        .fold(crate::Snapshot::default(), |acc, r| acc.merge(&r.metrics));
    if !merged.counters.is_empty() {
        let _ = writeln!(out, "\nCounters (summed over steps):");
        for (name, v) in &merged.counters {
            let _ = writeln!(out, "  {name:<42} {v:>14}");
        }
    }
    if !merged.histograms.is_empty() {
        let _ = writeln!(out, "\nHistograms:");
        let _ = writeln!(
            out,
            "  {:<34} {:>10} {:>12} {:>10} {:>10}",
            "Name", "Count", "Mean", "p50<=", "p99<="
        );
        for (name, h) in &merged.histograms {
            let _ = writeln!(
                out,
                "  {:<34} {:>10} {:>12.1} {:>10} {:>10}",
                name,
                h.count(),
                h.mean(),
                h.quantile_upper_bound(0.5).unwrap_or(0),
                h.quantile_upper_bound(0.99).unwrap_or(0)
            );
        }
    }

    let (workers, imbalance) = worker_utilization(records);
    if !workers.is_empty() {
        let _ = writeln!(out, "\nSpan tracks (executor workers):");
        let _ = writeln!(out, "  {:<10} {:>12} {:>8}", "Track", "Busy", "Spans");
        for w in &workers {
            let label = if w.track == 0 {
                "main".to_string()
            } else {
                format!("worker-{}", w.track)
            };
            let _ = writeln!(
                out,
                "  {:<10} {:>12} {:>8}",
                label,
                fmt_ns(w.busy_ns as f64),
                w.spans
            );
        }
        let _ = writeln!(out, "  imbalance (max/mean worker busy): {imbalance:.2}x");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanRecord;

    fn rec(step: u64, broad: u64, narrow: u64) -> StepRecord {
        StepRecord {
            source: "physics".into(),
            scene: "t".into(),
            step,
            wall_ns: vec![("Broadphase".into(), broad), ("Narrowphase".into(), narrow)],
            metrics: Default::default(),
            spans: vec![
                SpanRecord {
                    name: "Narrowphase".into(),
                    track: 1,
                    start_ns: 0,
                    dur_ns: 300,
                },
                SpanRecord {
                    name: "Narrowphase".into(),
                    track: 2,
                    start_ns: 0,
                    dur_ns: 100,
                },
            ],
        }
    }

    #[test]
    fn breakdown_means_and_shares() {
        let rows = phase_breakdown(&[rec(0, 100, 300), rec(1, 300, 500)]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].phase, "Broadphase");
        assert!((rows[0].mean_ns - 200.0).abs() < 1e-9);
        assert!((rows[0].share - 400.0 / 1200.0).abs() < 1e-9);
        assert!((rows[1].share - 800.0 / 1200.0).abs() < 1e-9);
    }

    #[test]
    fn imbalance_over_worker_tracks() {
        let (rows, imbalance) = worker_utilization(&[rec(0, 1, 1)]);
        assert_eq!(rows.len(), 2);
        // workers 1 and 2: busy 300 and 100 → max 300 / mean 200.
        assert!((imbalance - 1.5).abs() < 1e-9);
    }

    #[test]
    fn render_contains_phases_and_tracks() {
        let text = render(&[rec(0, 100, 300)]);
        assert!(text.contains("Broadphase"));
        assert!(text.contains("worker-2"));
        assert!(text.contains("imbalance"));
    }

    #[test]
    fn empty_records_render_without_panic() {
        assert!(render(&[]).contains("0 record(s)"));
        assert!(phase_breakdown(&[]).is_empty());
    }
}
