//! The lock-free metrics registry: counters, gauges, log2 histograms.
//!
//! Layout: metric *names* live in a process-global table guarded by a
//! mutex that is touched only at registration time (cold). Metric
//! *values* live in per-thread [`Shard`]s — flat arrays of `AtomicU64`
//! slots indexed by the metric's id — so the hot path is one
//! thread-local lookup plus one relaxed atomic RMW on memory no other
//! thread writes. No allocation, no locking, no false sharing between
//! recording threads (each shard is its own allocation).
//!
//! [`snapshot`] walks every shard ever registered (shards of exited
//! threads are kept alive by the global list, so their counts survive)
//! and merges the slots into a [`Snapshot`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Maximum number of counters registrable process-wide.
pub const MAX_COUNTERS: usize = 192;
/// Maximum number of gauges registrable process-wide.
pub const MAX_GAUGES: usize = 64;
/// Maximum number of histograms registrable process-wide.
pub const MAX_HISTOGRAMS: usize = 48;
/// Buckets per histogram: bucket 0 holds zeros, bucket `b` holds values
/// in `[2^(b-1), 2^b)` (the last bucket is clamped open-ended).
pub const HIST_BUCKETS: usize = 64;

/// Per-thread value storage. One allocation per recording thread.
struct Shard {
    counters: Vec<AtomicU64>,
    gauges: Vec<AtomicU64>,
    /// `MAX_HISTOGRAMS × (HIST_BUCKETS + 1)`: 64 buckets then a running
    /// sum, so a snapshot can report both distribution and mean.
    hists: Vec<AtomicU64>,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            counters: (0..MAX_COUNTERS).map(|_| AtomicU64::new(0)).collect(),
            gauges: (0..MAX_GAUGES).map(|_| AtomicU64::new(0)).collect(),
            hists: (0..MAX_HISTOGRAMS * (HIST_BUCKETS + 1))
                .map(|_| AtomicU64::new(0))
                .collect(),
        }
    }
}

/// Name table: registration-time state, cold path only.
#[derive(Default)]
struct Names {
    counters: Vec<String>,
    gauges: Vec<String>,
    histograms: Vec<String>,
    by_name: HashMap<(String, Kind), u16>,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

struct Global {
    names: Mutex<Names>,
    shards: Mutex<Vec<Arc<Shard>>>,
}

fn global() -> &'static Global {
    static G: OnceLock<Global> = OnceLock::new();
    G.get_or_init(|| Global {
        names: Mutex::new(Names::default()),
        shards: Mutex::new(Vec::new()),
    })
}

thread_local! {
    static SHARD: std::cell::OnceCell<Arc<Shard>> = const { std::cell::OnceCell::new() };
}

/// Runs `f` against this thread's shard, creating and globally
/// registering the shard on first use.
#[inline]
fn with_shard<R>(f: impl FnOnce(&Shard) -> R) -> R {
    SHARD.with(|cell| {
        let shard = cell.get_or_init(|| {
            let shard = Arc::new(Shard::new());
            global()
                .shards
                .lock()
                .expect("shard list")
                .push(Arc::clone(&shard));
            shard
        });
        f(shard)
    })
}

fn register(name: &str, kind: Kind) -> u16 {
    let mut names = global().names.lock().expect("name table");
    if let Some(&id) = names.by_name.get(&(name.to_string(), kind)) {
        return id;
    }
    let (list, cap) = match kind {
        Kind::Counter => (&mut names.counters, MAX_COUNTERS),
        Kind::Gauge => (&mut names.gauges, MAX_GAUGES),
        Kind::Histogram => (&mut names.histograms, MAX_HISTOGRAMS),
    };
    assert!(
        list.len() < cap,
        "telemetry registry full for this metric kind ({cap} max): {name}"
    );
    let id = list.len() as u16;
    list.push(name.to_string());
    names.by_name.insert((name.to_string(), kind), id);
    id
}

/// A monotonically increasing count. Copyable handle; merge = sum.
#[derive(Debug, Clone, Copy)]
pub struct Counter(u16);

/// A last-written value. Copyable handle; merge = max (the only
/// commutative choice without timestamps — document gauges accordingly).
#[derive(Debug, Clone, Copy)]
pub struct Gauge(u16);

/// A fixed-bucket log2 histogram of `u64` samples. Copyable handle;
/// merge = per-bucket sum.
#[derive(Debug, Clone, Copy)]
pub struct Histogram(u16);

/// Registers (or looks up) a counter by name. Idempotent.
pub fn counter(name: &str) -> Counter {
    Counter(register(name, Kind::Counter))
}

/// Registers a counter from an owned name (for per-worker metric
/// families such as `physics.executor.worker3.busy_ns`). Idempotent.
pub fn counter_named(name: String) -> Counter {
    Counter(register(&name, Kind::Counter))
}

/// Registers (or looks up) a gauge by name. Idempotent.
pub fn gauge(name: &str) -> Gauge {
    Gauge(register(name, Kind::Gauge))
}

/// Registers (or looks up) a histogram by name. Idempotent.
pub fn histogram(name: &str) -> Histogram {
    Histogram(register(name, Kind::Histogram))
}

impl Counter {
    /// Adds `n`. Lock-free, allocation-free; no-op while disabled.
    #[inline]
    pub fn add(self, n: u64) {
        if !crate::enabled() {
            return;
        }
        with_shard(|s| s.counters[self.0 as usize].fetch_add(n, Ordering::Relaxed));
    }
}

impl Gauge {
    /// Stores `v` as the gauge's current value on this thread. No-op
    /// while disabled.
    #[inline]
    pub fn set(self, v: u64) {
        if !crate::enabled() {
            return;
        }
        with_shard(|s| s.gauges[self.0 as usize].store(v, Ordering::Relaxed));
    }

    /// Stores `v` regardless of the enabled flag. For bookkeeping values
    /// that must survive a disabled window (the dropped-span count is
    /// mirrored at drain time, which often happens after recording has
    /// been switched off). Still removed by the `off` feature.
    #[inline]
    pub fn set_always(self, v: u64) {
        #[cfg(feature = "off")]
        {
            let _ = v;
        }
        #[cfg(not(feature = "off"))]
        {
            with_shard(|s| s.gauges[self.0 as usize].store(v, Ordering::Relaxed));
        }
    }
}

/// Bucket index of a sample: 0 for 0, else `floor(log2 v) + 1`, clamped
/// to the last bucket.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }
}

/// Inclusive `[lo, hi]` range of values a bucket covers.
pub fn bucket_bounds(b: usize) -> (u64, u64) {
    match b {
        0 => (0, 0),
        _ if b < HIST_BUCKETS - 1 => (1u64 << (b - 1), (1u64 << b) - 1),
        _ => (1u64 << (HIST_BUCKETS - 2), u64::MAX),
    }
}

impl Histogram {
    /// Records one sample. Lock-free, allocation-free; no-op while
    /// disabled.
    #[inline]
    pub fn record(self, v: u64) {
        if !crate::enabled() {
            return;
        }
        with_shard(|s| {
            let base = self.0 as usize * (HIST_BUCKETS + 1);
            s.hists[base + bucket_of(v)].fetch_add(1, Ordering::Relaxed);
            s.hists[base + HIST_BUCKETS].fetch_add(v, Ordering::Relaxed);
        });
    }
}

/// Merged view of one histogram.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`bucket_bounds`]).
    pub buckets: Vec<u64>,
    /// Sum of all recorded samples.
    pub sum: u64,
}

/// The quantiles the report tables and the `/metrics` summary series
/// both render, `(q, label)` pairs — one shared spelling so a value in a
/// `telemetry_report` table and the `<name>_p99` series scraped from the
/// exporter come from the same CDF walk.
pub const SUMMARY_QUANTILES: [(f64, &str); 3] = [(0.50, "p50"), (0.95, "p95"), (0.99, "p99")];

impl HistogramSnapshot {
    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The [`SUMMARY_QUANTILES`] upper bounds of this histogram, in
    /// order (all zero when empty).
    pub fn summary_quantiles(&self) -> [u64; SUMMARY_QUANTILES.len()] {
        SUMMARY_QUANTILES.map(|(q, _)| self.quantile_upper_bound(q).unwrap_or(0))
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile sample
    /// (`q` in `[0, 1]`); `None` when empty.
    pub fn quantile_upper_bound(&self, q: f64) -> Option<u64> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (b, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(bucket_bounds(b).1);
            }
        }
        Some(bucket_bounds(self.buckets.len().saturating_sub(1)).1)
    }

    fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let len = self.buckets.len().max(other.buckets.len());
        let get = |v: &[u64], i: usize| v.get(i).copied().unwrap_or(0);
        HistogramSnapshot {
            buckets: (0..len)
                .map(|i| get(&self.buckets, i) + get(&other.buckets, i))
                .collect(),
            sum: self.sum + other.sum,
        }
    }

    fn delta_since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let get = |v: &[u64], i: usize| v.get(i).copied().unwrap_or(0);
        HistogramSnapshot {
            buckets: (0..self.buckets.len())
                .map(|i| get(&self.buckets, i).saturating_sub(get(&earlier.buckets, i)))
                .collect(),
            sum: self.sum.saturating_sub(earlier.sum),
        }
    }

    fn is_empty(&self) -> bool {
        self.buckets.iter().all(|&b| b == 0)
    }
}

/// A merged, point-in-time view of every metric.
///
/// Merging ([`Snapshot::merge`]) is associative and commutative:
/// counters and histogram buckets add, gauges take the max.
/// [`Snapshot::delta_since`] recovers a per-interval view from two
/// cumulative snapshots.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Counter totals by name (zero-valued counters are omitted).
    pub counters: Vec<(String, u64)>,
    /// Gauge values by name (zero-valued gauges are omitted).
    pub gauges: Vec<(String, u64)>,
    /// Histograms by name (empty histograms are omitted).
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl Snapshot {
    /// Value of a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        lookup(&self.counters, name).copied().unwrap_or(0)
    }

    /// Value of a gauge (0 when absent).
    pub fn gauge(&self, name: &str) -> u64 {
        lookup(&self.gauges, name).copied().unwrap_or(0)
    }

    /// A histogram's merged view, if it recorded anything.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        lookup(&self.histograms, name)
    }

    /// Counters whose name starts with `prefix`, in name order.
    pub fn counters_with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, u64)> + 'a {
        self.counters
            .iter()
            .filter(move |(n, _)| n.starts_with(prefix))
            .map(|(n, v)| (n.as_str(), *v))
    }

    /// Associative + commutative merge: counters and histogram buckets
    /// add, gauges take the max.
    pub fn merge(&self, other: &Snapshot) -> Snapshot {
        Snapshot {
            counters: merge_by_name(&self.counters, &other.counters, |a, b| a + b),
            gauges: merge_by_name(&self.gauges, &other.gauges, |a, b| a.max(b)),
            histograms: merge_by_name(&self.histograms, &other.histograms, |a, b| a.merge(&b)),
        }
    }

    /// Per-interval view: this snapshot minus an `earlier` cumulative
    /// one (counters and histograms subtract; gauges keep the newer
    /// value).
    pub fn delta_since(&self, earlier: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|(n, v)| (n.clone(), v.saturating_sub(earlier.counter(n))))
            .filter(|(_, v)| *v > 0)
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(n, h)| {
                let d = match lookup(&earlier.histograms, n) {
                    Some(e) => h.delta_since(e),
                    None => h.clone(),
                };
                (n.clone(), d)
            })
            .filter(|(_, h): &(String, HistogramSnapshot)| !h.is_empty())
            .collect();
        Snapshot {
            counters,
            gauges: self.gauges.clone(),
            histograms,
        }
    }
}

fn lookup<'a, T>(list: &'a [(String, T)], name: &str) -> Option<&'a T> {
    list.iter().find(|(n, _)| n == name).map(|(_, v)| v)
}

fn merge_by_name<T: Clone + Default>(
    a: &[(String, T)],
    b: &[(String, T)],
    f: impl Fn(T, T) -> T,
) -> Vec<(String, T)> {
    let mut out: Vec<(String, T)> = a.to_vec();
    for (name, v) in b {
        match out.iter_mut().find(|(n, _)| n == name) {
            Some((_, existing)) => *existing = f(existing.clone(), v.clone()),
            None => out.push((name.clone(), v.clone())),
        }
    }
    out.sort_by(|(x, _), (y, _)| x.cmp(y));
    out
}

/// Merges every thread's shard into one [`Snapshot`]. Sorted by name so
/// output (and JSON) is deterministic.
pub fn snapshot() -> Snapshot {
    let names = global().names.lock().expect("name table");
    let shards = global().shards.lock().expect("shard list");
    let mut counters = vec![0u64; names.counters.len()];
    let mut gauges = vec![0u64; names.gauges.len()];
    let mut hists = vec![(vec![0u64; HIST_BUCKETS], 0u64); names.histograms.len()];
    for shard in shards.iter() {
        for (i, c) in counters.iter_mut().enumerate() {
            *c += shard.counters[i].load(Ordering::Relaxed);
        }
        for (i, g) in gauges.iter_mut().enumerate() {
            *g = (*g).max(shard.gauges[i].load(Ordering::Relaxed));
        }
        for (i, (buckets, sum)) in hists.iter_mut().enumerate() {
            let base = i * (HIST_BUCKETS + 1);
            for (b, slot) in buckets.iter_mut().enumerate() {
                *slot += shard.hists[base + b].load(Ordering::Relaxed);
            }
            *sum += shard.hists[base + HIST_BUCKETS].load(Ordering::Relaxed);
        }
    }
    let mut snap = Snapshot {
        counters: names
            .counters
            .iter()
            .zip(&counters)
            .filter(|(_, &v)| v > 0)
            .map(|(n, &v)| (n.clone(), v))
            .collect(),
        gauges: names
            .gauges
            .iter()
            .zip(&gauges)
            .filter(|(_, &v)| v > 0)
            .map(|(n, &v)| (n.clone(), v))
            .collect(),
        histograms: names
            .histograms
            .iter()
            .zip(hists)
            .map(|(n, (buckets, sum))| (n.clone(), HistogramSnapshot { buckets, sum }))
            .filter(|(_, h)| !h.is_empty())
            .collect(),
    };
    snap.counters.sort_by(|(a, _), (b, _)| a.cmp(b));
    snap.gauges.sort_by(|(a, _), (b, _)| a.cmp(b));
    snap.histograms.sort_by(|(a, _), (b, _)| a.cmp(b));
    snap
}

/// Zeroes every metric slot in every shard (test/bench aid; racy with
/// concurrent recording, which only loses in-flight increments).
pub fn reset() {
    let shards = global().shards.lock().expect("shard list");
    for shard in shards.iter() {
        for c in &shard.counters {
            c.store(0, Ordering::Relaxed);
        }
        for g in &shard.gauges {
            g.store(0, Ordering::Relaxed);
        }
        for h in &shard.hists {
            h.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(255), 8);
        assert_eq!(bucket_of(256), 9);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
        for b in 0..HIST_BUCKETS {
            let (lo, hi) = bucket_bounds(b);
            assert!(lo <= hi, "bucket {b}");
            assert_eq!(bucket_of(lo), b, "lower bound of bucket {b}");
            if b < HIST_BUCKETS - 1 {
                assert_eq!(bucket_of(hi), b, "upper bound of bucket {b}");
                assert_eq!(bucket_bounds(b + 1).0, hi + 1, "buckets must tile");
            }
        }
    }

    #[test]
    fn registration_is_idempotent() {
        let a = counter("reg.same");
        let b = counter("reg.same");
        assert_eq!(a.0, b.0);
        let g = gauge("reg.same"); // same name, different kind: distinct id space
        let g2 = gauge("reg.same");
        assert_eq!(g.0, g2.0);
    }

    #[test]
    fn quantiles_and_mean() {
        let h = HistogramSnapshot {
            buckets: {
                let mut b = vec![0u64; HIST_BUCKETS];
                b[bucket_of(1)] += 50;
                b[bucket_of(1000)] += 50;
                b
            },
            sum: 50 + 50 * 1000,
        };
        assert_eq!(h.count(), 100);
        assert!((h.mean() - 500.5).abs() < 1e-9);
        assert_eq!(h.quantile_upper_bound(0.25), Some(1));
        assert_eq!(
            h.quantile_upper_bound(0.99),
            Some(bucket_bounds(bucket_of(1000)).1)
        );
        assert_eq!(HistogramSnapshot::default().quantile_upper_bound(0.5), None);
    }

    #[test]
    fn delta_since_recovers_interval() {
        let early = Snapshot {
            counters: vec![("a".into(), 10), ("b".into(), 5)],
            gauges: vec![("g".into(), 7)],
            histograms: vec![],
        };
        let late = Snapshot {
            counters: vec![("a".into(), 25), ("b".into(), 5), ("c".into(), 1)],
            gauges: vec![("g".into(), 3)],
            histograms: vec![],
        };
        let d = late.delta_since(&early);
        assert_eq!(d.counter("a"), 15);
        assert_eq!(d.counter("b"), 0);
        assert_eq!(d.counter("c"), 1);
        assert_eq!(d.gauge("g"), 3, "delta keeps the newer gauge value");
    }

    #[cfg(not(feature = "off"))]
    #[test]
    fn cross_thread_recording_merges() {
        let _guard = crate::test_guard();
        let c = counter("reg.cross_thread");
        crate::set_enabled(true);
        let threads: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.add(1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        crate::set_enabled(false);
        assert_eq!(snapshot().counter("reg.cross_thread"), 4000);
    }
}
