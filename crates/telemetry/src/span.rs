//! Span-based structured tracing into per-thread ring buffers.
//!
//! A span is `(name, track, start_ns, dur_ns)`. Names are interned to
//! `u32` ids at registration time ([`span_name`]) so the recording path
//! writes three plain `u64` atomic slots — no allocation, no locking.
//! Each thread owns a fixed-capacity buffer; when it fills, new spans
//! are dropped (counted in `telemetry.spans_dropped`) rather than
//! overwriting history, which keeps the writer wait-free.
//!
//! [`drain_spans`] collects and clears every buffer. It is meant to be
//! called at a quiescent point (between steps, while the executor is
//! idle); a span recorded concurrently with a drain may land in either
//! the drained batch or the next one.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Default spans each thread can hold between drains; override with the
/// `PARALLAX_SPAN_RING` environment variable (read once, at first use).
pub const SPAN_CAPACITY: usize = 8192;

/// The per-thread ring capacity in effect for this process.
pub fn ring_capacity() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| capacity_from(std::env::var("PARALLAX_SPAN_RING").ok().as_deref()))
}

/// Parses a `PARALLAX_SPAN_RING` value, falling back to the default on
/// absence or nonsense (warned, not fatal: telemetry must never take the
/// process down).
fn capacity_from(env: Option<&str>) -> usize {
    match env.map(str::trim) {
        None | Some("") => SPAN_CAPACITY,
        Some(s) => match s.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!(
                    "warning: ignoring PARALLAX_SPAN_RING={s:?} (want a positive integer); \
                     using default {SPAN_CAPACITY}"
                );
                SPAN_CAPACITY
            }
        },
    }
}

/// An interned span name (copyable handle).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanName(u32);

/// A drained span event with its name resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Registered span name.
    pub name: String,
    /// Track the span belongs to (0 = calling thread, `i` = worker `i`).
    pub track: u32,
    /// Start, nanoseconds since the process telemetry epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

struct SpanBuf {
    /// Number of initialized slots; the owning thread is the only
    /// writer, drains reset it to zero.
    len: AtomicUsize,
    /// `capacity × 3` slots: (name<<32 | track, start_ns, dur_ns).
    slots: Vec<AtomicU64>,
}

impl SpanBuf {
    fn capacity(&self) -> usize {
        self.slots.len() / 3
    }
}

struct Global {
    names: Mutex<Vec<String>>,
    bufs: Mutex<Vec<Arc<SpanBuf>>>,
    epoch: Instant,
    dropped: AtomicU64,
}

fn global() -> &'static Global {
    static G: OnceLock<Global> = OnceLock::new();
    G.get_or_init(|| Global {
        names: Mutex::new(Vec::new()),
        bufs: Mutex::new(Vec::new()),
        epoch: Instant::now(),
        dropped: AtomicU64::new(0),
    })
}

thread_local! {
    static BUF: std::cell::OnceCell<Arc<SpanBuf>> = const { std::cell::OnceCell::new() };
}

/// Interns a span name, returning its handle. Idempotent per string.
pub fn span_name(name: &str) -> SpanName {
    let mut names = global().names.lock().expect("span names");
    if let Some(i) = names.iter().position(|n| n == name) {
        return SpanName(i as u32);
    }
    names.push(name.to_string());
    SpanName((names.len() - 1) as u32)
}

/// Nanoseconds since the process telemetry epoch.
#[inline]
pub fn now_ns() -> u64 {
    global().epoch.elapsed().as_nanos() as u64
}

/// Records a completed span. Wait-free; no-op while disabled.
#[inline]
pub fn span_record(name: SpanName, track: u32, start_ns: u64, dur_ns: u64) {
    if !crate::enabled() {
        return;
    }
    BUF.with(|cell| {
        let buf = cell.get_or_init(|| {
            let buf = Arc::new(SpanBuf {
                len: AtomicUsize::new(0),
                slots: (0..ring_capacity() * 3)
                    .map(|_| AtomicU64::new(0))
                    .collect(),
            });
            global()
                .bufs
                .lock()
                .expect("span bufs")
                .push(Arc::clone(&buf));
            buf
        });
        let i = buf.len.load(Ordering::Relaxed);
        if i >= buf.capacity() {
            // First drop of the process warns once; after that the count
            // (and the gauge set at drain time) is the only signal.
            if global().dropped.fetch_add(1, Ordering::Relaxed) == 0 {
                eprintln!(
                    "warning: telemetry span ring full ({} spans/thread); dropping new spans \
                     until the next drain — raise PARALLAX_SPAN_RING or drain more often",
                    buf.capacity()
                );
            }
            return;
        }
        let base = i * 3;
        buf.slots[base].store(((name.0 as u64) << 32) | track as u64, Ordering::Relaxed);
        buf.slots[base + 1].store(start_ns, Ordering::Relaxed);
        buf.slots[base + 2].store(dur_ns, Ordering::Relaxed);
        buf.len.store(i + 1, Ordering::Release);
    });
}

/// RAII helper: records a span from construction to drop.
///
/// ```
/// use parallax_telemetry as telemetry;
/// let name = telemetry::span_name("doc.example");
/// telemetry::set_enabled(true);
/// {
///     let _span = telemetry::SpanGuard::enter(name, 0);
///     // ... traced work ...
/// }
/// telemetry::set_enabled(false);
/// let mut spans = Vec::new();
/// telemetry::drain_spans(&mut spans);
/// assert!(spans.iter().any(|s| s.name == "doc.example"));
/// ```
pub struct SpanGuard {
    name: SpanName,
    track: u32,
    start_ns: u64,
}

impl SpanGuard {
    /// Starts a span on `track`.
    #[inline]
    pub fn enter(name: SpanName, track: u32) -> SpanGuard {
        SpanGuard {
            name,
            track,
            start_ns: if crate::enabled() { now_ns() } else { 0 },
        }
    }
}

impl Drop for SpanGuard {
    #[inline]
    fn drop(&mut self) {
        if self.start_ns != 0 {
            span_record(
                self.name,
                self.track,
                self.start_ns,
                now_ns().saturating_sub(self.start_ns),
            );
        }
    }
}

/// Drains every thread's span buffer into `out` (appended, sorted by
/// start time) and clears the buffers. Call at a quiescent point.
///
/// Drains also mirror the process's cumulative dropped-span count into
/// the `telemetry.spans_dropped` gauge, so any snapshot consumer (the
/// JSONL sink, the `/metrics` exporter) sees ring overflow without
/// bespoke bookkeeping.
pub fn drain_spans(out: &mut Vec<SpanRecord>) {
    let dropped = global().dropped.load(Ordering::Relaxed);
    if dropped > 0 {
        crate::registry::gauge(crate::report::SPANS_DROPPED_GAUGE).set_always(dropped);
    }
    let names = global().names.lock().expect("span names");
    let bufs = global().bufs.lock().expect("span bufs");
    let before = out.len();
    for buf in bufs.iter() {
        let n = buf.len.load(Ordering::Acquire).min(buf.capacity());
        for i in 0..n {
            let base = i * 3;
            let meta = buf.slots[base].load(Ordering::Relaxed);
            let name_id = (meta >> 32) as usize;
            if let Some(name) = names.get(name_id) {
                out.push(SpanRecord {
                    name: name.clone(),
                    track: meta as u32,
                    start_ns: buf.slots[base + 1].load(Ordering::Relaxed),
                    dur_ns: buf.slots[base + 2].load(Ordering::Relaxed),
                });
            }
        }
        buf.len.store(0, Ordering::Release);
    }
    out[before..].sort_by_key(|s| (s.start_ns, s.track));
}

/// Spans dropped so far because a thread's buffer was full.
pub fn spans_dropped() -> u64 {
    global().dropped.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_capacity_parses_the_environment_spelling() {
        assert_eq!(capacity_from(None), SPAN_CAPACITY);
        assert_eq!(capacity_from(Some("")), SPAN_CAPACITY);
        assert_eq!(capacity_from(Some(" 1024 ")), 1024);
        assert_eq!(capacity_from(Some("0")), SPAN_CAPACITY);
        assert_eq!(capacity_from(Some("lots")), SPAN_CAPACITY);
    }

    #[test]
    fn span_names_are_interned() {
        let a = span_name("span.same");
        let b = span_name("span.same");
        assert_eq!(a, b);
        assert_ne!(span_name("span.other"), a);
    }

    #[cfg(not(feature = "off"))]
    #[test]
    fn guard_records_span_with_duration() {
        let _guard = crate::test_guard();
        let mut sink = Vec::new();
        drain_spans(&mut sink); // clear leftovers from other tests
        let name = span_name("span.guard_test");
        crate::set_enabled(true);
        {
            let _span = SpanGuard::enter(name, 7);
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
        crate::set_enabled(false);
        let mut spans = Vec::new();
        drain_spans(&mut spans);
        let s = spans
            .iter()
            .find(|s| s.name == "span.guard_test")
            .expect("span recorded");
        assert_eq!(s.track, 7);
        assert!(s.dur_ns >= 100_000, "duration measured: {}", s.dur_ns);
        let mut again = Vec::new();
        drain_spans(&mut again);
        assert!(
            !again.iter().any(|s| s.name == "span.guard_test"),
            "drain clears buffers"
        );
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = crate::test_guard();
        let mut sink = Vec::new();
        drain_spans(&mut sink);
        let name = span_name("span.disabled_test");
        crate::set_enabled(false);
        span_record(name, 0, 1, 2);
        let mut spans = Vec::new();
        drain_spans(&mut spans);
        assert!(!spans.iter().any(|s| s.name == "span.disabled_test"));
    }
}
