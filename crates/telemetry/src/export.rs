//! Telemetry export: the JSON-lines sink and Chrome trace conversion.
//!
//! One [`StepRecord`] is written per simulation step as a single JSON
//! line, so a snapshot file can be streamed, tailed, grepped, and
//! appended to by multiple sources (`physics` steps and `archsim` replay
//! steps interleave in one file, distinguished by `source`).
//! [`chrome_trace`] converts the span events of a record set into Chrome
//! `trace_event` JSON — the format Perfetto and `chrome://tracing` load
//! directly — with one named track per executor worker.

use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use crate::json::write_str;
use crate::registry::{HistogramSnapshot, Snapshot};
use crate::span::SpanRecord;

/// Everything telemetry knows about one step, ready for export.
#[derive(Debug, Clone, Default)]
pub struct StepRecord {
    /// Which layer produced the record (`"physics"`, `"archsim"`, ...).
    pub source: String,
    /// Scene or workload label.
    pub scene: String,
    /// Step index within the run.
    pub step: u64,
    /// Per-phase wall/simulated time in nanoseconds, by phase name, in
    /// pipeline order.
    pub wall_ns: Vec<(String, u64)>,
    /// Metric deltas for this step (counters/histograms as intervals,
    /// gauges as current values).
    pub metrics: Snapshot,
    /// Spans recorded during the step.
    pub spans: Vec<SpanRecord>,
}

impl StepRecord {
    /// Total of the per-phase times.
    pub fn wall_total_ns(&self) -> u64 {
        self.wall_ns.iter().map(|(_, ns)| ns).sum()
    }

    /// Serializes the record as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\"source\":");
        write_str(&mut out, &self.source);
        out.push_str(",\"scene\":");
        write_str(&mut out, &self.scene);
        let _ = write!(out, ",\"step\":{}", self.step);
        out.push_str(",\"wall_ns\":{");
        for (i, (phase, ns)) in self.wall_ns.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_str(&mut out, phase);
            let _ = write!(out, ":{ns}");
        }
        out.push_str("},\"counters\":{");
        for (i, (name, v)) in self.metrics.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_str(&mut out, name);
            let _ = write!(out, ":{v}");
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.metrics.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_str(&mut out, name);
            let _ = write!(out, ":{v}");
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.metrics.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_str(&mut out, name);
            let trimmed = h.buckets.len() - h.buckets.iter().rev().take_while(|&&b| b == 0).count();
            out.push_str(":{\"buckets\":[");
            for (b, c) in h.buckets[..trimmed].iter().enumerate() {
                if b > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{c}");
            }
            let _ = write!(out, "],\"sum\":{}}}", h.sum);
        }
        out.push_str("},\"spans\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            write_str(&mut out, &s.name);
            let _ = write!(
                out,
                ",\"track\":{},\"start_ns\":{},\"dur_ns\":{}}}",
                s.track, s.start_ns, s.dur_ns
            );
        }
        out.push_str("]}");
        out
    }

    /// Parses a record back from one JSON line.
    pub fn from_json_line(line: &str) -> Result<StepRecord, String> {
        let v = crate::json::Json::parse(line)?;
        if !matches!(v, crate::json::Json::Obj(_)) {
            return Err("not a JSON object".to_string());
        }
        let str_field = |key: &str| -> String {
            v.get(key)
                .and_then(|j| j.as_str())
                .unwrap_or_default()
                .to_string()
        };
        let num_map = |key: &str| -> Vec<(String, u64)> {
            match v.get(key) {
                Some(crate::json::Json::Obj(members)) => members
                    .iter()
                    .filter_map(|(k, j)| j.as_u64().map(|n| (k.clone(), n)))
                    .collect(),
                _ => Vec::new(),
            }
        };
        let histograms = match v.get("histograms") {
            Some(crate::json::Json::Obj(members)) => members
                .iter()
                .filter_map(|(k, j)| {
                    let buckets = j
                        .get("buckets")?
                        .as_arr()?
                        .iter()
                        .map(|b| b.as_u64().unwrap_or(0))
                        .collect();
                    let sum = j.get("sum")?.as_u64()?;
                    Some((k.clone(), HistogramSnapshot { buckets, sum }))
                })
                .collect(),
            _ => Vec::new(),
        };
        let spans = match v.get("spans") {
            Some(crate::json::Json::Arr(items)) => items
                .iter()
                .filter_map(|s| {
                    Some(SpanRecord {
                        name: s.get("name")?.as_str()?.to_string(),
                        track: s.get("track")?.as_u64()? as u32,
                        start_ns: s.get("start_ns")?.as_u64()?,
                        dur_ns: s.get("dur_ns")?.as_u64()?,
                    })
                })
                .collect(),
            _ => Vec::new(),
        };
        Ok(StepRecord {
            source: str_field("source"),
            scene: str_field("scene"),
            step: v.get("step").and_then(|j| j.as_u64()).unwrap_or(0),
            wall_ns: num_map("wall_ns"),
            metrics: Snapshot {
                counters: num_map("counters"),
                gauges: num_map("gauges"),
                histograms,
            },
            spans,
        })
    }
}

/// A JSON-lines snapshot file, one [`StepRecord`] per line.
///
/// ```no_run
/// use parallax_telemetry::{StepRecord, TelemetrySink};
///
/// let mut sink = TelemetrySink::create("out.jsonl").unwrap();
/// sink.write(&StepRecord::default()).unwrap();
/// sink.flush().unwrap();
/// ```
#[derive(Debug)]
pub struct TelemetrySink {
    out: BufWriter<File>,
    records: u64,
}

impl TelemetrySink {
    /// Creates (truncates) the snapshot file at `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<TelemetrySink> {
        Ok(TelemetrySink {
            out: BufWriter::new(File::create(path)?),
            records: 0,
        })
    }

    /// Appends one record as a JSON line.
    pub fn write(&mut self, record: &StepRecord) -> io::Result<()> {
        self.out.write_all(record.to_json_line().as_bytes())?;
        self.out.write_all(b"\n")?;
        self.records += 1;
        Ok(())
    }

    /// Records written so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Flushes buffered lines to disk.
    pub fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }
}

/// Reads a JSON-lines snapshot file back into records (blank lines are
/// skipped; a malformed record is an error naming the file and the
/// 1-based line it sits on, so a multi-gigabyte soak capture with one
/// torn line is diagnosable without a binary search).
pub fn read_jsonl(path: impl AsRef<Path>) -> Result<Vec<StepRecord>, String> {
    let name = path.as_ref().display().to_string();
    let text = std::fs::read_to_string(path.as_ref()).map_err(|e| format!("{name}: {e}"))?;
    let mut records = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        records.push(
            StepRecord::from_json_line(line)
                .map_err(|e| format!("{name}:{}: bad step record: {e}", i + 1))?,
        );
    }
    Ok(records)
}

/// Converts the spans of `records` into Chrome `trace_event` JSON.
///
/// Output is the object form (`{"traceEvents": [...]}`) with complete
/// (`"ph":"X"`) events, timestamps in microseconds, one `tid` per span
/// track and `thread_name` metadata naming track 0 `main` and track `i`
/// `worker-i` — so Perfetto shows one named track per executor worker.
pub fn chrome_trace(records: &[StepRecord]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut tracks: Vec<u32> = Vec::new();
    for r in records {
        for s in &r.spans {
            if !tracks.contains(&s.track) {
                tracks.push(s.track);
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("{\"name\":");
            write_str(&mut out, &s.name);
            let _ = write!(
                out,
                ",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3}}}",
                r.source,
                s.track,
                s.start_ns as f64 / 1000.0,
                s.dur_ns as f64 / 1000.0
            );
        }
    }
    tracks.sort_unstable();
    for t in tracks {
        if !first {
            out.push(',');
        }
        first = false;
        let name = if t == 0 {
            "main".to_string()
        } else {
            format!("worker-{t}")
        };
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{t},\"args\":{{\"name\":"
        );
        write_str(&mut out, &name);
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    fn sample_record() -> StepRecord {
        StepRecord {
            source: "physics".into(),
            scene: "mix".into(),
            step: 42,
            wall_ns: vec![("Broadphase".into(), 1200), ("Narrowphase".into(), 3400)],
            metrics: Snapshot {
                counters: vec![("physics.steps".into(), 1)],
                gauges: vec![("g".into(), 9)],
                histograms: vec![(
                    "island_size".into(),
                    HistogramSnapshot {
                        buckets: vec![0, 2, 1],
                        sum: 9,
                    },
                )],
            },
            spans: vec![
                SpanRecord {
                    name: "Broadphase".into(),
                    track: 0,
                    start_ns: 10,
                    dur_ns: 1200,
                },
                SpanRecord {
                    name: "Narrowphase".into(),
                    track: 2,
                    start_ns: 1300,
                    dur_ns: 3400,
                },
            ],
        }
    }

    #[test]
    fn record_round_trips_through_json_line() {
        let r = sample_record();
        let line = r.to_json_line();
        let back = StepRecord::from_json_line(&line).unwrap();
        assert_eq!(back.source, r.source);
        assert_eq!(back.step, 42);
        assert_eq!(back.wall_ns, r.wall_ns);
        assert_eq!(back.metrics.counters, r.metrics.counters);
        assert_eq!(back.metrics.histograms, r.metrics.histograms);
        assert_eq!(back.spans, r.spans);
        assert_eq!(back.wall_total_ns(), 4600);
    }

    #[test]
    fn sink_writes_readable_lines() {
        let dir = std::env::temp_dir().join("parallax-telemetry-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sink_writes_readable_lines.jsonl");
        let mut sink = TelemetrySink::create(&path).unwrap();
        sink.write(&sample_record()).unwrap();
        sink.write(&sample_record()).unwrap();
        sink.flush().unwrap();
        assert_eq!(sink.records(), 2);
        let records = read_jsonl(&path).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].scene, "mix");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_jsonl_errors_name_file_and_line() {
        let dir = std::env::temp_dir().join("parallax-telemetry-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("errors_name_file_and_line.jsonl");
        let good = sample_record().to_json_line();
        std::fs::write(&path, format!("{good}\n\n{good}\n{{torn")).unwrap();
        let err = read_jsonl(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(
            err.contains("errors_name_file_and_line.jsonl:4"),
            "error must carry file and 1-based line: {err}"
        );
        assert!(err.contains("bad step record"), "{err}");
        let not_obj = StepRecord::from_json_line("[1,2]").unwrap_err();
        assert!(not_obj.contains("not a JSON object"), "{not_obj}");
    }

    #[test]
    fn chrome_trace_is_valid_json_with_worker_tracks() {
        let trace = chrome_trace(&[sample_record()]);
        let v = Json::parse(&trace).unwrap();
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        // 2 spans + 2 thread_name metadata events.
        assert_eq!(events.len(), 4);
        let meta: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("M"))
            .collect();
        assert!(meta.iter().any(|e| {
            e.get("args")
                .and_then(|a| a.get("name"))
                .and_then(|n| n.as_str())
                == Some("worker-2")
        }));
        let x: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .collect();
        assert_eq!(x[0].get("ts").unwrap().as_f64(), Some(0.01));
        assert_eq!(x[1].get("tid").unwrap().as_u64(), Some(2));
    }
}
