//! Workspace-wide telemetry: lock-free metrics, span tracing, export.
//!
//! The paper instruments phase boundaries with Simics MAGIC instructions
//! to obtain its per-phase breakdowns (Fig 2a), serial-fraction analysis
//! (Fig 7a) and FG-core utilization curves (Fig 10). This crate is the
//! reproduction's equivalent: a measurement subsystem cheap enough to be
//! always compiled in, shared by every layer of the workspace
//! (`physics` → `trace` → `archsim` → `parallax` → `bench`).
//!
//! Three pieces:
//!
//! * **Metrics registry** ([`registry`]) — process-global counters,
//!   gauges and fixed-bucket log2 histograms. Recording is lock-free and
//!   allocation-free: each thread owns a shard of plain atomic slots and
//!   a handle is just an index. [`snapshot`] merges every shard into a
//!   [`Snapshot`], and snapshots themselves [`Snapshot::merge`] (counters
//!   add, gauges max, histogram buckets add) and difference
//!   ([`Snapshot::delta_since`]) for per-step accounting.
//! * **Span tracing** ([`span`]) — `begin/end` events written to
//!   per-thread ring buffers (drop-newest when full), drained by
//!   [`drain_spans`] into [`SpanRecord`]s. A span carries a pre-interned
//!   name and a *track* (0 = the calling thread, `i` = executor worker
//!   `i`), which becomes one Perfetto track per worker on export.
//! * **Export** ([`export`], [`report`]) — a JSON-lines
//!   [`TelemetrySink`] writing one self-contained record per step, a
//!   Chrome `trace_event` converter whose output loads directly in
//!   Perfetto / `chrome://tracing`, and the Fig-2a-style per-phase
//!   report used by the `telemetry_report` binary.
//! * **Statistics** ([`stats`]) — dependency-free robust statistics
//!   (median/MAD, deterministic bootstrap confidence intervals and the
//!   noise-aware two-sample [`compare`] verdict) that the `bench_gate`
//!   regression gate turns telemetry into pass/fail decisions with.
//!
//! Telemetry is disabled at startup: every record call is one relaxed
//! atomic load and a branch (criterion-verified ≤ 3% on the step path;
//! see DESIGN.md §7). Building with the `off` feature removes even that,
//! turning the whole crate into a static no-op recorder.
//!
//! # Examples
//!
//! ```
//! use parallax_telemetry as telemetry;
//!
//! let pairs = telemetry::counter("demo.pairs");
//! let sizes = telemetry::histogram("demo.island_size");
//! telemetry::set_enabled(true);
//! pairs.add(3);
//! sizes.record(17);
//! let snap = telemetry::snapshot();
//! assert_eq!(snap.counter("demo.pairs"), 3);
//! assert_eq!(snap.histogram("demo.island_size").unwrap().count(), 1);
//! telemetry::set_enabled(false);
//! ```

pub mod attribution;
pub mod export;
pub mod json;
pub mod net;
pub mod registry;
pub mod report;
pub mod span;
pub mod stats;

pub use attribution::{attribute_step, render_critical_path, StepAttribution};
pub use export::{chrome_trace, read_jsonl, StepRecord, TelemetrySink};
pub use net::{
    http_get, http_request, prometheus_text, HttpServer, Request, Response, ServerOptions,
};
pub use registry::{
    counter, counter_named, gauge, histogram, reset, snapshot, Counter, Gauge, Histogram,
    HistogramSnapshot, Snapshot,
};
pub use span::{drain_spans, now_ns, span_name, span_record, SpanGuard, SpanName, SpanRecord};
pub use stats::{
    bootstrap_median_ci, compare, mad, median, summarize, trim_warmup, BootstrapConfig, Comparison,
    Verdict,
};

use std::sync::atomic::{AtomicBool, Ordering};

#[cfg(not(feature = "off"))]
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether telemetry is currently recording.
///
/// With the `off` feature this is a constant `false`, so every recording
/// call site folds away.
#[inline(always)]
pub fn enabled() -> bool {
    #[cfg(feature = "off")]
    {
        false
    }
    #[cfg(not(feature = "off"))]
    {
        ENABLED.load(Ordering::Relaxed)
    }
}

/// Turns recording on or off process-wide (no-op under the `off`
/// feature). Registration of metrics and span names is always allowed;
/// only recording is gated.
pub fn set_enabled(on: bool) {
    #[cfg(feature = "off")]
    {
        let _ = on;
    }
    #[cfg(not(feature = "off"))]
    {
        ENABLED.store(on, Ordering::Relaxed);
    }
}

/// Serializes tests that flip the process-global enabled flag.
#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
use std::sync::Mutex;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recording_is_invisible() {
        let _guard = test_guard();
        let c = counter("lib.disabled_counter");
        set_enabled(false);
        c.add(1000);
        assert_eq!(snapshot().counter("lib.disabled_counter"), 0);
    }

    #[cfg(not(feature = "off"))]
    #[test]
    fn toggling_enables_recording() {
        let _guard = test_guard();
        let c = counter("lib.toggle_counter");
        set_enabled(true);
        c.add(2);
        set_enabled(false);
        c.add(5);
        assert_eq!(snapshot().counter("lib.toggle_counter"), 2);
    }
}
