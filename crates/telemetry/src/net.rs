//! Minimal HTTP/1.1 plumbing and Prometheus text encoding for the live
//! telemetry exporter and the multi-world simulation service.
//!
//! The workspace builds with no registry access, so the server is
//! hand-rolled on `std::net` the same way the JSON layer is hand-rolled
//! on `std::fmt`: [`HttpServer`] is an accept loop feeding a small
//! bounded worker pool that parses one request per connection and hands
//! it to a route handler; [`prometheus_text`] renders a [`Snapshot`] in
//! Prometheus text exposition format v0.0.4 (counters, gauges, and the
//! log2 histograms as cumulative `_bucket`/`_sum`/`_count` series).
//! Routing policy — what lives at `/metrics`, `/sessions`, `/health` —
//! belongs to the `parallax-observe` and `parallax-server` crates, not
//! here; the handler sees every well-formed request (any method, with
//! body) and answers 405 itself where a method is not supported.
//!
//! Connections are isolated from each other: [`ServerOptions::workers`]
//! threads drain the accept queue, so one stalled client occupies one
//! worker instead of the whole server, and every connection carries a
//! wall-clock deadline ([`ServerOptions::deadline`]) in addition to the
//! per-read idle timeout — a byte-dribbling client (slowloris) cannot
//! reset its way past the deadline and is answered `408` when it
//! expires.

use std::fmt::Write as _;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::registry::{bucket_bounds, Snapshot, HIST_BUCKETS, SUMMARY_QUANTILES};

/// How an [`HttpServer`] reads and schedules connections.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Worker threads draining the accept queue. One stalled client
    /// occupies one worker; the rest keep serving.
    pub workers: usize,
    /// Most bytes of request head read before answering 400.
    pub max_head_bytes: usize,
    /// Most bytes of request body read before answering 400 (snapshot
    /// uploads are the largest legitimate payload).
    pub max_body_bytes: usize,
    /// Idle timeout: a connection that makes no progress (no byte read
    /// or written) for this long forfeits its response.
    pub io_timeout: Duration,
    /// Wall-clock deadline for one whole connection, dribbling or not.
    /// Expiry is answered `408 Request Timeout`.
    pub deadline: Duration,
    /// Connections queued between the accept loop and the workers;
    /// beyond this the accept loop drops new connections (the kernel
    /// backlog in front of it absorbs normal bursts).
    pub queue_cap: usize,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            workers: 4,
            max_head_bytes: 16 * 1024,
            max_body_bytes: 8 * 1024 * 1024,
            io_timeout: Duration::from_secs(2),
            deadline: Duration::from_secs(5),
            queue_cap: 256,
        }
    }
}

/// Granularity at which blocked reads/writes re-check the shutdown flag
/// and the wall-clock deadline.
const POLL_INTERVAL: Duration = Duration::from_millis(250);

/// Connect/IO timeout for the [`http_get`]/[`http_request`] test client.
const CLIENT_TIMEOUT: Duration = Duration::from_secs(2);

/// A parsed HTTP request: method, path, query pairs, and body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method (`GET`, `POST`, `DELETE`, …) — routing decides
    /// what is allowed and answers 405 otherwise.
    pub method: String,
    /// Decoded path, query stripped (e.g. `/sessions/7/state`).
    pub path: String,
    /// Query pairs in source order (`?steps=20` → `[("steps", "20")]`).
    pub query: Vec<(String, String)>,
    /// Request body (empty unless the client sent `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a query key.
    pub fn query(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// First value of a query key parsed as `u64`.
    pub fn query_u64(&self, key: &str) -> Option<u64> {
        self.query(key).and_then(|v| v.parse().ok())
    }

    /// The path split into non-empty segments (`/sessions/7/state` →
    /// `["sessions", "7", "state"]`).
    pub fn segments(&self) -> Vec<&str> {
        self.path.split('/').filter(|s| !s.is_empty()).collect()
    }
}

/// An HTTP response ready to serialize.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code (`200`, `400`, `404`, `405`, `408`, `409`).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body (binary-safe; text routes use [`Response::ok`]).
    pub body: Vec<u8>,
}

impl Response {
    /// A `200 OK` with the given content type and text body.
    pub fn ok(content_type: &'static str, body: String) -> Response {
        Response {
            status: 200,
            content_type,
            body: body.into_bytes(),
        }
    }

    /// A `200 OK` carrying raw bytes (snapshot downloads).
    pub fn ok_bytes(content_type: &'static str, body: Vec<u8>) -> Response {
        Response {
            status: 200,
            content_type,
            body,
        }
    }

    /// A `400 Bad Request` with a plain-text reason.
    pub fn bad_request(reason: &str) -> Response {
        Response::plain(400, format!("bad request: {reason}\n"))
    }

    /// A `404 Not Found` naming the missing path.
    pub fn not_found(path: &str) -> Response {
        Response::plain(404, format!("no such endpoint: {path}\n"))
    }

    /// A `405 Method Not Allowed` naming the methods the route accepts.
    pub fn method_not_allowed(method: &str, allowed: &str) -> Response {
        Response::plain(405, format!("method {method} not allowed; use {allowed}\n"))
    }

    /// A `408 Request Timeout` (idle timeout or wall-clock deadline).
    pub fn timeout(reason: &str) -> Response {
        Response::plain(408, format!("request timeout: {reason}\n"))
    }

    /// A `409 Conflict` with a plain-text reason (session-table races).
    pub fn conflict(reason: &str) -> Response {
        Response::plain(409, format!("conflict: {reason}\n"))
    }

    fn plain(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into_bytes(),
        }
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            409 => "Conflict",
            _ => "Error",
        }
    }

    fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// Parses the request head (everything through the blank line) into a
/// [`Request`] with an empty body. Anything that is not a well-formed
/// `<METHOD> <target> HTTP/1.x` request line is an error — the caller
/// answers 400.
pub fn parse_request(head: &str) -> Result<Request, String> {
    let line = head.lines().next().ok_or("empty request")?;
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or("missing method")?;
    let target = parts.next().ok_or("missing request target")?;
    let version = parts.next().ok_or("missing HTTP version")?;
    if !version.starts_with("HTTP/1.") {
        return Err(format!("unsupported protocol {version:?}"));
    }
    if parts.next().is_some() {
        return Err("malformed request line".to_string());
    }
    if !target.starts_with('/') {
        return Err(format!("bad request target {target:?}"));
    }
    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query = query_str
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (kv.to_string(), String::new()),
        })
        .collect();
    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        query,
        body: Vec::new(),
    })
}

/// The declared `Content-Length` of a request head, if any.
fn content_length(head: &str) -> Result<Option<usize>, String> {
    for line in head.lines().skip(1) {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            return value
                .trim()
                .parse::<usize>()
                .map(Some)
                .map_err(|_| format!("bad Content-Length {:?}", value.trim()));
        }
    }
    Ok(None)
}

/// A background HTTP server bound to a local address.
///
/// Dropping the handle shuts the accept loop and the worker pool down
/// (the accept thread is woken with a loopback connection, the workers
/// through their queue condvar) and joins every thread.
pub struct HttpServer {
    addr: SocketAddr,
    shared: Arc<ServerShared>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

struct ServerShared {
    shutdown: AtomicBool,
    queue: Mutex<std::collections::VecDeque<TcpStream>>,
    available: Condvar,
    options: ServerOptions,
}

impl HttpServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and serves
    /// `handler` with default [`ServerOptions`]. The handler sees every
    /// well-formed request — any method, body already read — and is
    /// responsible for answering 405 on methods a route does not
    /// support; 400/408 are answered before routing.
    pub fn serve(
        addr: impl ToSocketAddrs,
        handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
    ) -> std::io::Result<HttpServer> {
        HttpServer::serve_with(addr, ServerOptions::default(), handler)
    }

    /// [`serve`](Self::serve) with explicit [`ServerOptions`].
    pub fn serve_with(
        addr: impl ToSocketAddrs,
        options: ServerOptions,
        handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
    ) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(ServerShared {
            shutdown: AtomicBool::new(false),
            queue: Mutex::new(std::collections::VecDeque::new()),
            available: Condvar::new(),
            options,
        });
        let handler = Arc::new(handler);
        let mut threads = Vec::with_capacity(shared.options.workers + 1);
        for i in 0..shared.options.workers.max(1) {
            let shared = Arc::clone(&shared);
            let handler = Arc::clone(&handler);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("http-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &*handler))?,
            );
        }
        {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("http-accept".to_string())
                    .spawn(move || accept_loop(&listener, &shared))?,
            );
        }
        Ok(HttpServer {
            addr,
            shared,
            threads,
        })
    }

    /// The bound address (resolves the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // Wake the blocking accept with a throwaway connection and the
        // workers through their condvar.
        let _ = TcpStream::connect_timeout(&self.addr, CLIENT_TIMEOUT);
        self.shared.available.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl std::fmt::Debug for HttpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpServer")
            .field("addr", &self.addr)
            .field("workers", &self.shared.options.workers)
            .finish()
    }
}

fn accept_loop(listener: &TcpListener, shared: &ServerShared) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let mut queue = shared.queue.lock().unwrap_or_else(|p| p.into_inner());
        if queue.len() >= shared.options.queue_cap {
            // Saturated: drop the connection rather than queue without
            // bound. The client sees a reset and retries.
            continue;
        }
        queue.push_back(stream);
        drop(queue);
        shared.available.notify_one();
    }
}

fn worker_loop(shared: &ServerShared, handler: &(impl Fn(&Request) -> Response + ?Sized)) {
    loop {
        let stream = {
            let mut queue = shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(s) = queue.pop_front() {
                    break s;
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                queue = shared
                    .available
                    .wait(queue)
                    .unwrap_or_else(|p| p.into_inner());
            }
        };
        handle_connection(stream, shared, handler);
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
    }
}

/// Why a request could not be read to completion.
enum ReadError {
    /// Malformed, oversized, or truncated input → 400 with this reason.
    Bad(String),
    /// Idle timeout or wall-clock deadline expired → 408.
    Timeout(String),
    /// Transport failure (reset, shutdown) — no response possible.
    Io,
}

fn handle_connection(
    mut stream: TcpStream,
    shared: &ServerShared,
    handler: &(impl Fn(&Request) -> Response + ?Sized),
) {
    let opts = &shared.options;
    let deadline = Instant::now() + opts.deadline;
    let response = match read_request(&mut stream, deadline, shared) {
        Ok(req) => handler(&req),
        Err(ReadError::Bad(reason)) => Response::bad_request(&reason),
        Err(ReadError::Timeout(reason)) => Response::timeout(&reason),
        Err(ReadError::Io) => return,
    };
    let budget = deadline
        .saturating_duration_since(Instant::now())
        .max(Duration::from_millis(10))
        .min(opts.io_timeout);
    let _ = stream.set_write_timeout(Some(budget));
    let _ = response.write_to(&mut stream);
}

/// Reads one whole request (head + declared body) off `stream`,
/// enforcing the head/body size caps, the per-read idle timeout, and the
/// wall-clock `deadline`.
fn read_request(
    stream: &mut TcpStream,
    deadline: Instant,
    shared: &ServerShared,
) -> Result<Request, ReadError> {
    let opts = &shared.options;
    let (head, leftover) = read_head(stream, deadline, shared)?;
    let mut req = parse_request(&head).map_err(ReadError::Bad)?;
    let declared = content_length(&head).map_err(ReadError::Bad)?.unwrap_or(0);
    if declared > opts.max_body_bytes {
        return Err(ReadError::Bad(format!(
            "body of {declared} bytes exceeds the {} byte limit",
            opts.max_body_bytes
        )));
    }
    let mut body = leftover;
    body.truncate(declared); // pipelined extras are ignored (Connection: close)
    while body.len() < declared {
        let mut chunk = [0u8; 4096];
        let n = read_some(stream, &mut chunk, deadline, shared, "request body")?;
        if n == 0 {
            return Err(ReadError::Bad(format!(
                "truncated request: body ended at {} of {declared} declared bytes",
                body.len()
            )));
        }
        let take = n.min(declared - body.len());
        body.extend_from_slice(&chunk[..take]);
    }
    req.body = body;
    Ok(req)
}

/// Reads the request head (through `\r\n\r\n` or `\n\n`), bounded by
/// [`ServerOptions::max_head_bytes`]. Returns the head text and any
/// bytes read past the terminator (the start of the body).
///
/// The terminator scan resumes where the previous scan left off (3 bytes
/// back, so a terminator split across reads is still seen) instead of
/// rescanning the whole buffer after every chunk — O(n) on large heads.
fn read_head(
    stream: &mut TcpStream,
    deadline: Instant,
    shared: &ServerShared,
) -> Result<(String, Vec<u8>), ReadError> {
    let opts = &shared.options;
    let mut buf: Vec<u8> = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    let mut scan_from = 0usize;
    loop {
        let n = read_some(stream, &mut chunk, deadline, shared, "request head")?;
        if n == 0 {
            // EOF before the blank line: a truncated request, distinct
            // from a malformed one — the parser never sees it.
            return Err(ReadError::Bad(format!(
                "truncated request: connection closed after {} bytes with no end of head",
                buf.len()
            )));
        }
        buf.extend_from_slice(&chunk[..n]);
        if let Some((head_end, body_start)) = find_head_end(&buf, scan_from) {
            let head = String::from_utf8(buf[..head_end].to_vec())
                .map_err(|_| ReadError::Bad("request is not UTF-8".to_string()))?;
            return Ok((head, buf[body_start..].to_vec()));
        }
        scan_from = buf.len().saturating_sub(3);
        if buf.len() > opts.max_head_bytes {
            return Err(ReadError::Bad("request head too large".to_string()));
        }
    }
}

/// Finds the head terminator at or after byte `from`: `\r\n\r\n` or a
/// bare `\n\n`. Returns `(head_end, body_start)`.
fn find_head_end(buf: &[u8], from: usize) -> Option<(usize, usize)> {
    for i in from..buf.len() {
        if buf[i] != b'\n' {
            continue;
        }
        if i >= 3 && buf[i - 3..=i] == *b"\r\n\r\n" {
            return Some((i - 3, i + 1));
        }
        if i >= 1 && buf[i - 1] == b'\n' {
            return Some((i - 1, i + 1));
        }
    }
    None
}

/// One `read` with the idle timeout and wall-clock deadline applied.
/// Blocks in short [`POLL_INTERVAL`] slices so server shutdown and
/// deadline expiry are noticed promptly even against a silent peer.
fn read_some(
    stream: &mut TcpStream,
    chunk: &mut [u8],
    deadline: Instant,
    shared: &ServerShared,
    what: &str,
) -> Result<usize, ReadError> {
    let opts = &shared.options;
    let idle_limit = opts.io_timeout;
    let idle_start = Instant::now();
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return Err(ReadError::Io);
        }
        let now = Instant::now();
        if now >= deadline {
            return Err(ReadError::Timeout(format!(
                "connection deadline expired reading the {what}"
            )));
        }
        if now.duration_since(idle_start) >= idle_limit {
            return Err(ReadError::Timeout(format!(
                "no bytes received for {idle_limit:?} reading the {what}"
            )));
        }
        let budget = POLL_INTERVAL
            .min(deadline.saturating_duration_since(now))
            .max(Duration::from_millis(1));
        if stream.set_read_timeout(Some(budget)).is_err() {
            return Err(ReadError::Io);
        }
        match stream.read(chunk) {
            Ok(n) => return Ok(n),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return Err(ReadError::Io),
        }
    }
}

/// Blocking HTTP GET against a local server: returns `(status, body)`
/// with the body decoded as UTF-8 (lossily). Used by the soak harness's
/// scraper thread and the exporter tests; not a general client (no TLS,
/// no redirects, no chunked decoding).
pub fn http_get(addr: SocketAddr, path: &str) -> Result<(u16, String), String> {
    let (status, body) = http_request(addr, "GET", path, "", &[])?;
    Ok((status, String::from_utf8_lossy(&body).into_owned()))
}

/// Blocking HTTP request with a body against a local server: returns
/// `(status, raw body bytes)`. `content_type` is only sent when a body
/// is present.
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    content_type: &str,
    body: &[u8],
) -> Result<(u16, Vec<u8>), String> {
    let mut stream =
        TcpStream::connect_timeout(&addr, CLIENT_TIMEOUT).map_err(|e| e.to_string())?;
    stream
        .set_read_timeout(Some(CLIENT_TIMEOUT))
        .map_err(|e| e.to_string())?;
    stream
        .set_write_timeout(Some(CLIENT_TIMEOUT))
        .map_err(|e| e.to_string())?;
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: parallax\r\nConnection: close\r\n");
    if !body.is_empty() {
        if !content_type.is_empty() {
            let _ = write!(head, "Content-Type: {content_type}\r\n");
        }
        let _ = write!(head, "Content-Length: {}\r\n", body.len());
    }
    head.push_str("\r\n");
    stream
        .write_all(head.as_bytes())
        .map_err(|e| e.to_string())?;
    stream.write_all(body).map_err(|e| e.to_string())?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).map_err(|e| e.to_string())?;
    let header_end = find_head_end(&raw, 0)
        .map(|(_, body_start)| body_start)
        .unwrap_or(raw.len());
    let status_line = String::from_utf8_lossy(&raw[..header_end.min(raw.len())]);
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed response: {:.80}", status_line))?;
    Ok((status, raw[header_end..].to_vec()))
}

/// Whether `name` is a legal Prometheus metric name
/// (`[a-z_][a-z0-9_]*` — the exporter's lint; upstream Prometheus also
/// allows uppercase and `:`, which this workspace never emits).
pub fn is_valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_lowercase() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}

/// Maps a registry metric name (`physics.executor.worker0.busy_ns`) to a
/// Prometheus-legal one (`physics_executor_worker0_busy_ns`): lowercase,
/// every other character folded to `_`, `_` prefixed when the first
/// character is a digit.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for c in name.chars() {
        match c {
            'a'..='z' | '0'..='9' | '_' => out.push(c),
            'A'..='Z' => out.push(c.to_ascii_lowercase()),
            _ => out.push('_'),
        }
    }
    if out.is_empty() || out.starts_with(|c: char| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Renders a [`Snapshot`] in Prometheus text exposition format v0.0.4.
///
/// * Counters and gauges are one sample each under their sanitized name.
/// * Each log2 histogram becomes a cumulative `_bucket` series (one
///   sample per populated power-of-two upper bound plus `le="+Inf"`),
///   `_sum`, and `_count` — the standard encoding Prometheus computes
///   quantiles from server-side.
/// * The [`SUMMARY_QUANTILES`] upper bounds are additionally exported as
///   `<name>_p50`/`_p95`/`_p99` gauges so a bare `curl` shows the same
///   numbers as the `telemetry_report` tables without a PromQL engine.
pub fn prometheus_text(snap: &Snapshot) -> String {
    let mut out = String::with_capacity(4096);
    for (name, v) in &snap.counters {
        let name = sanitize_metric_name(name);
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {v}");
    }
    for (name, v) in &snap.gauges {
        let name = sanitize_metric_name(name);
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {v}");
    }
    for (name, h) in &snap.histograms {
        let name = sanitize_metric_name(name);
        let _ = writeln!(out, "# TYPE {name} histogram");
        let last = h.buckets.iter().rposition(|&c| c > 0).unwrap_or(0);
        let mut cumulative = 0u64;
        for (b, &c) in h.buckets.iter().enumerate().take(last + 1) {
            cumulative += c;
            if c == 0 && b != last {
                continue; // empty buckets add nothing; cumulative still counts
            }
            let le = bucket_bounds(b).1;
            if b == HIST_BUCKETS - 1 {
                break; // the clamped open-ended bucket is the +Inf sample
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let count = h.count();
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {count}");
        let _ = writeln!(out, "{name}_sum {}", h.sum);
        let _ = writeln!(out, "{name}_count {count}");
        for ((_, label), bound) in SUMMARY_QUANTILES.iter().zip(h.summary_quantiles()) {
            let _ = writeln!(out, "# TYPE {name}_{label} gauge");
            let _ = writeln!(out, "{name}_{label} {bound}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::HistogramSnapshot;

    #[test]
    fn request_parsing_and_queries() {
        let r = parse_request("GET /trace?steps=20&raw HTTP/1.1\r\nHost: x\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/trace");
        assert_eq!(r.query_u64("steps"), Some(20));
        assert_eq!(r.query("raw"), Some(""));
        assert_eq!(r.query("missing"), None);
        assert!(r.body.is_empty());

        let r = parse_request("DELETE /sessions/17 HTTP/1.1\r\n").unwrap();
        assert_eq!(r.method, "DELETE");
        assert_eq!(r.segments(), vec!["sessions", "17"]);

        assert!(parse_request("").is_err());
        assert!(parse_request("GET\r\n").is_err());
        assert!(parse_request("GET /x SPDY/3\r\n").is_err());
        assert!(parse_request("GET relative HTTP/1.1\r\n").is_err());
        assert!(parse_request("GET /a /b HTTP/1.1\r\n").is_err());
        let post = parse_request("POST /metrics HTTP/1.1\r\n").unwrap();
        assert_eq!(post.method, "POST");
    }

    #[test]
    fn content_length_header_is_case_insensitive() {
        let head = "POST /x HTTP/1.1\r\nHost: a\r\ncontent-LENGTH: 12\r\n";
        assert_eq!(content_length(head).unwrap(), Some(12));
        assert_eq!(content_length("GET /x HTTP/1.1\r\n").unwrap(), None);
        assert!(content_length("POST /x HTTP/1.1\r\nContent-Length: nope\r\n").is_err());
    }

    #[test]
    fn head_end_detection_resumes_across_chunks() {
        // Replay read_head's incremental scan for every possible chunk
        // boundary: scan the first chunk from 0; if the terminator is
        // not there yet, resume 3 bytes back — a terminator split across
        // the boundary must still be found, at the same position a full
        // rescan would report.
        let full = b"GET / HTTP/1.1\r\nHost: x\r\n\r\nBODY";
        let expected = find_head_end(full, 0).expect("terminator present");
        assert_eq!(&full[expected.1..], b"BODY");
        assert_eq!(expected.0, expected.1 - 4);
        for cut in 1..full.len() {
            match find_head_end(&full[..cut], 0) {
                Some(found) => assert_eq!(found, expected, "cut at {cut}"),
                None => {
                    let resumed = find_head_end(full, cut.saturating_sub(3))
                        .unwrap_or_else(|| panic!("resume missed terminator at cut {cut}"));
                    assert_eq!(resumed, expected, "cut at {cut}");
                }
            }
        }
        // Bare \n\n is accepted too.
        let text = b"GET / HTTP/1.1\nHost: x\n\nrest";
        let (he, bs) = find_head_end(text, 0).unwrap();
        assert_eq!(&text[bs..], b"rest");
        assert_eq!(he, bs - 2);
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\nHost", 0), None);
    }

    #[test]
    fn metric_name_sanitizer_always_lints_clean() {
        for raw in [
            "physics.steps",
            "physics.executor.worker3.busy_ns",
            "telemetry.spans_dropped",
            "Weird Name-1.0",
            "9starts.with.digit",
            "",
        ] {
            let s = sanitize_metric_name(raw);
            assert!(is_valid_metric_name(&s), "{raw:?} -> {s:?}");
        }
        assert_eq!(sanitize_metric_name("physics.steps"), "physics_steps");
        assert_eq!(sanitize_metric_name("9x"), "_9x");
        assert!(!is_valid_metric_name("0abc"));
        assert!(!is_valid_metric_name("has space"));
        assert!(!is_valid_metric_name(""));
    }

    #[test]
    fn prometheus_histogram_buckets_are_cumulative() {
        let mut buckets = vec![0u64; HIST_BUCKETS];
        buckets[0] = 2; // zeros
        buckets[3] = 5; // values 4..8
        let snap = Snapshot {
            counters: vec![("c.total".into(), 7)],
            gauges: vec![("g.now".into(), 3)],
            histograms: vec![("h.ns".into(), HistogramSnapshot { buckets, sum: 25 })],
        };
        let text = prometheus_text(&snap);
        assert!(
            text.contains("# TYPE c_total counter\nc_total 7\n"),
            "{text}"
        );
        assert!(text.contains("# TYPE g_now gauge\ng_now 3\n"), "{text}");
        assert!(text.contains("h_ns_bucket{le=\"0\"} 2"), "{text}");
        assert!(text.contains("h_ns_bucket{le=\"7\"} 7"), "{text}");
        assert!(text.contains("h_ns_bucket{le=\"+Inf\"} 7"), "{text}");
        assert!(text.contains("h_ns_sum 25"), "{text}");
        assert!(text.contains("h_ns_count 7"), "{text}");
        // Summary gauges share the histogram CDF.
        assert!(text.contains("h_ns_p50 7"), "{text}");
        assert!(text.contains("h_ns_p99 7"), "{text}");
        // Every exposed name lints.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let name = line.split([' ', '{']).next().unwrap();
            assert!(is_valid_metric_name(name), "{name:?} in {line:?}");
        }
    }

    /// Routes GETs at `/ok`, echoes POST bodies at `/echo`, 405s
    /// everything else — the method policy the real facades implement.
    fn test_server(options: ServerOptions) -> HttpServer {
        HttpServer::serve_with("127.0.0.1:0", options, |req| {
            match (req.method.as_str(), req.path.as_str()) {
                ("GET", "/ok") => Response::ok(
                    "text/plain",
                    format!("n={}", req.query_u64("n").unwrap_or(0)),
                ),
                ("POST", "/echo") => {
                    Response::ok_bytes("application/octet-stream", req.body.clone())
                }
                ("GET" | "POST", p) => Response::not_found(p),
                (m, _) => Response::method_not_allowed(m, "GET, POST"),
            }
        })
        .expect("bind")
    }

    #[test]
    fn server_routes_posts_and_rejects() {
        let server = test_server(ServerOptions::default());
        let addr = server.addr();
        let (status, body) = http_get(addr, "/ok?n=42").unwrap();
        assert_eq!((status, body.as_str()), (200, "n=42"));
        let (status, _) = http_get(addr, "/nope").unwrap();
        assert_eq!(status, 404);

        // POST with a binary body round-trips through Content-Length.
        let payload: Vec<u8> = (0..=255u8).cycle().take(70_000).collect();
        let (status, echoed) =
            http_request(addr, "POST", "/echo", "application/octet-stream", &payload).unwrap();
        assert_eq!(status, 200);
        assert_eq!(echoed, payload);

        // Malformed request line → 400; unrouted method → 405 from the
        // handler; never a panic.
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"BOGUS\r\n\r\n").unwrap();
        let mut resp = String::new();
        s.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
        let (status, _) = http_request(addr, "PATCH", "/ok", "", &[]).unwrap();
        assert_eq!(status, 405);

        // The server keeps serving after bad requests.
        let (status, _) = http_get(addr, "/ok").unwrap();
        assert_eq!(status, 200);
    }

    #[test]
    fn large_head_is_linear_and_bounded() {
        let server = test_server(ServerOptions::default());
        let addr = server.addr();

        // A legitimate large head (many cookie-sized headers, just under
        // the cap) parses fine; the resumable scan makes this O(n).
        let mut head = String::from("GET /ok?n=7 HTTP/1.1\r\nHost: x\r\n");
        while head.len() < 12 * 1024 {
            head.push_str("X-Padding: ");
            head.push_str(&"v".repeat(100));
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(head.as_bytes()).unwrap();
        let mut resp = String::new();
        s.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.1 200"), "{:.64}", resp);
        assert!(resp.ends_with("n=7"), "{:.64}", resp);

        // Over the cap → 400, connection not hung.
        let mut s = TcpStream::connect(addr).unwrap();
        let oversized = format!("GET /ok HTTP/1.1\r\nX-Big: {}\r\n", "y".repeat(20 * 1024));
        let _ = s.write_all(oversized.as_bytes()); // server may close mid-write

        // The server closes with client bytes still unread, so the 400
        // can be lost to a TCP reset — tolerate that, but if a response
        // arrives it must be the size complaint, and either way the
        // server must keep serving.
        let mut resp = String::new();
        let _ = s.read_to_string(&mut resp);
        if !resp.is_empty() {
            assert!(resp.starts_with("HTTP/1.1 400"), "{:.64}", resp);
            assert!(resp.contains("too large"), "{resp}");
        }
        let (status, _) = http_get(addr, "/ok").unwrap();
        assert_eq!(status, 200);
    }

    #[test]
    fn truncated_head_gets_a_distinct_400() {
        let server = test_server(ServerOptions::default());
        // A client that closes mid-head must get "truncated request",
        // not have its half request handed to the parser.
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.write_all(b"GET /ok HTTP/1.1\r\nHost: x\r\n").unwrap();
        s.shutdown(std::net::Shutdown::Write).unwrap();
        let mut resp = String::new();
        s.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
        assert!(resp.contains("truncated request"), "{resp}");

        // Same for a body shorter than its Content-Length.
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.write_all(b"POST /echo HTTP/1.1\r\nContent-Length: 100\r\n\r\nonly this")
            .unwrap();
        s.shutdown(std::net::Shutdown::Write).unwrap();
        let mut resp = String::new();
        s.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
        assert!(resp.contains("truncated request"), "{resp}");
    }

    #[test]
    fn slowloris_is_cut_at_the_wall_deadline() {
        let server = test_server(ServerOptions {
            deadline: Duration::from_millis(600),
            ..ServerOptions::default()
        });
        // Dribble one byte at a time, each within the idle timeout: the
        // per-read timeout never fires, but the wall deadline must.
        let start = Instant::now();
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut resp = String::new();
        for b in b"GET /ok HT" {
            if s.write_all(&[*b]).is_err() {
                break; // server already gave up on us
            }
            std::thread::sleep(Duration::from_millis(120));
        }
        let _ = s.read_to_string(&mut resp);
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "dribbling client held the connection {:?}",
            start.elapsed()
        );
        if !resp.is_empty() {
            assert!(resp.starts_with("HTTP/1.1 408"), "{resp}");
        }
    }

    #[test]
    fn stalled_client_does_not_block_others() {
        let server = test_server(ServerOptions::default());
        let addr = server.addr();
        // Open connections that send nothing and hold them; with the
        // worker pool the next real request still completes promptly.
        let stalled: Vec<TcpStream> = (0..2).map(|_| TcpStream::connect(addr).unwrap()).collect();
        let start = Instant::now();
        let (status, body) = http_get(addr, "/ok?n=9").unwrap();
        assert_eq!((status, body.as_str()), (200, "n=9"));
        assert!(
            start.elapsed() < Duration::from_millis(1500),
            "request behind stalled clients took {:?}",
            start.elapsed()
        );
        drop(stalled);
    }

    #[test]
    fn drop_joins_all_threads_promptly() {
        let server = test_server(ServerOptions::default());
        let addr = server.addr();
        let _stalled = TcpStream::connect(addr).unwrap();
        let start = Instant::now();
        drop(server);
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "shutdown took {:?}",
            start.elapsed()
        );
        // The port is released: nothing accepts anymore.
        assert!(http_get(addr, "/ok").is_err());
    }
}
