//! Minimal HTTP/1.1 plumbing and Prometheus text encoding for the live
//! telemetry exporter.
//!
//! The workspace builds with no registry access, so the exporter is
//! hand-rolled on `std::net` the same way the JSON layer is hand-rolled
//! on `std::fmt`: [`HttpServer`] is a background accept loop that parses
//! one `GET` request per connection and hands it to a route handler;
//! [`prometheus_text`] renders a [`Snapshot`] in Prometheus text
//! exposition format v0.0.4 (counters, gauges, and the log2 histograms
//! as cumulative `_bucket`/`_sum`/`_count` series). Routing policy —
//! what lives at `/metrics`, `/trace`, `/steps`, `/health` — belongs to
//! the `parallax-observe` facade crate, not here.
//!
//! Connections are handled serially on the server thread with short
//! read/write timeouts: a scrape every 250 ms is three orders of
//! magnitude below what a serial loop sustains, and no thread is ever
//! spawned per connection, so a misbehaving client can delay scrapes but
//! never exhaust the process.

use std::fmt::Write as _;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::registry::{bucket_bounds, Snapshot, HIST_BUCKETS, SUMMARY_QUANTILES};

/// Most bytes of request head the server reads before answering 400.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// Per-connection socket timeout: a client that stalls longer forfeits
/// its response (the server moves on to the next connection).
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// A parsed HTTP request line: method, path, and query pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method (`GET` for every route the exporter serves).
    pub method: String,
    /// Decoded path, query stripped (e.g. `/trace`).
    pub path: String,
    /// Query pairs in source order (`?steps=20` → `[("steps", "20")]`).
    pub query: Vec<(String, String)>,
}

impl Request {
    /// First value of a query key.
    pub fn query(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// First value of a query key parsed as `u64`.
    pub fn query_u64(&self, key: &str) -> Option<u64> {
        self.query(key).and_then(|v| v.parse().ok())
    }
}

/// An HTTP response ready to serialize.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code (`200`, `400`, `404`, `405`).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl Response {
    /// A `200 OK` with the given content type.
    pub fn ok(content_type: &'static str, body: String) -> Response {
        Response {
            status: 200,
            content_type,
            body,
        }
    }

    /// A `400 Bad Request` with a plain-text reason.
    pub fn bad_request(reason: &str) -> Response {
        Response {
            status: 400,
            content_type: "text/plain; charset=utf-8",
            body: format!("bad request: {reason}\n"),
        }
    }

    /// A `404 Not Found` naming the missing path.
    pub fn not_found(path: &str) -> Response {
        Response {
            status: 404,
            content_type: "text/plain; charset=utf-8",
            body: format!("no such endpoint: {path}\n"),
        }
    }

    /// A `405 Method Not Allowed` (every exporter route is `GET`).
    pub fn method_not_allowed(method: &str) -> Response {
        Response {
            status: 405,
            content_type: "text/plain; charset=utf-8",
            body: format!("method {method} not allowed; use GET\n"),
        }
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            _ => "Error",
        }
    }

    fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(self.body.as_bytes())?;
        stream.flush()
    }
}

/// Parses the request head (everything through the blank line) into a
/// [`Request`]. Anything that is not a well-formed `<METHOD> <target>
/// HTTP/1.x` request line is an error — the caller answers 400.
pub fn parse_request(head: &str) -> Result<Request, String> {
    let line = head.lines().next().ok_or("empty request")?;
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or("missing method")?;
    let target = parts.next().ok_or("missing request target")?;
    let version = parts.next().ok_or("missing HTTP version")?;
    if !version.starts_with("HTTP/1.") {
        return Err(format!("unsupported protocol {version:?}"));
    }
    if parts.next().is_some() {
        return Err("malformed request line".to_string());
    }
    if !target.starts_with('/') {
        return Err(format!("bad request target {target:?}"));
    }
    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query = query_str
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (kv.to_string(), String::new()),
        })
        .collect();
    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        query,
    })
}

/// A background HTTP server bound to a local address.
///
/// Dropping the handle shuts the accept loop down (it is woken with a
/// loopback connection) and joins the thread.
pub struct HttpServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl HttpServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and serves
    /// `handler` on a background thread. The handler only sees
    /// well-formed `GET` requests; 400/405 are answered before routing.
    pub fn serve(
        addr: impl ToSocketAddrs,
        handler: impl Fn(&Request) -> Response + Send + 'static,
    ) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let thread = std::thread::Builder::new()
            .name("telemetry-http".to_string())
            .spawn(move || accept_loop(&listener, &flag, handler))?;
        Ok(HttpServer {
            addr,
            shutdown,
            thread: Some(thread),
        })
    }

    /// The bound address (resolves the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, IO_TIMEOUT);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl std::fmt::Debug for HttpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpServer")
            .field("addr", &self.addr)
            .finish()
    }
}

fn accept_loop(
    listener: &TcpListener,
    shutdown: &AtomicBool,
    handler: impl Fn(&Request) -> Response,
) {
    for stream in listener.incoming() {
        if shutdown.load(Ordering::Acquire) {
            return;
        }
        let Ok(mut stream) = stream else { continue };
        let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
        let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
        let response = match read_head(&mut stream) {
            Ok(head) => match parse_request(&head) {
                Ok(req) if req.method != "GET" => Response::method_not_allowed(&req.method),
                Ok(req) => handler(&req),
                Err(e) => Response::bad_request(&e),
            },
            Err(e) => Response::bad_request(&e),
        };
        let _ = response.write_to(&mut stream);
    }
}

/// Reads the request head (through `\r\n\r\n`), bounded by
/// [`MAX_REQUEST_BYTES`].
fn read_head(stream: &mut TcpStream) -> Result<String, String> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        let n = stream.read(&mut chunk).map_err(|e| e.to_string())?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.windows(2).any(|w| w == b"\n\n") {
            break;
        }
        if buf.len() > MAX_REQUEST_BYTES {
            return Err("request head too large".to_string());
        }
    }
    String::from_utf8(buf).map_err(|_| "request is not UTF-8".to_string())
}

/// Blocking HTTP GET against a local exporter: returns `(status, body)`.
/// Used by the soak harness's scraper thread and the exporter tests; not
/// a general client (no TLS, no redirects, no chunked decoding).
pub fn http_get(addr: SocketAddr, path: &str) -> Result<(u16, String), String> {
    let mut stream = TcpStream::connect_timeout(&addr, IO_TIMEOUT).map_err(|e| e.to_string())?;
    stream
        .set_read_timeout(Some(IO_TIMEOUT))
        .map_err(|e| e.to_string())?;
    stream
        .set_write_timeout(Some(IO_TIMEOUT))
        .map_err(|e| e.to_string())?;
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: parallax\r\nConnection: close\r\n\r\n")
                .as_bytes(),
        )
        .map_err(|e| e.to_string())?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw).map_err(|e| e.to_string())?;
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed response: {raw:.80?}"))?;
    let body = match raw.find("\r\n\r\n") {
        Some(i) => raw[i + 4..].to_string(),
        None => String::new(),
    };
    Ok((status, body))
}

/// Whether `name` is a legal Prometheus metric name
/// (`[a-z_][a-z0-9_]*` — the exporter's lint; upstream Prometheus also
/// allows uppercase and `:`, which this workspace never emits).
pub fn is_valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_lowercase() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}

/// Maps a registry metric name (`physics.executor.worker0.busy_ns`) to a
/// Prometheus-legal one (`physics_executor_worker0_busy_ns`): lowercase,
/// every other character folded to `_`, `_` prefixed when the first
/// character is a digit.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for c in name.chars() {
        match c {
            'a'..='z' | '0'..='9' | '_' => out.push(c),
            'A'..='Z' => out.push(c.to_ascii_lowercase()),
            _ => out.push('_'),
        }
    }
    if out.is_empty() || out.starts_with(|c: char| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Renders a [`Snapshot`] in Prometheus text exposition format v0.0.4.
///
/// * Counters and gauges are one sample each under their sanitized name.
/// * Each log2 histogram becomes a cumulative `_bucket` series (one
///   sample per populated power-of-two upper bound plus `le="+Inf"`),
///   `_sum`, and `_count` — the standard encoding Prometheus computes
///   quantiles from server-side.
/// * The [`SUMMARY_QUANTILES`] upper bounds are additionally exported as
///   `<name>_p50`/`_p95`/`_p99` gauges so a bare `curl` shows the same
///   numbers as the `telemetry_report` tables without a PromQL engine.
pub fn prometheus_text(snap: &Snapshot) -> String {
    let mut out = String::with_capacity(4096);
    for (name, v) in &snap.counters {
        let name = sanitize_metric_name(name);
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {v}");
    }
    for (name, v) in &snap.gauges {
        let name = sanitize_metric_name(name);
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {v}");
    }
    for (name, h) in &snap.histograms {
        let name = sanitize_metric_name(name);
        let _ = writeln!(out, "# TYPE {name} histogram");
        let last = h.buckets.iter().rposition(|&c| c > 0).unwrap_or(0);
        let mut cumulative = 0u64;
        for (b, &c) in h.buckets.iter().enumerate().take(last + 1) {
            cumulative += c;
            if c == 0 && b != last {
                continue; // empty buckets add nothing; cumulative still counts
            }
            let le = bucket_bounds(b).1;
            if b == HIST_BUCKETS - 1 {
                break; // the clamped open-ended bucket is the +Inf sample
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let count = h.count();
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {count}");
        let _ = writeln!(out, "{name}_sum {}", h.sum);
        let _ = writeln!(out, "{name}_count {count}");
        for ((_, label), bound) in SUMMARY_QUANTILES.iter().zip(h.summary_quantiles()) {
            let _ = writeln!(out, "# TYPE {name}_{label} gauge");
            let _ = writeln!(out, "{name}_{label} {bound}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::HistogramSnapshot;

    #[test]
    fn request_parsing_and_queries() {
        let r = parse_request("GET /trace?steps=20&raw HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/trace");
        assert_eq!(r.query_u64("steps"), Some(20));
        assert_eq!(r.query("raw"), Some(""));
        assert_eq!(r.query("missing"), None);

        assert!(parse_request("").is_err());
        assert!(parse_request("GET\r\n").is_err());
        assert!(parse_request("GET /x SPDY/3\r\n").is_err());
        assert!(parse_request("GET relative HTTP/1.1\r\n").is_err());
        assert!(parse_request("GET /a /b HTTP/1.1\r\n").is_err());
        let post = parse_request("POST /metrics HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(post.method, "POST");
    }

    #[test]
    fn metric_name_sanitizer_always_lints_clean() {
        for raw in [
            "physics.steps",
            "physics.executor.worker3.busy_ns",
            "telemetry.spans_dropped",
            "Weird Name-1.0",
            "9starts.with.digit",
            "",
        ] {
            let s = sanitize_metric_name(raw);
            assert!(is_valid_metric_name(&s), "{raw:?} -> {s:?}");
        }
        assert_eq!(sanitize_metric_name("physics.steps"), "physics_steps");
        assert_eq!(sanitize_metric_name("9x"), "_9x");
        assert!(!is_valid_metric_name("0abc"));
        assert!(!is_valid_metric_name("has space"));
        assert!(!is_valid_metric_name(""));
    }

    #[test]
    fn prometheus_histogram_buckets_are_cumulative() {
        let mut buckets = vec![0u64; HIST_BUCKETS];
        buckets[0] = 2; // zeros
        buckets[3] = 5; // values 4..8
        let snap = Snapshot {
            counters: vec![("c.total".into(), 7)],
            gauges: vec![("g.now".into(), 3)],
            histograms: vec![("h.ns".into(), HistogramSnapshot { buckets, sum: 25 })],
        };
        let text = prometheus_text(&snap);
        assert!(
            text.contains("# TYPE c_total counter\nc_total 7\n"),
            "{text}"
        );
        assert!(text.contains("# TYPE g_now gauge\ng_now 3\n"), "{text}");
        assert!(text.contains("h_ns_bucket{le=\"0\"} 2"), "{text}");
        assert!(text.contains("h_ns_bucket{le=\"7\"} 7"), "{text}");
        assert!(text.contains("h_ns_bucket{le=\"+Inf\"} 7"), "{text}");
        assert!(text.contains("h_ns_sum 25"), "{text}");
        assert!(text.contains("h_ns_count 7"), "{text}");
        // Summary gauges share the histogram CDF.
        assert!(text.contains("h_ns_p50 7"), "{text}");
        assert!(text.contains("h_ns_p99 7"), "{text}");
        // Every exposed name lints.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let name = line.split([' ', '{']).next().unwrap();
            assert!(is_valid_metric_name(name), "{name:?} in {line:?}");
        }
    }

    #[test]
    fn server_routes_and_rejects() {
        let server = HttpServer::serve("127.0.0.1:0", |req| match req.path.as_str() {
            "/ok" => Response::ok(
                "text/plain",
                format!("n={}", req.query_u64("n").unwrap_or(0)),
            ),
            p => Response::not_found(p),
        })
        .expect("bind");
        let addr = server.addr();
        let (status, body) = http_get(addr, "/ok?n=42").unwrap();
        assert_eq!((status, body.as_str()), (200, "n=42"));
        let (status, _) = http_get(addr, "/nope").unwrap();
        assert_eq!(status, 404);

        // Malformed request line → 400; non-GET → 405; never a panic.
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"BOGUS\r\n\r\n").unwrap();
        let mut resp = String::new();
        s.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"POST /ok HTTP/1.1\r\n\r\n").unwrap();
        let mut resp = String::new();
        s.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.1 405"), "{resp}");

        // The server keeps serving after bad requests.
        let (status, _) = http_get(addr, "/ok").unwrap();
        assert_eq!(status, 200);
    }
}
