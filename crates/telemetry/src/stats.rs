//! Dependency-free robust statistics for the regression gate.
//!
//! Wall-time samples from the step pipeline are heavy-tailed (page
//! faults, scheduler preemption, allocator warm-up), so the gate never
//! reasons about means and standard deviations. Everything here is built
//! from order statistics instead:
//!
//! * [`trim_warmup`] — drop the warm-up prefix of a sample series,
//! * [`median`] / [`mad`] / [`summarize`] — robust location and spread,
//! * [`bootstrap_median_ci`] — a percentile-bootstrap confidence
//!   interval for the median, driven by a deterministic [`SplitMix64`]
//!   generator so the same inputs always yield the same interval,
//! * [`compare`] — the noise-aware two-sample verdict the `bench_gate`
//!   binary gates on: *slower* / *faster* only when the whole bootstrap
//!   confidence interval of the relative median change clears a
//!   threshold, *indistinguishable* otherwise.
//!
//! No RNG crate, no float formatting crate, no allocation beyond the
//! scratch vectors: the module must stay usable from the `off`-feature
//! no-op build of the crate and from the vendored-shim workspace.

/// Deterministic 64-bit generator (Steele et al.'s SplitMix64).
///
/// Used for bootstrap resampling: quality is far beyond what resampling
/// needs, state is one `u64`, and the stream is fully determined by the
/// seed — re-running a comparison can never flip its verdict.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform index in `[0, n)`. `n` must be nonzero. The modulo bias
    /// is below 2^-50 for any sample count the gate sees.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// Drops the first `warmup` samples (allocator/cache warm-up steps).
/// Returns an empty slice when fewer than `warmup` samples exist.
pub fn trim_warmup(samples: &[f64], warmup: usize) -> &[f64] {
    samples.get(warmup..).unwrap_or(&[])
}

/// Median of a sample set (`None` when empty). Non-finite samples are
/// ignored; the caller detects them separately if they matter.
pub fn median(samples: &[f64]) -> Option<f64> {
    let mut xs: Vec<f64> = samples.iter().copied().filter(|x| x.is_finite()).collect();
    if xs.is_empty() {
        return None;
    }
    xs.sort_by(f64::total_cmp);
    let n = xs.len();
    Some(if n % 2 == 1 {
        xs[n / 2]
    } else {
        0.5 * (xs[n / 2 - 1] + xs[n / 2])
    })
}

/// Median absolute deviation around the median (`None` when empty).
/// The robust analogue of the standard deviation: immune to any
/// minority of outlier steps.
pub fn mad(samples: &[f64]) -> Option<f64> {
    let m = median(samples)?;
    let dev: Vec<f64> = samples
        .iter()
        .filter(|x| x.is_finite())
        .map(|x| (x - m).abs())
        .collect();
    median(&dev)
}

/// Robust five-number summary of a sample series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Finite samples summarized.
    pub count: usize,
    /// Median.
    pub median: f64,
    /// Median absolute deviation.
    pub mad: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

/// Summarizes a series (`None` when no finite sample exists).
pub fn summarize(samples: &[f64]) -> Option<Summary> {
    let finite: Vec<f64> = samples.iter().copied().filter(|x| x.is_finite()).collect();
    let med = median(&finite)?;
    let mad = mad(&finite)?;
    let min = finite.iter().copied().fold(f64::INFINITY, f64::min);
    let max = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    Some(Summary {
        count: finite.len(),
        median: med,
        mad,
        min,
        max,
    })
}

/// Bootstrap parameters. The defaults (400 resamples, 95% interval,
/// fixed seed) are what `bench_gate` uses.
#[derive(Debug, Clone, Copy)]
pub struct BootstrapConfig {
    /// Bootstrap resamples drawn.
    pub resamples: usize,
    /// Two-sided miscoverage: the interval spans quantiles
    /// `[alpha/2, 1 - alpha/2]` of the bootstrap distribution.
    pub alpha: f64,
    /// Generator seed; fixed so verdicts are reproducible.
    pub seed: u64,
}

impl Default for BootstrapConfig {
    fn default() -> Self {
        BootstrapConfig {
            resamples: 400,
            alpha: 0.05,
            seed: 0x5EED_BA5E_0BAD_CAFE,
        }
    }
}

/// Nearest-rank quantile of an already sorted slice.
fn sorted_quantile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let n = sorted.len();
    let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

/// Resamples `samples` with replacement and returns the resample median.
fn resample_median(samples: &[f64], scratch: &mut Vec<f64>, rng: &mut SplitMix64) -> f64 {
    scratch.clear();
    for _ in 0..samples.len() {
        scratch.push(samples[rng.index(samples.len())]);
    }
    scratch.sort_by(f64::total_cmp);
    let n = scratch.len();
    if n % 2 == 1 {
        scratch[n / 2]
    } else {
        0.5 * (scratch[n / 2 - 1] + scratch[n / 2])
    }
}

/// Percentile-bootstrap confidence interval for the median (`None` when
/// the series has no finite sample). Deterministic for a given
/// `(samples, config)` pair.
pub fn bootstrap_median_ci(samples: &[f64], cfg: &BootstrapConfig) -> Option<(f64, f64)> {
    let finite: Vec<f64> = samples.iter().copied().filter(|x| x.is_finite()).collect();
    if finite.is_empty() {
        return None;
    }
    let mut rng = SplitMix64::new(cfg.seed);
    let mut scratch = Vec::with_capacity(finite.len());
    let mut medians: Vec<f64> = (0..cfg.resamples.max(1))
        .map(|_| resample_median(&finite, &mut scratch, &mut rng))
        .collect();
    medians.sort_by(f64::total_cmp);
    Some((
        sorted_quantile(&medians, cfg.alpha / 2.0),
        sorted_quantile(&medians, 1.0 - cfg.alpha / 2.0),
    ))
}

/// The outcome of a two-sample comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The candidate's median is significantly below the baseline's
    /// (the whole interval clears `-threshold`).
    Faster,
    /// The confidence interval straddles the threshold band: any
    /// difference is within noise at this threshold.
    Indistinguishable,
    /// The candidate's median is significantly above the baseline's
    /// (the whole interval clears `+threshold`) — a regression when the
    /// metric is a cost.
    Slower,
}

impl Verdict {
    /// Display label used by the gate's report table.
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Faster => "faster",
            Verdict::Indistinguishable => "~same",
            Verdict::Slower => "SLOWER",
        }
    }
}

/// A two-sample comparison result: point estimates plus the bootstrap
/// interval of the relative change the verdict was derived from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Comparison {
    /// Verdict at the requested threshold.
    pub verdict: Verdict,
    /// Baseline median.
    pub base_median: f64,
    /// Candidate median.
    pub cand_median: f64,
    /// Point estimate of the relative change
    /// (`(cand - base) / base`; 0.10 = 10% slower).
    pub rel_change: f64,
    /// Bootstrap confidence interval of the relative change.
    pub ci: (f64, f64),
}

/// Noise-aware comparison of a candidate sample series against a
/// baseline series (`None` when either side has no finite sample).
///
/// For each bootstrap round both series are independently resampled and
/// the relative difference of the resample medians is recorded; the
/// verdict is [`Verdict::Slower`] / [`Verdict::Faster`] only when the
/// *entire* `1 - alpha` interval of that distribution lies beyond
/// `threshold` (e.g. `0.25` = 25%). Unequal sample counts are fine —
/// each series is resampled at its own length.
pub fn compare(
    baseline: &[f64],
    candidate: &[f64],
    threshold: f64,
    cfg: &BootstrapConfig,
) -> Option<Comparison> {
    let base: Vec<f64> = baseline.iter().copied().filter(|x| x.is_finite()).collect();
    let cand: Vec<f64> = candidate
        .iter()
        .copied()
        .filter(|x| x.is_finite())
        .collect();
    let base_median = median(&base)?;
    let cand_median = median(&cand)?;
    // Wall times are nanoseconds; a sub-nanosecond median means the
    // phase did nothing and relative change is meaningless noise.
    let floor = 1.0;
    let rel = |b: f64, c: f64| (c - b) / b.max(floor);

    let mut rng = SplitMix64::new(cfg.seed);
    let mut scratch = Vec::with_capacity(base.len().max(cand.len()));
    let mut diffs: Vec<f64> = (0..cfg.resamples.max(1))
        .map(|_| {
            let b = resample_median(&base, &mut scratch, &mut rng);
            let c = resample_median(&cand, &mut scratch, &mut rng);
            rel(b, c)
        })
        .collect();
    diffs.sort_by(f64::total_cmp);
    let ci = (
        sorted_quantile(&diffs, cfg.alpha / 2.0),
        sorted_quantile(&diffs, 1.0 - cfg.alpha / 2.0),
    );
    let threshold = threshold.abs();
    let verdict = if ci.0 > threshold {
        Verdict::Slower
    } else if ci.1 < -threshold {
        Verdict::Faster
    } else {
        Verdict::Indistinguishable
    };
    Some(Comparison {
        verdict,
        base_median,
        cand_median,
        rel_change: rel(base_median, cand_median),
        ci,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic synthetic series centered on `center` with ±10%
    /// jitter and a couple of 3x outliers (the shape of real step walls).
    fn series(center: f64, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|i| {
                let jitter = (rng.next_u64() % 2000) as f64 / 10_000.0 - 0.1;
                let outlier = if i % 17 == 16 { 3.0 } else { 1.0 };
                center * (1.0 + jitter) * outlier
            })
            .collect()
    }

    #[test]
    fn median_and_mad_are_robust_to_outliers() {
        let xs = [10.0, 11.0, 9.0, 10.5, 9.5, 1_000_000.0];
        let m = median(&xs).unwrap();
        assert!((9.0..=11.0).contains(&m), "median {m}");
        let d = mad(&xs).unwrap();
        assert!(d < 2.0, "mad {d}");
        assert_eq!(median(&[]), None);
        assert_eq!(mad(&[]), None);
    }

    #[test]
    fn median_handles_even_and_odd_counts() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
        assert_eq!(median(&[f64::NAN, 5.0]), Some(5.0), "NaN ignored");
    }

    #[test]
    fn trim_warmup_drops_prefix() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(trim_warmup(&xs, 2), &[3.0, 4.0]);
        assert_eq!(trim_warmup(&xs, 0), &xs);
        assert!(trim_warmup(&xs, 9).is_empty());
    }

    #[test]
    fn summarize_reports_extremes() {
        let s = summarize(&[2.0, 8.0, 4.0]).unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(s.median, 4.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 8.0);
        assert!(summarize(&[f64::NAN]).is_none());
    }

    #[test]
    fn bootstrap_is_deterministic() {
        let xs = series(1000.0, 60, 7);
        let cfg = BootstrapConfig::default();
        let a = bootstrap_median_ci(&xs, &cfg).unwrap();
        let b = bootstrap_median_ci(&xs, &cfg).unwrap();
        assert_eq!(a, b, "same samples + config must give the same CI");
        let c = compare(&xs, &series(1000.0, 60, 8), 0.25, &cfg).unwrap();
        let d = compare(&xs, &series(1000.0, 60, 8), 0.25, &cfg).unwrap();
        assert_eq!(c, d, "verdicts must be reproducible");
    }

    #[test]
    fn bootstrap_ci_brackets_the_median() {
        let xs = series(1000.0, 80, 3);
        let (lo, hi) = bootstrap_median_ci(&xs, &BootstrapConfig::default()).unwrap();
        let m = median(&xs).unwrap();
        assert!(lo <= m && m <= hi, "median {m} outside CI [{lo}, {hi}]");
        assert!(lo > 500.0 && hi < 2000.0, "CI [{lo}, {hi}] too wide");
    }

    #[test]
    fn verdicts_on_synthetic_distributions() {
        let cfg = BootstrapConfig::default();
        let base = series(1000.0, 60, 11);

        let doubled = series(2000.0, 60, 12);
        let v = compare(&base, &doubled, 0.25, &cfg).unwrap();
        assert_eq!(v.verdict, Verdict::Slower, "{v:?}");
        assert!(v.rel_change > 0.5, "{v:?}");

        let halved = series(500.0, 60, 13);
        let v = compare(&base, &halved, 0.25, &cfg).unwrap();
        assert_eq!(v.verdict, Verdict::Faster, "{v:?}");

        let same = series(1000.0, 60, 14);
        let v = compare(&base, &same, 0.25, &cfg).unwrap();
        assert_eq!(v.verdict, Verdict::Indistinguishable, "{v:?}");

        // A 30% shift must NOT clear a 100% threshold (the --quick band).
        let shifted = series(1300.0, 60, 15);
        let v = compare(&base, &shifted, 1.0, &cfg).unwrap();
        assert_eq!(v.verdict, Verdict::Indistinguishable, "{v:?}");
    }

    #[test]
    fn compare_handles_empty_and_degenerate_input() {
        let cfg = BootstrapConfig::default();
        assert!(compare(&[], &[1.0], 0.1, &cfg).is_none());
        assert!(compare(&[1.0], &[], 0.1, &cfg).is_none());
        // Identical constant series: exactly zero change, never flagged.
        let v = compare(&[5.0; 10], &[5.0; 10], 0.01, &cfg).unwrap();
        assert_eq!(v.verdict, Verdict::Indistinguishable);
        assert_eq!(v.rel_change, 0.0);
    }
}
