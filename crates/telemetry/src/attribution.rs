//! Critical-path attribution: which nanoseconds of a step are serial?
//!
//! The paper's Amdahl framing (Fig 7a) needs more than per-phase walls:
//! a "parallel" phase still spends caller time outside the fork/join
//! region (gathering colliders, writing back caches), and inside the
//! region the wall is set by the slowest worker, not the sum. This
//! module splits every phase of a [`StepRecord`] into three attributable
//! parts using the span rings the executor already fills:
//!
//! * **caller-serial** — phase wall not covered by the parallel region
//!   (`wall − region extent`; the whole wall for phases that never
//!   forked). This is the Amdahl serial term.
//! * **critical path** — the busiest single track inside the region; the
//!   region cannot finish faster than this.
//! * **worker idle** — slack: `Σ (critical − busy(track))` over the
//!   tracks that participated. Zero means perfect balance.
//!
//! The convention that makes the split possible: the pipeline's
//! `timed()` wrapper records a track-0 span named exactly the phase
//! (e.g. `"Narrowphase"`) covering the whole phase, while the executor
//! labels the spans of a parallel region with the phase name plus
//! [`REGION_SUFFIX`] (e.g. `"Narrowphase region"`) on every
//! participating track, caller included. `parallax_physics::probe`
//! asserts the same spelling from its side.

use std::fmt::Write as _;

use crate::export::StepRecord;
use crate::report::fmt_ns;

/// Suffix distinguishing a parallel-region span (`"Narrowphase region"`)
/// from the whole-phase track-0 span (`"Narrowphase"`). Must match
/// `parallax_physics::probe::PhaseKind::region_label`.
pub const REGION_SUFFIX: &str = " region";

/// Gauge: last step's caller-serial nanoseconds (summed over phases).
pub const SERIAL_NS_GAUGE: &str = "telemetry.attribution.caller_serial_ns";
/// Gauge: last step's critical-path nanoseconds (summed over phases).
pub const CRITICAL_NS_GAUGE: &str = "telemetry.attribution.critical_path_ns";
/// Gauge: last step's worker-idle slack nanoseconds (summed over phases).
pub const IDLE_NS_GAUGE: &str = "telemetry.attribution.worker_idle_ns";
/// Gauge: last step's serial fraction in permille (`⌊1000·serial/wall⌋`,
/// integer because gauges are `u64`).
pub const SERIAL_PERMILLE_GAUGE: &str = "telemetry.attribution.serial_permille";

/// One phase of one (or many summed) steps, split three ways.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PhaseAttribution {
    /// Phase name as recorded in `wall_ns`.
    pub phase: String,
    /// Phase wall time.
    pub wall_ns: u64,
    /// Wall not covered by the parallel region (= `wall_ns` when the
    /// phase recorded no region spans).
    pub caller_serial_ns: u64,
    /// Busiest track inside the region (0 when the phase never forked).
    pub critical_path_ns: u64,
    /// Slack: `Σ (critical − busy)` over participating tracks.
    pub worker_idle_ns: u64,
    /// Distinct tracks that recorded region spans (caller included).
    pub tracks: usize,
}

impl PhaseAttribution {
    fn add(&mut self, other: &PhaseAttribution) {
        self.wall_ns += other.wall_ns;
        self.caller_serial_ns += other.caller_serial_ns;
        self.critical_path_ns += other.critical_path_ns;
        self.worker_idle_ns += other.worker_idle_ns;
        self.tracks = self.tracks.max(other.tracks);
    }
}

/// A whole step (or scene aggregate) attributed phase by phase.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StepAttribution {
    /// Per-phase splits in pipeline order.
    pub phases: Vec<PhaseAttribution>,
}

impl StepAttribution {
    /// Total wall across phases.
    pub fn wall_total_ns(&self) -> u64 {
        self.phases.iter().map(|p| p.wall_ns).sum()
    }

    /// Total caller-serial nanoseconds — the Amdahl serial term.
    pub fn serial_total_ns(&self) -> u64 {
        self.phases.iter().map(|p| p.caller_serial_ns).sum()
    }

    /// Total critical-path nanoseconds.
    pub fn critical_total_ns(&self) -> u64 {
        self.phases.iter().map(|p| p.critical_path_ns).sum()
    }

    /// Total worker-idle slack nanoseconds.
    pub fn idle_total_ns(&self) -> u64 {
        self.phases.iter().map(|p| p.worker_idle_ns).sum()
    }

    /// Serial fraction of the wall, in `[0, 1]` (1.0 for an empty step:
    /// nothing measured is indistinguishable from all-serial, and the
    /// conservative answer keeps Amdahl projections honest).
    pub fn serial_fraction(&self) -> f64 {
        let wall = self.wall_total_ns();
        if wall == 0 {
            1.0
        } else {
            self.serial_total_ns() as f64 / wall as f64
        }
    }

    /// Mirrors the top-level split into the live attribution gauges so
    /// `/metrics` exposes it. Uses `set_always`: attribution runs at
    /// drain time, often after recording has been switched off.
    pub fn publish_gauges(&self) {
        crate::registry::gauge(SERIAL_NS_GAUGE).set_always(self.serial_total_ns());
        crate::registry::gauge(CRITICAL_NS_GAUGE).set_always(self.critical_total_ns());
        crate::registry::gauge(IDLE_NS_GAUGE).set_always(self.idle_total_ns());
        crate::registry::gauge(SERIAL_PERMILLE_GAUGE)
            .set_always((self.serial_fraction() * 1000.0) as u64);
    }
}

/// Attributes one step: every `wall_ns` phase is matched against the
/// region spans named `"<phase> region"` (any track).
///
/// The region *extent* — `max(start+dur) − min(start)` over the region's
/// spans — is what gets subtracted from the wall, not the caller span's
/// own duration: the caller's region span ends when its share of the
/// chunks runs out, which can be well before the slowest worker (whom
/// the caller then waits for). The extent covers exactly the interval
/// the region occupied.
pub fn attribute_step(record: &StepRecord) -> StepAttribution {
    let phases = record
        .wall_ns
        .iter()
        .map(|(phase, wall)| {
            let label = format!("{phase}{REGION_SUFFIX}");
            let mut start = u64::MAX;
            let mut end = 0u64;
            // (track, busy) pairs; a handful of tracks, linear scan.
            let mut busy: Vec<(u32, u64)> = Vec::new();
            for s in record.spans.iter().filter(|s| s.name == label) {
                start = start.min(s.start_ns);
                end = end.max(s.start_ns.saturating_add(s.dur_ns));
                match busy.iter_mut().find(|(t, _)| *t == s.track) {
                    Some((_, b)) => *b += s.dur_ns,
                    None => busy.push((s.track, s.dur_ns)),
                }
            }
            let extent = end.saturating_sub(if start == u64::MAX { 0 } else { start });
            let critical = busy.iter().map(|&(_, b)| b).max().unwrap_or(0);
            PhaseAttribution {
                phase: phase.clone(),
                wall_ns: *wall,
                caller_serial_ns: wall.saturating_sub(extent.min(*wall)),
                critical_path_ns: critical,
                worker_idle_ns: busy.iter().map(|&(_, b)| critical - b).sum(),
                tracks: busy.len(),
            }
        })
        .collect();
    StepAttribution { phases }
}

/// Sums [`attribute_step`] over a record set, phase by phase (pipeline
/// order preserved; archsim replay records are skipped — their walls are
/// simulated time with no executor spans behind them).
pub fn aggregate(records: &[StepRecord]) -> StepAttribution {
    let mut order: Vec<String> = Vec::new();
    let mut acc: Vec<PhaseAttribution> = Vec::new();
    for r in records.iter().filter(|r| r.source != "archsim") {
        for p in attribute_step(r).phases {
            match order.iter().position(|n| *n == p.phase) {
                Some(i) => acc[i].add(&p),
                None => {
                    order.push(p.phase.clone());
                    acc.push(p);
                }
            }
        }
    }
    StepAttribution { phases: acc }
}

/// Renders the per-scene Amdahl table: per-phase wall/serial/critical/
/// idle plus the step-level serial fraction and the speedup bound it
/// implies (`1/serial` as worker count → ∞).
pub fn render_critical_path(records: &[StepRecord]) -> String {
    let a = aggregate(records);
    let steps = records.iter().filter(|r| r.source != "archsim").count();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Critical-path attribution — {steps} step(s), span-derived"
    );
    if a.phases.is_empty() {
        let _ = writeln!(out, "  no phase walls recorded");
        return out;
    }
    let _ = writeln!(
        out,
        "  {:<18} {:>12} {:>12} {:>12} {:>12} {:>7}",
        "Phase", "Wall", "Serial", "Critical", "Idle", "Tracks"
    );
    for p in &a.phases {
        let _ = writeln!(
            out,
            "  {:<18} {:>12} {:>12} {:>12} {:>12} {:>7}",
            p.phase,
            fmt_ns(p.wall_ns as f64),
            fmt_ns(p.caller_serial_ns as f64),
            if p.tracks == 0 {
                "-".to_string()
            } else {
                fmt_ns(p.critical_path_ns as f64)
            },
            if p.tracks == 0 {
                "-".to_string()
            } else {
                fmt_ns(p.worker_idle_ns as f64)
            },
            p.tracks
        );
    }
    let _ = writeln!(
        out,
        "  {:<18} {:>12} {:>12}",
        "total",
        fmt_ns(a.wall_total_ns() as f64),
        fmt_ns(a.serial_total_ns() as f64)
    );
    let serial = a.serial_fraction();
    let _ = writeln!(
        out,
        "\n  serial fraction: {serial:.3}  parallel fraction: {:.3}",
        1.0 - serial
    );
    if serial > 0.0 {
        let _ = writeln!(
            out,
            "  Amdahl bound (workers → ∞): {:.2}x max speedup",
            1.0 / serial
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanRecord;

    fn span(name: &str, track: u32, start_ns: u64, dur_ns: u64) -> SpanRecord {
        SpanRecord {
            name: name.to_string(),
            track,
            start_ns,
            dur_ns,
        }
    }

    fn forked_record() -> StepRecord {
        StepRecord {
            source: "physics".into(),
            scene: "t".into(),
            step: 0,
            wall_ns: vec![("Serialish".into(), 1000), ("Par".into(), 1000)],
            metrics: Default::default(),
            spans: vec![
                // Whole-phase track-0 spans (what timed() records) must
                // NOT be mistaken for region spans.
                span("Serialish", 0, 0, 1000),
                span("Par", 0, 1000, 1000),
                // The parallel region: caller finishes early (300),
                // worker 1 is the critical path (800), worker 2 mid.
                span("Par region", 0, 1100, 300),
                span("Par region", 1, 1100, 800),
                span("Par region", 2, 1150, 400),
                // A different phase's region must not leak in.
                span("Other region", 1, 1100, 9999),
            ],
        }
    }

    #[test]
    fn splits_wall_into_serial_critical_idle() {
        let a = attribute_step(&forked_record());
        assert_eq!(a.phases.len(), 2);

        let serialish = &a.phases[0];
        assert_eq!(serialish.caller_serial_ns, 1000, "no region → all serial");
        assert_eq!(serialish.tracks, 0);
        assert_eq!(serialish.critical_path_ns, 0);

        let par = &a.phases[1];
        // extent = max end (1900) − min start (1100) = 800.
        assert_eq!(par.caller_serial_ns, 200);
        assert_eq!(par.critical_path_ns, 800);
        // idle = (800−300) + (800−800) + (800−400).
        assert_eq!(par.worker_idle_ns, 900);
        assert_eq!(par.tracks, 3);

        assert_eq!(a.serial_total_ns(), 1200);
        assert_eq!(a.wall_total_ns(), 2000);
        assert!((a.serial_fraction() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn aggregate_sums_phasewise_and_skips_archsim() {
        let mut replay = forked_record();
        replay.source = "archsim".into();
        let a = aggregate(&[forked_record(), forked_record(), replay]);
        assert_eq!(a.phases.len(), 2);
        assert_eq!(a.phases[1].caller_serial_ns, 400, "two physics records");
        assert_eq!(a.wall_total_ns(), 4000);
        assert!((a.serial_fraction() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn extent_larger_than_wall_clamps_serial_to_zero() {
        // Timer skew can make the span extent exceed the measured wall;
        // serial attribution must clamp, not wrap.
        let r = StepRecord {
            wall_ns: vec![("P".into(), 100)],
            spans: vec![span("P region", 1, 0, 5000)],
            ..Default::default()
        };
        let a = attribute_step(&r);
        assert_eq!(a.phases[0].caller_serial_ns, 0);
    }

    #[test]
    fn empty_attribution_is_conservatively_serial() {
        let a = StepAttribution::default();
        assert_eq!(a.serial_fraction(), 1.0);
        assert!(render_critical_path(&[]).contains("no phase walls"));
    }

    #[test]
    fn render_shows_phases_and_amdahl_bound() {
        let text = render_critical_path(&[forked_record()]);
        assert!(text.contains("Serialish"), "{text}");
        assert!(text.contains("serial fraction: 0.600"), "{text}");
        assert!(text.contains("parallel fraction: 0.400"), "{text}");
        assert!(text.contains("1.67x max speedup"), "{text}");
    }
}
