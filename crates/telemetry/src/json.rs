//! Minimal JSON support for telemetry export and validation.
//!
//! The workspace vendors an API-only `serde` stand-in (no formats), so
//! the sink writes JSON by hand and validation parses it with the small
//! recursive-descent parser here. The value model is just enough for
//! telemetry records: objects keep insertion order, numbers are `f64`
//! (every quantity we export is well under 2^53, so `u64` round-trips
//! exactly).

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (integer or float).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed).
    pub fn parse(src: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a float, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {:?} at byte {}", other, self.pos)),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy a run of plain bytes (UTF-8 passes through).
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|e| format!("invalid utf-8 in string: {e}"))?,
                    );
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', got {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }
}

/// Appends a JSON string literal (with escaping) to `out`.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, 2.5, -3], "b": {"s": "x\n\"y\"", "t": true}, "n": null}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(
            v.get("b").unwrap().get("s").unwrap().as_str(),
            Some("x\n\"y\"")
        );
        assert_eq!(v.get("b").unwrap().get("t"), Some(&Json::Bool(true)));
        assert_eq!(v.get("n"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1, 2,]").is_err());
        assert!(Json::parse("{\"a\": 1} extra").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn string_escaping_round_trips() {
        let original = "line\nbreak \"quoted\" back\\slash\ttab";
        let mut buf = String::new();
        write_str(&mut buf, original);
        let parsed = Json::parse(&buf).unwrap();
        assert_eq!(parsed.as_str(), Some(original));
    }

    #[test]
    fn u64_precision_holds_for_telemetry_range() {
        // Largest value we export is nanoseconds over hours: < 2^53.
        let v = Json::parse("9007199254740992").unwrap(); // 2^53
        assert_eq!(v.as_u64(), Some(1u64 << 53));
    }
}
