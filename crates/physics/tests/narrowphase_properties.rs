//! Property-based tests of the narrow-phase collision functions.

use parallax_math::{Quat, Transform, Vec3};
use parallax_physics::narrowphase::collide_shapes;
use parallax_physics::Shape;
use proptest::prelude::*;

fn shape_strategy() -> impl Strategy<Value = Shape> {
    prop_oneof![
        (0.2f32..1.0).prop_map(Shape::sphere),
        (0.2f32..0.8, 0.2f32..0.8, 0.2f32..0.8)
            .prop_map(|(x, y, z)| Shape::cuboid(Vec3::new(x, y, z))),
        (0.15f32..0.5, 0.1f32..0.8).prop_map(|(r, h)| Shape::capsule(r, h)),
    ]
}

fn pose_strategy() -> impl Strategy<Value = Transform> {
    (
        -2.0f32..2.0,
        -2.0f32..2.0,
        -2.0f32..2.0,
        -3.1f32..3.1,
        (0.1f32..1.0, 0.1f32..1.0, 0.1f32..1.0),
    )
        .prop_map(|(x, y, z, angle, (ax, ay, az))| {
            Transform::new(
                Vec3::new(x, y, z),
                Quat::from_axis_angle(Vec3::new(ax, ay, az), angle),
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn contacts_have_unit_normals_and_nonnegative_depth(
        a in shape_strategy(),
        b in shape_strategy(),
        ta in pose_strategy(),
        tb in pose_strategy(),
    ) {
        if let Some(m) = collide_shapes(&a, &ta, &b, &tb) {
            prop_assert!(!m.is_empty(), "Some(manifold) must carry points");
            for p in &m.points {
                prop_assert!(p.position.is_finite(), "position {:?}", p.position);
                prop_assert!(p.normal.is_finite(), "normal {:?}", p.normal);
                prop_assert!(
                    (p.normal.length() - 1.0).abs() < 1e-3,
                    "normal not unit: {:?}",
                    p.normal
                );
                prop_assert!(p.depth >= -1e-4, "negative depth {}", p.depth);
                prop_assert!(p.depth < 10.0, "absurd depth {}", p.depth);
            }
        }
    }

    #[test]
    fn swapping_arguments_flips_the_normal(
        a in shape_strategy(),
        b in shape_strategy(),
        ta in pose_strategy(),
        tb in pose_strategy(),
    ) {
        let ab = collide_shapes(&a, &ta, &b, &tb);
        let ba = collide_shapes(&b, &tb, &a, &ta);
        // Hit/miss must agree.
        prop_assert_eq!(ab.is_some(), ba.is_some(), "swap changed hit/miss");
        if let (Some(m1), Some(m2)) = (ab, ba) {
            // Average normals must be opposite (per-point ordering may
            // differ between directions).
            let n1: Vec3 = m1.points.iter().map(|p| p.normal).sum::<Vec3>().normalized();
            let n2: Vec3 = m2.points.iter().map(|p| p.normal).sum::<Vec3>().normalized();
            if n1.length() > 0.5 && n2.length() > 0.5 {
                prop_assert!(
                    n1.dot(n2) < 0.3,
                    "normals should roughly oppose: {n1:?} vs {n2:?}"
                );
            }
        }
    }

    #[test]
    fn far_apart_shapes_never_collide(
        a in shape_strategy(),
        b in shape_strategy(),
        dir in (0.0f32..std::f32::consts::TAU),
    ) {
        // Any two shapes from the strategy fit in a radius-2 ball; at 10 m
        // separation they cannot touch.
        let ta = Transform::IDENTITY;
        let tb = Transform::from_position(Vec3::new(dir.cos() * 10.0, 0.0, dir.sin() * 10.0));
        prop_assert!(collide_shapes(&a, &ta, &b, &tb).is_none());
    }

    #[test]
    fn coincident_shapes_always_collide(
        a in shape_strategy(),
        b in shape_strategy(),
        pose in pose_strategy(),
    ) {
        // Two shapes at the same origin must overlap (all strategy shapes
        // contain their origin).
        let m = collide_shapes(&a, &pose, &b, &pose);
        prop_assert!(m.is_some(), "coincident {a:?} and {b:?} reported separate");
    }

    #[test]
    fn plane_contacts_point_along_plane_normal(
        a in shape_strategy(),
        x in -3.0f32..3.0,
        z in -3.0f32..3.0,
        h in -0.5f32..0.5,
    ) {
        let plane = Shape::plane(Vec3::UNIT_Y, 0.0);
        let ta = Transform::from_position(Vec3::new(x, h, z));
        if let Some(m) = collide_shapes(&a, &ta, &plane, &Transform::IDENTITY) {
            for p in &m.points {
                prop_assert!(
                    p.normal.dot(Vec3::UNIT_Y) > 0.99,
                    "contact normal {:?} should be the plane normal",
                    p.normal
                );
            }
        }
    }
}
