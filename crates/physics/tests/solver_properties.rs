//! Property-based tests of the constraint solver.

use parallax_math::{Mat3, SimdMode, Vec3};
use parallax_physics::contact::{ContactManifold, ContactPoint};
use parallax_physics::shape::GeomId;
use parallax_physics::solver::{
    build_contact_rows, solve, RowLimit, RowParams, RowSoA, VelState, STATIC_BODY,
};
use proptest::prelude::*;

fn body(vel: Vec3, inv_mass: f32) -> VelState {
    VelState {
        lin: vel,
        ang: Vec3::ZERO,
        inv_mass,
        inv_inertia: Mat3::from_diagonal(Vec3::splat(inv_mass * 2.5)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn normal_impulses_are_never_negative(
        vy in -10.0f32..10.0,
        vx in -5.0f32..5.0,
        depth in 0.0f32..0.2,
        friction in 0.0f32..1.5,
    ) {
        let mut vel = vec![body(Vec3::new(vx, vy, 0.0), 1.0)];
        let mut m = ContactManifold::new(GeomId(0), GeomId(1));
        m.friction = friction;
        m.push(ContactPoint {
            position: Vec3::ZERO,
            normal: Vec3::UNIT_Y,
            depth,
            feature: 0,
        });
        let mut rows = RowSoA::new();
        build_contact_rows(&m, 0, STATIC_BODY, Vec3::ZERO, Vec3::ZERO, &vel, &RowParams::default(), None, &mut rows);
        solve(&mut rows, &mut vel, 20, SimdMode::Scalar);
        for i in 0..rows.len() {
            if matches!(rows.limit[i], RowLimit::Unilateral) {
                prop_assert!(rows.lambda[i] >= 0.0, "contact pulled: λ = {}", rows.lambda[i]);
            }
        }
        prop_assert!(vel[0].lin.is_finite());
    }

    #[test]
    fn friction_is_bounded_by_coulomb_cone(
        vx in -10.0f32..10.0,
        vz in -10.0f32..10.0,
        mu in 0.0f32..1.2,
    ) {
        let mut vel = vec![body(Vec3::new(vx, -2.0, vz), 1.0)];
        let mut m = ContactManifold::new(GeomId(0), GeomId(1));
        m.friction = mu;
        m.restitution = 0.0;
        m.push(ContactPoint {
            position: Vec3::ZERO,
            normal: Vec3::UNIT_Y,
            depth: 0.0,
            feature: 0,
        });
        let mut rows = RowSoA::new();
        build_contact_rows(&m, 0, STATIC_BODY, Vec3::ZERO, Vec3::ZERO, &vel, &RowParams::default(), None, &mut rows);
        solve(&mut rows, &mut vel, 40, SimdMode::Scalar);
        let normal_lambda = (0..rows.len())
            .find(|&i| matches!(rows.limit[i], RowLimit::Unilateral))
            .map(|i| rows.lambda[i])
            .unwrap_or(0.0);
        let friction_mag: f32 = (0..rows.len())
            .filter(|&i| matches!(rows.limit[i], RowLimit::Friction { .. }))
            .map(|i| rows.lambda[i] * rows.lambda[i])
            .sum::<f32>()
            .sqrt();
        // Box-cone approximation: each friction row bounded by μλn, so the
        // 2-row magnitude is bounded by √2·μλn.
        prop_assert!(
            friction_mag <= mu * normal_lambda * 1.4143 + 1e-4,
            "friction {friction_mag} exceeds cone μλ = {}",
            mu * normal_lambda
        );
    }

    #[test]
    fn solve_is_stable_for_random_equal_mass_pairs(
        va in -5.0f32..5.0,
        vb in -5.0f32..5.0,
        depth in 0.0f32..0.1,
    ) {
        // Two equal bodies colliding along Y: momentum along the normal is
        // conserved by the internal impulse pair.
        let mut vel = vec![
            body(Vec3::new(0.0, va, 0.0), 1.0),
            body(Vec3::new(0.0, vb, 0.0), 1.0),
        ];
        let mut m = ContactManifold::new(GeomId(0), GeomId(1));
        m.restitution = 0.0;
        m.push(ContactPoint {
            position: Vec3::ZERO,
            normal: Vec3::UNIT_Y,
            depth,
            feature: 0,
        });
        let before = vel[0].lin.y + vel[1].lin.y;
        let mut rows = RowSoA::new();
        build_contact_rows(&m, 0, 1, Vec3::new(0.0, 0.5, 0.0), Vec3::new(0.0, -0.5, 0.0), &vel, &RowParams { erp: 0.0, ..Default::default() }, None, &mut rows);
        solve(&mut rows, &mut vel, 30, SimdMode::Scalar);
        let after = vel[0].lin.y + vel[1].lin.y;
        prop_assert!(
            (before - after).abs() < 1e-2 * (1.0 + before.abs()),
            "momentum changed: {before} -> {after}"
        );
        // Approach resolved: bodies no longer move toward each other.
        let rel = vel[0].lin.y - vel[1].lin.y;
        prop_assert!(rel > -1e-2, "still approaching at {rel}");
    }

    #[test]
    fn more_iterations_never_diverge(
        vy in -10.0f32..0.0,
        iters in 1usize..60,
    ) {
        let mut vel = vec![body(Vec3::new(0.0, vy, 0.0), 1.0)];
        let mut m = ContactManifold::new(GeomId(0), GeomId(1));
        m.restitution = 0.0;
        m.push(ContactPoint { position: Vec3::ZERO, normal: Vec3::UNIT_Y, depth: 0.0, feature: 0 });
        let mut rows = RowSoA::new();
        build_contact_rows(&m, 0, STATIC_BODY, Vec3::ZERO, Vec3::ZERO, &vel, &RowParams::default(), None, &mut rows);
        solve(&mut rows, &mut vel, iters, SimdMode::Scalar);
        prop_assert!(vel[0].lin.y.abs() <= vy.abs() + 1e-3, "solver added energy");
        prop_assert!(vel[0].lin.is_finite());
    }
}
