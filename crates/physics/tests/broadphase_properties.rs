//! Property-based equivalence of the broad-phase algorithms.
//!
//! [`BruteForce`] tests every pair and is trivially correct; sweep-and-prune
//! and the uniform grid must emit exactly the same pair set on arbitrary
//! AABB clouds — including negative coordinates, exactly touching boxes and
//! plane-sized AABBs that land in the grid's global bin.

use parallax_math::{Aabb, Vec3};
use parallax_physics::broadphase::{Broadphase, BruteForce, SweepAndPrune, UniformGrid};
use parallax_physics::shape::GeomId;
use proptest::prelude::*;

fn aabb_cloud(max_len: usize) -> impl Strategy<Value = Vec<(f32, f32, f32, f32, f32, f32)>> {
    // (center xyz in ±20, half-extents in (0, 3]) per box.
    prop::collection::vec(
        (
            -20.0f32..20.0,
            -20.0f32..20.0,
            -20.0f32..20.0,
            0.01f32..3.0,
            0.01f32..3.0,
            0.01f32..3.0,
        ),
        0..max_len,
    )
}

fn build(cloud: &[(f32, f32, f32, f32, f32, f32)]) -> Vec<(GeomId, Aabb)> {
    cloud
        .iter()
        .enumerate()
        .map(|(i, &(x, y, z, hx, hy, hz))| {
            (
                GeomId(i as u32),
                Aabb::from_center_half_extents(Vec3::new(x, y, z), Vec3::new(hx, hy, hz)),
            )
        })
        .collect()
}

fn sorted_pairs(bp: &mut dyn Broadphase, aabbs: &[(GeomId, Aabb)]) -> Vec<(GeomId, GeomId)> {
    let (mut pairs, _) = bp.pairs(aabbs);
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

fn assert_all_agree(aabbs: &[(GeomId, Aabb)]) {
    let oracle = sorted_pairs(&mut BruteForce::new(), aabbs);
    let sap = sorted_pairs(&mut SweepAndPrune::new(), aabbs);
    assert_eq!(sap, oracle, "sweep-and-prune diverged from brute force");
    for cell in [0.5, 1.2, 4.0] {
        let grid = sorted_pairs(&mut UniformGrid::new(cell), aabbs);
        assert_eq!(grid, oracle, "grid (cell {cell}) diverged from brute force");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn algorithms_agree_on_random_clouds(cloud in aabb_cloud(40)) {
        assert_all_agree(&build(&cloud));
    }

    #[test]
    fn algorithms_agree_with_plane_sized_aabbs(
        cloud in aabb_cloud(24),
        planes in 1usize..3,
    ) {
        let mut aabbs = build(&cloud);
        // Plane-like AABBs: vast in two axes, thin in the third — these
        // overflow the grid's per-axis cell cap and take the global-bin
        // path.
        for p in 0..planes {
            aabbs.push((
                GeomId((cloud.len() + p) as u32),
                Aabb::from_center_half_extents(
                    Vec3::new(0.0, p as f32 * 2.0, 0.0),
                    Vec3::new(1e7, 0.1, 1e7),
                ),
            ));
        }
        assert_all_agree(&aabbs);
    }

    #[test]
    fn algorithms_agree_on_repeated_coherent_frames(cloud in aabb_cloud(24), dx in -0.5f32..0.5) {
        // Persistent state (SAP's kept permutation, the grid's scratch)
        // must not change results across frames of slowly moving boxes.
        let mut sap = SweepAndPrune::new();
        let mut grid = UniformGrid::new(1.2);
        let mut out = Vec::new();
        for frame in 0..3 {
            let shifted: Vec<_> = cloud
                .iter()
                .map(|&(x, y, z, hx, hy, hz)| (x + dx * frame as f32, y, z, hx, hy, hz))
                .collect();
            let aabbs = build(&shifted);
            let oracle = sorted_pairs(&mut BruteForce::new(), &aabbs);
            sap.pairs_into(&aabbs, &mut out);
            out.sort_unstable();
            prop_assert_eq!(&out, &oracle, "SAP frame {}", frame);
            grid.pairs_into(&aabbs, &mut out);
            out.sort_unstable();
            prop_assert_eq!(&out, &oracle, "grid frame {}", frame);
        }
    }
}

#[test]
fn touching_boxes_count_as_overlapping_everywhere() {
    // Boxes sharing exactly one face: whatever the convention, all three
    // algorithms must apply the same one.
    let aabbs = vec![
        (
            GeomId(0),
            Aabb::from_center_half_extents(Vec3::ZERO, Vec3::splat(0.5)),
        ),
        (
            GeomId(1),
            Aabb::from_center_half_extents(Vec3::new(1.0, 0.0, 0.0), Vec3::splat(0.5)),
        ),
        (
            GeomId(2),
            Aabb::from_center_half_extents(Vec3::new(-3.0, 0.0, 0.0), Vec3::splat(0.5)),
        ),
    ];
    assert_all_agree(&aabbs);
}

#[test]
fn negative_coordinate_octant_is_not_special() {
    // Cell indices are floor()-ed; clusters straddling the origin and deep
    // in the negative octant must behave identically.
    let centers = [
        Vec3::new(-10.3, -7.7, -3.1),
        Vec3::new(-10.9, -7.2, -3.4),
        Vec3::new(-0.4, -0.4, -0.4),
        Vec3::new(0.4, 0.4, 0.4),
        Vec3::new(-100.0, -100.0, -100.0),
    ];
    let aabbs: Vec<_> = centers
        .iter()
        .enumerate()
        .map(|(i, c)| {
            (
                GeomId(i as u32),
                Aabb::from_center_half_extents(*c, Vec3::splat(0.6)),
            )
        })
        .collect();
    assert_all_agree(&aabbs);
}
