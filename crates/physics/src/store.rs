//! Structure-of-arrays storage for rigid-body dynamic state.
//!
//! [`BodyStore`] replaces the old `Vec<RigidBody>`: every dynamic quantity
//! (position, orientation, velocities, force accumulators, inverse mass,
//! inverse inertia, damping) lives in its own parallel `Vec<f32>` lane so
//! the integrator sweeps in `crate::integrator` can process 4 or 8 bodies
//! per instruction. Indexing is unchanged — [`crate::BodyId`] is still the
//! slot index, and bodies are disabled rather than removed, so every lane
//! vector only ever grows.
//!
//! The scalar accessor surface ([`BodyRef`], [`BodyMut`], [`BodiesView`])
//! reproduces the old `RigidBody` API expression-for-expression, so world
//! management code and external consumers are unaffected by the layout
//! change, and scalar mutations produce bit-identical results to the old
//! AoS engine.
//!
//! The store is also the single owner of the velocity gather/scatter used
//! by the constraint solver ([`BodyStore::vel_state`] /
//! [`BodyStore::set_velocity`]) — the solver write-back and the contact
//! cache's warm-start seeding both go through these two methods instead of
//! duplicating index arithmetic.

use parallax_math::{Mat3, Quat, Transform, Vec3};

use crate::body::{BodyDesc, BodyFlags};
use crate::solver::VelState;

/// Three parallel `f32` lanes holding a [`Vec3`] per body.
#[derive(Debug, Clone, Default)]
pub(crate) struct Lanes3 {
    pub(crate) x: Vec<f32>,
    pub(crate) y: Vec<f32>,
    pub(crate) z: Vec<f32>,
}

impl Lanes3 {
    #[inline]
    pub(crate) fn get(&self, i: usize) -> Vec3 {
        Vec3::new(self.x[i], self.y[i], self.z[i])
    }

    #[inline]
    pub(crate) fn set(&mut self, i: usize, v: Vec3) {
        self.x[i] = v.x;
        self.y[i] = v.y;
        self.z[i] = v.z;
    }

    #[inline]
    fn push(&mut self, v: Vec3) {
        self.x.push(v.x);
        self.y.push(v.y);
        self.z.push(v.z);
    }
}

/// Four parallel `f32` lanes holding a [`Quat`] per body.
#[derive(Debug, Clone, Default)]
pub(crate) struct LanesQuat {
    pub(crate) w: Vec<f32>,
    pub(crate) x: Vec<f32>,
    pub(crate) y: Vec<f32>,
    pub(crate) z: Vec<f32>,
}

impl LanesQuat {
    #[inline]
    pub(crate) fn get(&self, i: usize) -> Quat {
        Quat::new(self.w[i], self.x[i], self.y[i], self.z[i])
    }

    #[inline]
    pub(crate) fn set(&mut self, i: usize, q: Quat) {
        self.w[i] = q.w;
        self.x[i] = q.x;
        self.y[i] = q.y;
        self.z[i] = q.z;
    }

    #[inline]
    fn push(&mut self, q: Quat) {
        self.w.push(q.w);
        self.x.push(q.x);
        self.y.push(q.y);
        self.z.push(q.z);
    }
}

/// Nine parallel `f32` lanes holding a row-major [`Mat3`] per body.
///
/// Inertia tensors are stored with all nine elements (not six, despite
/// symmetry) so the SIMD world-inertia refresh can replicate the scalar
/// `r * L * rᵀ` product element-for-element.
#[derive(Debug, Clone, Default)]
pub(crate) struct LanesMat3 {
    /// `e[3*row + col]` lane vectors.
    pub(crate) e: [Vec<f32>; 9],
}

impl LanesMat3 {
    #[inline]
    pub(crate) fn get(&self, i: usize) -> Mat3 {
        Mat3::from_rows(
            Vec3::new(self.e[0][i], self.e[1][i], self.e[2][i]),
            Vec3::new(self.e[3][i], self.e[4][i], self.e[5][i]),
            Vec3::new(self.e[6][i], self.e[7][i], self.e[8][i]),
        )
    }

    #[inline]
    pub(crate) fn set(&mut self, i: usize, m: Mat3) {
        for r in 0..3 {
            self.e[3 * r][i] = m.rows[r].x;
            self.e[3 * r + 1][i] = m.rows[r].y;
            self.e[3 * r + 2][i] = m.rows[r].z;
        }
    }

    #[inline]
    fn push(&mut self, m: Mat3) {
        for r in 0..3 {
            self.e[3 * r].push(m.rows[r].x);
            self.e[3 * r + 1].push(m.rows[r].y);
            self.e[3 * r + 2].push(m.rows[r].z);
        }
    }
}

/// SoA storage of all rigid-body dynamic state in a world.
#[derive(Debug, Clone, Default)]
pub struct BodyStore {
    pub(crate) pos: Lanes3,
    pub(crate) rot: LanesQuat,
    pub(crate) lin_vel: Lanes3,
    pub(crate) ang_vel: Lanes3,
    pub(crate) force: Lanes3,
    pub(crate) torque: Lanes3,
    pub(crate) inv_mass: Vec<f32>,
    /// Inverse inertia tensor in body-local coordinates.
    pub(crate) inv_inertia_local: LanesMat3,
    /// Cached world-space inverse inertia, refreshed on integration.
    pub(crate) inv_inertia_world: LanesMat3,
    pub(crate) linear_damping: Vec<f32>,
    pub(crate) angular_damping: Vec<f32>,
    pub(crate) flags: Vec<BodyFlags>,
    /// Island index assigned during island creation (`u32::MAX` = none).
    pub(crate) island: Vec<u32>,
    /// Per-body all-ones/all-zeros bit mask (`!is_static && !is_disabled
    /// && !is_sleeping`) carried as `f32` lanes for the SIMD sweeps.
    /// Recomputed at the start of each sweep by
    /// [`BodyStore::refresh_movable_mask`] because flags can change
    /// between sweeps within one step (e.g. contact events disabling
    /// debris, or the serial sleep pass putting an island to rest).
    pub(crate) movable_mask: Vec<f32>,
    /// Exponential moving average of each body's normalized activity
    /// (`|v|²/lin_thr² + |ω|²/ang_thr²`), updated by the serial sleep
    /// pass. Below 1.0 the body counts as quiet.
    pub(crate) sleep_ema: Vec<f32>,
    /// Consecutive quiet steps per body; an island sleeps when every
    /// member's timer reaches the configured threshold.
    pub(crate) sleep_timer: Vec<u32>,
}

impl BodyStore {
    /// Number of body slots (enabled or not).
    #[inline]
    pub fn len(&self) -> usize {
        self.inv_mass.len()
    }

    /// Returns `true` when the store holds no bodies.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.inv_mass.is_empty()
    }

    /// Appends a body built from `desc` and returns its slot index.
    ///
    /// Inertia comes from the first shape (or a unit sphere when the body
    /// has no shape), exactly as the old `BodyDesc::build`. Inside a
    /// [`crate::World`] use `add_body`, which also registers geoms; this
    /// is public for benchmarks and tests that drive the kernels on a
    /// bare store.
    pub fn push(&mut self, desc: &BodyDesc) -> usize {
        let i = self.len();
        let (inv_mass, inv_inertia_local) = desc.mass_properties();
        self.pos.push(desc.position);
        self.rot.push(desc.rotation);
        self.lin_vel.push(desc.lin_vel);
        self.ang_vel.push(desc.ang_vel);
        self.force.push(Vec3::ZERO);
        self.torque.push(Vec3::ZERO);
        self.inv_mass.push(inv_mass);
        self.inv_inertia_local.push(inv_inertia_local);
        self.inv_inertia_world.push(Mat3::ZERO);
        self.linear_damping.push(desc.linear_damping);
        self.angular_damping.push(desc.angular_damping);
        self.flags.push(desc.flags);
        self.island.push(u32::MAX);
        self.movable_mask.push(0.0);
        self.sleep_ema.push(0.0);
        self.sleep_timer.push(0);
        self.refresh_inertia(i);
        i
    }

    // --- scalar state accessors (bit-identical to the old `RigidBody`) ---

    /// World-space position of the centre of mass of body `i`.
    #[inline]
    pub fn position(&self, i: usize) -> Vec3 {
        self.pos.get(i)
    }

    /// World-space orientation of body `i`.
    #[inline]
    pub fn rotation(&self, i: usize) -> Quat {
        self.rot.get(i)
    }

    /// The full rigid transform of body `i`.
    #[inline]
    pub fn transform(&self, i: usize) -> Transform {
        Transform::new(self.pos.get(i), self.rot.get(i))
    }

    /// Linear velocity of body `i`.
    #[inline]
    pub fn linear_velocity(&self, i: usize) -> Vec3 {
        self.lin_vel.get(i)
    }

    /// Angular velocity of body `i` (world space, rad/s).
    #[inline]
    pub fn angular_velocity(&self, i: usize) -> Vec3 {
        self.ang_vel.get(i)
    }

    /// Inverse mass of body `i`; 0 for static bodies.
    #[inline]
    pub fn inv_mass(&self, i: usize) -> f32 {
        self.inv_mass[i]
    }

    /// Behaviour flags of body `i`.
    #[inline]
    pub fn flags(&self, i: usize) -> BodyFlags {
        self.flags[i]
    }

    /// Mutable behaviour flags of body `i`.
    #[inline]
    pub fn flags_mut(&mut self, i: usize) -> &mut BodyFlags {
        &mut self.flags[i]
    }

    /// Returns `true` if body `i` cannot move.
    #[inline]
    pub fn is_static(&self, i: usize) -> bool {
        self.flags[i].contains(BodyFlags::STATIC) || self.inv_mass[i] == 0.0
    }

    /// Returns `true` if body `i` is currently disabled.
    #[inline]
    pub fn is_disabled(&self, i: usize) -> bool {
        self.flags[i].contains(BodyFlags::DISABLED)
    }

    /// Returns `true` if body `i` participates in dynamics this step.
    #[inline]
    pub fn is_movable(&self, i: usize) -> bool {
        !self.is_static(i) && !self.is_disabled(i)
    }

    /// Returns `true` if body `i` is asleep (its island is at rest).
    #[inline]
    pub fn is_sleeping(&self, i: usize) -> bool {
        self.flags[i].contains(BodyFlags::SLEEPING)
    }

    /// Island slot of body `i` from the most recent island build.
    /// Sleeping bodies keep their frozen slot with
    /// [`crate::island::SLEEP_SLOT_BIT`] set.
    #[inline]
    pub fn island(&self, i: usize) -> Option<u32> {
        (self.island[i] != u32::MAX).then_some(self.island[i])
    }

    /// Raw island lane of body `i`, including the sleeping-slot encoding
    /// (`u32::MAX` = none).
    #[inline]
    pub(crate) fn island_raw(&self, i: usize) -> u32 {
        self.island[i]
    }

    /// Assigns the island slot of body `i` (`u32::MAX` = none).
    #[inline]
    pub(crate) fn set_island(&mut self, i: usize, slot: u32) {
        self.island[i] = slot;
    }

    /// Directly sets the position of body `i` (no collision response).
    #[inline]
    pub(crate) fn set_position(&mut self, i: usize, p: Vec3) {
        self.pos.set(i, p);
    }

    /// Directly sets the orientation of body `i`. Callers must
    /// [`BodyStore::refresh_inertia`] afterwards.
    #[inline]
    pub(crate) fn set_rotation(&mut self, i: usize, q: Quat) {
        self.rot.set(i, q);
    }

    /// Directly sets the linear velocity of body `i`.
    #[inline]
    pub fn set_linear_velocity(&mut self, i: usize, v: Vec3) {
        self.lin_vel.set(i, v);
    }

    /// Directly sets the angular velocity of body `i`.
    #[inline]
    pub fn set_angular_velocity(&mut self, i: usize, w: Vec3) {
        self.ang_vel.set(i, w);
    }

    /// Adds a force (N) through the centre of mass for the next step.
    #[inline]
    pub fn add_force(&mut self, i: usize, f: Vec3) {
        self.force.set(i, self.force.get(i) + f);
    }

    /// Adds a torque (N·m) for the next step.
    #[inline]
    pub fn add_torque(&mut self, i: usize, t: Vec3) {
        self.torque.set(i, self.torque.get(i) + t);
    }

    /// Applies an instantaneous impulse (kg·m/s) at world position `p`.
    pub fn apply_impulse_at(&mut self, i: usize, impulse: Vec3, p: Vec3) {
        if self.is_static(i) {
            return;
        }
        self.lin_vel
            .set(i, self.lin_vel.get(i) + impulse * self.inv_mass[i]);
        let r = p - self.pos.get(i);
        self.ang_vel.set(
            i,
            self.ang_vel.get(i) + self.inv_inertia_world.get(i) * r.cross(impulse),
        );
    }

    /// Velocity of the material point of body `i` at world position `p`.
    #[inline]
    pub fn velocity_at(&self, i: usize, p: Vec3) -> Vec3 {
        self.lin_vel.get(i) + self.ang_vel.get(i).cross(p - self.pos.get(i))
    }

    /// Kinetic energy of body `i` (0 for static bodies).
    pub fn kinetic_energy(&self, i: usize) -> f32 {
        if self.inv_mass[i] == 0.0 {
            return 0.0;
        }
        let m = 1.0 / self.inv_mass[i];
        let lin_vel = self.lin_vel.get(i);
        let ang_vel = self.ang_vel.get(i);
        let lin = 0.5 * m * lin_vel.length_squared();
        // ω · I ω / 2; recover I from I⁻¹ where possible.
        let ang = match self.inv_inertia_world.get(i).inverse() {
            Some(inertia) => 0.5 * ang_vel.dot(inertia * ang_vel),
            None => 0.0,
        };
        lin + ang
    }

    /// Refreshes the cached world-space inverse inertia of body `i` from
    /// its current orientation.
    pub(crate) fn refresh_inertia(&mut self, i: usize) {
        let r = self.rot.get(i).to_mat3();
        let w = r * self.inv_inertia_local.get(i) * r.transpose();
        self.inv_inertia_world.set(i, w);
    }

    // --- shared solver gather/scatter view ---

    /// Gathers the solver's working velocity state for body `i`.
    ///
    /// This is the single gather point shared by island solving and the
    /// contact cache's warm-start seeding; static bodies still produce a
    /// valid (all-zero-effect) state.
    #[inline]
    pub fn vel_state(&self, i: usize) -> VelState {
        VelState {
            lin: self.lin_vel.get(i),
            ang: self.ang_vel.get(i),
            inv_mass: self.inv_mass[i],
            inv_inertia: self.inv_inertia_world.get(i),
        }
    }

    /// Scatters solved velocities back to body `i` — the write-back half
    /// of [`BodyStore::vel_state`].
    #[inline]
    pub(crate) fn set_velocity(&mut self, i: usize, lin: Vec3, ang: Vec3) {
        self.lin_vel.set(i, lin);
        self.ang_vel.set(i, ang);
    }

    /// Recomputes the SIMD movability bit-mask lane from the current flags
    /// and inverse masses. Called at the start of every integrator sweep.
    pub(crate) fn refresh_movable_mask(&mut self) {
        for i in 0..self.len() {
            let movable = !(self.flags[i].contains(BodyFlags::STATIC)
                || self.inv_mass[i] == 0.0
                || self.flags[i].contains(BodyFlags::DISABLED)
                || self.flags[i].contains(BodyFlags::SLEEPING));
            self.movable_mask[i] = f32::from_bits(if movable { u32::MAX } else { 0 });
        }
    }

    /// Immutable view of body `i`.
    #[inline]
    pub fn body(&self, i: usize) -> BodyRef<'_> {
        BodyRef { store: self, i }
    }

    /// Iterates immutable views over every body slot.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = BodyRef<'_>> + '_ {
        (0..self.len()).map(move |i| BodyRef { store: self, i })
    }
}

/// Immutable view of one body inside a [`BodyStore`].
///
/// Replaces `&RigidBody`: a `Copy` handle whose accessors read straight
/// from the SoA lanes.
#[derive(Debug, Clone, Copy)]
pub struct BodyRef<'a> {
    store: &'a BodyStore,
    i: usize,
}

impl BodyRef<'_> {
    /// World-space position of the centre of mass.
    #[inline]
    pub fn position(self) -> Vec3 {
        self.store.position(self.i)
    }

    /// World-space orientation.
    #[inline]
    pub fn rotation(self) -> Quat {
        self.store.rotation(self.i)
    }

    /// The full rigid transform.
    #[inline]
    pub fn transform(self) -> Transform {
        self.store.transform(self.i)
    }

    /// Linear velocity of the centre of mass.
    #[inline]
    pub fn linear_velocity(self) -> Vec3 {
        self.store.linear_velocity(self.i)
    }

    /// Angular velocity (world space, rad/s).
    #[inline]
    pub fn angular_velocity(self) -> Vec3 {
        self.store.angular_velocity(self.i)
    }

    /// Inverse mass; 0 for static bodies.
    #[inline]
    pub fn inv_mass(self) -> f32 {
        self.store.inv_mass(self.i)
    }

    /// Mass of the body (`f32::INFINITY` for static bodies).
    #[inline]
    pub fn mass(self) -> f32 {
        if self.store.inv_mass(self.i) > 0.0 {
            1.0 / self.store.inv_mass(self.i)
        } else {
            f32::INFINITY
        }
    }

    /// Behaviour flags.
    #[inline]
    pub fn flags(self) -> BodyFlags {
        self.store.flags(self.i)
    }

    /// Returns `true` if this body cannot move.
    #[inline]
    pub fn is_static(self) -> bool {
        self.store.is_static(self.i)
    }

    /// Returns `true` if the body is currently disabled.
    #[inline]
    pub fn is_disabled(self) -> bool {
        self.store.is_disabled(self.i)
    }

    /// Returns `true` if the body is asleep (its island is at rest).
    #[inline]
    pub fn is_sleeping(self) -> bool {
        self.store.is_sleeping(self.i)
    }

    /// Island index from the most recent island-creation phase.
    #[inline]
    pub fn island(self) -> Option<u32> {
        self.store.island(self.i)
    }

    /// Velocity of the material point of the body at world position `p`.
    #[inline]
    pub fn velocity_at(self, p: Vec3) -> Vec3 {
        self.store.velocity_at(self.i, p)
    }

    /// Kinetic energy of the body (0 for static bodies).
    #[inline]
    pub fn kinetic_energy(self) -> f32 {
        self.store.kinetic_energy(self.i)
    }
}

/// Mutable view of one body inside a [`BodyStore`].
///
/// Replaces `&mut RigidBody` at the `World::body_mut` surface.
#[derive(Debug)]
pub struct BodyMut<'a> {
    store: &'a mut BodyStore,
    i: usize,
}

impl<'a> BodyMut<'a> {
    #[inline]
    pub(crate) fn new(store: &'a mut BodyStore, i: usize) -> Self {
        BodyMut { store, i }
    }

    /// Immutable view of the same body.
    #[inline]
    pub fn as_ref(&self) -> BodyRef<'_> {
        BodyRef {
            store: self.store,
            i: self.i,
        }
    }

    /// World-space position of the centre of mass.
    #[inline]
    pub fn position(&self) -> Vec3 {
        self.store.position(self.i)
    }

    /// Linear velocity of the centre of mass.
    #[inline]
    pub fn linear_velocity(&self) -> Vec3 {
        self.store.linear_velocity(self.i)
    }

    /// Angular velocity (world space, rad/s).
    #[inline]
    pub fn angular_velocity(&self) -> Vec3 {
        self.store.angular_velocity(self.i)
    }

    /// Adds a force (N) through the centre of mass for the next step.
    #[inline]
    pub fn add_force(&mut self, f: Vec3) {
        self.store.add_force(self.i, f);
    }

    /// Adds a torque (N·m) for the next step.
    #[inline]
    pub fn add_torque(&mut self, t: Vec3) {
        self.store.add_torque(self.i, t);
    }

    /// Applies an instantaneous impulse (kg·m/s) at world position `p`.
    #[inline]
    pub fn apply_impulse_at(&mut self, impulse: Vec3, p: Vec3) {
        self.store.apply_impulse_at(self.i, impulse, p);
    }

    /// Directly sets the linear velocity.
    #[inline]
    pub fn set_linear_velocity(&mut self, v: Vec3) {
        self.store.set_linear_velocity(self.i, v);
    }

    /// Directly sets the angular velocity.
    #[inline]
    pub fn set_angular_velocity(&mut self, w: Vec3) {
        self.store.set_angular_velocity(self.i, w);
    }
}

/// Immutable view over all bodies in a world — the `world.bodies()`
/// surface, replacing `&[RigidBody]`.
#[derive(Debug, Clone, Copy)]
pub struct BodiesView<'a> {
    store: &'a BodyStore,
}

impl<'a> BodiesView<'a> {
    #[inline]
    pub(crate) fn new(store: &'a BodyStore) -> Self {
        BodiesView { store }
    }

    /// Number of body slots (enabled or not).
    #[inline]
    pub fn len(self) -> usize {
        self.store.len()
    }

    /// Returns `true` when the world has no bodies.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.store.is_empty()
    }

    /// View of body `i`.
    #[inline]
    pub fn get(self, i: usize) -> BodyRef<'a> {
        BodyRef {
            store: self.store,
            i,
        }
    }

    /// Iterates over all body slots.
    #[inline]
    pub fn iter(self) -> impl Iterator<Item = BodyRef<'a>> + 'a {
        let store = self.store;
        (0..store.len()).map(move |i| BodyRef { store, i })
    }
}

impl<'a> IntoIterator for BodiesView<'a> {
    type Item = BodyRef<'a>;
    type IntoIter = Box<dyn Iterator<Item = BodyRef<'a>> + 'a>;

    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::BodyDesc;
    use crate::shape::Shape;

    fn single(desc: BodyDesc) -> BodyStore {
        let mut s = BodyStore::default();
        s.push(&desc);
        s
    }

    #[test]
    fn dynamic_body_has_finite_mass() {
        let s = single(BodyDesc::dynamic(Vec3::ZERO).with_shape(Shape::sphere(1.0), 2.0));
        assert!((s.body(0).mass() - 2.0).abs() < 1e-6);
        assert!(!s.is_static(0));
    }

    #[test]
    fn static_body_is_immovable() {
        let mut s = single(BodyDesc::fixed(Vec3::ZERO).with_shape(Shape::sphere(1.0), 2.0));
        assert!(s.is_static(0));
        assert_eq!(s.body(0).mass(), f32::INFINITY);
        s.apply_impulse_at(0, Vec3::new(100.0, 0.0, 0.0), Vec3::ZERO);
        assert_eq!(s.linear_velocity(0), Vec3::ZERO);
    }

    #[test]
    fn impulse_through_com_is_purely_linear() {
        let mut s = single(BodyDesc::dynamic(Vec3::ZERO).with_shape(Shape::sphere(1.0), 1.0));
        s.apply_impulse_at(0, Vec3::new(3.0, 0.0, 0.0), Vec3::ZERO);
        assert!((s.linear_velocity(0) - Vec3::new(3.0, 0.0, 0.0)).length() < 1e-6);
        assert!(s.angular_velocity(0).length() < 1e-6);
    }

    #[test]
    fn offset_impulse_induces_spin() {
        let mut s = single(BodyDesc::dynamic(Vec3::ZERO).with_shape(Shape::sphere(1.0), 1.0));
        s.apply_impulse_at(0, Vec3::new(0.0, 0.0, 1.0), Vec3::new(1.0, 0.0, 0.0));
        assert!(s.angular_velocity(0).length() > 0.0);
    }

    #[test]
    fn velocity_at_accounts_for_rotation() {
        let mut s = single(BodyDesc::dynamic(Vec3::ZERO).with_shape(Shape::sphere(1.0), 1.0));
        s.set_angular_velocity(0, Vec3::new(0.0, 0.0, 1.0));
        let v = s.velocity_at(0, Vec3::new(1.0, 0.0, 0.0));
        assert!((v - Vec3::new(0.0, 1.0, 0.0)).length() < 1e-6);
    }

    #[test]
    fn kinetic_energy_of_moving_body() {
        let mut s = single(BodyDesc::dynamic(Vec3::ZERO).with_shape(Shape::sphere(1.0), 2.0));
        s.set_linear_velocity(0, Vec3::new(3.0, 0.0, 0.0));
        assert!((s.kinetic_energy(0) - 9.0).abs() < 1e-4);
    }

    #[test]
    fn movable_mask_tracks_flags() {
        let mut s = BodyStore::default();
        s.push(&BodyDesc::dynamic(Vec3::ZERO).with_shape(Shape::sphere(1.0), 1.0));
        s.push(&BodyDesc::fixed(Vec3::ZERO));
        s.push(&BodyDesc::dynamic(Vec3::ZERO).with_shape(Shape::sphere(1.0), 1.0));
        s.flags_mut(2).insert(BodyFlags::DISABLED);
        s.refresh_movable_mask();
        assert_eq!(s.movable_mask[0].to_bits(), u32::MAX);
        assert_eq!(s.movable_mask[1].to_bits(), 0);
        assert_eq!(s.movable_mask[2].to_bits(), 0);
        // Re-enabling is picked up by the next refresh.
        s.flags_mut(2).remove(BodyFlags::DISABLED);
        s.refresh_movable_mask();
        assert_eq!(s.movable_mask[2].to_bits(), u32::MAX);
        // Sleeping bodies are masked out of the SIMD sweeps too.
        s.flags_mut(0).insert(BodyFlags::SLEEPING);
        s.refresh_movable_mask();
        assert_eq!(s.movable_mask[0].to_bits(), 0);
        assert!(s.is_sleeping(0));
        s.flags_mut(0).remove(BodyFlags::SLEEPING);
        s.refresh_movable_mask();
        assert_eq!(s.movable_mask[0].to_bits(), u32::MAX);
    }

    #[test]
    fn gather_scatter_round_trips() {
        let mut s = single(
            BodyDesc::dynamic(Vec3::new(1.0, 2.0, 3.0))
                .with_shape(Shape::cuboid(Vec3::splat(0.5)), 4.0)
                .with_velocity(Vec3::new(0.5, -1.0, 0.25)),
        );
        let v = s.vel_state(0);
        assert_eq!(v.lin, Vec3::new(0.5, -1.0, 0.25));
        assert_eq!(v.inv_mass, s.inv_mass(0));
        s.set_velocity(0, v.lin * 2.0, Vec3::new(0.0, 1.0, 0.0));
        assert_eq!(s.linear_velocity(0), Vec3::new(1.0, -2.0, 0.5));
        assert_eq!(s.angular_velocity(0), Vec3::new(0.0, 1.0, 0.0));
    }
}
