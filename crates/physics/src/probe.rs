//! Step instrumentation: per-phase work records.
//!
//! The paper instruments phase boundaries with Simics MAGIC instructions;
//! here every [`crate::World::step`] returns a [`StepProfile`] describing
//! exactly how much work each of the five phases performed and which
//! entities it touched. The `parallax-trace` crate converts these records
//! into instruction and memory-reference streams for the architecture
//! simulator.

use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::broadphase::BroadphaseStats;
use crate::cloth::ClothStats;
use crate::island::IslandStats;

/// The five computational phases of the physics pipeline (paper Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PhaseKind {
    /// Broad-phase collision culling (serial).
    Broadphase,
    /// Narrow-phase contact generation (fine-grain parallel).
    Narrowphase,
    /// Island creation — connected components (serial).
    IslandCreation,
    /// Island processing — constraint solve + integration (CG+FG parallel).
    IslandProcessing,
    /// Cloth simulation (CG+FG parallel).
    Cloth,
}

impl PhaseKind {
    /// All phases in pipeline order.
    pub const ALL: [PhaseKind; 5] = [
        PhaseKind::Broadphase,
        PhaseKind::Narrowphase,
        PhaseKind::IslandCreation,
        PhaseKind::IslandProcessing,
        PhaseKind::Cloth,
    ];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            PhaseKind::Broadphase => "Broadphase",
            PhaseKind::Narrowphase => "Narrowphase",
            PhaseKind::IslandCreation => "Island Serial",
            PhaseKind::IslandProcessing => "Island Parallel",
            PhaseKind::Cloth => "Cloth",
        }
    }

    /// Span label for this phase's parallel fork/join region.
    ///
    /// The pipeline records a track-0 span named exactly [`name`]
    /// covering the whole phase; the executor labels the region's spans
    /// (caller + workers) with this suffixed form so critical-path
    /// attribution (`parallax_telemetry::attribution`) can tell the two
    /// apart. Must stay `"<name> region"` — the telemetry side matches
    /// on that suffix.
    ///
    /// [`name`]: PhaseKind::name
    pub fn region_label(self) -> &'static str {
        match self {
            PhaseKind::Broadphase => "Broadphase region",
            PhaseKind::Narrowphase => "Narrowphase region",
            PhaseKind::IslandCreation => "Island Serial region",
            PhaseKind::IslandProcessing => "Island Parallel region",
            PhaseKind::Cloth => "Cloth region",
        }
    }

    /// `true` for the two phases the paper identifies as serial.
    pub fn is_serial(self) -> bool {
        matches!(self, PhaseKind::Broadphase | PhaseKind::IslandCreation)
    }
}

/// Narrow-phase work for one object pair.
#[derive(Debug, Clone)]
pub struct PairWork {
    /// Geom index of A.
    pub geom_a: u32,
    /// Geom index of B.
    pub geom_b: u32,
    /// Body index of A (`u32::MAX` for static geoms).
    pub body_a: u32,
    /// Body index of B (`u32::MAX` for static geoms).
    pub body_b: u32,
    /// Shape-kind name of A (e.g. "sphere").
    pub shape_a: &'static str,
    /// Shape-kind name of B.
    pub shape_b: &'static str,
    /// Contact points generated (0 = pair rejected in narrow-phase).
    pub contacts: usize,
    /// `false` when the pair was only *considered* (no awake dynamic
    /// side — both static/sleeping, or a disabled body): counted, cheaply
    /// rejected, no contacts possible.
    pub active: bool,
}

/// Island-processing work for one island.
#[derive(Debug, Clone)]
pub struct IslandWork {
    /// Body indices in the island.
    pub bodies: Vec<u32>,
    /// Permanent-joint indices in the island.
    pub joints: Vec<u32>,
    /// Manifold count in the island.
    pub manifolds: usize,
    /// Constraint rows built.
    pub rows: usize,
    /// Degrees of freedom removed (the work-queue filter metric).
    pub dof_removed: usize,
    /// Solver iterations executed.
    pub iterations: usize,
    /// Total |Δλ| applied over the solve (convergence indicator; the
    /// invariant monitor flags non-finite values).
    pub residual: f32,
    /// Whether the island went to the parallel work queue (paper: > 25
    /// DOF removed) or ran on the main thread.
    pub queued: bool,
    /// Digest of the island's post-solve accumulated impulses
    /// (`RowSoA::lambda` bit patterns, seeded by island index). Only
    /// computed when [`crate::WorldConfig::digests`] is on; 0 otherwise.
    pub lambda_digest: u64,
}

/// Cloth work for one cloth object.
#[derive(Debug, Clone)]
pub struct ClothWork {
    /// Cloth index.
    pub cloth: u32,
    /// Verlet/constraint/collision statistics.
    pub stats: ClothStats,
    /// Number of rigid bodies on the contact list this step.
    pub colliders: usize,
}

/// Discrete events raised during a step.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StepEvents {
    /// Explosive bodies detonated.
    pub explosions: usize,
    /// Breakable joints that broke.
    pub joints_broken: usize,
    /// Pre-fractured objects shattered.
    pub shattered: usize,
    /// Blast volumes expired.
    pub blasts_expired: usize,
}

/// The full work profile of one simulation step.
#[derive(Debug, Default, Clone)]
pub struct StepProfile {
    /// Broad-phase statistics.
    pub broadphase: BroadphaseStats,
    /// Per-pair narrow-phase records.
    pub pairs: Vec<PairWork>,
    /// Island-creation statistics.
    pub island_creation: IslandStats,
    /// Per-island processing records.
    pub islands: Vec<IslandWork>,
    /// Per-cloth records.
    pub cloths: Vec<ClothWork>,
    /// Events raised this step.
    pub events: StepEvents,
    /// Deepest contact penetration among this step's manifolds, meters
    /// (0 when no contact survived narrow-phase). Watched by the
    /// invariant monitor: runaway penetration means the solver lost.
    pub max_penetration: f32,
    /// Wall-clock time per phase, pipeline order (debug aid; the
    /// architecture simulator produces the *simulated* times).
    pub wall: [Duration; 5],
    /// Bodies enabled at the end of the step.
    pub body_count: usize,
    /// Geoms enabled at the end of the step.
    pub geom_count: usize,
    /// Unbroken joints at the end of the step.
    pub joint_count: usize,
    /// Per-phase state digests in pipeline order (see [`crate::digest`]);
    /// `Some` only when [`crate::WorldConfig::digests`] is on.
    pub digests: Option<[u64; 5]>,
    /// Bodies asleep at the end of the step (see [`crate::sleep`]).
    pub sleeping_bodies: usize,
    /// Islands asleep at the end of the step.
    pub sleeping_islands: usize,
}

impl StepProfile {
    /// Total contact points generated this step.
    pub fn total_contacts(&self) -> usize {
        self.pairs.iter().map(|p| p.contacts).sum()
    }

    /// Fine-grain task count per phase (paper Figure 11): object-pairs for
    /// Narrowphase, DOF removed for Island Processing, vertices for Cloth.
    pub fn fg_tasks(&self, phase: PhaseKind) -> usize {
        match phase {
            PhaseKind::Narrowphase => self.pairs.len(),
            PhaseKind::IslandProcessing => self.islands.iter().map(|i| i.dof_removed).sum(),
            PhaseKind::Cloth => self.cloths.iter().map(|c| c.stats.vertices).sum(),
            _ => 0,
        }
    }

    /// Wall time of a phase.
    pub fn wall_time(&self, phase: PhaseKind) -> Duration {
        let idx = PhaseKind::ALL
            .iter()
            .position(|p| *p == phase)
            .expect("phase");
        self.wall[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_names_match_paper() {
        assert_eq!(PhaseKind::Broadphase.name(), "Broadphase");
        assert_eq!(PhaseKind::IslandCreation.name(), "Island Serial");
        assert!(PhaseKind::Broadphase.is_serial());
        assert!(PhaseKind::IslandCreation.is_serial());
        assert!(!PhaseKind::Narrowphase.is_serial());
    }

    #[test]
    fn region_labels_match_attribution_convention() {
        for phase in PhaseKind::ALL {
            assert_eq!(
                phase.region_label(),
                format!(
                    "{}{}",
                    phase.name(),
                    parallax_telemetry::attribution::REGION_SUFFIX
                ),
                "attribution matches on the \" region\" suffix"
            );
        }
    }

    #[test]
    fn fg_tasks_counts() {
        let mut p = StepProfile::default();
        p.pairs.push(PairWork {
            geom_a: 0,
            geom_b: 1,
            body_a: 0,
            body_b: 1,
            shape_a: "sphere",
            shape_b: "sphere",
            contacts: 1,
            active: true,
        });
        p.islands.push(IslandWork {
            bodies: vec![0, 1],
            joints: vec![],
            manifolds: 1,
            rows: 3,
            dof_removed: 3,
            iterations: 20,
            residual: 0.0,
            queued: false,
            lambda_digest: 0,
        });
        p.cloths.push(ClothWork {
            cloth: 0,
            stats: ClothStats {
                vertices: 25,
                ..Default::default()
            },
            colliders: 0,
        });
        assert_eq!(p.fg_tasks(PhaseKind::Narrowphase), 1);
        assert_eq!(p.fg_tasks(PhaseKind::IslandProcessing), 3);
        assert_eq!(p.fg_tasks(PhaseKind::Cloth), 25);
        assert_eq!(p.fg_tasks(PhaseKind::Broadphase), 0);
        assert_eq!(p.total_contacts(), 1);
    }
}
