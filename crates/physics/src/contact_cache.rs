//! Cross-step contact persistence for solver warm starting.
//!
//! The paper sizes Island Processing around 20 PGS iterations per island
//! (§3.1) — the accuracy/speed knob of the whole architecture. Real-time
//! engines in the PhysX/ODE lineage stretch those iterations much further
//! by exploiting temporal coherence: a resting contact this step is
//! almost always the same resting contact next step, so the accumulated
//! impulse of the previous solve is an excellent initial guess for the
//! current one. [`ContactCache`] stores those accumulated impulses keyed
//! by geom pair, matches points across steps by narrow-phase feature id
//! (with a distance fallback), and ages out pairs that stop touching.
//!
//! # Determinism
//!
//! The cache is *frozen* during the parallel island-processing phase:
//! `solve_island` closures only read it ([`ContactCache::pair`] takes
//! `&self`), and every write — [`ContactCache::store`] and
//! [`ContactCache::end_step`] — happens on the calling thread, in island
//! order, after the executor has joined. Reads see the same snapshot on
//! 1, 2 or 8 threads and writes are ordered by data, not by thread
//! timing, so warm starting preserves the pipeline's bit-exact
//! cross-thread determinism by construction (see `tests/determinism.rs`).

use std::collections::HashMap;

use parallax_math::Vec3;

use crate::contact::{ContactManifold, ContactPoint};
use crate::shape::GeomId;

/// Steps a pair survives in the cache without being refreshed before it
/// is evicted. Small: a contact that has been gone for a few steps has
/// stale impulses anyway.
pub const DEFAULT_MAX_AGE: u32 = 4;

/// Distance (m) within which an unmatched new point may adopt a cached
/// point whose feature id changed (e.g. a clipped face vertex that was
/// renumbered as the boxes slid). Roughly one contact-slop diameter per
/// 60 Hz step of sliding.
pub const MATCH_DISTANCE: f32 = 0.05;

/// One cached contact point: identity plus accumulated impulses.
#[derive(Debug, Clone, Copy, Default)]
pub struct CachedPoint {
    /// Feature id the narrow phase assigned when the point was stored.
    pub feature: u32,
    /// World-space position when stored (the distance-fallback key).
    pub position: Vec3,
    /// Accumulated `[normal, tangent1, tangent2]` impulses of the last
    /// solve.
    pub lambdas: [f32; 3],
}

/// Cached state for one geom pair.
#[derive(Debug, Clone, Default)]
pub struct PairCache {
    points: Vec<CachedPoint>,
    /// Steps since this pair was last stored (0 = stored this step).
    age: u32,
}

impl PairCache {
    /// The cached points.
    pub fn points(&self) -> &[CachedPoint] {
        &self.points
    }

    /// Steps since the pair was last refreshed.
    pub fn age(&self) -> u32 {
        self.age
    }
}

/// Per-manifold warm-start seeding outcome.
#[derive(Debug, Default, Clone, Copy)]
pub struct WarmStats {
    /// New points matched to a cached impulse.
    pub hits: u32,
    /// New points with no usable cached impulse (seeded at zero).
    pub misses: u32,
}

impl WarmStats {
    /// Accumulates another manifold's outcome.
    pub fn merge(&mut self, other: WarmStats) {
        self.hits += other.hits;
        self.misses += other.misses;
    }
}

/// Seeds `[normal, t1, t2]` impulses for every point of `manifold` from
/// `pair` (the cache entry for its geom pair, if any). Points are matched
/// by feature id first, then by nearest stored position within
/// [`MATCH_DISTANCE`]; each cached point seeds at most one new point.
/// Unmatched points seed at zero and count as misses.
pub fn seed_lambdas(
    pair: Option<&PairCache>,
    manifold: &ContactManifold,
) -> ([[f32; 3]; ContactManifold::MAX_POINTS], WarmStats) {
    let mut seeds = [[0.0f32; 3]; ContactManifold::MAX_POINTS];
    let mut stats = WarmStats::default();
    let Some(pair) = pair else {
        stats.misses = manifold.len() as u32;
        return (seeds, stats);
    };
    let mut used = [false; ContactManifold::MAX_POINTS];
    // Pass 1: exact feature matches.
    let mut matched = [false; ContactManifold::MAX_POINTS];
    for (i, cp) in manifold.points.iter().enumerate() {
        if let Some(j) = pair
            .points
            .iter()
            .enumerate()
            .position(|(j, c)| !used[j] && c.feature == cp.feature)
        {
            used[j] = true;
            matched[i] = true;
            seeds[i] = pair.points[j].lambdas;
        }
    }
    // Pass 2: distance fallback for renumbered features.
    for (i, cp) in manifold.points.iter().enumerate() {
        if matched[i] {
            stats.hits += 1;
            continue;
        }
        let mut best: Option<(usize, f32)> = None;
        for (j, c) in pair.points.iter().enumerate() {
            if used[j] {
                continue;
            }
            let d2 = (c.position - cp.position).length_squared();
            if d2 <= MATCH_DISTANCE * MATCH_DISTANCE && best.is_none_or(|(_, b)| d2 < b) {
                best = Some((j, d2));
            }
        }
        match best {
            Some((j, _)) => {
                used[j] = true;
                seeds[i] = pair.points[j].lambdas;
                stats.hits += 1;
            }
            None => stats.misses += 1,
        }
    }
    (seeds, stats)
}

/// Extracts the cache key for a manifold's geom pair (narrow-phase
/// already orders manifolds `geom_a`/`geom_b` as emitted by broad-phase,
/// which is `a < b`, but normalize defensively).
#[inline]
pub fn pair_key(m: &ContactManifold) -> (GeomId, GeomId) {
    if m.geom_a <= m.geom_b {
        (m.geom_a, m.geom_b)
    } else {
        (m.geom_b, m.geom_a)
    }
}

/// The persistent contact cache, owned by the step pipeline.
#[derive(Debug, Default)]
pub struct ContactCache {
    map: HashMap<(GeomId, GeomId), PairCache>,
    scratch: Vec<CachedPoint>,
}

impl ContactCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        ContactCache::default()
    }

    /// Number of cached pairs.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when no pair is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drops every entry (warm-starting ablation off-switch).
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// The cached state for a pair, if any. Safe to call concurrently
    /// from the parallel island solves: `&self` only.
    #[inline]
    pub fn pair(&self, key: (GeomId, GeomId)) -> Option<&PairCache> {
        self.map.get(&key)
    }

    /// Stores the post-solve impulses for one pair, resetting its age.
    /// Caller-thread only (see the module's determinism note).
    pub fn store(
        &mut self,
        key: (GeomId, GeomId),
        points: impl IntoIterator<Item = (ContactPoint, [f32; 3])>,
    ) {
        self.scratch.clear();
        self.scratch
            .extend(points.into_iter().map(|(cp, lambdas)| CachedPoint {
                feature: cp.feature,
                position: cp.position,
                lambdas,
            }));
        let entry = self.map.entry(key).or_default();
        entry.age = 0;
        entry.points.clear();
        entry.points.extend_from_slice(&self.scratch);
    }

    /// Every cached pair in sorted key order — the deterministic
    /// iteration used by state digests and snapshots (the map itself
    /// iterates in hash order, which differs between processes).
    pub fn sorted_entries(&self) -> Vec<(&(GeomId, GeomId), &PairCache)> {
        let mut entries: Vec<_> = self.map.iter().collect();
        entries.sort_unstable_by_key(|(key, _)| **key);
        entries
    }

    /// Rebuilds one entry verbatim (snapshot restore).
    pub(crate) fn insert_raw(&mut self, key: (GeomId, GeomId), age: u32, points: Vec<CachedPoint>) {
        self.map.insert(key, PairCache { points, age });
    }

    /// Ages every entry and evicts pairs unmatched for more than
    /// `max_age` steps or whose geoms are no longer live (`is_live`
    /// should report a geom as dead when it was disabled or removed).
    pub fn end_step(&mut self, max_age: u32, is_live: impl FnMut(GeomId) -> bool) {
        self.end_step_pinned(max_age, is_live, |_| false);
    }

    /// [`end_step`](ContactCache::end_step) with a pin predicate: pairs
    /// where either geom is pinned (its body sleeps — narrow-phase skips
    /// the pair, so the cache would otherwise age it out while the
    /// impulses are still exactly right) neither age nor evict, except
    /// when a geom dies.
    pub fn end_step_pinned(
        &mut self,
        max_age: u32,
        mut is_live: impl FnMut(GeomId) -> bool,
        mut is_pinned: impl FnMut(GeomId) -> bool,
    ) {
        self.map.retain(|&(a, b), pair| {
            if !(is_live(a) && is_live(b)) {
                return false;
            }
            if is_pinned(a) || is_pinned(b) {
                return true;
            }
            pair.age += 1;
            pair.age <= max_age
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(feature: u32, pos: Vec3) -> ContactPoint {
        ContactPoint {
            position: pos,
            normal: Vec3::UNIT_Y,
            depth: 0.01,
            feature,
        }
    }

    fn manifold(points: &[ContactPoint]) -> ContactManifold {
        let mut m = ContactManifold::new(GeomId(0), GeomId(1));
        for &p in points {
            m.push(p);
        }
        m
    }

    #[test]
    fn feature_match_transfers_lambdas() {
        let mut cache = ContactCache::new();
        let key = (GeomId(0), GeomId(1));
        cache.store(key, [(point(7, Vec3::ZERO), [2.0, 0.5, -0.5])]);
        let m = manifold(&[point(7, Vec3::new(1.0, 0.0, 0.0))]);
        // Position moved a metre but the feature id survives: still a hit.
        let (seeds, stats) = seed_lambdas(cache.pair(key), &m);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 0);
        assert_eq!(seeds[0], [2.0, 0.5, -0.5]);
    }

    #[test]
    fn distance_fallback_matches_renumbered_features() {
        let mut cache = ContactCache::new();
        let key = (GeomId(0), GeomId(1));
        cache.store(key, [(point(3, Vec3::ZERO), [1.5, 0.0, 0.0])]);
        // Feature changed (clip renumbering) but the point barely moved.
        let m = manifold(&[point(9, Vec3::new(0.01, 0.0, 0.0))]);
        let (seeds, stats) = seed_lambdas(cache.pair(key), &m);
        assert_eq!(stats.hits, 1);
        assert_eq!(seeds[0][0], 1.5);
        // Too far away: miss, zero seed.
        let far = manifold(&[point(9, Vec3::new(1.0, 0.0, 0.0))]);
        let (seeds, stats) = seed_lambdas(cache.pair(key), &far);
        assert_eq!(stats.misses, 1);
        assert_eq!(seeds[0], [0.0; 3]);
    }

    #[test]
    fn each_cached_point_seeds_at_most_once() {
        let mut cache = ContactCache::new();
        let key = (GeomId(0), GeomId(1));
        cache.store(key, [(point(1, Vec3::ZERO), [4.0, 0.0, 0.0])]);
        // Two new points share the cached feature; only one may claim it.
        let m = manifold(&[point(1, Vec3::ZERO), point(1, Vec3::new(0.01, 0.0, 0.0))]);
        let (seeds, stats) = seed_lambdas(cache.pair(key), &m);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(seeds[0][0] + seeds[1][0], 4.0);
    }

    #[test]
    fn missing_pair_counts_all_misses() {
        let cache = ContactCache::new();
        let m = manifold(&[point(0, Vec3::ZERO), point(1, Vec3::UNIT_X)]);
        let (seeds, stats) = seed_lambdas(cache.pair((GeomId(0), GeomId(1))), &m);
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 2);
        assert!(seeds.iter().all(|s| *s == [0.0; 3]));
    }

    #[test]
    fn entries_age_out_and_dead_geoms_evict() {
        let mut cache = ContactCache::new();
        let stale = (GeomId(0), GeomId(1));
        let fresh = (GeomId(2), GeomId(3));
        let dead = (GeomId(4), GeomId(5));
        for key in [stale, fresh, dead] {
            cache.store(key, [(point(0, Vec3::ZERO), [1.0, 0.0, 0.0])]);
        }
        // Geom 4 dies immediately.
        cache.end_step(2, |g| g != GeomId(4));
        assert!(cache.pair(dead).is_none());
        assert_eq!(cache.len(), 2);
        // `fresh` keeps being refreshed, `stale` does not.
        for _ in 0..3 {
            cache.store(fresh, [(point(0, Vec3::ZERO), [1.0, 0.0, 0.0])]);
            cache.end_step(2, |_| true);
        }
        assert!(cache.pair(stale).is_none(), "stale pair must age out");
        assert!(cache.pair(fresh).is_some());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn pinned_pairs_do_not_age_but_dead_geoms_still_evict() {
        let mut cache = ContactCache::new();
        let pinned = (GeomId(0), GeomId(1));
        let plain = (GeomId(2), GeomId(3));
        for key in [pinned, plain] {
            cache.store(key, [(point(0, Vec3::ZERO), [1.0, 0.0, 0.0])]);
        }
        // Geom 0 is pinned (sleeping body): its pair outlives max_age.
        for _ in 0..5 {
            cache.end_step_pinned(2, |_| true, |g| g == GeomId(0));
        }
        assert!(cache.pair(pinned).is_some(), "pinned pair must survive");
        assert_eq!(cache.pair(pinned).unwrap().age(), 0);
        assert!(cache.pair(plain).is_none(), "unpinned pair ages out");
        // Death beats pinning.
        cache.end_step_pinned(2, |g| g != GeomId(1), |g| g == GeomId(0));
        assert!(cache.pair(pinned).is_none());
    }

    #[test]
    fn pair_key_normalizes_order() {
        let m = ContactManifold::new(GeomId(9), GeomId(2));
        assert_eq!(pair_key(&m), (GeomId(2), GeomId(9)));
    }
}
