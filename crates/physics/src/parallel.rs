//! Parallel execution: a persistent worker pool with a work-queue model.
//!
//! The paper parallelizes the engine "using pthreads and a work-queue model
//! with persistent worker threads. Pthreads minimize thread overhead, while
//! persistent threads eliminate thread creation and destruction costs."
//! [`WorkerPool`] reproduces that model with crossbeam channels.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Sender};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A pool of persistent worker threads consuming a shared work queue.
///
/// # Examples
///
/// ```
/// use parallax_physics::parallel::WorkerPool;
///
/// let pool = WorkerPool::new(4);
/// let results = pool.par_map(vec![1, 2, 3, 4, 5], |x| x * x);
/// assert_eq!(results, vec![1, 4, 9, 16, 25]);
/// ```
pub struct WorkerPool {
    sender: Option<Sender<Job>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    workers: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers)
            .finish()
    }
}

impl WorkerPool {
    /// Spawns `workers` persistent threads (at least 1).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let (sender, receiver) = unbounded::<Job>();
        let handles = (0..workers)
            .map(|i| {
                let rx = receiver.clone();
                std::thread::Builder::new()
                    .name(format!("parallax-worker-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            job();
                        }
                    })
                    .expect("failed to spawn worker thread")
            })
            .collect();
        WorkerPool {
            sender: Some(sender),
            handles,
            workers,
        }
    }

    /// Number of worker threads.
    #[inline]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Maps `f` over `items` on the pool, preserving order.
    ///
    /// Work is distributed via a shared atomic cursor (work-queue model):
    /// idle workers steal the next index, so imbalanced item costs are
    /// handled automatically.
    pub fn par_map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(T) -> R + Send + Sync + 'static,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let f = Arc::new(f);
        let items: Arc<Vec<parking_lot::Mutex<Option<T>>>> = Arc::new(
            items
                .into_iter()
                .map(|t| parking_lot::Mutex::new(Some(t)))
                .collect(),
        );
        let results: Arc<Vec<parking_lot::Mutex<Option<R>>>> =
            Arc::new((0..n).map(|_| parking_lot::Mutex::new(None)).collect());
        let cursor = Arc::new(AtomicUsize::new(0));
        let (done_tx, done_rx) = unbounded::<()>();

        let jobs = self.workers.min(n);
        for _ in 0..jobs {
            let f = Arc::clone(&f);
            let items = Arc::clone(&items);
            let results = Arc::clone(&results);
            let cursor = Arc::clone(&cursor);
            let done = done_tx.clone();
            self.sender
                .as_ref()
                .expect("pool is alive")
                .send(Box::new(move || {
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        let item = items[i].lock().take().expect("item taken once");
                        let r = f(item);
                        *results[i].lock() = Some(r);
                    }
                    let _ = done.send(());
                }))
                .expect("worker channel open");
        }
        drop(done_tx);
        for _ in 0..jobs {
            done_rx.recv().expect("worker completed");
        }
        // Workers may still hold their Arc clones for a moment after
        // signalling completion, so take the results out through the
        // mutexes rather than unwrapping the Arc.
        results
            .iter()
            .map(|m| m.lock().take().expect("result written"))
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Close the channel; workers exit their recv loop.
        self.sender.take();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Scoped parallel map over borrowed data using one-shot threads.
///
/// Used by the engine for phases that borrow world state (`&` captures).
/// Chunked statically: item `i` goes to thread `i % threads`.
pub fn par_map_scoped<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Send + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let results: Vec<parking_lot::Mutex<Option<R>>> =
        (0..items.len()).map(|_| parking_lot::Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                *results[i].lock() = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().expect("result written"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let pool = WorkerPool::new(4);
        let out = pool.par_map((0..100).collect(), |x: i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_empty() {
        let pool = WorkerPool::new(2);
        let out: Vec<i32> = pool.par_map(Vec::<i32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn par_map_single_worker() {
        let pool = WorkerPool::new(1);
        let out = pool.par_map(vec![5, 6], |x| x + 1);
        assert_eq!(out, vec![6, 7]);
    }

    #[test]
    fn pool_survives_multiple_batches() {
        let pool = WorkerPool::new(3);
        for round in 0..5 {
            let out = pool.par_map(vec![round; 10], |x| x);
            assert_eq!(out, vec![round; 10]);
        }
    }

    #[test]
    fn scoped_map_borrows() {
        let data = vec![1.0f32, 2.0, 3.0, 4.0];
        let out = par_map_scoped(2, &data, |x| x * x);
        assert_eq!(out, vec![1.0, 4.0, 9.0, 16.0]);
    }

    #[test]
    fn scoped_map_single_thread_fallback() {
        let data = vec![7u32];
        let out = par_map_scoped(8, &data, |x| x + 1);
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn imbalanced_work_completes() {
        let pool = WorkerPool::new(4);
        // One expensive item plus many cheap ones (work-queue load balance).
        let items: Vec<u64> = (0..50).map(|i| if i == 0 { 1_000_000 } else { 10 }).collect();
        let out = pool.par_map(items, |n| (0..n).fold(0u64, |a, b| a.wrapping_add(b)));
        assert_eq!(out.len(), 50);
    }
}
