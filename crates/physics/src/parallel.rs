//! Persistent worker-thread executor for the engine's parallel phases.
//!
//! The paper's engine (§6.1) keeps a pool of pthreads alive for the whole
//! run and feeds them phase work through a work queue; threads block on
//! the queue between phases instead of being re-created. [`Executor`]
//! reproduces that model: `World` owns one executor for its lifetime and
//! every parallel phase (narrowphase, island processing, cloth) submits
//! borrowed, scoped jobs to the same threads. Nothing on the step path
//! spawns a thread.
//!
//! Work distribution is chunked: participants (the workers plus the
//! calling thread) claim contiguous chunks of the item range off a shared
//! atomic cursor and write results by item index, so the output order —
//! and therefore the simulation — is identical for any thread count.

use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

use parallax_telemetry as telemetry;

/// Executor-wide telemetry handles, registered once per process.
struct ExecMetrics {
    /// Parallel regions dispatched.
    regions: telemetry::Counter,
    /// Work-cursor chunks claimed (all participants).
    chunks: telemetry::Counter,
    /// Items processed through parallel regions.
    tasks: telemetry::Counter,
    /// Calling-thread nanoseconds spent inside parallel regions.
    caller_busy_ns: telemetry::Counter,
    /// Fallback span label for unlabeled regions.
    default_span: telemetry::SpanName,
}

fn exec_metrics() -> &'static ExecMetrics {
    static M: OnceLock<ExecMetrics> = OnceLock::new();
    M.get_or_init(|| ExecMetrics {
        regions: telemetry::counter("physics.executor.regions"),
        chunks: telemetry::counter("physics.executor.chunks_claimed"),
        tasks: telemetry::counter("physics.executor.tasks"),
        caller_busy_ns: telemetry::counter("physics.executor.caller.busy_ns"),
        default_span: telemetry::span_name("executor.region"),
    })
}

/// Per-worker telemetry: busy/idle counters (merged into the snapshot by
/// name) plus the worker's span track id.
struct WorkerTelemetry {
    busy_ns: telemetry::Counter,
    idle_ns: telemetry::Counter,
    jobs: telemetry::Counter,
    track: u32,
}

impl WorkerTelemetry {
    fn for_worker(i: usize) -> WorkerTelemetry {
        WorkerTelemetry {
            busy_ns: telemetry::counter_named(format!("physics.executor.worker{i}.busy_ns")),
            idle_ns: telemetry::counter_named(format!("physics.executor.worker{i}.idle_ns")),
            jobs: telemetry::counter_named(format!("physics.executor.worker{i}.jobs")),
            track: i as u32,
        }
    }
}

/// A persistent pool of worker threads serving scoped, borrowed jobs.
///
/// Created once (from `WorldConfig::threads`) and reused for every step.
/// `threads` counts the calling thread: `Executor::new(4)` spawns three
/// workers and the caller participates as the fourth.
///
/// ```
/// use parallax_physics::parallel::Executor;
///
/// let exec = Executor::new(4);
/// let mut out = Vec::new();
/// exec.map_into(&[1, 2, 3, 4], &mut out, |x| x * 10);
/// assert_eq!(out, vec![10, 20, 30, 40]);
/// ```
pub struct Executor {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

struct Shared {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutdown: AtomicBool,
}

/// A type-erased pointer to a live `MapState` on the submitting thread's
/// stack plus the monomorphized entry point that knows its real type. The
/// submitting call blocks on [`Latch`] until every job has finished, which
/// keeps the pointee alive for the job's whole execution.
struct Job {
    state: *const (),
    run: unsafe fn(*const ()),
    latch: Arc<Latch>,
    /// Interned label for the span this job records on its worker's track.
    span: telemetry::SpanName,
}

// Safety: `state` points at a `MapState` whose closure is `Sync` (required
// by the public `map_*` bounds) and whose results are `Send`; the
// submitting thread keeps it alive until the latch opens.
unsafe impl Send for Job {}

/// Completion barrier: opens once `count_down` has been called `n` times.
struct Latch {
    remaining: Mutex<usize>,
    opened: Condvar,
}

impl Latch {
    fn new(n: usize) -> Self {
        Latch {
            remaining: Mutex::new(n),
            opened: Condvar::new(),
        }
    }

    fn count_down(&self) {
        let mut left = self.remaining.lock().unwrap();
        *left -= 1;
        if *left == 0 {
            self.opened.notify_all();
        }
    }

    fn wait(&self) {
        let mut left = self.remaining.lock().unwrap();
        while *left > 0 {
            left = self.opened.wait(left).unwrap();
        }
    }
}

/// Shared per-call state for one parallel map, type-erased behind [`Job`].
/// Raw pointers (not references) so the struct has no lifetime parameters
/// and a plain `unsafe fn(*const ())` can reconstruct it.
struct MapState<R, F> {
    n: usize,
    out: *mut R,
    cursor: AtomicUsize,
    chunk: usize,
    f: *const F,
    panicked: AtomicBool,
}

impl<R, F: Fn(usize) -> R> MapState<R, F> {
    /// Claims chunks off the cursor and fills `out[i]` for each index `i`.
    /// Writing by index makes the result independent of which participant
    /// processed which chunk.
    unsafe fn work(&self) {
        let f = &*self.f;
        loop {
            let start = self.cursor.fetch_add(self.chunk, Ordering::Relaxed);
            if start >= self.n {
                return;
            }
            if telemetry::enabled() {
                exec_metrics().chunks.add(1);
            }
            let end = (start + self.chunk).min(self.n);
            for i in start..end {
                match panic::catch_unwind(AssertUnwindSafe(|| f(i))) {
                    Ok(r) => self.out.add(i).write(r),
                    Err(_) => {
                        // Keep draining so other items still complete and
                        // the latch opens; the caller re-panics.
                        self.panicked.store(true, Ordering::Release);
                    }
                }
            }
        }
    }
}

unsafe fn run_map<R, F: Fn(usize) -> R>(state: *const ()) {
    (*(state as *const MapState<R, F>)).work();
}

impl Executor {
    /// Builds an executor where `threads` participants (including the
    /// caller) serve each parallel region. `threads <= 1` spawns nothing
    /// and runs every region serially on the caller.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (1..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("physics-worker-{i}"))
                    .spawn(move || worker_loop(&shared, WorkerTelemetry::for_worker(i)))
                    .expect("spawn physics worker")
            })
            .collect();
        Executor {
            shared,
            workers,
            threads,
        }
    }

    /// Number of participants (workers + caller) serving parallel regions.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `items`, writing results into `out` (cleared first)
    /// in item order. The caller participates; workers are fed through the
    /// persistent queue. Deterministic for any thread count.
    pub fn map_into<T, R, F>(&self, items: &[T], out: &mut Vec<R>, f: F)
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.map_indexed_into(items.len(), out, exec_metrics().default_span, |i| {
            f(&items[i])
        });
    }

    /// [`map_into`](Self::map_into) with a span label: every job the
    /// region runs records a span named `label` on its worker's track, so
    /// the exported trace shows which phase each worker was serving.
    pub fn map_into_labeled<T, R, F>(&self, label: &str, items: &[T], out: &mut Vec<R>, f: F)
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.map_indexed_into(items.len(), out, telemetry::span_name(label), |i| {
            f(&items[i])
        });
    }

    /// Like [`map_into`](Self::map_into) but hands the closure disjoint
    /// `&mut` access to each item (plus the item's index), for phases that
    /// update in place (cloth).
    pub fn map_mut_into<T, R, F>(&self, items: &mut [T], out: &mut Vec<R>, f: F)
    where
        T: Send,
        R: Send,
        F: Fn(usize, &mut T) -> R + Sync,
    {
        self.map_mut_into_span(items, out, exec_metrics().default_span, f);
    }

    /// [`map_mut_into`](Self::map_mut_into) with a span label (see
    /// [`map_into_labeled`](Self::map_into_labeled)).
    pub fn map_mut_into_labeled<T, R, F>(
        &self,
        label: &str,
        items: &mut [T],
        out: &mut Vec<R>,
        f: F,
    ) where
        T: Send,
        R: Send,
        F: Fn(usize, &mut T) -> R + Sync,
    {
        self.map_mut_into_span(items, out, telemetry::span_name(label), f);
    }

    fn map_mut_into_span<T, R, F>(
        &self,
        items: &mut [T],
        out: &mut Vec<R>,
        span: telemetry::SpanName,
        f: F,
    ) where
        T: Send,
        R: Send,
        F: Fn(usize, &mut T) -> R + Sync,
    {
        let base = SendPtr(items.as_mut_ptr());
        let n = items.len();
        // Safety: the cursor hands out each index exactly once, so the
        // `&mut` borrows are disjoint; the slice outlives the call.
        self.map_indexed_into(n, out, span, move |i| f(i, unsafe { &mut *base.at(i) }));
    }

    /// Shared implementation: maps an index-addressed closure over `0..n`.
    fn map_indexed_into<R, F>(&self, n: usize, out: &mut Vec<R>, span: telemetry::SpanName, f: F)
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        out.clear();
        if n == 0 {
            return;
        }
        if telemetry::enabled() {
            let m = exec_metrics();
            m.regions.add(1);
            m.tasks.add(n as u64);
        }
        if self.threads <= 1 || n == 1 {
            let start = maybe_now();
            out.extend((0..n).map(f));
            record_caller(span, start);
            return;
        }
        out.reserve(n);

        // Chunks sized for ~4 claims per participant: large enough to keep
        // cursor contention negligible, small enough to balance load.
        let state = MapState {
            n,
            out: out.as_mut_ptr(),
            cursor: AtomicUsize::new(0),
            chunk: n.div_ceil(self.threads * 4).max(1),
            f: &f,
            panicked: AtomicBool::new(false),
        };

        let helpers = (self.threads - 1).min(n - 1);
        let latch = Arc::new(Latch::new(helpers));
        {
            let mut queue = self.shared.queue.lock().unwrap();
            for _ in 0..helpers {
                queue.push_back(Job {
                    state: &state as *const MapState<R, F> as *const (),
                    run: run_map::<R, F>,
                    latch: Arc::clone(&latch),
                    span,
                });
            }
        }
        self.shared.available.notify_all();

        // Participate, then wait for the workers; the latch keeps `state`,
        // `out`'s buffer and `f` alive until every job is done with them.
        let start = maybe_now();
        unsafe { state.work() };
        record_caller(span, start);
        latch.wait();

        if state.panicked.load(Ordering::Acquire) {
            // Written results are leaked (len stays 0), never read.
            panic!("worker panicked in Executor parallel region");
        }
        // Safety: every index in 0..n was written exactly once.
        unsafe { out.set_len(n) };
    }
}

/// Raw pointer wrapper that may cross into the `Sync` closure. Element
/// access goes through [`SendPtr::at`] so closures capture the wrapper
/// (which is `Sync`), not the raw pointer field.
struct SendPtr<T>(*mut T);

impl<T> SendPtr<T> {
    fn at(&self, i: usize) -> *mut T {
        unsafe { self.0.add(i) }
    }
}

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        SendPtr(self.0)
    }
}

// Safety: only used to derive disjoint per-index `&mut` borrows of a
// `Send` element type (see `map_mut_into`).
unsafe impl<T: Send> Sync for SendPtr<T> {}
unsafe impl<T: Send> Send for SendPtr<T> {}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("threads", &self.threads)
            .finish()
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.available.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Current telemetry clock, or `u64::MAX` as the "disabled" sentinel so
/// the disabled path skips the clock read entirely.
#[inline]
fn maybe_now() -> u64 {
    if telemetry::enabled() {
        telemetry::now_ns()
    } else {
        u64::MAX
    }
}

/// Closes a calling-thread region opened at `start_ns` (track 0).
#[inline]
fn record_caller(span: telemetry::SpanName, start_ns: u64) {
    if start_ns == u64::MAX || !telemetry::enabled() {
        return;
    }
    let dur = telemetry::now_ns().saturating_sub(start_ns);
    telemetry::span_record(span, 0, start_ns, dur);
    exec_metrics().caller_busy_ns.add(dur);
}

fn worker_loop(shared: &Shared, t: WorkerTelemetry) {
    loop {
        let wait_start = maybe_now();
        let job = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                queue = shared.available.wait(queue).unwrap();
            }
        };
        let busy_start = maybe_now();
        if wait_start != u64::MAX && busy_start != u64::MAX {
            t.idle_ns.add(busy_start.saturating_sub(wait_start));
        }
        // Safety: the submitting thread blocks on the latch until this
        // job's `run` returns, keeping the pointee alive.
        unsafe { (job.run)(job.state) };
        if busy_start != u64::MAX && telemetry::enabled() {
            let dur = telemetry::now_ns().saturating_sub(busy_start);
            t.busy_ns.add(dur);
            t.jobs.add(1);
            telemetry::span_record(job.span, t.track, busy_start, dur);
        }
        job.latch.count_down();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn maps_in_item_order() {
        let exec = Executor::new(4);
        let items: Vec<u64> = (0..1000).collect();
        let mut out = Vec::new();
        exec.map_into(&items, &mut out, |x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_runs_serially() {
        let exec = Executor::new(1);
        let mut out = Vec::new();
        exec.map_into(&[5, 6, 7], &mut out, |x| x + 1);
        assert_eq!(out, vec![6, 7, 8]);
    }

    #[test]
    fn empty_input_gives_empty_output() {
        let exec = Executor::new(4);
        let mut out: Vec<i32> = vec![1, 2, 3];
        exec.map_into(&[], &mut out, |x: &i32| *x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let exec = Executor::new(8);
        let mut out = Vec::new();
        exec.map_into(&[1, 2], &mut out, |x| x * x);
        assert_eq!(out, vec![1, 4]);
    }

    #[test]
    fn reused_across_many_calls() {
        let exec = Executor::new(3);
        let mut out = Vec::new();
        for round in 0..50u64 {
            let items: Vec<u64> = (0..97).collect();
            exec.map_into(&items, &mut out, |x| x + round);
            assert_eq!(out.len(), 97);
            assert_eq!(out[13], 13 + round);
        }
    }

    #[test]
    fn all_participants_see_every_item_once() {
        let exec = Executor::new(4);
        let hits: Vec<AtomicU32> = (0..500).map(|_| AtomicU32::new(0)).collect();
        let items: Vec<usize> = (0..500).collect();
        let mut out = Vec::new();
        exec.map_into(&items, &mut out, |&i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
            i
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn map_mut_gives_disjoint_mutable_access() {
        let exec = Executor::new(4);
        let mut items: Vec<u64> = (0..256).collect();
        let mut out = Vec::new();
        exec.map_mut_into(&mut items, &mut out, |i, x| {
            assert_eq!(*x, i as u64);
            *x += 1;
            *x
        });
        assert_eq!(items, (1..=256).collect::<Vec<u64>>());
        assert_eq!(out, items);
    }

    #[test]
    fn matches_serial_result_for_any_thread_count() {
        let items: Vec<u64> = (0..313).collect();
        let expected: Vec<u64> = items.iter().map(|x| x.wrapping_mul(31) ^ 7).collect();
        for threads in [1, 2, 3, 8] {
            let exec = Executor::new(threads);
            let mut out = Vec::new();
            exec.map_into(&items, &mut out, |x| x.wrapping_mul(31) ^ 7);
            assert_eq!(out, expected, "threads = {threads}");
        }
    }

    #[test]
    fn labeled_maps_match_unlabeled() {
        let exec = Executor::new(3);
        let items: Vec<u64> = (0..128).collect();
        let mut out = Vec::new();
        exec.map_into_labeled("test.region", &items, &mut out, |x| x * 3);
        assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
        let mut items2 = items.clone();
        exec.map_mut_into_labeled("test.region", &mut items2, &mut out, |_, x| {
            *x += 1;
            *x
        });
        assert_eq!(out, items.iter().map(|x| x + 1).collect::<Vec<_>>());
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let exec = Executor::new(4);
        let items: Vec<u32> = (0..64).collect();
        let mut out = Vec::new();
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            exec.map_into(&items, &mut out, |&x| {
                assert!(x != 33, "boom");
                x
            });
        }));
        assert!(result.is_err());
        // The executor must survive a panicked region and stay usable.
        let mut out2 = Vec::new();
        exec.map_into(&items, &mut out2, |&x| x);
        assert_eq!(out2.len(), 64);
    }
}
