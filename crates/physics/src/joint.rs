//! Joints: permanent constraints (ball, hinge, slider, fixed) and the
//! transient contact joints created each step by narrow-phase.
//!
//! Breakable joints (paper §4, Table 2) accumulate applied load; when the
//! load exceeds a threshold — or one strong impulse does — the joint breaks
//! and is removed from the constraint graph.

use parallax_math::Vec3;
use serde::{Deserialize, Serialize};

use crate::body::BodyId;

/// Identifier of a joint inside a world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JointId(pub u32);

impl JointId {
    /// Returns the raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The kind of a permanent joint.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum JointKind {
    /// Ball-and-socket: anchors coincide (3 constraint rows).
    Ball {
        /// Anchor in body-A local space.
        anchor_a: Vec3,
        /// Anchor in body-B local space.
        anchor_b: Vec3,
    },
    /// Hinge: ball + rotation limited to one axis (5 rows).
    Hinge {
        /// Anchor in body-A local space.
        anchor_a: Vec3,
        /// Anchor in body-B local space.
        anchor_b: Vec3,
        /// Hinge axis in body-A local space (unit).
        axis_a: Vec3,
        /// Hinge axis in body-B local space (unit).
        axis_b: Vec3,
    },
    /// Slider: relative motion restricted to one translation axis (5 rows).
    ///
    /// Body B's origin may slide along `axis_a` through the anchor point
    /// `anchor_a` (both in body-A local space). The suspension spring in
    /// [`crate::WorldConfig`] acts on the displacement from the anchor.
    Slider {
        /// Slide axis in body-A local space (unit).
        axis_a: Vec3,
        /// Rest position of body B's origin, in body-A local space.
        anchor_a: Vec3,
    },
    /// Fixed: full weld of the two frames (6 rows).
    Fixed {
        /// Anchor in body-A local space.
        anchor_a: Vec3,
        /// Anchor in body-B local space.
        anchor_b: Vec3,
    },
}

impl JointKind {
    /// Number of degrees of freedom this joint removes (constraint rows).
    pub fn dof_removed(&self) -> usize {
        match self {
            JointKind::Ball { .. } => 3,
            JointKind::Hinge { .. } => 5,
            JointKind::Slider { .. } => 5,
            JointKind::Fixed { .. } => 6,
        }
    }

    /// A short stable name for traces.
    pub fn name(&self) -> &'static str {
        match self {
            JointKind::Ball { .. } => "ball",
            JointKind::Hinge { .. } => "hinge",
            JointKind::Slider { .. } => "slider",
            JointKind::Fixed { .. } => "fixed",
        }
    }
}

/// A permanent joint connecting two bodies.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Joint {
    pub(crate) kind: JointKind,
    pub(crate) body_a: BodyId,
    pub(crate) body_b: BodyId,
    /// Breaking threshold on per-step applied impulse magnitude; `None`
    /// means unbreakable.
    pub(crate) break_threshold: Option<f32>,
    /// Accumulated fatigue load (decays each step, grows with applied
    /// impulses).
    pub(crate) accumulated_load: f32,
    pub(crate) broken: bool,
    /// Impulse applied by the solver in the most recent step.
    pub(crate) last_impulse: f32,
}

impl Joint {
    /// Creates a joint of `kind` between two bodies.
    pub fn new(kind: JointKind, body_a: BodyId, body_b: BodyId) -> Self {
        Joint {
            kind,
            body_a,
            body_b,
            break_threshold: None,
            accumulated_load: 0.0,
            broken: false,
            last_impulse: 0.0,
        }
    }

    /// Makes the joint breakable at the given impulse threshold.
    pub fn breakable(mut self, threshold: f32) -> Self {
        debug_assert!(threshold > 0.0);
        self.break_threshold = Some(threshold);
        self
    }

    /// The joint kind.
    #[inline]
    pub fn kind(&self) -> &JointKind {
        &self.kind
    }

    /// First connected body.
    #[inline]
    pub fn body_a(&self) -> BodyId {
        self.body_a
    }

    /// Second connected body.
    #[inline]
    pub fn body_b(&self) -> BodyId {
        self.body_b
    }

    /// Whether the joint has broken.
    #[inline]
    pub fn is_broken(&self) -> bool {
        self.broken
    }

    /// Impulse magnitude the solver applied through this joint last step.
    #[inline]
    pub fn last_impulse(&self) -> f32 {
        self.last_impulse
    }

    /// Fatigue check (paper: "joints are broken by accumulation of force or
    /// a single strong force exceeding a predetermined threshold").
    ///
    /// Returns `true` if the joint breaks this step.
    pub(crate) fn update_break(&mut self, step_impulse: f32) -> bool {
        self.last_impulse = step_impulse;
        let Some(threshold) = self.break_threshold else {
            return false;
        };
        if self.broken {
            return false;
        }
        // Single-impulse break.
        if step_impulse > threshold {
            self.broken = true;
            return true;
        }
        // Fatigue: loads above 40% of the threshold accumulate; the rest
        // decays.
        let fatigue = (step_impulse - 0.4 * threshold).max(0.0);
        self.accumulated_load = (self.accumulated_load * 0.95 + fatigue).max(0.0);
        if self.accumulated_load > 3.0 * threshold {
            self.broken = true;
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ball() -> JointKind {
        JointKind::Ball {
            anchor_a: Vec3::ZERO,
            anchor_b: Vec3::ZERO,
        }
    }

    #[test]
    fn dof_removed_per_kind() {
        assert_eq!(ball().dof_removed(), 3);
        assert_eq!(
            JointKind::Hinge {
                anchor_a: Vec3::ZERO,
                anchor_b: Vec3::ZERO,
                axis_a: Vec3::UNIT_X,
                axis_b: Vec3::UNIT_X,
            }
            .dof_removed(),
            5
        );
        assert_eq!(
            JointKind::Slider {
                axis_a: Vec3::UNIT_X,
                anchor_a: Vec3::ZERO,
            }
            .dof_removed(),
            5
        );
        assert_eq!(
            JointKind::Fixed {
                anchor_a: Vec3::ZERO,
                anchor_b: Vec3::ZERO
            }
            .dof_removed(),
            6
        );
    }

    #[test]
    fn unbreakable_joint_never_breaks() {
        let mut j = Joint::new(ball(), BodyId(0), BodyId(1));
        for _ in 0..1000 {
            assert!(!j.update_break(1e9));
        }
        assert!(!j.is_broken());
    }

    #[test]
    fn single_strong_impulse_breaks() {
        let mut j = Joint::new(ball(), BodyId(0), BodyId(1)).breakable(10.0);
        assert!(!j.update_break(9.0));
        assert!(j.update_break(11.0));
        assert!(j.is_broken());
        // Subsequent updates report no *new* break.
        assert!(!j.update_break(100.0));
    }

    #[test]
    fn fatigue_accumulates_to_break() {
        let mut j = Joint::new(ball(), BodyId(0), BodyId(1)).breakable(10.0);
        let mut broke = false;
        for _ in 0..100 {
            if j.update_break(8.0) {
                broke = true;
                break;
            }
        }
        assert!(broke, "sustained 80% load should fatigue the joint");
    }

    #[test]
    fn light_load_decays_without_breaking() {
        let mut j = Joint::new(ball(), BodyId(0), BodyId(1)).breakable(10.0);
        for _ in 0..10_000 {
            assert!(!j.update_break(3.0), "sub-threshold load must not break");
        }
    }
}
