//! Explosions (paper Table 2): explosive bodies become blast volumes on
//! contact; blast volumes push bodies radially during their lifetime and
//! shatter pre-fractured objects.

use parallax_math::Vec3;
use serde::{Deserialize, Serialize};

use crate::body::BodyId;

/// Parameters for explosive bodies.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ExplosionConfig {
    /// Radius of the blast sphere that replaces the explosive body.
    pub blast_radius: f32,
    /// Number of steps the blast volume persists.
    pub duration_steps: u32,
    /// Impulse applied at the blast centre, falling off linearly to the
    /// radius (kg·m/s).
    pub impulse: f32,
}

impl Default for ExplosionConfig {
    fn default() -> Self {
        ExplosionConfig {
            blast_radius: 4.0,
            duration_steps: 10,
            impulse: 60.0,
        }
    }
}

/// A live blast volume.
#[derive(Debug, Clone, Copy)]
pub struct BlastVolume {
    /// Body acting as the (disabled-collision-response) blast sphere.
    pub body: BodyId,
    /// World-space centre.
    pub center: Vec3,
    /// Blast radius.
    pub radius: f32,
    /// Remaining steps before the volume is disabled.
    pub steps_left: u32,
    /// Impulse at the centre.
    pub impulse: f32,
    /// `true` until the end of the step the blast was created in; the
    /// world skips the first tick so a blast acts for its full duration.
    pub fresh: bool,
}

impl BlastVolume {
    /// Radial impulse applied to a body whose centre sits at `pos`.
    ///
    /// Linear falloff to zero at the blast radius; zero outside it.
    pub fn impulse_at(&self, pos: Vec3) -> Vec3 {
        let d = pos - self.center;
        let dist = d.length();
        if dist >= self.radius {
            return Vec3::ZERO;
        }
        let falloff = 1.0 - dist / self.radius;
        let dir = if dist > 1e-6 { d / dist } else { Vec3::UNIT_Y };
        dir * (self.impulse * falloff)
    }

    /// Advances the volume by one step; returns `true` while still active.
    ///
    /// The step the blast was created in does not count against its
    /// duration (it was created mid-step and has not acted yet).
    pub fn tick(&mut self) -> bool {
        if self.fresh {
            self.fresh = false;
            return true;
        }
        if self.steps_left == 0 {
            return false;
        }
        self.steps_left -= 1;
        self.steps_left > 0
    }

    /// `true` if `pos` lies inside the blast sphere.
    pub fn contains(&self, pos: Vec3) -> bool {
        (pos - self.center).length_squared() <= self.radius * self.radius
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blast() -> BlastVolume {
        BlastVolume {
            body: BodyId(0),
            center: Vec3::ZERO,
            radius: 4.0,
            steps_left: 3,
            impulse: 60.0,
            fresh: false,
        }
    }

    #[test]
    fn impulse_decays_radially() {
        let b = blast();
        let near = b.impulse_at(Vec3::new(1.0, 0.0, 0.0));
        let far = b.impulse_at(Vec3::new(3.0, 0.0, 0.0));
        assert!(near.length() > far.length());
        assert!(near.x > 0.0, "impulse points outward");
        assert_eq!(b.impulse_at(Vec3::new(5.0, 0.0, 0.0)), Vec3::ZERO);
    }

    #[test]
    fn impulse_at_center_is_finite() {
        let b = blast();
        let i = b.impulse_at(Vec3::ZERO);
        assert!(i.is_finite());
        assert!((i.length() - 60.0).abs() < 1e-3);
    }

    #[test]
    fn tick_counts_down_and_expires() {
        let mut b = blast();
        assert!(b.tick());
        assert!(b.tick());
        assert!(!b.tick());
        assert!(!b.tick());
    }

    #[test]
    fn fresh_blast_survives_its_creation_step() {
        let mut b = blast();
        b.fresh = true;
        b.steps_left = 1;
        assert!(b.tick(), "creation-step tick must not consume duration");
        assert!(!b.tick(), "then one acting step");
    }

    #[test]
    fn containment() {
        let b = blast();
        assert!(b.contains(Vec3::new(2.0, 2.0, 0.0)));
        assert!(!b.contains(Vec3::new(4.0, 4.0, 0.0)));
    }
}
