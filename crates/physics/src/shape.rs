//! Collision shapes (geoms) and their bounding volumes.
//!
//! The paper reports 116 B of memory per geom; shapes here are stored by
//! value with heavier assets (heightfields, triangle meshes) shared behind
//! `Arc` so geoms stay small.

use std::sync::Arc;

use parallax_math::{Aabb, Mat3, Transform, Vec3};
use serde::{Deserialize, Serialize};

/// Identifier of a geom (collision shape instance) inside a world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GeomId(pub u32);

impl GeomId {
    /// Returns the raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A regular-grid heightfield terrain.
///
/// Heights are sampled on an `nx × nz` grid with spacing `cell`; the field
/// is centred on its local origin in X/Z.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Heightfield {
    nx: usize,
    nz: usize,
    cell: f32,
    heights: Vec<f32>,
    min_height: f32,
    max_height: f32,
}

impl Heightfield {
    /// Creates a heightfield from row-major `heights` (`nx * nz` samples).
    ///
    /// # Panics
    ///
    /// Panics if `heights.len() != nx * nz` or either dimension is < 2.
    pub fn new(nx: usize, nz: usize, cell: f32, heights: Vec<f32>) -> Self {
        assert!(nx >= 2 && nz >= 2, "heightfield must be at least 2x2");
        assert_eq!(heights.len(), nx * nz, "heights must have nx*nz samples");
        let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
        for &h in &heights {
            lo = lo.min(h);
            hi = hi.max(h);
        }
        Heightfield {
            nx,
            nz,
            cell,
            heights,
            min_height: lo,
            max_height: hi,
        }
    }

    /// Grid size along X.
    #[inline]
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Grid size along Z.
    #[inline]
    pub fn nz(&self) -> usize {
        self.nz
    }

    /// World width along X.
    #[inline]
    pub fn width_x(&self) -> f32 {
        (self.nx - 1) as f32 * self.cell
    }

    /// World width along Z.
    #[inline]
    pub fn width_z(&self) -> f32 {
        (self.nz - 1) as f32 * self.cell
    }

    /// Bilinear height sample at local coordinates `(x, z)`.
    ///
    /// Coordinates outside the field clamp to the border.
    pub fn height_at(&self, x: f32, z: f32) -> f32 {
        let fx = ((x + self.width_x() * 0.5) / self.cell).clamp(0.0, (self.nx - 1) as f32);
        let fz = ((z + self.width_z() * 0.5) / self.cell).clamp(0.0, (self.nz - 1) as f32);
        let ix = (fx as usize).min(self.nx - 2);
        let iz = (fz as usize).min(self.nz - 2);
        let tx = fx - ix as f32;
        let tz = fz - iz as f32;
        let h00 = self.heights[iz * self.nx + ix];
        let h10 = self.heights[iz * self.nx + ix + 1];
        let h01 = self.heights[(iz + 1) * self.nx + ix];
        let h11 = self.heights[(iz + 1) * self.nx + ix + 1];
        let a = h00 + (h10 - h00) * tx;
        let b = h01 + (h11 - h01) * tx;
        a + (b - a) * tz
    }

    /// Outward surface normal at local `(x, z)` via central differences.
    pub fn normal_at(&self, x: f32, z: f32) -> Vec3 {
        let e = self.cell * 0.5;
        let dx = self.height_at(x + e, z) - self.height_at(x - e, z);
        let dz = self.height_at(x, z + e) - self.height_at(x, z - e);
        Vec3::new(-dx, 2.0 * e, -dz).normalized()
    }

    /// Local-space bounding box.
    pub fn local_aabb(&self) -> Aabb {
        Aabb::new(
            Vec3::new(
                -self.width_x() * 0.5,
                self.min_height,
                -self.width_z() * 0.5,
            ),
            Vec3::new(self.width_x() * 0.5, self.max_height, self.width_z() * 0.5),
        )
    }

    /// Number of height samples.
    #[inline]
    pub fn sample_count(&self) -> usize {
        self.heights.len()
    }
}

/// An indexed triangle mesh used for static terrain/obstacles.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TriMesh {
    vertices: Vec<Vec3>,
    /// Triangles as vertex-index triples.
    triangles: Vec<[u32; 3]>,
    local_aabb: Aabb,
}

impl TriMesh {
    /// Creates a mesh from vertices and index triples.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn new(vertices: Vec<Vec3>, triangles: Vec<[u32; 3]>) -> Self {
        let n = vertices.len() as u32;
        for t in &triangles {
            assert!(
                t[0] < n && t[1] < n && t[2] < n,
                "triangle index out of range"
            );
        }
        let mut aabb = Aabb::EMPTY;
        for v in &vertices {
            aabb = aabb.union(&Aabb::new(*v, *v));
        }
        TriMesh {
            vertices,
            triangles,
            local_aabb: aabb,
        }
    }

    /// The vertex positions.
    #[inline]
    pub fn vertices(&self) -> &[Vec3] {
        &self.vertices
    }

    /// The triangle index triples.
    #[inline]
    pub fn triangles(&self) -> &[[u32; 3]] {
        &self.triangles
    }

    /// Corner positions of triangle `i`.
    #[inline]
    pub fn triangle(&self, i: usize) -> [Vec3; 3] {
        let t = self.triangles[i];
        [
            self.vertices[t[0] as usize],
            self.vertices[t[1] as usize],
            self.vertices[t[2] as usize],
        ]
    }

    /// Local-space bounding box.
    #[inline]
    pub fn local_aabb(&self) -> Aabb {
        self.local_aabb
    }
}

/// A collision shape.
///
/// # Examples
///
/// ```
/// use parallax_physics::Shape;
/// use parallax_math::Vec3;
///
/// let ball = Shape::sphere(0.5);
/// let brick = Shape::cuboid(Vec3::new(0.5, 0.25, 0.25));
/// assert!(ball.volume() > 0.0 && brick.volume() > 0.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Shape {
    /// Sphere of the given radius.
    Sphere {
        /// Radius (m).
        radius: f32,
    },
    /// Box with the given half-extents.
    Cuboid {
        /// Half-extent along each local axis.
        half: Vec3,
    },
    /// Capsule aligned with the local Y axis.
    Capsule {
        /// Radius of the cylindrical section and caps.
        radius: f32,
        /// Half the length of the cylindrical section.
        half_len: f32,
    },
    /// Infinite plane `n·x = d` with outward unit normal `n`.
    Plane {
        /// Unit normal.
        normal: Vec3,
        /// Signed offset along the normal.
        offset: f32,
    },
    /// Heightfield terrain (shared, static only).
    Heightfield(Arc<Heightfield>),
    /// Triangle mesh terrain (shared, static only).
    TriMesh(Arc<TriMesh>),
}

impl Shape {
    /// Creates a sphere shape.
    ///
    /// # Panics
    ///
    /// Debug-panics on non-positive radius.
    pub fn sphere(radius: f32) -> Shape {
        debug_assert!(radius > 0.0, "sphere radius must be positive");
        Shape::Sphere { radius }
    }

    /// Creates a box shape from half-extents.
    pub fn cuboid(half: Vec3) -> Shape {
        debug_assert!(
            half.x > 0.0 && half.y > 0.0 && half.z > 0.0,
            "box half-extents must be positive"
        );
        Shape::Cuboid { half }
    }

    /// Creates a Y-aligned capsule.
    pub fn capsule(radius: f32, half_len: f32) -> Shape {
        debug_assert!(radius > 0.0 && half_len >= 0.0);
        Shape::Capsule { radius, half_len }
    }

    /// Creates a plane from a (not necessarily unit) normal and offset.
    pub fn plane(normal: Vec3, offset: f32) -> Shape {
        Shape::Plane {
            normal: normal.normalized(),
            offset,
        }
    }

    /// Creates a heightfield shape.
    pub fn heightfield(hf: Heightfield) -> Shape {
        Shape::Heightfield(Arc::new(hf))
    }

    /// Creates a triangle-mesh shape.
    pub fn trimesh(mesh: TriMesh) -> Shape {
        Shape::TriMesh(Arc::new(mesh))
    }

    /// Inertia tensor of the shape for unit mass, about its local origin.
    ///
    /// Planes and terrain (static-only shapes) return an identity placeholder.
    pub fn unit_inertia(&self) -> Mat3 {
        match *self {
            Shape::Sphere { radius } => Mat3::from_diagonal(Vec3::splat(0.4 * radius * radius)),
            Shape::Cuboid { half } => {
                let d = half * 2.0;
                let c = 1.0 / 12.0;
                Mat3::from_diagonal(Vec3::new(
                    c * (d.y * d.y + d.z * d.z),
                    c * (d.x * d.x + d.z * d.z),
                    c * (d.x * d.x + d.y * d.y),
                ))
            }
            Shape::Capsule { radius, half_len } => {
                // Approximate with the bounding cylinder for simplicity.
                let h = 2.0 * (half_len + radius);
                let r2 = radius * radius;
                let ix = (3.0 * r2 + h * h) / 12.0;
                Mat3::from_diagonal(Vec3::new(ix, 0.5 * r2, ix))
            }
            Shape::Plane { .. } | Shape::Heightfield(_) | Shape::TriMesh(_) => Mat3::IDENTITY,
        }
    }

    /// Volume of the shape (0 for planes/terrain).
    pub fn volume(&self) -> f32 {
        match *self {
            Shape::Sphere { radius } => 4.0 / 3.0 * std::f32::consts::PI * radius.powi(3),
            Shape::Cuboid { half } => 8.0 * half.x * half.y * half.z,
            Shape::Capsule { radius, half_len } => {
                let r2 = radius * radius;
                std::f32::consts::PI * r2 * (2.0 * half_len)
                    + 4.0 / 3.0 * std::f32::consts::PI * r2 * radius
            }
            Shape::Plane { .. } | Shape::Heightfield(_) | Shape::TriMesh(_) => 0.0,
        }
    }

    /// World-space AABB of the shape under `transform`.
    pub fn aabb(&self, transform: &Transform) -> Aabb {
        match self {
            Shape::Sphere { radius } => {
                Aabb::from_center_half_extents(transform.position, Vec3::splat(*radius))
            }
            Shape::Cuboid { half } => {
                // |R| * half gives the rotated half-extents.
                let m = transform.rotation.to_mat3();
                let ext = Vec3::new(
                    m.rows[0].abs().dot(*half),
                    m.rows[1].abs().dot(*half),
                    m.rows[2].abs().dot(*half),
                );
                Aabb::from_center_half_extents(transform.position, ext)
            }
            Shape::Capsule { radius, half_len } => {
                let axis = transform.apply_vector(Vec3::UNIT_Y) * *half_len;
                let p0 = transform.position - axis;
                let p1 = transform.position + axis;
                Aabb::new(p0.min(p1), p0.max(p1)).expanded(*radius)
            }
            Shape::Plane { .. } => {
                // Planes are infinite; give a huge box so they pair with
                // everything in broad-phase.
                Aabb::from_center_half_extents(Vec3::ZERO, Vec3::splat(1e9))
            }
            Shape::Heightfield(hf) => transform_aabb(transform, hf.local_aabb()),
            Shape::TriMesh(mesh) => transform_aabb(transform, mesh.local_aabb()),
        }
    }

    /// A short, stable name for profiling and traces.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Shape::Sphere { .. } => "sphere",
            Shape::Cuboid { .. } => "box",
            Shape::Capsule { .. } => "capsule",
            Shape::Plane { .. } => "plane",
            Shape::Heightfield(_) => "heightfield",
            Shape::TriMesh(_) => "trimesh",
        }
    }
}

/// Transforms a local AABB into a world-space AABB (conservative).
fn transform_aabb(t: &Transform, local: Aabb) -> Aabb {
    let c = local.center();
    let h = local.half_extents();
    let m = t.rotation.to_mat3();
    let ext = Vec3::new(
        m.rows[0].abs().dot(h),
        m.rows[1].abs().dot(h),
        m.rows[2].abs().dot(h),
    );
    Aabb::from_center_half_extents(t.apply(c), ext)
}

/// A geom: a shape instance attached to a body (or static, body = `None`).
#[derive(Debug, Clone)]
pub struct Geom {
    pub(crate) shape: Shape,
    /// Owning body; `None` for world-static geoms.
    pub(crate) body: Option<crate::BodyId>,
    /// Offset from the body frame.
    pub(crate) local: Transform,
    /// Cached world AABB, refreshed at the start of broad-phase.
    pub(crate) aabb: Aabb,
    pub(crate) enabled: bool,
}

impl Geom {
    /// The shape of this geom.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The owning body, if any.
    #[inline]
    pub fn body(&self) -> Option<crate::BodyId> {
        self.body
    }

    /// Cached world-space AABB from the last broad-phase update.
    #[inline]
    pub fn aabb(&self) -> Aabb {
        self.aabb
    }

    /// Whether this geom currently participates in collision.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Offset from the owning body's frame (the world pose for
    /// world-static geoms).
    #[inline]
    pub fn local_transform(&self) -> Transform {
        self.local
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parallax_math::Quat;

    #[test]
    fn sphere_aabb_is_tight() {
        let s = Shape::sphere(2.0);
        let t = Transform::from_position(Vec3::new(1.0, 0.0, 0.0));
        let bb = s.aabb(&t);
        assert_eq!(bb.min, Vec3::new(-1.0, -2.0, -2.0));
        assert_eq!(bb.max, Vec3::new(3.0, 2.0, 2.0));
    }

    #[test]
    fn rotated_box_aabb_grows() {
        let s = Shape::cuboid(Vec3::new(1.0, 0.1, 0.1));
        let t = Transform::new(
            Vec3::ZERO,
            Quat::from_axis_angle(Vec3::UNIT_Z, std::f32::consts::FRAC_PI_4),
        );
        let bb = s.aabb(&t);
        // Rotating a long thin box 45° about Z spreads X extent into Y.
        assert!(bb.max.y > 0.5, "expected y extent to grow, got {bb:?}");
        assert!(bb.max.x < 1.0);
    }

    #[test]
    fn capsule_aabb_covers_caps() {
        let s = Shape::capsule(0.5, 1.0);
        let bb = s.aabb(&Transform::IDENTITY);
        assert!((bb.max.y - 1.5).abs() < 1e-6);
        assert!((bb.max.x - 0.5).abs() < 1e-6);
    }

    #[test]
    fn heightfield_sampling_bilinear() {
        // A 2x2 field forming a ramp along x: h = x + 0.5 (cell=1 centred).
        let hf = Heightfield::new(2, 2, 1.0, vec![0.0, 1.0, 0.0, 1.0]);
        assert!((hf.height_at(-0.5, 0.0) - 0.0).abs() < 1e-6);
        assert!((hf.height_at(0.5, 0.0) - 1.0).abs() < 1e-6);
        assert!((hf.height_at(0.0, 0.0) - 0.5).abs() < 1e-6);
        // Normal should tilt against +x.
        let n = hf.normal_at(0.0, 0.0);
        assert!(n.x < 0.0 && n.y > 0.0);
    }

    #[test]
    fn heightfield_clamps_out_of_range() {
        let hf = Heightfield::new(2, 2, 1.0, vec![0.0, 1.0, 0.0, 1.0]);
        assert!((hf.height_at(-100.0, 0.0) - 0.0).abs() < 1e-6);
        assert!((hf.height_at(100.0, 0.0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn trimesh_aabb_and_access() {
        let mesh = TriMesh::new(
            vec![
                Vec3::ZERO,
                Vec3::new(1.0, 0.0, 0.0),
                Vec3::new(0.0, 2.0, 0.0),
            ],
            vec![[0, 1, 2]],
        );
        assert_eq!(mesh.local_aabb().max, Vec3::new(1.0, 2.0, 0.0));
        assert_eq!(mesh.triangle(0)[2], Vec3::new(0.0, 2.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "triangle index out of range")]
    fn trimesh_rejects_bad_indices() {
        let _ = TriMesh::new(vec![Vec3::ZERO], vec![[0, 1, 2]]);
    }

    #[test]
    fn unit_inertia_positive_definite() {
        for s in [
            Shape::sphere(0.5),
            Shape::cuboid(Vec3::new(0.5, 1.0, 2.0)),
            Shape::capsule(0.3, 0.7),
        ] {
            let i = s.unit_inertia();
            let d = i.diagonal();
            assert!(d.x > 0.0 && d.y > 0.0 && d.z > 0.0, "{s:?}");
        }
    }

    #[test]
    fn volumes_are_sane() {
        assert!((Shape::sphere(1.0).volume() - 4.18879).abs() < 1e-3);
        assert!((Shape::cuboid(Vec3::splat(0.5)).volume() - 1.0).abs() < 1e-6);
        assert_eq!(Shape::plane(Vec3::UNIT_Y, 0.0).volume(), 0.0);
    }
}
