//! Versioned binary world snapshots with a bit-identity restore
//! guarantee.
//!
//! [`snapshot`] serializes every piece of *mutable* simulation state —
//! body lanes, geoms, joints, cloth Verlet state, blast volumes,
//! fracture flags, the contact cache (warm-start impulses) and the
//! clock — to a little-endian blob; [`restore`] rebuilds that state into
//! an existing world such that stepping the restored world reproduces
//! the original trajectory bit for bit (`tests/snapshot_roundtrip.rs`).
//! This is the foundation of the flight recorder's black-box dumps and
//! of the divergence bisector's O(log n) restart search.
//!
//! # Format
//!
//! `b"PXSN"` magic, a `u32` version, then fixed-order sections. All
//! integers are little-endian; all floats are raw IEEE-754 bit patterns
//! (`to_bits`), which is what makes the round trip exact. The version is
//! bumped on any layout change; [`restore`] rejects unknown versions
//! rather than guessing.
//!
//! Version 2 appends the island-sleeping state (per-body sleep timers
//! and activity EMAs, the sleeping-island table with its parked
//! manifolds, and the pending wake queue) after the contact-cache
//! section. Version-1 snapshots still restore: the sleep state is reset
//! to "everything awake", which is trajectory-safe because sleeping only
//! ever *skips* work an awake re-solve immediately redoes.
//!
//! # What is *not* serialized
//!
//! - **Configuration** (threads, SIMD mode, solver parameters): replaying
//!   one snapshot under different configurations is exactly what the
//!   divergence bisector does, so the receiving world keeps its own.
//! - **Shared structural assets**: heightfields and triangle meshes are
//!   recorded as structural markers and resolved against the receiving
//!   world's geom at the same index (the `Arc` is reused). Restore
//!   therefore requires a world built by the same scene constructor —
//!   which the tooling always has, since it builds both sides from
//!   [`crate::WorldConfig`] + scene parameters.
//! - **Derived state**: world-space inertia and the SIMD movable mask are
//!   recomputed, broad-phase AABBs are refreshed at the next step.

use std::sync::Arc;

use parallax_math::{Aabb, Quat, Transform, Vec3};

use crate::body::{BodyFlags, BodyId};
use crate::cloth::ClothVertex;
use crate::contact::{ContactManifold, ContactPoint};
use crate::contact_cache::CachedPoint;
use crate::explosion::{BlastVolume, ExplosionConfig};
use crate::island::SLEEP_SLOT_BIT;
use crate::joint::JointKind;
use crate::shape::{Geom, GeomId, Shape};
use crate::sleep::{SleepSystem, SleepingIsland};
use crate::world::World;

/// Snapshot magic bytes.
pub const MAGIC: [u8; 4] = *b"PXSN";
/// Current snapshot format version.
pub const VERSION: u32 = 2;
/// Oldest version [`restore`] still reads (pre-sleeping snapshots).
pub const MIN_VERSION: u32 = 1;

/// Error restoring a snapshot: truncated/corrupt input, version
/// mismatch, or structural mismatch with the receiving world.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotError(String);

impl SnapshotError {
    fn new(msg: impl Into<String>) -> Self {
        SnapshotError(msg.into())
    }
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "snapshot restore failed: {}", self.0)
    }
}

impl std::error::Error for SnapshotError {}

// --- little-endian writer/reader ---------------------------------------

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f32(&mut self, v: f32) {
        self.u32(v.to_bits());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn vec3(&mut self, v: Vec3) {
        self.f32(v.x);
        self.f32(v.y);
        self.f32(v.z);
    }
    fn quat(&mut self, q: Quat) {
        self.f32(q.w);
        self.f32(q.x);
        self.f32(q.y);
        self.f32(q.z);
    }
    fn f32_lane(&mut self, lane: &[f32]) {
        for &v in lane {
            self.f32(v);
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| {
                SnapshotError::new(format!("truncated at byte {} (need {n} more)", self.pos))
            })?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }
    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
    /// A `u64` count validated against a per-element floor so corrupt
    /// input cannot trigger an absurd allocation.
    fn count(&mut self, elem_bytes: usize) -> Result<usize, SnapshotError> {
        let n = self.u64()? as usize;
        let remaining = self.buf.len() - self.pos;
        if n.saturating_mul(elem_bytes.max(1)) > remaining {
            return Err(SnapshotError::new(format!(
                "count {n} at byte {} exceeds remaining {remaining} bytes",
                self.pos
            )));
        }
        Ok(n)
    }
    fn f32(&mut self) -> Result<f32, SnapshotError> {
        Ok(f32::from_bits(self.u32()?))
    }
    fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn vec3(&mut self) -> Result<Vec3, SnapshotError> {
        Ok(Vec3::new(self.f32()?, self.f32()?, self.f32()?))
    }
    fn quat(&mut self) -> Result<Quat, SnapshotError> {
        Ok(Quat::new(
            self.f32()?,
            self.f32()?,
            self.f32()?,
            self.f32()?,
        ))
    }
    fn f32_lane(&mut self, n: usize) -> Result<Vec<f32>, SnapshotError> {
        let bytes = self.take(n * 4)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| f32::from_bits(u32::from_le_bytes(c.try_into().expect("4"))))
            .collect())
    }
}

// --- snapshot -----------------------------------------------------------

/// Serializes the world's mutable state. See the module docs for the
/// format and for what is deliberately left out.
pub fn snapshot(world: &World) -> Vec<u8> {
    let mut w = Writer {
        buf: Vec::with_capacity(64 + world.bodies.len() * 42 * 4),
    };
    w.buf.extend_from_slice(&MAGIC);
    w.u32(VERSION);
    w.u64(world.steps);
    w.f64(world.time);

    // Bodies: every f32 lane in a fixed order, then flags and islands.
    let b = &world.bodies;
    w.u64(b.len() as u64);
    for lane in body_lanes(b) {
        w.f32_lane(lane);
    }
    for f in &b.flags {
        w.u32(f.0);
    }
    for &i in &b.island {
        w.u32(i);
    }

    // Geoms.
    w.u64(world.geoms.len() as u64);
    for g in &world.geoms {
        match &g.shape {
            Shape::Sphere { radius } => {
                w.u8(0);
                w.f32(*radius);
            }
            Shape::Cuboid { half } => {
                w.u8(1);
                w.vec3(*half);
            }
            Shape::Capsule { radius, half_len } => {
                w.u8(2);
                w.f32(*radius);
                w.f32(*half_len);
            }
            Shape::Plane { normal, offset } => {
                w.u8(3);
                w.vec3(*normal);
                w.f32(*offset);
            }
            // Shared assets: structural markers, resolved by index on
            // restore (the receiving world's Arc is reused).
            Shape::Heightfield(_) => w.u8(4),
            Shape::TriMesh(_) => w.u8(5),
        }
        w.u32(g.body.map_or(u32::MAX, |id| id.0));
        w.vec3(g.local.position);
        w.quat(g.local.rotation);
        w.vec3(g.aabb.min);
        w.vec3(g.aabb.max);
        w.u8(g.enabled as u8);
    }

    // Body → geom lists.
    w.u64(world.body_geoms.len() as u64);
    for geoms in &world.body_geoms {
        w.u64(geoms.len() as u64);
        for g in geoms {
            w.u32(g.0);
        }
    }

    // Joints.
    w.u64(world.joints.len() as u64);
    for j in &world.joints {
        match &j.kind {
            JointKind::Ball { anchor_a, anchor_b } => {
                w.u8(0);
                w.vec3(*anchor_a);
                w.vec3(*anchor_b);
            }
            JointKind::Hinge {
                anchor_a,
                anchor_b,
                axis_a,
                axis_b,
            } => {
                w.u8(1);
                w.vec3(*anchor_a);
                w.vec3(*anchor_b);
                w.vec3(*axis_a);
                w.vec3(*axis_b);
            }
            JointKind::Slider { axis_a, anchor_a } => {
                w.u8(2);
                w.vec3(*axis_a);
                w.vec3(*anchor_a);
            }
            JointKind::Fixed { anchor_a, anchor_b } => {
                w.u8(3);
                w.vec3(*anchor_a);
                w.vec3(*anchor_b);
            }
        }
        w.u32(j.body_a.0);
        w.u32(j.body_b.0);
        match j.break_threshold {
            Some(t) => {
                w.u8(1);
                w.f32(t);
            }
            None => w.u8(0),
        }
        w.f32(j.accumulated_load);
        w.u8(j.broken as u8);
        w.f32(j.last_impulse);
    }

    // Collision-excluded pairs, sorted for a canonical encoding.
    let mut pairs: Vec<(u32, u32)> = world.joint_pairs.iter().copied().collect();
    pairs.sort_unstable();
    w.u64(pairs.len() as u64);
    for (a, b) in pairs {
        w.u32(a);
        w.u32(b);
    }

    // Cloths: Verlet state + contact lists (topology is structural).
    w.u64(world.cloths.len() as u64);
    for c in &world.cloths {
        w.u64(c.vertices().len() as u64);
        for v in c.vertices() {
            w.vec3(v.pos);
            w.vec3(v.prev);
            w.u8(v.pinned as u8);
        }
        w.u64(c.contact_bodies.len() as u64);
        for &b in &c.contact_bodies {
            w.u32(b);
        }
        w.u64(c.contact_static_geoms.len() as u64);
        for &g in &c.contact_static_geoms {
            w.u32(g);
        }
    }

    // Pre-fractured objects: only the shatter flag is mutable.
    w.u64(world.prefractured.len() as u64);
    for p in &world.prefractured {
        w.u8(p.shattered as u8);
    }

    // Explosive configs (this list grows mid-run).
    w.u64(world.explosive_cfg.len() as u64);
    for (body, cfg) in &world.explosive_cfg {
        w.u32(*body);
        w.f32(cfg.blast_radius);
        w.u32(cfg.duration_steps);
        w.f32(cfg.impulse);
    }

    // Live blast volumes.
    w.u64(world.blasts.len() as u64);
    for b in &world.blasts {
        w.u32(b.body.0);
        w.vec3(b.center);
        w.f32(b.radius);
        w.u32(b.steps_left);
        w.f32(b.impulse);
        w.u8(b.fresh as u8);
    }

    // Contact cache (warm-start impulses), sorted by key for a canonical
    // encoding (HashMap iteration order is not deterministic).
    let cache = world
        .pipeline
        .as_ref()
        .expect("pipeline present outside step")
        .contact_cache();
    let entries = cache.sorted_entries();
    w.u64(entries.len() as u64);
    for (&(a, b), pair) in entries {
        w.u32(a.0);
        w.u32(b.0);
        w.u32(pair.age());
        w.u64(pair.points().len() as u64);
        for p in pair.points() {
            w.u32(p.feature);
            w.vec3(p.position);
            w.f32(p.lambdas[0]);
            w.f32(p.lambdas[1]);
            w.f32(p.lambdas[2]);
        }
    }

    // --- v2: island-sleeping state ------------------------------------
    for &t in &b.sleep_timer {
        w.u32(t);
    }
    w.f32_lane(&b.sleep_ema);
    let s = &world.sleep;
    w.u64(s.islands.len() as u64);
    for slot in &s.islands {
        let Some(isl) = slot else {
            w.u8(0);
            continue;
        };
        w.u8(1);
        w.u64(isl.bodies.len() as u64);
        for &bi in &isl.bodies {
            w.u32(bi);
        }
        w.u64(isl.manifolds.len() as u64);
        for m in &isl.manifolds {
            w.u32(m.geom_a.0);
            w.u32(m.geom_b.0);
            w.f32(m.friction);
            w.f32(m.restitution);
            w.u64(m.points.len() as u64);
            for p in &m.points {
                w.vec3(p.position);
                w.vec3(p.normal);
                w.f32(p.depth);
                w.u32(p.feature);
            }
        }
    }
    w.u64(s.free.len() as u64);
    for &f in &s.free {
        w.u32(f);
    }
    w.u64(s.pending_wakes.len() as u64);
    for &p in &s.pending_wakes {
        w.u32(p);
    }

    w.buf
}

fn body_lanes(b: &crate::store::BodyStore) -> [&[f32]; 40] {
    [
        &b.pos.x,
        &b.pos.y,
        &b.pos.z,
        &b.rot.w,
        &b.rot.x,
        &b.rot.y,
        &b.rot.z,
        &b.lin_vel.x,
        &b.lin_vel.y,
        &b.lin_vel.z,
        &b.ang_vel.x,
        &b.ang_vel.y,
        &b.ang_vel.z,
        &b.force.x,
        &b.force.y,
        &b.force.z,
        &b.torque.x,
        &b.torque.y,
        &b.torque.z,
        &b.inv_mass,
        &b.inv_inertia_local.e[0],
        &b.inv_inertia_local.e[1],
        &b.inv_inertia_local.e[2],
        &b.inv_inertia_local.e[3],
        &b.inv_inertia_local.e[4],
        &b.inv_inertia_local.e[5],
        &b.inv_inertia_local.e[6],
        &b.inv_inertia_local.e[7],
        &b.inv_inertia_local.e[8],
        &b.inv_inertia_world.e[0],
        &b.inv_inertia_world.e[1],
        &b.inv_inertia_world.e[2],
        &b.inv_inertia_world.e[3],
        &b.inv_inertia_world.e[4],
        &b.inv_inertia_world.e[5],
        &b.inv_inertia_world.e[6],
        &b.inv_inertia_world.e[7],
        &b.inv_inertia_world.e[8],
        &b.linear_damping,
        &b.angular_damping,
    ]
}

// --- restore ------------------------------------------------------------

/// Restores state captured by [`snapshot`] into `world`. The world keeps
/// its configuration; see the module docs for the structural-match
/// requirements.
pub fn restore(world: &mut World, bytes: &[u8]) -> Result<(), SnapshotError> {
    let mut r = Reader { buf: bytes, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(SnapshotError::new("bad magic (not a parallax snapshot)"));
    }
    let version = r.u32()?;
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(SnapshotError::new(format!(
            "unsupported snapshot version {version} (this build reads {MIN_VERSION}..={VERSION})"
        )));
    }
    let steps = r.u64()?;
    let time = r.f64()?;

    // Bodies.
    let n = r.count(40 * 4)?;
    let mut lanes: Vec<Vec<f32>> = Vec::with_capacity(40);
    for _ in 0..40 {
        lanes.push(r.f32_lane(n)?);
    }
    let mut flags = Vec::with_capacity(n);
    for _ in 0..n {
        flags.push(BodyFlags(r.u32()?));
    }
    let mut island = Vec::with_capacity(n);
    for _ in 0..n {
        island.push(r.u32()?);
    }

    // Geoms.
    let geom_count = r.count(1)?;
    let mut geoms = Vec::with_capacity(geom_count);
    for gi in 0..geom_count {
        let shape = match r.u8()? {
            0 => Shape::Sphere { radius: r.f32()? },
            1 => Shape::Cuboid { half: r.vec3()? },
            2 => Shape::Capsule {
                radius: r.f32()?,
                half_len: r.f32()?,
            },
            3 => Shape::Plane {
                normal: r.vec3()?,
                offset: r.f32()?,
            },
            tag @ (4 | 5) => {
                // Structural marker: reuse the shared asset from the
                // receiving world's geom at the same index.
                match (tag, world.geoms.get(gi).map(|g| &g.shape)) {
                    (4, Some(Shape::Heightfield(h))) => Shape::Heightfield(Arc::clone(h)),
                    (5, Some(Shape::TriMesh(m))) => Shape::TriMesh(Arc::clone(m)),
                    _ => {
                        return Err(SnapshotError::new(format!(
                            "geom {gi} is a shared asset (tag {tag}) but the target world has \
                             no matching geom at that index; restore requires a world built by \
                             the same scene constructor"
                        )))
                    }
                }
            }
            tag => return Err(SnapshotError::new(format!("unknown shape tag {tag}"))),
        };
        let body = match r.u32()? {
            u32::MAX => None,
            idx if (idx as usize) < n => Some(BodyId(idx)),
            idx => {
                return Err(SnapshotError::new(format!(
                    "geom {gi} references body {idx} of {n}"
                )))
            }
        };
        let local = Transform::new(r.vec3()?, r.quat()?);
        let aabb = Aabb::new(r.vec3()?, r.vec3()?);
        let enabled = r.u8()? != 0;
        geoms.push(Geom {
            shape,
            body,
            local,
            aabb,
            enabled,
        });
    }

    // Body → geom lists.
    let bg_count = r.count(8)?;
    if bg_count != n {
        return Err(SnapshotError::new(format!(
            "body_geoms count {bg_count} != body count {n}"
        )));
    }
    let mut body_geoms = Vec::with_capacity(bg_count);
    for _ in 0..bg_count {
        let k = r.count(4)?;
        let mut list = Vec::with_capacity(k);
        for _ in 0..k {
            let g = r.u32()?;
            if g as usize >= geom_count {
                return Err(SnapshotError::new(format!(
                    "body geom list references geom {g} of {geom_count}"
                )));
            }
            list.push(GeomId(g));
        }
        body_geoms.push(list);
    }

    // Joints.
    let joint_count = r.count(1)?;
    let mut joints = Vec::with_capacity(joint_count);
    for ji in 0..joint_count {
        let kind = match r.u8()? {
            0 => JointKind::Ball {
                anchor_a: r.vec3()?,
                anchor_b: r.vec3()?,
            },
            1 => JointKind::Hinge {
                anchor_a: r.vec3()?,
                anchor_b: r.vec3()?,
                axis_a: r.vec3()?,
                axis_b: r.vec3()?,
            },
            2 => JointKind::Slider {
                axis_a: r.vec3()?,
                anchor_a: r.vec3()?,
            },
            3 => JointKind::Fixed {
                anchor_a: r.vec3()?,
                anchor_b: r.vec3()?,
            },
            tag => {
                return Err(SnapshotError::new(format!(
                    "unknown joint tag {tag} for joint {ji}"
                )))
            }
        };
        let body_a = BodyId(r.u32()?);
        let body_b = BodyId(r.u32()?);
        let break_threshold = if r.u8()? != 0 { Some(r.f32()?) } else { None };
        let accumulated_load = r.f32()?;
        let broken = r.u8()? != 0;
        let last_impulse = r.f32()?;
        let mut j = crate::joint::Joint::new(kind, body_a, body_b);
        j.break_threshold = break_threshold;
        j.accumulated_load = accumulated_load;
        j.broken = broken;
        j.last_impulse = last_impulse;
        joints.push(j);
    }

    // Collision-excluded pairs.
    let pair_count = r.count(8)?;
    let mut joint_pairs = std::collections::HashSet::with_capacity(pair_count);
    for _ in 0..pair_count {
        joint_pairs.insert((r.u32()?, r.u32()?));
    }

    // Cloths: state only — topology must already match.
    let cloth_count = r.count(1)?;
    if cloth_count != world.cloths.len() {
        return Err(SnapshotError::new(format!(
            "snapshot has {cloth_count} cloths, target world has {} (same scene required)",
            world.cloths.len()
        )));
    }
    let mut cloth_states = Vec::with_capacity(cloth_count);
    for ci in 0..cloth_count {
        let vc = r.count(25)?;
        if vc != world.cloths[ci].vertices().len() {
            return Err(SnapshotError::new(format!(
                "cloth {ci} has {vc} vertices in the snapshot, {} in the target world",
                world.cloths[ci].vertices().len()
            )));
        }
        let mut verts = Vec::with_capacity(vc);
        for _ in 0..vc {
            verts.push(ClothVertex {
                pos: r.vec3()?,
                prev: r.vec3()?,
                pinned: r.u8()? != 0,
            });
        }
        let bc = r.count(4)?;
        let mut contact_bodies = Vec::with_capacity(bc);
        for _ in 0..bc {
            contact_bodies.push(r.u32()?);
        }
        let gc = r.count(4)?;
        let mut contact_static_geoms = Vec::with_capacity(gc);
        for _ in 0..gc {
            contact_static_geoms.push(r.u32()?);
        }
        cloth_states.push((verts, contact_bodies, contact_static_geoms));
    }

    // Pre-fractured shatter flags.
    let pf_count = r.count(1)?;
    if pf_count != world.prefractured.len() {
        return Err(SnapshotError::new(format!(
            "snapshot has {pf_count} prefractured objects, target world has {}",
            world.prefractured.len()
        )));
    }
    let mut shattered = Vec::with_capacity(pf_count);
    for _ in 0..pf_count {
        shattered.push(r.u8()? != 0);
    }

    // Explosive configs.
    let ec = r.count(13)?;
    let mut explosive_cfg = Vec::with_capacity(ec);
    for _ in 0..ec {
        explosive_cfg.push((
            r.u32()?,
            ExplosionConfig {
                blast_radius: r.f32()?,
                duration_steps: r.u32()?,
                impulse: r.f32()?,
            },
        ));
    }

    // Blast volumes.
    let bc = r.count(26)?;
    let mut blasts = Vec::with_capacity(bc);
    for _ in 0..bc {
        blasts.push(BlastVolume {
            body: BodyId(r.u32()?),
            center: r.vec3()?,
            radius: r.f32()?,
            steps_left: r.u32()?,
            impulse: r.f32()?,
            fresh: r.u8()? != 0,
        });
    }

    // Contact cache.
    let cc = r.count(20)?;
    let mut cache_entries = Vec::with_capacity(cc);
    for _ in 0..cc {
        let key = (GeomId(r.u32()?), GeomId(r.u32()?));
        let age = r.u32()?;
        let pc = r.count(28)?;
        let mut points = Vec::with_capacity(pc);
        for _ in 0..pc {
            points.push(CachedPoint {
                feature: r.u32()?,
                position: r.vec3()?,
                lambdas: [r.f32()?, r.f32()?, r.f32()?],
            });
        }
        cache_entries.push((key, age, points));
    }

    // Sleep state (v2+). A v1 snapshot predates sleeping: reset to
    // "everything awake" and strip any sleep markers defensively.
    let (sleep_timer, sleep_ema, sleep_sys) = if version >= 2 {
        let mut timers = Vec::with_capacity(n);
        for _ in 0..n {
            timers.push(r.u32()?);
        }
        let ema = r.f32_lane(n)?;
        let slot_count = r.count(1)?;
        let mut slots = Vec::with_capacity(slot_count);
        for _ in 0..slot_count {
            if r.u8()? == 0 {
                slots.push(None);
                continue;
            }
            let bc = r.count(4)?;
            let mut members = Vec::with_capacity(bc);
            for _ in 0..bc {
                let bi = r.u32()?;
                if bi as usize >= n {
                    return Err(SnapshotError::new(format!(
                        "sleeping island references body {bi} of {n}"
                    )));
                }
                members.push(bi);
            }
            let mc = r.count(24)?;
            let mut manifolds = Vec::with_capacity(mc);
            for _ in 0..mc {
                let mut m = ContactManifold::new(GeomId(r.u32()?), GeomId(r.u32()?));
                m.friction = r.f32()?;
                m.restitution = r.f32()?;
                let pc = r.count(28)?;
                for _ in 0..pc {
                    m.points.push(ContactPoint {
                        position: r.vec3()?,
                        normal: r.vec3()?,
                        depth: r.f32()?,
                        feature: r.u32()?,
                    });
                }
                manifolds.push(m);
            }
            slots.push(Some(SleepingIsland {
                bodies: members,
                manifolds,
            }));
        }
        let fc = r.count(4)?;
        let mut free = Vec::with_capacity(fc);
        for _ in 0..fc {
            free.push(r.u32()?);
        }
        let wc = r.count(4)?;
        let mut pending_wakes = Vec::with_capacity(wc);
        for _ in 0..wc {
            pending_wakes.push(r.u32()?);
        }
        (
            timers,
            ema,
            SleepSystem {
                islands: slots,
                free,
                pending_wakes,
            },
        )
    } else {
        (vec![0u32; n], vec![0.0f32; n], SleepSystem::default())
    };

    if r.pos != bytes.len() {
        return Err(SnapshotError::new(format!(
            "{} trailing bytes after the last section",
            bytes.len() - r.pos
        )));
    }

    // Everything parsed and validated — commit. Body lanes are rebuilt
    // wholesale: slots only ever grow in this engine, so a snapshot with
    // fewer bodies than the target simply truncates (bisect restores an
    // *earlier* state into a world that has since spawned bodies).
    if version < 2 {
        for f in &mut flags {
            f.0 &= !BodyFlags::SLEEPING.0;
        }
        for lane in &mut island {
            if *lane != u32::MAX && *lane & SLEEP_SLOT_BIT != 0 {
                *lane = u32::MAX;
            }
        }
    }
    apply_bodies(world, n, &lanes, flags, island, sleep_timer, sleep_ema);
    world.geoms = geoms;
    world.body_geoms = body_geoms;
    world.joints = joints;
    world.joint_pairs = joint_pairs;
    for (c, (verts, contact_bodies, contact_static_geoms)) in
        world.cloths.iter_mut().zip(cloth_states)
    {
        c.verts_mut().copy_from_slice(&verts);
        c.contact_bodies = contact_bodies;
        c.contact_static_geoms = contact_static_geoms;
    }
    for (p, s) in world.prefractured.iter_mut().zip(shattered) {
        p.shattered = s;
    }
    world.explosive_cfg = explosive_cfg;
    world.blasts = blasts;
    world.sleep = sleep_sys;
    let pipeline = world
        .pipeline
        .as_mut()
        .expect("pipeline present outside step");
    // The incremental island builder's union-find no longer matches the
    // restored lanes: force a full rebuild on the next step.
    pipeline.invalidate_island_graph();
    let cache = pipeline.contact_cache_mut();
    cache.clear();
    for (key, age, points) in cache_entries {
        cache.insert_raw(key, age, points);
    }
    world.steps = steps;
    world.time = time;
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn apply_bodies(
    world: &mut World,
    n: usize,
    lanes: &[Vec<f32>],
    flags: Vec<BodyFlags>,
    island: Vec<u32>,
    sleep_timer: Vec<u32>,
    sleep_ema: Vec<f32>,
) {
    let b = &mut world.bodies;
    // Consume the 40 lanes in the exact order `body_lanes` wrote them.
    let mut it = lanes.iter().cloned();
    let mut lane = move || it.next().expect("40 body lanes");
    b.pos.x = lane();
    b.pos.y = lane();
    b.pos.z = lane();
    b.rot.w = lane();
    b.rot.x = lane();
    b.rot.y = lane();
    b.rot.z = lane();
    b.lin_vel.x = lane();
    b.lin_vel.y = lane();
    b.lin_vel.z = lane();
    b.ang_vel.x = lane();
    b.ang_vel.y = lane();
    b.ang_vel.z = lane();
    b.force.x = lane();
    b.force.y = lane();
    b.force.z = lane();
    b.torque.x = lane();
    b.torque.y = lane();
    b.torque.z = lane();
    b.inv_mass = lane();
    for e in 0..9 {
        b.inv_inertia_local.e[e] = lane();
    }
    for e in 0..9 {
        b.inv_inertia_world.e[e] = lane();
    }
    b.linear_damping = lane();
    b.angular_damping = lane();
    b.flags = flags;
    b.island = island;
    b.sleep_timer = sleep_timer;
    b.sleep_ema = sleep_ema;
    b.movable_mask = vec![0.0; n];
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::BodyDesc;
    use crate::digest::world_digest;
    use crate::joint::Joint;
    use crate::world::WorldConfig;

    fn playground() -> World {
        let mut w = World::new(WorldConfig::default());
        w.add_static_geom(Shape::plane(Vec3::UNIT_Y, 0.0));
        for i in 0..6 {
            w.add_body(
                BodyDesc::dynamic(Vec3::new((i % 3) as f32 * 1.1, 0.5 + (i / 3) as f32, 0.0))
                    .with_shape(Shape::cuboid(Vec3::splat(0.5)), 1.0),
            );
        }
        let a = w.add_body(BodyDesc::fixed(Vec3::new(5.0, 2.0, 0.0)));
        let bob = w.add_body(
            BodyDesc::dynamic(Vec3::new(6.0, 2.0, 0.0)).with_shape(Shape::sphere(0.2), 1.0),
        );
        w.add_joint(
            Joint::new(
                JointKind::Ball {
                    anchor_a: Vec3::ZERO,
                    anchor_b: Vec3::new(-1.0, 0.0, 0.0),
                },
                a,
                bob,
            )
            .breakable(50.0),
        );
        w.add_cloth(crate::cloth::Cloth::rectangle(
            Vec3::new(-2.0, 1.5, -0.5),
            1.0,
            1.0,
            5,
            5,
            &[0],
        ));
        w
    }

    #[test]
    fn mid_run_round_trip_is_bit_identical() {
        let mut a = playground();
        for _ in 0..40 {
            a.step();
        }
        let snap = a.snapshot();
        let mut b = playground();
        b.restore(&snap).expect("restore");
        assert_eq!(world_digest(&a), world_digest(&b));
        assert_eq!(a.snapshot(), b.snapshot(), "re-snapshot must be canonical");
        // And the trajectories stay locked.
        for i in 0..25 {
            a.step();
            b.step();
            assert_eq!(world_digest(&a), world_digest(&b), "diverged at step {i}");
        }
    }

    #[test]
    fn restore_rejects_garbage_and_wrong_version() {
        let mut w = playground();
        assert!(w.restore(b"not a snapshot").is_err());
        let mut snap = w.snapshot();
        snap[4] = 99; // version field
        let err = w.restore(&snap).unwrap_err().to_string();
        assert!(err.contains("version"), "{err}");
        let snap = w.snapshot();
        assert!(w.restore(&snap[..snap.len() - 3]).is_err(), "truncated");
    }

    #[test]
    fn sleeping_world_round_trips_bit_identically() {
        let build = || {
            let mut w = World::new(WorldConfig {
                sleeping: true,
                sleep_steps: 20,
                ..WorldConfig::default()
            });
            w.add_static_geom(Shape::plane(Vec3::UNIT_Y, 0.0));
            for i in 0..4 {
                w.add_body(
                    BodyDesc::dynamic(Vec3::new(i as f32 * 3.0, 0.5, 0.0))
                        .with_shape(Shape::cuboid(Vec3::splat(0.5)), 1.0),
                );
            }
            w
        };
        let mut a = build();
        for _ in 0..120 {
            a.step();
        }
        assert!(
            a.sleeping_body_count() > 0,
            "boxes at rest height must fall asleep within 120 steps"
        );
        let snap = a.snapshot();
        let mut b = build();
        b.restore(&snap).expect("restore");
        assert_eq!(world_digest(&a), world_digest(&b));
        assert_eq!(a.sleeping_body_count(), b.sleeping_body_count());
        assert_eq!(a.snapshot(), b.snapshot(), "re-snapshot must be canonical");
        for i in 0..30 {
            a.step();
            b.step();
            assert_eq!(world_digest(&a), world_digest(&b), "diverged at step {i}");
        }
    }

    #[test]
    fn v1_snapshot_restores_with_sleep_reset() {
        let mut w = playground();
        for _ in 0..40 {
            w.step();
        }
        let snap = w.snapshot();
        // Craft a v1 blob: drop the trailing sleep section (two per-body
        // lanes + three empty tables — nothing sleeps in this world) and
        // patch the version field.
        let n = w.bodies.len();
        let tail = n * 4 + n * 4 + 8 + 8 + 8;
        let mut v1 = snap[..snap.len() - tail].to_vec();
        v1[4..8].copy_from_slice(&1u32.to_le_bytes());
        let mut b = playground();
        b.restore(&v1).expect("v1 snapshot must still restore");
        assert_eq!(b.sleeping_body_count(), 0);
        assert!(b.bodies.sleep_timer.iter().all(|&t| t == 0));
        assert!(b.bodies.sleep_ema.iter().all(|&e| e == 0.0));
        // And it still steps deterministically against a v2 restore of
        // the same state (sleep timers differ, trajectories must not —
        // this world never crosses the sleep threshold).
        let mut a = playground();
        a.restore(&snap).expect("v2 restore");
        for _ in 0..10 {
            a.step();
            b.step();
        }
        if let Some(d) = crate::digest::first_divergence(&a, &b) {
            assert!(
                d.location.contains("sleep"),
                "only sleep bookkeeping may differ after a v1 restore, got {}",
                d.location
            );
        }
        // Everything except the trailing sleep section must agree.
        let (sa, sb) = (a.snapshot(), b.snapshot());
        let tail = n * 8 + 24;
        assert_eq!(
            sa[..sa.len() - tail],
            sb[..sb.len() - tail],
            "non-sleep state diverged after a v1 restore"
        );
    }

    #[test]
    fn restore_rejects_structural_mismatch() {
        let w = playground();
        let snap = w.snapshot();
        let mut other = World::new(WorldConfig::default());
        // No cloths in the target world.
        let err = other.restore(&snap).unwrap_err().to_string();
        assert!(err.contains("cloth"), "{err}");
    }
}
