//! The staged step pipeline: one stage type per paper phase.
//!
//! Paper §3.1 structures a physics step as five phases — broad-phase,
//! narrow-phase, island creation, island processing and cloth — two of
//! which are serial and three parallel. [`StepPipeline`] owns one
//! [`Stage`] per phase plus the persistent [`Executor`] that serves the
//! parallel ones, and [`StepPipeline::step`] drives them in order while
//! filling the [`StepProfile`].
//!
//! Each stage carries its own scratch arenas (candidate-pair, manifold,
//! edge, island and collider buffers) which are cleared and refilled in
//! place, so a steady-state step performs no per-phase allocation beyond
//! the profile's owned output vectors.

use std::time::{Duration, Instant};

use parallax_math::{Aabb, Transform, Vec3};
use parallax_telemetry as telemetry;

use crate::body::BodyId;
use crate::broadphase::{Broadphase, BroadphaseStats, SweepAndPrune, UniformGrid};
use crate::contact::ContactManifold;
use crate::contact_cache::{self, ContactCache, WarmStats};
use crate::digest;
use crate::integrator;
use crate::island::{ConstraintEdge, Island, IslandGraph, IslandStats};
use crate::narrowphase;
use crate::parallel::Executor;
use crate::probe::{ClothWork, IslandWork, PairWork, PhaseKind, StepEvents, StepProfile};
use crate::shape::{GeomId, Shape};
use crate::solver::{self, RowParams, RowSoA, VelState, STATIC_BODY};
use crate::world::{BroadphaseKind, World};

/// A pipeline stage: one per paper phase.
///
/// The stage declares which [`PhaseKind`] it implements; its serial /
/// parallel split follows from the phase ([`PhaseKind::is_serial`]), so
/// every consumer — the trace layer, the architecture model, the bench
/// harness — keys off the same enumeration.
pub trait Stage {
    /// The phase this stage implements.
    const PHASE: PhaseKind;

    /// The phase this stage implements (object-safe accessor).
    fn phase(&self) -> PhaseKind {
        Self::PHASE
    }

    /// Whether the stage's inner loop runs on the executor.
    fn parallel(&self) -> bool {
        !Self::PHASE.is_serial()
    }
}

/// Serial phase 1: refresh world AABBs and produce candidate pairs.
pub struct BroadphaseStage {
    imp: BroadphaseImpl,
    aabbs: Vec<(GeomId, Aabb)>,
    candidates: Vec<(GeomId, GeomId)>,
}

/// Parallel phase 2: exact contact generation over the candidate pairs.
pub struct NarrowphaseStage {
    pairs: Vec<(GeomId, GeomId, bool)>,
    results: Vec<(Option<ContactManifold>, PairWork)>,
    /// Manifold arena for the step; indexed by the islands.
    manifolds: Vec<ContactManifold>,
}

/// Serial phase 3: constraint edges + union-find island creation.
///
/// Uses the persistent [`IslandGraph`] so a settled world (most bodies
/// sleeping) pays O(awake + edges) instead of O(bodies + edges).
pub struct IslandCreationStage {
    edges: Vec<ConstraintEdge>,
    islands: Vec<Island>,
    graph: IslandGraph,
}

/// Parallel phase 4: per-island constraint solving, with the paper's
/// DOF work-queue filter (small islands stay on the calling thread).
pub struct IslandProcessingStage {
    queued_idx: Vec<u32>,
    small_idx: Vec<u32>,
    results: Vec<IslandResult>,
}

/// Parallel phase 5: cloth relaxation, one task per cloth object.
pub struct ClothStage {
    collider_sets: Vec<Vec<(Shape, Transform)>>,
    results: Vec<ClothWork>,
}

impl Stage for BroadphaseStage {
    const PHASE: PhaseKind = PhaseKind::Broadphase;
}
impl Stage for NarrowphaseStage {
    const PHASE: PhaseKind = PhaseKind::Narrowphase;
}
impl Stage for IslandCreationStage {
    const PHASE: PhaseKind = PhaseKind::IslandCreation;
}
impl Stage for IslandProcessingStage {
    const PHASE: PhaseKind = PhaseKind::IslandProcessing;
}
impl Stage for ClothStage {
    const PHASE: PhaseKind = PhaseKind::Cloth;
}

enum BroadphaseImpl {
    Grid(UniformGrid),
    Sap(SweepAndPrune),
}

impl BroadphaseImpl {
    fn of(kind: BroadphaseKind) -> BroadphaseImpl {
        match kind {
            BroadphaseKind::Grid { cell } => BroadphaseImpl::Grid(UniformGrid::new(cell)),
            BroadphaseKind::SweepAndPrune => BroadphaseImpl::Sap(SweepAndPrune::new()),
        }
    }

    fn pairs_into(
        &mut self,
        aabbs: &[(GeomId, Aabb)],
        out: &mut Vec<(GeomId, GeomId)>,
    ) -> BroadphaseStats {
        match self {
            BroadphaseImpl::Grid(g) => g.pairs_into(aabbs, out),
            BroadphaseImpl::Sap(s) => s.pairs_into(aabbs, out),
        }
    }
}

impl BroadphaseStage {
    fn new(kind: BroadphaseKind) -> Self {
        BroadphaseStage {
            imp: BroadphaseImpl::of(kind),
            aabbs: Vec::new(),
            candidates: Vec::new(),
        }
    }

    /// Refreshes world AABBs and fills `self.candidates`.
    fn run(&mut self, world: &mut World) -> BroadphaseStats {
        world.refresh_aabbs_into(&mut self.aabbs);
        self.imp.pairs_into(&self.aabbs, &mut self.candidates)
    }
}

impl NarrowphaseStage {
    fn new() -> Self {
        NarrowphaseStage {
            pairs: Vec::new(),
            results: Vec::new(),
            manifolds: Vec::new(),
        }
    }

    /// Collides the candidate pairs on the executor; fills the manifold
    /// arena and returns the per-pair work records for the profile.
    fn run(
        &mut self,
        world: &World,
        executor: &Executor,
        candidates: &[(GeomId, GeomId)],
    ) -> Vec<PairWork> {
        world.filter_pairs_into(candidates, &mut self.pairs);

        let run_pair = |&(a, b, active): &(GeomId, GeomId, bool)| {
            let ga = &world.geoms[a.index()];
            let gb = &world.geoms[b.index()];
            let manifold = if active {
                let ta = world.geom_world_transform(ga);
                let tb = world.geom_world_transform(gb);
                narrowphase::collide_with_ids(a, &ga.shape, &ta, b, &gb.shape, &tb)
            } else {
                None
            };
            let work = PairWork {
                geom_a: a.0,
                geom_b: b.0,
                body_a: ga.body.map_or(u32::MAX, |x| x.0),
                body_b: gb.body.map_or(u32::MAX, |x| x.0),
                shape_a: ga.shape.kind_name(),
                shape_b: gb.shape.kind_name(),
                contacts: manifold.as_ref().map_or(0, |m| m.len()),
                active,
            };
            (manifold, work)
        };
        executor.map_into_labeled(
            Self::PHASE.region_label(),
            &self.pairs,
            &mut self.results,
            run_pair,
        );

        self.manifolds.clear();
        let mut work = Vec::with_capacity(self.results.len());
        for (m, w) in self.results.drain(..) {
            if let Some(m) = m {
                self.manifolds.push(m);
            }
            work.push(w);
        }
        work
    }
}

impl IslandCreationStage {
    fn new() -> Self {
        IslandCreationStage {
            edges: Vec::new(),
            islands: Vec::new(),
            graph: IslandGraph::new(),
        }
    }

    /// Builds constraint edges and islands into the stage arenas.
    fn run(&mut self, world: &mut World, manifolds: &[ContactManifold]) -> IslandStats {
        world.build_edges_into(manifolds, &mut self.edges);
        self.graph
            .build(&mut world.bodies, &self.edges, &mut self.islands)
    }
}

/// One island's solver output, applied back to the world serially.
struct IslandResult {
    velocities: Vec<(u32, Vec3, Vec3)>,
    joint_impulses: Vec<(u32, f32)>,
    /// Post-solve accumulated impulses per contact manifold
    /// (manifold index, per-point `[normal, t1, t2]` lambdas), written
    /// into the contact cache on the caller thread.
    contact_updates: Vec<(u32, [[f32; 3]; ContactManifold::MAX_POINTS])>,
    /// Warm-start hit/miss counts for this island.
    warm: WarmStats,
    work: IslandWork,
}

/// Step-scoped knobs threaded into the island solve.
#[derive(Clone, Copy)]
struct SolveOpts {
    /// Seed contact rows from last step's cached impulses.
    warm_starting: bool,
    /// Compute per-island post-solve λ digests (flight recorder).
    digests: bool,
}

impl IslandProcessingStage {
    fn new() -> Self {
        IslandProcessingStage {
            queued_idx: Vec::new(),
            small_idx: Vec::new(),
            results: Vec::new(),
        }
    }

    /// Solves every island — big ones on the executor, small ones on the
    /// calling thread (the paper's DOF > threshold work-queue filter) —
    /// then applies the velocities. Returns the profile work records, the
    /// per-joint impulses for breakables and the warm-start hit/miss
    /// totals.
    ///
    /// The contact cache is read-only inside the (possibly parallel)
    /// island solves and written back here, serially, in island-result
    /// order — this is what keeps warm starting deterministic across
    /// thread counts.
    fn run(
        &mut self,
        world: &mut World,
        executor: &Executor,
        islands: &[Island],
        manifolds: &[ContactManifold],
        cache: &mut ContactCache,
        opts: SolveOpts,
    ) -> (Vec<IslandWork>, Vec<(u32, f32)>, WarmStats) {
        let SolveOpts {
            warm_starting,
            digests,
        } = opts;
        let params = RowParams {
            dt: world.config.dt,
            erp: world.config.erp,
            contact_cfm: world.config.contact_cfm,
            ..Default::default()
        };
        let iterations = world.config.solver_iterations;
        let threshold = world.config.island_queue_threshold;
        let mode = world.config.simd.clamp_to_supported();

        // Partition by the DOF filter. The index lists are rebuilt from the
        // same island order every step, so the result sequence — and thus
        // the simulation — is independent of the thread count.
        self.queued_idx.clear();
        self.small_idx.clear();
        for (i, island) in islands.iter().enumerate() {
            if island.dof_removed > threshold {
                self.queued_idx.push(i as u32);
            } else {
                self.small_idx.push(i as u32);
            }
        }

        let world_ref: &World = world;
        // Shared-immutable snapshot of the cache for the parallel solves.
        let cache_ref: &ContactCache = cache;
        let solve_island = |&ii: &u32| -> IslandResult {
            let island = &islands[ii as usize];
            // Local index map.
            let mut local_of = std::collections::HashMap::with_capacity(island.bodies.len());
            let mut vel: Vec<VelState> = Vec::with_capacity(island.bodies.len());
            for (li, &bi) in island.bodies.iter().enumerate() {
                local_of.insert(bi, li as u32);
                vel.push(world_ref.bodies.vel_state(bi as usize));
            }
            let local = |body: u32| -> u32 {
                if body == u32::MAX {
                    return STATIC_BODY;
                }
                match local_of.get(&body) {
                    Some(&l) => l,
                    None => STATIC_BODY, // Static or foreign body: anchor.
                }
            };

            let mut rows = RowSoA::new();
            for &ji in &island.joints {
                let j = &world_ref.joints[ji as usize];
                solver::build_joint_rows(
                    j,
                    ji,
                    local(j.body_a.0),
                    local(j.body_b.0),
                    world_ref.bodies.transform(j.body_a.index()),
                    world_ref.bodies.transform(j.body_b.index()),
                    &params,
                    &mut rows,
                );
            }
            let mut warm = WarmStats::default();
            // (manifold index, first row of its contact block): rows are
            // emitted 3 per point, in point order, so the block maps the
            // solved lambdas back to cache entries after the solve.
            let mut contact_spans: Vec<(u32, u32)> = Vec::with_capacity(island.manifolds.len());
            for &mi in &island.manifolds {
                let m = &manifolds[mi as usize];
                let ba = world_ref.geoms[m.geom_a.index()].body;
                let bb = world_ref.geoms[m.geom_b.index()].body;
                let pa = ba.map_or(Vec3::ZERO, |b| world_ref.bodies.position(b.index()));
                let pb = bb.map_or(Vec3::ZERO, |b| world_ref.bodies.position(b.index()));
                let la = ba.map_or(STATIC_BODY, |b| {
                    if world_ref.bodies.is_static(b.index()) {
                        STATIC_BODY
                    } else {
                        local(b.0)
                    }
                });
                let lb = bb.map_or(STATIC_BODY, |b| {
                    if world_ref.bodies.is_static(b.index()) {
                        STATIC_BODY
                    } else {
                        local(b.0)
                    }
                });
                let seeds = if warm_starting {
                    let key = contact_cache::pair_key(m);
                    let (s, w) = contact_cache::seed_lambdas(cache_ref.pair(key), m);
                    warm.merge(w);
                    Some(s)
                } else {
                    None
                };
                contact_spans.push((mi, rows.len() as u32));
                solver::build_contact_rows(
                    m,
                    la,
                    lb,
                    pa,
                    pb,
                    &vel,
                    &params,
                    seeds.as_ref().map(|s| &s[..]),
                    &mut rows,
                );
            }

            let stats = solver::solve(&mut rows, &mut vel, iterations, mode);

            let contact_updates = if warm_starting {
                contact_spans
                    .iter()
                    .map(|&(mi, start)| {
                        let m = &manifolds[mi as usize];
                        let mut lam = [[0.0f32; 3]; ContactManifold::MAX_POINTS];
                        for (p, l) in lam.iter_mut().take(m.len()).enumerate() {
                            let base = start as usize + p * 3;
                            *l = [
                                rows.lambda[base],
                                rows.lambda[base + 1],
                                rows.lambda[base + 2],
                            ];
                        }
                        (mi, lam)
                    })
                    .collect()
            } else {
                Vec::new()
            };

            // Per-joint impulse accounting for breakables. Sorted by joint
            // so downstream accumulation order is reproducible.
            let mut joint_impulses: std::collections::HashMap<u32, f32> =
                std::collections::HashMap::new();
            for i in 0..rows.len() {
                if rows.source_joint[i] != u32::MAX {
                    *joint_impulses.entry(rows.source_joint[i]).or_insert(0.0) +=
                        rows.lambda[i].abs();
                }
            }
            let mut joint_impulses: Vec<(u32, f32)> = joint_impulses.into_iter().collect();
            joint_impulses.sort_unstable_by_key(|&(j, _)| j);

            IslandResult {
                velocities: island
                    .bodies
                    .iter()
                    .zip(vel.iter())
                    .map(|(&bi, v)| (bi, v.lin, v.ang))
                    .collect(),
                joint_impulses,
                contact_updates,
                warm,
                work: IslandWork {
                    bodies: island.bodies.clone(),
                    joints: island.joints.clone(),
                    manifolds: island.manifolds.len(),
                    rows: stats.rows,
                    dof_removed: island.dof_removed,
                    iterations: stats.iterations,
                    residual: stats.total_delta,
                    queued: island.dof_removed > threshold,
                    // Seeded by the island index so identical impulse
                    // vectors in different islands still hash apart.
                    lambda_digest: if digests {
                        digest::hash_f32s(ii as u64, &rows.lambda)
                    } else {
                        0
                    },
                },
            }
        };

        executor.map_into_labeled(
            Self::PHASE.region_label(),
            &self.queued_idx,
            &mut self.results,
            solve_island,
        );
        for ii in &self.small_idx {
            self.results.push(solve_island(ii));
        }

        let mut work = Vec::with_capacity(self.results.len());
        let mut joint_impulses = Vec::new();
        let mut warm_total = WarmStats::default();
        for r in self.results.drain(..) {
            for (bi, lin, ang) in r.velocities {
                world.bodies.set_velocity(bi as usize, lin, ang);
            }
            joint_impulses.extend(r.joint_impulses);
            // Serial cache writeback, in island-result order (queued islands
            // first, then small ones — both sequences are thread-count
            // independent). Each manifold belongs to exactly one island, so
            // no pair is stored twice.
            for (mi, lambdas) in r.contact_updates {
                let m = &manifolds[mi as usize];
                cache.store(
                    contact_cache::pair_key(m),
                    m.points.iter().copied().zip(lambdas),
                );
            }
            warm_total.merge(r.warm);
            work.push(r.work);
        }
        (work, joint_impulses, warm_total)
    }
}

impl ClothStage {
    fn new() -> Self {
        ClothStage {
            collider_sets: Vec::new(),
            results: Vec::new(),
        }
    }

    /// Steps every cloth on the executor, one task per object (the paper
    /// parallelizes at both object and vertex level; object level suffices
    /// for real execution — vertex level is what the FG timing model
    /// exploits).
    fn run(&mut self, world: &mut World, executor: &Executor) -> Vec<ClothWork> {
        let gravity = world.config.gravity;
        let dt = world.config.dt;
        let mode = world.config.simd.clamp_to_supported();

        // Gather collider lists per cloth (shape + pose snapshots), reusing
        // the per-cloth buffers.
        let n = world.cloths.len();
        self.collider_sets.resize_with(n, Vec::new);
        for (i, set) in self.collider_sets.iter_mut().enumerate() {
            let cloth = &world.cloths[i];
            set.clear();
            for &b in &cloth.contact_bodies {
                let bid = BodyId(b);
                for g in &world.body_geoms[bid.index()] {
                    let geom = &world.geoms[g.index()];
                    if geom.enabled {
                        set.push((geom.shape.clone(), world.geom_world_transform(geom)));
                    }
                }
            }
            for &gi in &cloth.contact_static_geoms {
                let geom = &world.geoms[gi as usize];
                if geom.enabled {
                    set.push((geom.shape.clone(), geom.local));
                }
            }
        }

        let collider_sets = &self.collider_sets;
        let label = Self::PHASE.region_label();
        executor.map_mut_into_labeled(label, &mut world.cloths, &mut self.results, |i, cloth| {
            let colliders = collider_sets[i].as_slice();
            let stats = cloth.step(gravity, dt, colliders, mode);
            ClothWork {
                cloth: i as u32,
                stats,
                colliders: colliders.len(),
            }
        });
        let mut out = Vec::with_capacity(self.results.len());
        out.append(&mut self.results);
        out
    }
}

/// Telemetry handles for the pipeline: one span name per paper phase
/// (track 0 — the calling thread), the per-step work histograms and the
/// step counter. Registration is idempotent, so every pipeline instance
/// shares the same process-wide slots.
struct PipelineTelemetry {
    phase_spans: [telemetry::SpanName; PhaseKind::ALL.len()],
    steps: telemetry::Counter,
    island_size: telemetry::Histogram,
    manifolds_per_step: telemetry::Histogram,
    solver_rows: telemetry::Histogram,
    max_penetration_um: telemetry::Histogram,
    solver_residual_milli: telemetry::Histogram,
    warm_hits: telemetry::Counter,
    warm_misses: telemetry::Counter,
    cache_entries: telemetry::Gauge,
    /// Bodies currently asleep (end of step).
    sleeping_bodies: telemetry::Gauge,
    /// Islands currently asleep (end of step).
    sleeping_islands: telemetry::Gauge,
    /// Awake islands rebuilt by island creation, accumulated per step —
    /// the incremental-graph work measure (settled scenes: ~0/step).
    islands_rebuilt: telemetry::Counter,
    /// Active kernel layout/ISA: 0 = scalar, 1 = SSE2, 2 = AVX2.
    simd_mode: telemetry::Gauge,
    /// Per-phase state digests (`physics.digest.<phase>`), published only
    /// when `WorldConfig::digests` is on. Digests are fingerprints, not
    /// magnitudes, so they are stored with `set_always`.
    digest_gauges: [telemetry::Gauge; PhaseKind::ALL.len()],
}

impl PipelineTelemetry {
    fn register() -> Self {
        PipelineTelemetry {
            phase_spans: PhaseKind::ALL.map(|p| telemetry::span_name(p.name())),
            steps: telemetry::counter("physics.steps"),
            island_size: telemetry::histogram("physics.island_size_bodies"),
            manifolds_per_step: telemetry::histogram("physics.manifolds_per_step"),
            solver_rows: telemetry::histogram("physics.solver_rows_per_island"),
            max_penetration_um: telemetry::histogram("physics.max_penetration_um"),
            solver_residual_milli: telemetry::histogram("physics.solver_residual_milli"),
            warm_hits: telemetry::counter("physics.solver.warm_hits"),
            warm_misses: telemetry::counter("physics.solver.warm_misses"),
            cache_entries: telemetry::gauge("physics.solver.cache_entries"),
            sleeping_bodies: telemetry::gauge("physics.sleeping_bodies"),
            sleeping_islands: telemetry::gauge("physics.sleeping_islands"),
            islands_rebuilt: telemetry::counter("physics.islands_rebuilt"),
            simd_mode: telemetry::gauge("physics.simd_mode"),
            digest_gauges: PhaseKind::ALL
                .map(|p| telemetry::gauge(&format!("physics.digest.{}", p.name()))),
        }
    }
}

/// Per-phase artificial delay in nanoseconds, used to fake a regression
/// for gate testing. Initialized once from `PARALLAX_PHASE_SLOW`
/// (`"<PhaseName>:<nanos>"`, e.g. `Broadphase:2000000`), adjustable at
/// runtime through [`set_injected_phase_delay`].
fn injected_delays() -> &'static [std::sync::atomic::AtomicU64; 5] {
    use std::sync::atomic::AtomicU64;
    use std::sync::OnceLock;
    static DELAYS: OnceLock<[AtomicU64; 5]> = OnceLock::new();
    DELAYS.get_or_init(|| {
        let delays = [const { AtomicU64::new(0) }; 5];
        if let Ok(spec) = std::env::var("PARALLAX_PHASE_SLOW") {
            if let Some((name, ns)) = spec.split_once(':') {
                let idx = PhaseKind::ALL
                    .iter()
                    .position(|p| p.name().eq_ignore_ascii_case(name.trim()));
                match (idx, ns.trim().parse::<u64>()) {
                    (Some(i), Ok(ns)) => delays[i].store(ns, std::sync::atomic::Ordering::Relaxed),
                    _ => eprintln!(
                        "warning: ignoring malformed PARALLAX_PHASE_SLOW={spec:?} \
                         (expected \"<PhaseName>:<nanos>\")"
                    ),
                }
            } else {
                eprintln!(
                    "warning: ignoring malformed PARALLAX_PHASE_SLOW={spec:?} \
                     (expected \"<PhaseName>:<nanos>\")"
                );
            }
        }
        delays
    })
}

/// Test/CI hook: makes every future step spend an extra `delay` inside
/// `phase` (a deliberately slowed build without recompiling). Pass
/// `Duration::ZERO` to clear. The regression-gate acceptance test uses
/// this to verify `bench_gate compare` catches a real slowdown.
pub fn set_injected_phase_delay(phase: PhaseKind, delay: Duration) {
    let idx = PhaseKind::ALL
        .iter()
        .position(|p| *p == phase)
        .expect("phase");
    injected_delays()[idx].store(
        delay.as_nanos() as u64,
        std::sync::atomic::Ordering::Relaxed,
    );
}

/// Sleeps the injected delay for a phase, if any (one relaxed load on
/// the common path).
#[inline]
fn apply_injected_delay(phase_idx: usize) {
    let ns = injected_delays()[phase_idx].load(std::sync::atomic::Ordering::Relaxed);
    if ns > 0 {
        std::thread::sleep(Duration::from_nanos(ns));
    }
}

/// Applies the configured single-ULP fault if this step+phase matches
/// [`crate::WorldConfig::digest_fault`]: flips the low mantissa bit of
/// body 0's `pos.x` at the *end* of the phase, before its digest is
/// taken. Used by the divergence-bisector acceptance tests to verify
/// that an injected divergence is localized to exactly this step+phase.
#[inline]
fn maybe_inject_fault(world: &mut World, phase_idx: usize) {
    let Some(fault) = world.config.digest_fault else {
        return;
    };
    if fault.step != world.steps || fault.phase != PhaseKind::ALL[phase_idx] {
        return;
    }
    if !world.bodies.is_empty() {
        let bits = world.bodies.pos.x[0].to_bits() ^ 1;
        world.bodies.pos.x[0] = f32::from_bits(bits);
    }
}

/// Times one pipeline phase: always returns the measured wall time (so
/// `StepProfile::wall` is populated on every path, including early-outs)
/// and additionally records a track-0 span when telemetry is enabled.
fn timed<T>(span: telemetry::SpanName, f: impl FnOnce() -> T) -> (T, Duration) {
    if !telemetry::enabled() {
        let t = Instant::now();
        let r = f();
        return (r, t.elapsed());
    }
    let start = telemetry::now_ns();
    let t = Instant::now();
    let r = f();
    let wall = t.elapsed();
    telemetry::span_record(span, 0, start, wall.as_nanos() as u64);
    (r, wall)
}

/// Cache backing the fully-asleep fast path (see [`StepPipeline::step`]).
///
/// Once a step both starts and ends with every dynamic body asleep, no
/// body can move until something external wakes or mutates the world:
/// sleeping bodies are masked out of the integrator sweeps and their
/// AABBs are frozen. The broad-phase candidate set (kept in the
/// broad-phase stage arena) and the all-inactive narrow-phase pair
/// records are therefore bit-identical step to step, and both serial
/// recomputations can be skipped. Validity is keyed on the world's
/// `mutation_epoch` so any out-of-step mutation — adding bodies,
/// teleporting a sleeper through `body_mut`, toggling enables, restoring
/// a snapshot — invalidates the cache before it can serve stale pairs.
struct QuiescentCache {
    valid: bool,
    epoch: u64,
    /// Broad-phase stats to report while coasting (`sort_ops` and
    /// `overlap_tests` zeroed: no work is actually performed).
    stats: BroadphaseStats,
    /// The all-inactive pair records for the profile.
    pairs: Vec<PairWork>,
}

impl QuiescentCache {
    fn new() -> Self {
        QuiescentCache {
            valid: false,
            epoch: 0,
            stats: BroadphaseStats::default(),
            pairs: Vec::new(),
        }
    }
}

/// The five-stage step pipeline plus its persistent executor.
///
/// Owned by [`World`]; `World::step` delegates here. The executor is
/// created once from `WorldConfig::threads` and rebuilt only when the
/// configured thread count changes.
pub struct StepPipeline {
    executor: Executor,
    broadphase: BroadphaseStage,
    narrowphase: NarrowphaseStage,
    island_creation: IslandCreationStage,
    island_processing: IslandProcessingStage,
    cloth: ClothStage,
    /// Cross-step contact persistence for solver warm starting.
    contact_cache: ContactCache,
    /// Fully-asleep fast-path cache.
    quiet: QuiescentCache,
    telemetry: PipelineTelemetry,
    /// Whether the active SIMD mode has been published to telemetry yet
    /// (done once, on the first step).
    simd_reported: bool,
}

impl std::fmt::Debug for StepPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StepPipeline")
            .field("threads", &self.executor.threads())
            .finish()
    }
}

impl StepPipeline {
    /// Builds the pipeline for a world configuration.
    pub(crate) fn new(threads: usize, broadphase: BroadphaseKind) -> Self {
        StepPipeline {
            executor: Executor::new(threads),
            broadphase: BroadphaseStage::new(broadphase),
            narrowphase: NarrowphaseStage::new(),
            island_creation: IslandCreationStage::new(),
            island_processing: IslandProcessingStage::new(),
            cloth: ClothStage::new(),
            contact_cache: ContactCache::new(),
            quiet: QuiescentCache::new(),
            telemetry: PipelineTelemetry::register(),
            simd_reported: false,
        }
    }

    /// The persistent executor serving the parallel stages.
    pub fn executor(&self) -> &Executor {
        &self.executor
    }

    /// The cross-step contact cache (inspection hook for tests/tools).
    pub fn contact_cache(&self) -> &ContactCache {
        &self.contact_cache
    }

    /// Mutable cache access for snapshot restore (see [`crate::snapshot`]).
    pub(crate) fn contact_cache_mut(&mut self) -> &mut ContactCache {
        &mut self.contact_cache
    }

    /// Invalidates the incremental island graph's lane bookkeeping; the
    /// next build performs a full island-lane reset. Called by snapshot
    /// restore, which replaces the island lanes wholesale.
    pub(crate) fn invalidate_island_graph(&mut self) {
        self.island_creation.graph.invalidate();
        self.quiet.valid = false;
    }

    /// Replaces the broad-phase algorithm (ablation hook).
    pub(crate) fn set_broadphase(&mut self, kind: BroadphaseKind) {
        self.broadphase = BroadphaseStage::new(kind);
        self.quiet.valid = false;
    }

    /// Runs one full step over `world`, returning the work profile.
    ///
    /// Every path — including the empty-world fast path and the no-island
    /// / no-cloth skips — goes through [`timed`], so all five
    /// `StepProfile::wall` entries are populated on every step.
    pub(crate) fn step(&mut self, world: &mut World) -> StepProfile {
        if self.executor.threads() != world.config.threads.max(1) {
            self.executor = Executor::new(world.config.threads);
        }
        self.telemetry.steps.add(1);
        let spans = self.telemetry.phase_spans;

        let mut profile = StepProfile::default();
        let dt = world.config.dt;
        let gravity = world.config.gravity;
        let mode = world.config.simd.clamp_to_supported();
        // Per-phase state digests (flight recorder / divergence bisection).
        // Computed inside each phase's timed block so the digest cost is
        // attributed to the phase it fingerprints.
        let digests_on = world.config.digests;
        let mut phase_digests = [0u64; 5];
        if !self.simd_reported {
            self.telemetry.simd_mode.set(mode.gauge_value());
            self.simd_reported = true;
        }

        // (a) Apply forces: gravity, slider suspension springs, blast
        // impulses. The disturbance scan must run before the integrator
        // consumes (and zeroes) the force accumulators: any sleeping body
        // that picked up a velocity, force or torque — user impulse,
        // blast, spring — is queued for the wake pass.
        world.apply_slider_springs();
        world.apply_blast_impulses();
        world.scan_sleep_disturbances();
        integrator::apply_forces(&mut world.bodies, gravity, dt, mode);

        // Fast path: a fully empty world has no phase work at all, but
        // the profile must still report a wall time for every phase.
        if world.bodies.is_empty() && world.geoms.is_empty() && world.cloths.is_empty() {
            for (i, span) in spans.iter().enumerate() {
                let ((), wall) = timed(*span, || {});
                profile.wall[i] = wall;
            }
            if digests_on {
                profile.digests = Some([
                    digest::broadphase_digest(world, &[]),
                    digest::narrowphase_digest(world, &[]),
                    digest::island_creation_digest(world),
                    digest::island_processing_digest(world, &[]),
                    digest::cloth_digest(world),
                ]);
            }
            return Self::finish_step(world, profile, (0, 0), 0);
        }

        // Fully-asleep fast path: every dynamic body is asleep, nothing is
        // pending and the world has not been mutated since the cache was
        // filled, so this step cannot move anything. The broad-phase
        // candidate set and the (all-inactive) pair records are reused
        // verbatim — the digests below hash the same world state and the
        // same candidate list, so the trajectory stays bit-identical to
        // the full recomputation.
        let quiescent = world.config.sleeping
            && world.cloths.is_empty()
            && world.blasts.is_empty()
            && world.fully_asleep();
        let coast = quiescent && self.quiet.valid && self.quiet.epoch == world.mutation_epoch;

        // (b) Broad-phase (serial).
        let (stats, wall) = timed(spans[0], || {
            let s = if coast {
                self.quiet.stats
            } else {
                self.broadphase.run(world)
            };
            maybe_inject_fault(world, 0);
            if digests_on {
                phase_digests[0] = digest::broadphase_digest(world, &self.broadphase.candidates);
            }
            apply_injected_delay(0);
            s
        });
        profile.broadphase = stats;
        profile.wall[0] = wall;

        // (c) Narrow-phase (parallel) with explosive / cloth / fracture
        // hooks.
        let narrowphase = &mut self.narrowphase;
        let candidates = &self.broadphase.candidates;
        let quiet_pairs = &self.quiet.pairs;
        let executor = &self.executor;
        let (events, wall) = timed(spans[1], || {
            if coast {
                // No pair has an awake dynamic side: zero manifolds, and
                // the considered-pair records are unchanged.
                narrowphase.manifolds.clear();
                profile.pairs = quiet_pairs.clone();
            } else {
                profile.pairs = narrowphase.run(world, executor, candidates);
            }
            let events = world.process_contact_events(&narrowphase.manifolds);
            world.update_cloth_contact_lists();
            maybe_inject_fault(world, 1);
            if digests_on {
                phase_digests[1] = digest::narrowphase_digest(world, &narrowphase.manifolds);
            }
            apply_injected_delay(1);
            events
        });
        profile.wall[1] = wall;

        // Drop manifolds that involve blast volumes or newly exploded
        // bodies: they are fields, not solids.
        let inert_filter = &*world;
        self.narrowphase
            .manifolds
            .retain(|m| !inert_filter.manifold_is_inert(m));

        // Serial wake pass: islands disturbed this step (queued by the
        // scan), touched by an awake body's manifold, or jointed to an
        // awake body wake up here, replaying their parked manifolds into
        // the arena so they re-solve their resting contacts immediately.
        world.resolve_wakes(&mut self.narrowphase.manifolds);

        profile.max_penetration = self
            .narrowphase
            .manifolds
            .iter()
            .flat_map(|m| m.points.iter())
            .map(|p| p.depth)
            .fold(0.0, f32::max);

        // (d) Island creation (serial).
        let island_creation = &mut self.island_creation;
        let manifolds = &self.narrowphase.manifolds;
        let (stats, wall) = timed(spans[2], || {
            let s = island_creation.run(world, manifolds);
            maybe_inject_fault(world, 2);
            if digests_on {
                phase_digests[2] = digest::island_creation_digest(world);
            }
            apply_injected_delay(2);
            s
        });
        profile.island_creation = stats;
        profile.wall[2] = wall;

        // (e) Island processing (parallel) + (f) breakable joints. Skipped
        // (but still timed) when island creation produced nothing.
        let island_processing = &mut self.island_processing;
        let islands = &self.island_creation.islands;
        let contact_cache = &mut self.contact_cache;
        let warm_starting = world.config.warm_starting;
        let mut warm = WarmStats::default();
        let (broken, wall) = timed(spans[3], || {
            let (island_work, joint_impulses) = if islands.is_empty() {
                (Vec::new(), Vec::new())
            } else {
                let (island_work, joint_impulses, w) = island_processing.run(
                    world,
                    executor,
                    islands,
                    manifolds,
                    contact_cache,
                    SolveOpts {
                        warm_starting,
                        digests: digests_on,
                    },
                );
                warm = w;
                (island_work, joint_impulses)
            };
            profile.islands = island_work;
            let broken = world.update_breakable_joints(&joint_impulses);
            // Clamp then integrate, each as one SoA sweep. Bodies are
            // independent in both passes, so sweep-then-sweep produces the
            // same per-body results as the old clamp+integrate-per-body
            // loop.
            integrator::clamp_velocities(
                &mut world.bodies,
                world.config.max_linear_velocity,
                world.config.max_angular_velocity,
                mode,
            );
            integrator::integrate(&mut world.bodies, dt, mode);
            // Serial sleep pass on post-solve velocities: update every
            // awake body's activity EMA/quiet timer and deactivate
            // islands that are fully at rest (when sleeping is enabled).
            world.update_sleep(islands, manifolds);
            maybe_inject_fault(world, 3);
            if digests_on {
                phase_digests[3] = digest::island_processing_digest(world, &profile.islands);
            }
            apply_injected_delay(3);
            broken
        });
        profile.wall[3] = wall;

        profile.sleeping_bodies = world.sleeping_body_count();
        profile.sleeping_islands = world.sleeping_island_count();

        // Contact-cache maintenance, serial: age out pairs that stopped
        // touching and drop pairs whose geoms were disabled (fracture,
        // explosions). Pairs touching a sleeping body are pinned — they
        // produce no fresh manifolds while asleep, but their impulses
        // must survive to warm-start the island on wake. With warm
        // starting off the cache stays empty so an ablation run carries
        // no stale state into a later warm-on run.
        if warm_starting {
            let geoms = &world.geoms;
            let bodies = &world.bodies;
            self.contact_cache.end_step_pinned(
                contact_cache::DEFAULT_MAX_AGE,
                |g| geoms[g.index()].enabled,
                |g| {
                    geoms[g.index()]
                        .body
                        .is_some_and(|b| bodies.is_sleeping(b.index()))
                },
            );
        } else if !self.contact_cache.is_empty() {
            self.contact_cache.clear();
        }

        // (g) Cloth (parallel); skipped (but still timed) without cloths.
        let cloth = &mut self.cloth;
        let (cloths, wall) = timed(spans[4], || {
            let c = if world.cloths.is_empty() {
                Vec::new()
            } else {
                cloth.run(world, executor)
            };
            maybe_inject_fault(world, 4);
            if digests_on {
                phase_digests[4] = digest::cloth_digest(world);
            }
            apply_injected_delay(4);
            c
        });
        profile.cloths = cloths;
        profile.wall[4] = wall;

        // Arm or disarm the fast-path cache. Arming requires a step that
        // both started and ended fully asleep: only then were the
        // candidates computed from the same frozen positions the next
        // step will see. A settling step (awake at broad-phase, asleep by
        // the end) must not arm — its candidates predate the final
        // integrate.
        if quiescent && world.fully_asleep() {
            if !coast {
                self.quiet.pairs.clone_from(&profile.pairs);
                self.quiet.stats = BroadphaseStats {
                    sort_ops: 0,
                    overlap_tests: 0,
                    ..profile.broadphase
                };
            }
            self.quiet.valid = true;
            self.quiet.epoch = world.mutation_epoch;
        } else {
            self.quiet.valid = false;
        }

        if telemetry::enabled() {
            self.telemetry
                .manifolds_per_step
                .record(self.narrowphase.manifolds.len() as u64);
            // Penetration in micrometers so the log2 buckets resolve the
            // useful 1 µm – 10 m range.
            self.telemetry
                .max_penetration_um
                .record((profile.max_penetration.max(0.0) * 1e6) as u64);
            for w in &profile.islands {
                self.telemetry.island_size.record(w.bodies.len() as u64);
                self.telemetry.solver_rows.record(w.rows as u64);
                self.telemetry
                    .solver_residual_milli
                    .record((w.residual.max(0.0) * 1e3) as u64);
            }
            self.telemetry.warm_hits.add(warm.hits as u64);
            self.telemetry.warm_misses.add(warm.misses as u64);
            self.telemetry
                .cache_entries
                .set(self.contact_cache.len() as u64);
            self.telemetry
                .sleeping_bodies
                .set(profile.sleeping_bodies as u64);
            self.telemetry
                .sleeping_islands
                .set(profile.sleeping_islands as u64);
            self.telemetry
                .islands_rebuilt
                .add(profile.island_creation.islands as u64);
        }

        if digests_on {
            profile.digests = Some(phase_digests);
            if telemetry::enabled() {
                for (g, d) in self.telemetry.digest_gauges.iter().zip(phase_digests) {
                    g.set_always(d);
                }
            }
        }

        Self::finish_step(world, profile, events, broken)
    }

    /// Shared step epilogue: blast expiry, clock advance, event and
    /// entity-count bookkeeping.
    fn finish_step(
        world: &mut World,
        mut profile: StepProfile,
        events: (usize, usize),
        broken: usize,
    ) -> StepProfile {
        let expired = world.expire_blasts();

        world.time += world.config.dt as f64;
        world.steps += 1;

        profile.events = StepEvents {
            explosions: events.0,
            shattered: events.1,
            joints_broken: broken,
            blasts_expired: expired,
        };
        profile.body_count = world.bodies.iter().filter(|b| !b.is_disabled()).count();
        profile.geom_count = world.geoms.iter().filter(|g| g.enabled).count();
        profile.joint_count = world.joints.iter().filter(|j| !j.is_broken()).count();
        profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_declare_paper_phases() {
        assert_eq!(BroadphaseStage::PHASE, PhaseKind::Broadphase);
        assert_eq!(NarrowphaseStage::PHASE, PhaseKind::Narrowphase);
        assert_eq!(IslandCreationStage::PHASE, PhaseKind::IslandCreation);
        assert_eq!(IslandProcessingStage::PHASE, PhaseKind::IslandProcessing);
        assert_eq!(ClothStage::PHASE, PhaseKind::Cloth);
    }

    #[test]
    fn serial_parallel_split_follows_phase_kind() {
        let bp = BroadphaseStage::new(BroadphaseKind::SweepAndPrune);
        assert!(!bp.parallel());
        assert!(!IslandCreationStage::new().parallel());
        assert!(NarrowphaseStage::new().parallel());
        assert!(IslandProcessingStage::new().parallel());
        assert!(ClothStage::new().parallel());
    }

    #[test]
    fn empty_world_step_populates_every_phase_wall() {
        let mut w = World::new(crate::world::WorldConfig::default());
        let profile = w.step();
        // The empty-world fast path must still time all five phases.
        for phase in PhaseKind::ALL {
            assert!(
                profile.wall_time(phase) > std::time::Duration::ZERO,
                "wall time missing for {}",
                phase.name()
            );
        }
        assert_eq!(w.steps, 1);
    }

    #[test]
    fn no_island_step_populates_every_phase_wall() {
        use crate::body::BodyDesc;
        // One free-falling body: broadphase runs but produces no islands
        // and there are no cloths, so both skip paths are exercised.
        let mut w = World::new(crate::world::WorldConfig::default());
        w.add_body(
            BodyDesc::dynamic(Vec3::new(0.0, 10.0, 0.0)).with_shape(Shape::sphere(0.5), 1.0),
        );
        let profile = w.step();
        assert!(profile.islands.is_empty());
        assert!(profile.cloths.is_empty());
        for phase in PhaseKind::ALL {
            assert!(
                profile.wall_time(phase) > std::time::Duration::ZERO,
                "wall time missing for {}",
                phase.name()
            );
        }
    }

    #[test]
    fn contact_cache_fills_and_clears_with_the_flag() {
        use crate::body::BodyDesc;
        let build = |warm: bool| {
            let mut w = World::new(crate::world::WorldConfig {
                warm_starting: warm,
                ..Default::default()
            });
            w.add_static_geom(Shape::plane(Vec3::UNIT_Y, 0.0));
            w.add_body(
                BodyDesc::dynamic(Vec3::new(0.0, 0.45, 0.0))
                    .with_shape(Shape::cuboid(Vec3::splat(0.5)), 1.0),
            );
            w
        };
        // Warm starting on: the resting box-plane pair is cached.
        let mut w = build(true);
        for _ in 0..5 {
            w.step();
        }
        assert!(
            !w.pipeline().contact_cache().is_empty(),
            "resting contact must be cached"
        );
        // Turning the flag off empties the cache on the next step.
        w.config_mut().warm_starting = false;
        w.step();
        assert!(w.pipeline().contact_cache().is_empty());
        // Warm starting off from the start: never populated.
        let mut w = build(false);
        for _ in 0..5 {
            w.step();
        }
        assert!(w.pipeline().contact_cache().is_empty());
    }

    #[test]
    fn warm_starting_reduces_iteration_work_at_rest() {
        use crate::body::BodyDesc;
        // A small stack settling on a plane: once resting, the warm-started
        // solver should be doing measurably less iteration work (residual)
        // than a cold-started one on the same trajectory point.
        let run = |warm: bool| -> f32 {
            let mut w = World::new(crate::world::WorldConfig {
                warm_starting: warm,
                ..Default::default()
            });
            w.add_static_geom(Shape::plane(Vec3::UNIT_Y, 0.0));
            for i in 0..3 {
                w.add_body(
                    BodyDesc::dynamic(Vec3::new(0.0, 0.5 + i as f32 * 1.001, 0.0))
                        .with_shape(Shape::cuboid(Vec3::splat(0.5)), 1.0),
                );
            }
            let mut residual = 0.0;
            for step in 0..120 {
                let p = w.step();
                // Sum residuals over the settled tail only.
                if step >= 60 {
                    residual += p.islands.iter().map(|i| i.residual).sum::<f32>();
                }
            }
            residual
        };
        let warm = run(true);
        let cold = run(false);
        assert!(
            warm < cold,
            "warm-started residual {warm} should beat cold {cold}"
        );
    }

    /// A small stack on a plane with sleeping enabled, stepped until every
    /// dynamic body is asleep.
    fn settled_world() -> World {
        use crate::body::BodyDesc;
        let mut w = World::new(crate::world::WorldConfig {
            sleeping: true,
            digests: true,
            ..Default::default()
        });
        w.add_static_geom(Shape::plane(Vec3::UNIT_Y, 0.0));
        for i in 0..4 {
            w.add_body(
                BodyDesc::dynamic(Vec3::new(0.0, 0.5 + i as f32 * 1.001, 0.0))
                    .with_shape(Shape::cuboid(Vec3::splat(0.5)), 1.0),
            );
        }
        for _ in 0..400 {
            w.step();
            if w.sleeping_body_count() == 4 {
                break;
            }
        }
        assert_eq!(w.sleeping_body_count(), 4, "stack must settle");
        w
    }

    #[test]
    fn fully_asleep_steps_coast_without_broadphase_work() {
        let mut w = settled_world();
        // First fully-asleep step runs the real broad-phase and arms the
        // cache; the second coasts.
        let armed = w.step();
        assert!(armed.broadphase.pairs > 0);
        let coasted = w.step();
        assert_eq!(coasted.broadphase.pairs, armed.broadphase.pairs);
        assert_eq!(coasted.broadphase.geoms, armed.broadphase.geoms);
        assert_eq!(coasted.broadphase.sort_ops, 0, "coasting must not sort");
        assert_eq!(coasted.broadphase.overlap_tests, 0);
        assert_eq!(coasted.pairs.len(), armed.pairs.len());
        assert!(coasted.pairs.iter().all(|p| !p.active));
        assert_eq!(w.sleeping_body_count(), 4);
    }

    #[test]
    fn coasting_is_bit_identical_to_the_full_recomputation() {
        use crate::body::BodyDesc;
        let mut coasting = settled_world();
        let mut full = settled_world();
        for step in 0..20 {
            // Bumping the mutation epoch forces `full` down the slow path
            // every step while `coasting` reuses its cache.
            let _ = full.config_mut();
            let a = coasting.step();
            let b = full.step();
            assert_eq!(a.digests, b.digests, "digests diverged at step {step}");
        }
        // Disturb both identically: a new body dropped onto the stack must
        // wake it out of the coast and keep the trajectories in lockstep.
        for w in [&mut coasting, &mut full] {
            w.add_body(
                BodyDesc::dynamic(Vec3::new(0.2, 8.0, 0.0))
                    .with_shape(Shape::cuboid(Vec3::splat(0.5)), 1.0),
            );
        }
        for step in 0..120 {
            let _ = full.config_mut();
            let a = coasting.step();
            let b = full.step();
            assert_eq!(a.digests, b.digests, "post-wake divergence at step {step}");
        }
        for i in 0..coasting.bodies().len() {
            let (pa, pb) = (
                coasting.body(crate::body::BodyId(i as u32)).position(),
                full.body(crate::body::BodyId(i as u32)).position(),
            );
            assert_eq!(pa, pb, "body {i} position diverged");
        }
    }

    #[test]
    fn mutation_while_asleep_invalidates_the_coast_cache() {
        let mut w = settled_world();
        w.step(); // arm
        let coasted = w.step();
        assert_eq!(coasted.broadphase.sort_ops, 0);
        // A static geom added while everything sleeps must show up in the
        // next broad-phase pass instead of being masked by the cache.
        let before = coasted.broadphase.geoms;
        w.add_static_geom_at(
            Shape::cuboid(Vec3::splat(0.6)),
            Transform::from_position(Vec3::new(0.0, 0.5, 2.0)),
        );
        let after = w.step();
        assert!(
            after.broadphase.sort_ops > 0,
            "mutation must break the coast"
        );
        assert_eq!(after.broadphase.geoms, before + 1);
    }

    #[test]
    fn pipeline_rebuilds_executor_on_thread_change() {
        let cfg = crate::world::WorldConfig::default();
        let mut w = World::new(cfg);
        assert_eq!(w.pipeline().executor().threads(), 1);
        w.config_mut().threads = 3;
        w.step();
        assert_eq!(w.pipeline().executor().threads(), 3);
    }
}
