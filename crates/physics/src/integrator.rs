//! Semi-implicit Euler integration of rigid-body state.

use parallax_math::Vec3;

use crate::body::RigidBody;

/// Applies accumulated forces to velocities (the "apply forces" step).
///
/// `gravity` is added as an acceleration; accumulated force/torque are
/// consumed and cleared.
pub fn apply_forces(body: &mut RigidBody, gravity: Vec3, dt: f32) {
    if body.is_static() || body.is_disabled() {
        body.force = Vec3::ZERO;
        body.torque = Vec3::ZERO;
        return;
    }
    body.lin_vel += (gravity + body.force * body.inv_mass) * dt;
    body.ang_vel += body.inv_inertia_world * body.torque * dt;
    body.force = Vec3::ZERO;
    body.torque = Vec3::ZERO;
}

/// Integrates position/orientation from velocity and applies damping.
pub fn integrate(body: &mut RigidBody, dt: f32) {
    if body.is_static() || body.is_disabled() {
        return;
    }
    // Damping as true exponential decay. The first-order form
    // (1 − c·dt) underdamps for small c·dt and collapses to a hard zero
    // at c·dt ≥ 1, making behaviour depend on the step size; e^(−c·dt)
    // is stable for any damping coefficient and timestep.
    let lin_scale = (-body.linear_damping * dt).exp();
    let ang_scale = (-body.angular_damping * dt).exp();
    body.lin_vel *= lin_scale;
    body.ang_vel *= ang_scale;

    body.transform.position += body.lin_vel * dt;
    body.transform.rotation = body.transform.rotation.integrate(body.ang_vel, dt);
    body.refresh_inertia();
}

/// Caps runaway velocities to keep explosions numerically stable.
pub fn clamp_velocities(body: &mut RigidBody, max_lin: f32, max_ang: f32) {
    let l = body.lin_vel.length();
    if l > max_lin {
        body.lin_vel *= max_lin / l;
    }
    let a = body.ang_vel.length();
    if a > max_ang {
        body.ang_vel *= max_ang / a;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::BodyDesc;
    use crate::shape::Shape;

    fn unit_ball(pos: Vec3) -> RigidBody {
        BodyDesc::dynamic(pos)
            .with_shape(Shape::sphere(0.5), 1.0)
            .build()
    }

    #[test]
    fn gravity_accelerates() {
        let mut b = unit_ball(Vec3::ZERO);
        apply_forces(&mut b, Vec3::new(0.0, -10.0, 0.0), 0.1);
        assert!((b.linear_velocity().y + 1.0).abs() < 1e-6);
    }

    #[test]
    fn forces_are_consumed() {
        let mut b = unit_ball(Vec3::ZERO);
        b.add_force(Vec3::new(10.0, 0.0, 0.0));
        apply_forces(&mut b, Vec3::ZERO, 0.1);
        assert!((b.linear_velocity().x - 1.0).abs() < 1e-6);
        // Second step without new force: no further acceleration.
        apply_forces(&mut b, Vec3::ZERO, 0.1);
        assert!((b.linear_velocity().x - 1.0).abs() < 1e-6);
    }

    #[test]
    fn static_bodies_ignore_forces() {
        let mut b = BodyDesc::fixed(Vec3::ZERO)
            .with_shape(Shape::sphere(0.5), 1.0)
            .build();
        b.add_force(Vec3::new(10.0, 0.0, 0.0));
        apply_forces(&mut b, Vec3::new(0.0, -10.0, 0.0), 0.1);
        integrate(&mut b, 0.1);
        assert_eq!(b.position(), Vec3::ZERO);
        assert_eq!(b.linear_velocity(), Vec3::ZERO);
    }

    #[test]
    fn ballistic_trajectory() {
        // x(t) = v0 t, y(t) ≈ -g t²/2 under semi-implicit Euler.
        let mut b = unit_ball(Vec3::ZERO);
        b.set_linear_velocity(Vec3::new(1.0, 0.0, 0.0));
        let dt = 0.001;
        for _ in 0..1000 {
            apply_forces(&mut b, Vec3::new(0.0, -10.0, 0.0), dt);
            integrate(&mut b, dt);
        }
        let p = b.position();
        assert!((p.x - 1.0).abs() < 1e-2, "x = {}", p.x);
        assert!((p.y + 5.0).abs() < 0.05, "y = {}", p.y);
    }

    #[test]
    fn velocity_clamp() {
        let mut b = unit_ball(Vec3::ZERO);
        b.set_linear_velocity(Vec3::new(1000.0, 0.0, 0.0));
        b.set_angular_velocity(Vec3::new(0.0, 500.0, 0.0));
        clamp_velocities(&mut b, 50.0, 20.0);
        assert!((b.linear_velocity().length() - 50.0).abs() < 1e-3);
        assert!((b.angular_velocity().length() - 20.0).abs() < 1e-3);
    }

    #[test]
    fn heavy_damping_decays_smoothly_not_to_zero() {
        // With damping·dt ≥ 1 the old (1 − c·dt) clamp froze the body in
        // one step; exponential decay must leave e^(−c·dt) of the
        // velocity instead.
        let mut b = unit_ball(Vec3::ZERO);
        b.linear_damping = 150.0;
        b.set_linear_velocity(Vec3::new(8.0, 0.0, 0.0));
        integrate(&mut b, 0.01); // damping·dt = 1.5
        let v = b.linear_velocity().x;
        let expected = 8.0 * (-1.5f32).exp();
        assert!(v > 0.0, "velocity must not hit a hard zero");
        assert!((v - expected).abs() < 1e-4, "v = {v}, expected {expected}");
        // Halving the step twice must match one full step (semigroup
        // property of exponential decay) — the linear form fails this.
        let mut two = unit_ball(Vec3::ZERO);
        two.linear_damping = 150.0;
        two.set_linear_velocity(Vec3::new(8.0, 0.0, 0.0));
        integrate(&mut two, 0.005);
        integrate(&mut two, 0.005);
        let v2 = two.linear_velocity().x;
        assert!(
            (v2 - expected).abs() < 1e-4,
            "v2 = {v2}, expected {expected}"
        );
    }

    #[test]
    fn angular_damping_slows_spin() {
        let mut b = unit_ball(Vec3::ZERO);
        b.angular_damping = 0.5;
        b.set_angular_velocity(Vec3::new(0.0, 10.0, 0.0));
        for _ in 0..100 {
            integrate(&mut b, 0.01);
        }
        assert!(b.angular_velocity().length() < 10.0 * 0.7);
    }
}
