//! Semi-implicit Euler integration of rigid-body state as SIMD sweeps.
//!
//! Each integration pass is written **once** as a width-generic kernel
//! over [`WideF32`] and instantiated at `f32` (the scalar fallback and the
//! remainder loop), [`F32x4`] (SSE2) and [`F32x8`] (AVX2, behind a
//! `#[target_feature]` wrapper on a runtime-detected dispatch path). The
//! kernels replicate the scalar expression trees of the old per-body
//! integrator exactly — same association, no FMA, conditionals as
//! bitwise `select` — so every instantiation produces bit-identical state
//! (see DESIGN.md §10).

use parallax_math::simd::{SimdMode, WideF32};
use parallax_math::Vec3;

#[cfg(target_arch = "x86_64")]
use parallax_math::simd::{F32x4, F32x8};

use crate::store::BodyStore;

/// Applies accumulated forces to velocities (the "apply forces" step).
///
/// `gravity` is added as an acceleration; accumulated force/torque are
/// consumed and cleared for every body (movable or not), matching the old
/// per-body code.
pub fn apply_forces(store: &mut BodyStore, gravity: Vec3, dt: f32, mode: SimdMode) {
    store.refresh_movable_mask();
    let mode = mode.clamp_to_supported();
    #[cfg(target_arch = "x86_64")]
    match mode {
        SimdMode::Scalar => apply_forces_sweep::<f32>(store, gravity, dt),
        SimdMode::Sse2 => apply_forces_sweep::<F32x4>(store, gravity, dt),
        // SAFETY: `clamp_to_supported` above verified AVX2 via
        // `is_x86_feature_detected!`, so executing AVX2 code is sound.
        SimdMode::Avx2 => unsafe { apply_forces_avx2(store, gravity, dt) },
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = mode;
        apply_forces_sweep::<f32>(store, gravity, dt);
    }
}

/// Integrates position/orientation from velocity, applies damping and
/// refreshes the world-space inverse inertia.
pub fn integrate(store: &mut BodyStore, dt: f32, mode: SimdMode) {
    store.refresh_movable_mask();
    let mode = mode.clamp_to_supported();
    #[cfg(target_arch = "x86_64")]
    match mode {
        SimdMode::Scalar => integrate_sweep::<f32>(store, dt),
        SimdMode::Sse2 => integrate_sweep::<F32x4>(store, dt),
        // SAFETY: `clamp_to_supported` above verified AVX2 via
        // `is_x86_feature_detected!`, so executing AVX2 code is sound.
        SimdMode::Avx2 => unsafe { integrate_avx2(store, dt) },
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = mode;
        integrate_sweep::<f32>(store, dt);
    }
}

/// Caps runaway velocities to keep explosions numerically stable.
///
/// Like the old per-body code this has no static/disabled guard — static
/// bodies carry zero velocity, so the clamp is a no-op for them.
pub fn clamp_velocities(store: &mut BodyStore, max_lin: f32, max_ang: f32, mode: SimdMode) {
    let mode = mode.clamp_to_supported();
    #[cfg(target_arch = "x86_64")]
    match mode {
        SimdMode::Scalar => clamp_sweep::<f32>(store, max_lin, max_ang),
        SimdMode::Sse2 => clamp_sweep::<F32x4>(store, max_lin, max_ang),
        // SAFETY: `clamp_to_supported` above verified AVX2 via
        // `is_x86_feature_detected!`, so executing AVX2 code is sound.
        SimdMode::Avx2 => unsafe { clamp_avx2(store, max_lin, max_ang) },
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = mode;
        clamp_sweep::<f32>(store, max_lin, max_ang);
    }
}

// --- AVX2 wrappers -------------------------------------------------------
//
// `#[target_feature(enable = "avx2")]` recompiles the inlined generic
// sweep as AVX2 code; the functions are `unsafe` because calling them on a
// CPU without AVX2 would be undefined behaviour. All call sites sit behind
// `SimdMode::clamp_to_supported`.

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn apply_forces_avx2(store: &mut BodyStore, gravity: Vec3, dt: f32) {
    apply_forces_sweep::<F32x8>(store, gravity, dt);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn integrate_avx2(store: &mut BodyStore, dt: f32) {
    integrate_sweep::<F32x8>(store, dt);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn clamp_avx2(store: &mut BodyStore, max_lin: f32, max_ang: f32) {
    clamp_sweep::<F32x8>(store, max_lin, max_ang);
}

// --- width-generic sweeps ------------------------------------------------

/// Runs `W`-wide chunks over the full body range, finishing the remainder
/// (`len % LANES` bodies) with the one-lane `f32` instantiation of the
/// *same* chunk kernel, so remainder lanes take the identical data path.
macro_rules! sweep {
    ($store:expr, $chunk:ident::<$w:ty>($($arg:expr),*)) => {{
        let n = $store.len();
        let main = n - n % <$w as WideF32>::LANES;
        let mut i = 0;
        while i < main {
            $chunk::<$w>($store, i, $($arg),*);
            i += <$w as WideF32>::LANES;
        }
        while i < n {
            $chunk::<f32>($store, i, $($arg),*);
            i += 1;
        }
    }};
}

#[inline(always)]
fn apply_forces_sweep<W: WideF32>(store: &mut BodyStore, gravity: Vec3, dt: f32) {
    sweep!(store, apply_forces_chunk::<W>(gravity, dt));
}

#[inline(always)]
fn integrate_sweep<W: WideF32>(store: &mut BodyStore, dt: f32) {
    sweep!(store, integrate_chunk::<W>(dt));
}

#[inline(always)]
fn clamp_sweep<W: WideF32>(store: &mut BodyStore, max_lin: f32, max_ang: f32) {
    sweep!(store, clamp_chunk::<W>(max_lin, max_ang));
}

/// One `W`-wide chunk of the apply-forces pass, starting at body `i`.
///
/// Scalar reference (old `RigidBody` path):
/// ```text
/// if static/disabled { force = torque = 0; return }
/// lin_vel += (gravity + force * inv_mass) * dt
/// ang_vel += inv_inertia_world * torque * dt
/// force = torque = 0
/// ```
#[inline(always)]
fn apply_forces_chunk<W: WideF32>(s: &mut BodyStore, i: usize, gravity: Vec3, dt: f32) {
    let m = W::load(&s.movable_mask, i);
    let dtv = W::splat(dt);
    let im = W::load(&s.inv_mass, i);

    let lx = W::load(&s.lin_vel.x, i);
    let ly = W::load(&s.lin_vel.y, i);
    let lz = W::load(&s.lin_vel.z, i);
    let nlx = lx + (W::splat(gravity.x) + W::load(&s.force.x, i) * im) * dtv;
    let nly = ly + (W::splat(gravity.y) + W::load(&s.force.y, i) * im) * dtv;
    let nlz = lz + (W::splat(gravity.z) + W::load(&s.force.z, i) * im) * dtv;
    W::select(m, nlx, lx).store(&mut s.lin_vel.x, i);
    W::select(m, nly, ly).store(&mut s.lin_vel.y, i);
    W::select(m, nlz, lz).store(&mut s.lin_vel.z, i);

    let tx = W::load(&s.torque.x, i);
    let ty = W::load(&s.torque.y, i);
    let tz = W::load(&s.torque.z, i);
    let w = &s.inv_inertia_world.e;
    // (inv_inertia_world * torque) * dt, row dot with Vec3::dot association.
    let dx = ((W::load(&w[0], i) * tx + W::load(&w[1], i) * ty) + W::load(&w[2], i) * tz) * dtv;
    let dy = ((W::load(&w[3], i) * tx + W::load(&w[4], i) * ty) + W::load(&w[5], i) * tz) * dtv;
    let dz = ((W::load(&w[6], i) * tx + W::load(&w[7], i) * ty) + W::load(&w[8], i) * tz) * dtv;
    let ax = W::load(&s.ang_vel.x, i);
    let ay = W::load(&s.ang_vel.y, i);
    let az = W::load(&s.ang_vel.z, i);
    W::select(m, ax + dx, ax).store(&mut s.ang_vel.x, i);
    W::select(m, ay + dy, ay).store(&mut s.ang_vel.y, i);
    W::select(m, az + dz, az).store(&mut s.ang_vel.z, i);

    // Accumulators are consumed unconditionally (also for static bodies).
    let zero = W::splat(0.0);
    zero.store(&mut s.force.x, i);
    zero.store(&mut s.force.y, i);
    zero.store(&mut s.force.z, i);
    zero.store(&mut s.torque.x, i);
    zero.store(&mut s.torque.y, i);
    zero.store(&mut s.torque.z, i);
}

/// One `W`-wide chunk of the damping + position/orientation integration
/// pass, including the world-inertia refresh.
///
/// Scalar reference:
/// ```text
/// if static/disabled { return }
/// lin_vel *= exp(-linear_damping * dt); ang_vel *= exp(-angular_damping * dt)
/// pos += lin_vel * dt
/// rot = rot.integrate(ang_vel, dt)   // q' = normalize(q + dt/2 (0,ω)⊗q)
/// inv_inertia_world = r * inv_inertia_local * rᵀ
/// ```
#[inline(always)]
fn integrate_chunk<W: WideF32>(s: &mut BodyStore, i: usize, dt: f32) {
    let m = W::load(&s.movable_mask, i);
    let dtv = W::splat(dt);

    // Damping as exponential decay; exp is the scalar libm call per lane
    // at every width (see WideF32::exp).
    let lin_scale = (-(W::load(&s.linear_damping, i)) * dtv).exp();
    let ang_scale = (-(W::load(&s.angular_damping, i)) * dtv).exp();

    let lx = W::load(&s.lin_vel.x, i);
    let ly = W::load(&s.lin_vel.y, i);
    let lz = W::load(&s.lin_vel.z, i);
    let vlx = W::select(m, lx * lin_scale, lx);
    let vly = W::select(m, ly * lin_scale, ly);
    let vlz = W::select(m, lz * lin_scale, lz);
    vlx.store(&mut s.lin_vel.x, i);
    vly.store(&mut s.lin_vel.y, i);
    vlz.store(&mut s.lin_vel.z, i);

    let ax = W::load(&s.ang_vel.x, i);
    let ay = W::load(&s.ang_vel.y, i);
    let az = W::load(&s.ang_vel.z, i);
    let vax = W::select(m, ax * ang_scale, ax);
    let vay = W::select(m, ay * ang_scale, ay);
    let vaz = W::select(m, az * ang_scale, az);
    vax.store(&mut s.ang_vel.x, i);
    vay.store(&mut s.ang_vel.y, i);
    vaz.store(&mut s.ang_vel.z, i);

    // pos += lin_vel * dt (with the damped velocity, as in the scalar path;
    // non-movable lanes are select-discarded).
    let px = W::load(&s.pos.x, i);
    let py = W::load(&s.pos.y, i);
    let pz = W::load(&s.pos.z, i);
    W::select(m, px + vlx * dtv, px).store(&mut s.pos.x, i);
    W::select(m, py + vly * dtv, py).store(&mut s.pos.y, i);
    W::select(m, pz + vlz * dtv, pz).store(&mut s.pos.z, i);

    // rot = rot.integrate(ang_vel, dt): dq = (0, ω) ⊗ q with the Hamilton
    // expansion of Quat::mul, keeping the literal 0·q terms so signed
    // zeros match the scalar path bit-for-bit.
    let qw = W::load(&s.rot.w, i);
    let qx = W::load(&s.rot.x, i);
    let qy = W::load(&s.rot.y, i);
    let qz = W::load(&s.rot.z, i);
    let zero = W::splat(0.0);
    let dqw = ((zero * qw - vax * qx) - vay * qy) - vaz * qz;
    let dqx = ((zero * qx + vax * qw) + vay * qz) - vaz * qy;
    let dqy = ((zero * qy - vax * qz) + vay * qw) + vaz * qx;
    let dqz = ((zero * qz + vax * qy) - vay * qx) + vaz * qw;
    let half_dt = W::splat(0.5 * dt);
    let uw = qw + dqw * half_dt;
    let ux = qx + dqx * half_dt;
    let uy = qy + dqy * half_dt;
    let uz = qz + dqz * half_dt;
    // normalized(): n = sqrt(w² + x² + y² + z²); fall back to identity
    // when n ≤ 1e-12 (Quat::normalized's guard).
    let n = (((uw * uw + ux * ux) + uy * uy) + uz * uz).sqrt();
    let ok = n.gt(W::splat(1e-12));
    let nw = W::select(ok, uw / n, W::splat(1.0));
    let nx = W::select(ok, ux / n, zero);
    let ny = W::select(ok, uy / n, zero);
    let nz = W::select(ok, uz / n, zero);
    let ow = W::select(m, nw, qw);
    let ox = W::select(m, nx, qx);
    let oy = W::select(m, ny, qy);
    let oz = W::select(m, nz, qz);
    ow.store(&mut s.rot.w, i);
    ox.store(&mut s.rot.x, i);
    oy.store(&mut s.rot.y, i);
    oz.store(&mut s.rot.z, i);

    // refresh_inertia(): world = r * local * rᵀ with r = rot.to_mat3(),
    // replicating Quat::to_mat3 and the two Mat3 products element-wise.
    let two = W::splat(2.0);
    let one = W::splat(1.0);
    let r = [
        one - two * (oy * oy + oz * oz),
        two * (ox * oy - ow * oz),
        two * (ox * oz + ow * oy),
        two * (ox * oy + ow * oz),
        one - two * (ox * ox + oz * oz),
        two * (oy * oz - ow * ox),
        two * (ox * oz - ow * oy),
        two * (oy * oz + ow * ox),
        one - two * (ox * ox + oy * oy),
    ];
    let l: [W; 9] = std::array::from_fn(|k| W::load(&s.inv_inertia_local.e[k], i));
    // m1 = r * local
    let mut m1 = [zero; 9];
    for row in 0..3 {
        for col in 0..3 {
            m1[3 * row + col] =
                (r[3 * row] * l[col] + r[3 * row + 1] * l[3 + col]) + r[3 * row + 2] * l[6 + col];
        }
    }
    // world = m1 * rᵀ: world[row][col] = m1.rows[row] · r.rows[col]
    for row in 0..3 {
        for col in 0..3 {
            let w = (m1[3 * row] * r[3 * col] + m1[3 * row + 1] * r[3 * col + 1])
                + m1[3 * row + 2] * r[3 * col + 2];
            let old = W::load(&s.inv_inertia_world.e[3 * row + col], i);
            W::select(m, w, old).store(&mut s.inv_inertia_world.e[3 * row + col], i);
        }
    }
}

/// One `W`-wide chunk of the velocity clamp.
///
/// Scalar reference: `if |v| > max { v *= max / |v| }`, separately for
/// linear and angular velocity. The division in masked-off lanes produces
/// garbage (`inf`/NaN for zero velocities) that `select` discards
/// bitwise without inspecting it.
#[inline(always)]
fn clamp_chunk<W: WideF32>(s: &mut BodyStore, i: usize, max_lin: f32, max_ang: f32) {
    let lx = W::load(&s.lin_vel.x, i);
    let ly = W::load(&s.lin_vel.y, i);
    let lz = W::load(&s.lin_vel.z, i);
    let ll = ((lx * lx + ly * ly) + lz * lz).sqrt();
    let lmax = W::splat(max_lin);
    let lover = ll.gt(lmax);
    let lscale = lmax / ll;
    W::select(lover, lx * lscale, lx).store(&mut s.lin_vel.x, i);
    W::select(lover, ly * lscale, ly).store(&mut s.lin_vel.y, i);
    W::select(lover, lz * lscale, lz).store(&mut s.lin_vel.z, i);

    let ax = W::load(&s.ang_vel.x, i);
    let ay = W::load(&s.ang_vel.y, i);
    let az = W::load(&s.ang_vel.z, i);
    let al = ((ax * ax + ay * ay) + az * az).sqrt();
    let amax = W::splat(max_ang);
    let aover = al.gt(amax);
    let ascale = amax / al;
    W::select(aover, ax * ascale, ax).store(&mut s.ang_vel.x, i);
    W::select(aover, ay * ascale, ay).store(&mut s.ang_vel.y, i);
    W::select(aover, az * ascale, az).store(&mut s.ang_vel.z, i);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::BodyDesc;
    use crate::shape::Shape;

    fn unit_ball(pos: Vec3) -> BodyStore {
        let mut s = BodyStore::default();
        s.push(
            &BodyDesc::dynamic(pos)
                .with_shape(Shape::sphere(0.5), 1.0)
                .with_damping(0.0, 0.0),
        );
        s
    }

    #[test]
    fn gravity_accelerates() {
        let mut s = unit_ball(Vec3::ZERO);
        apply_forces(&mut s, Vec3::new(0.0, -10.0, 0.0), 0.1, SimdMode::Scalar);
        assert!((s.linear_velocity(0).y + 1.0).abs() < 1e-6);
    }

    #[test]
    fn forces_are_consumed() {
        let mut s = unit_ball(Vec3::ZERO);
        s.add_force(0, Vec3::new(10.0, 0.0, 0.0));
        apply_forces(&mut s, Vec3::ZERO, 0.1, SimdMode::Scalar);
        assert!((s.linear_velocity(0).x - 1.0).abs() < 1e-6);
        // Second step without new force: no further acceleration.
        apply_forces(&mut s, Vec3::ZERO, 0.1, SimdMode::Scalar);
        assert!((s.linear_velocity(0).x - 1.0).abs() < 1e-6);
    }

    #[test]
    fn static_bodies_ignore_forces() {
        let mut s = BodyStore::default();
        s.push(&BodyDesc::fixed(Vec3::ZERO).with_shape(Shape::sphere(0.5), 1.0));
        s.add_force(0, Vec3::new(10.0, 0.0, 0.0));
        apply_forces(&mut s, Vec3::new(0.0, -10.0, 0.0), 0.1, SimdMode::Scalar);
        integrate(&mut s, 0.1, SimdMode::Scalar);
        assert_eq!(s.position(0), Vec3::ZERO);
        assert_eq!(s.linear_velocity(0), Vec3::ZERO);
        // Accumulated force was still consumed.
        assert_eq!(s.force.get(0), Vec3::ZERO);
    }

    #[test]
    fn ballistic_trajectory() {
        // x(t) = v0 t, y(t) ≈ -g t²/2 under semi-implicit Euler.
        let mut s = unit_ball(Vec3::ZERO);
        s.set_linear_velocity(0, Vec3::new(1.0, 0.0, 0.0));
        let dt = 0.001;
        for _ in 0..1000 {
            apply_forces(&mut s, Vec3::new(0.0, -10.0, 0.0), dt, SimdMode::Scalar);
            integrate(&mut s, dt, SimdMode::Scalar);
        }
        let p = s.position(0);
        assert!((p.x - 1.0).abs() < 1e-2, "x = {}", p.x);
        assert!((p.y + 5.0).abs() < 0.05, "y = {}", p.y);
    }

    #[test]
    fn velocity_clamp() {
        let mut s = unit_ball(Vec3::ZERO);
        s.set_linear_velocity(0, Vec3::new(1000.0, 0.0, 0.0));
        s.set_angular_velocity(0, Vec3::new(0.0, 500.0, 0.0));
        clamp_velocities(&mut s, 50.0, 20.0, SimdMode::Scalar);
        assert!((s.linear_velocity(0).length() - 50.0).abs() < 1e-3);
        assert!((s.angular_velocity(0).length() - 20.0).abs() < 1e-3);
    }

    #[test]
    fn heavy_damping_decays_smoothly_not_to_zero() {
        // With damping·dt ≥ 1 the old (1 − c·dt) clamp froze the body in
        // one step; exponential decay must leave e^(−c·dt) of the
        // velocity instead.
        let mut s = unit_ball(Vec3::ZERO);
        s.linear_damping[0] = 150.0;
        s.set_linear_velocity(0, Vec3::new(8.0, 0.0, 0.0));
        integrate(&mut s, 0.01, SimdMode::Scalar); // damping·dt = 1.5
        let v = s.linear_velocity(0).x;
        let expected = 8.0 * (-1.5f32).exp();
        assert!(v > 0.0, "velocity must not hit a hard zero");
        assert!((v - expected).abs() < 1e-4, "v = {v}, expected {expected}");
        // Halving the step twice must match one full step (semigroup
        // property of exponential decay) — the linear form fails this.
        let mut two = unit_ball(Vec3::ZERO);
        two.linear_damping[0] = 150.0;
        two.set_linear_velocity(0, Vec3::new(8.0, 0.0, 0.0));
        integrate(&mut two, 0.005, SimdMode::Scalar);
        integrate(&mut two, 0.005, SimdMode::Scalar);
        let v2 = two.linear_velocity(0).x;
        assert!(
            (v2 - expected).abs() < 1e-4,
            "v2 = {v2}, expected {expected}"
        );
    }

    #[test]
    fn angular_damping_slows_spin() {
        let mut s = unit_ball(Vec3::ZERO);
        s.angular_damping[0] = 0.5;
        s.set_angular_velocity(0, Vec3::new(0.0, 10.0, 0.0));
        for _ in 0..100 {
            integrate(&mut s, 0.01, SimdMode::Scalar);
        }
        assert!(s.angular_velocity(0).length() < 10.0 * 0.7);
    }

    /// Mixed static/dynamic population with remainder lanes: every SIMD
    /// mode must produce bit-identical state to the scalar sweep.
    #[test]
    fn simd_sweeps_match_scalar_bitwise() {
        for n in [1usize, 3, 5, 8, 11, 17] {
            let build = |mode: SimdMode| {
                let mut s = BodyStore::default();
                for k in 0..n {
                    let pos = Vec3::new(k as f32 * 0.37, 1.0 + k as f32, -(k as f32) * 0.11);
                    if k % 4 == 3 {
                        s.push(&BodyDesc::fixed(pos).with_shape(Shape::sphere(0.5), 1.0));
                    } else {
                        s.push(
                            &BodyDesc::dynamic(pos)
                                .with_shape(Shape::cuboid(Vec3::splat(0.3)), 0.5 + k as f32)
                                .with_velocity(Vec3::new(0.1 * k as f32, -0.2, 0.3))
                                .with_angular_velocity(Vec3::new(0.5, -0.25 * k as f32, 1.0))
                                .with_damping(0.1, 0.02),
                        );
                    }
                }
                for _ in 0..5 {
                    apply_forces(&mut s, Vec3::new(0.0, -9.81, 0.0), 1.0 / 60.0, mode);
                    clamp_velocities(&mut s, 50.0, 20.0, mode);
                    integrate(&mut s, 1.0 / 60.0, mode);
                }
                s
            };
            let bits = |v: Vec3| [v.x.to_bits(), v.y.to_bits(), v.z.to_bits()];
            let reference = build(SimdMode::Scalar);
            for mode in [SimdMode::Sse2, SimdMode::Avx2] {
                let got = build(mode);
                for i in 0..n {
                    assert_eq!(
                        bits(reference.position(i)),
                        bits(got.position(i)),
                        "pos mismatch at body {i}/{n} in {mode:?}"
                    );
                    assert_eq!(
                        bits(reference.linear_velocity(i)),
                        bits(got.linear_velocity(i)),
                        "lin_vel mismatch at body {i}/{n} in {mode:?}"
                    );
                    assert_eq!(
                        bits(reference.angular_velocity(i)),
                        bits(got.angular_velocity(i)),
                        "ang_vel mismatch at body {i}/{n} in {mode:?}"
                    );
                    let (a, b) = (reference.rotation(i), got.rotation(i));
                    assert_eq!(
                        [a.w.to_bits(), a.x.to_bits(), a.y.to_bits(), a.z.to_bits()],
                        [b.w.to_bits(), b.x.to_bits(), b.y.to_bits(), b.z.to_bits()],
                        "rotation mismatch at body {i}/{n} in {mode:?}"
                    );
                }
            }
        }
    }
}
