//! Island creation: connected components of interacting bodies.
//!
//! This is the second *serial* phase of the pipeline (paper §3.2): "the
//! full topology of the contacts isn't known until the last pair is
//! examined by the algorithm, and only then can the constraint solvers
//! begin." A union-find over the joint/contact edges produces the islands;
//! static bodies do not merge islands (they act as anchors, like ODE).

use crate::store::BodyStore;

/// A single island: the bodies, joints and contact manifolds that must be
/// solved together.
#[derive(Debug, Default, Clone)]
pub struct Island {
    /// Indices into the world's body array.
    pub bodies: Vec<u32>,
    /// Indices into the world's joint array.
    pub joints: Vec<u32>,
    /// Indices into this step's manifold array.
    pub manifolds: Vec<u32>,
    /// Total degrees of freedom removed by the island's constraints
    /// (the paper's work-queue filter: islands with more than 25 DOF
    /// removed go to worker threads).
    pub dof_removed: usize,
}

impl Island {
    /// Empties the island while keeping its buffers' capacity, so island
    /// arenas can be reused across steps.
    pub fn clear(&mut self) {
        self.bodies.clear();
        self.joints.clear();
        self.manifolds.clear();
        self.dof_removed = 0;
    }
}

/// Statistics from island creation, consumed by the trace layer.
#[derive(Debug, Default, Clone, Copy)]
pub struct IslandStats {
    /// Bodies scanned.
    pub bodies: usize,
    /// Union operations performed.
    pub union_ops: usize,
    /// Find operations performed.
    pub find_ops: usize,
    /// Islands produced.
    pub islands: usize,
}

/// Union-find with path halving.
#[derive(Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    finds: usize,
    unions: usize,
}

impl UnionFind {
    /// Creates a forest of `n` singletons.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            finds: 0,
            unions: 0,
        }
    }

    /// Finds the representative of `x` with path halving.
    pub fn find(&mut self, x: u32) -> u32 {
        self.finds += 1;
        let mut x = x;
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    /// Unions the sets containing `a` and `b`; returns `true` if they were
    /// previously disjoint.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        self.unions += 1;
        if ra == rb {
            return false;
        }
        self.parent[ra.max(rb) as usize] = ra.min(rb);
        true
    }
}

/// An edge connecting two bodies: either a permanent joint or a contact
/// manifold produced this step.
#[derive(Debug, Clone, Copy)]
pub struct ConstraintEdge {
    /// Index of body A in the world body array.
    pub body_a: u32,
    /// Index of body B, or `u32::MAX` when the edge anchors to the static
    /// environment.
    pub body_b: u32,
    /// Index of the joint (`kind == EdgeKind::Joint`) or manifold.
    pub index: u32,
    /// What the edge refers to.
    pub kind: EdgeKind,
    /// Degrees of freedom this edge's constraint removes.
    pub dof: usize,
}

/// Whether a [`ConstraintEdge`] refers to a joint or a contact manifold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Permanent joint.
    Joint,
    /// Contact manifold from this step.
    Contact,
}

/// Builds islands from the constraint edges.
///
/// `bodies` is the world body store (used to skip static/disabled bodies).
/// Bodies' `island` fields are updated in place. Bodies with no edges do
/// not form islands (they are integrated unconstrained).
pub fn build_islands(
    bodies: &mut BodyStore,
    edges: &[ConstraintEdge],
) -> (Vec<Island>, IslandStats) {
    let mut islands = Vec::new();
    let stats = build_islands_into(bodies, edges, &mut islands);
    (islands, stats)
}

/// [`build_islands`] writing into a caller-owned arena: existing `Island`
/// entries in `out` are cleared and refilled in place, so their inner
/// buffers are reused step over step.
pub fn build_islands_into(
    bodies: &mut BodyStore,
    edges: &[ConstraintEdge],
    out: &mut Vec<Island>,
) -> IslandStats {
    for island in out.iter_mut() {
        island.clear();
    }
    let mut used = 0usize;
    let n = bodies.len();
    let mut uf = UnionFind::new(n);
    let mut stats = IslandStats {
        bodies: n,
        ..Default::default()
    };

    // Union pass: only dynamic-dynamic edges merge components.
    for e in edges {
        if e.body_b == u32::MAX {
            continue;
        }
        let (a, b) = (e.body_a as usize, e.body_b as usize);
        if bodies.is_movable(a) && bodies.is_movable(b) {
            uf.union(e.body_a, e.body_b);
        }
    }

    // Assign island slots by representative.
    let mut slot_of_root: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    for i in 0..n {
        bodies.set_island(i, u32::MAX);
    }

    // Touch flag: a body belongs to an island only if it participates in at
    // least one edge (directly or transitively).
    let mut touched = vec![false; n];
    for e in edges {
        if bodies.is_movable(e.body_a as usize) {
            touched[e.body_a as usize] = true;
        }
        if e.body_b != u32::MAX && bodies.is_movable(e.body_b as usize) {
            touched[e.body_b as usize] = true;
        }
    }

    for (i, &is_touched) in touched.iter().enumerate() {
        if !is_touched || !bodies.is_movable(i) {
            continue;
        }
        let root = uf.find(i as u32);
        let slot = *slot_of_root.entry(root).or_insert_with(|| {
            if used == out.len() {
                out.push(Island::default());
            }
            used += 1;
            (used - 1) as u32
        });
        bodies.set_island(i, slot);
        out[slot as usize].bodies.push(i as u32);
    }
    out.truncate(used);

    // Attach edges to islands.
    for e in edges {
        let owner = if bodies.is_movable(e.body_a as usize) {
            bodies.island(e.body_a as usize)
        } else if e.body_b != u32::MAX && bodies.is_movable(e.body_b as usize) {
            bodies.island(e.body_b as usize)
        } else {
            None
        };
        let Some(owner) = owner else {
            continue;
        };
        let island = &mut out[owner as usize];
        match e.kind {
            EdgeKind::Joint => island.joints.push(e.index),
            EdgeKind::Contact => island.manifolds.push(e.index),
        }
        island.dof_removed += e.dof;
    }

    stats.union_ops = uf.unions;
    stats.find_ops = uf.finds;
    stats.islands = out.len();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::{BodyDesc, BodyFlags};
    use crate::shape::Shape;
    use parallax_math::Vec3;

    fn dynamic_bodies(n: usize) -> BodyStore {
        let mut store = BodyStore::default();
        for i in 0..n {
            store.push(
                &BodyDesc::dynamic(Vec3::new(i as f32, 0.0, 0.0))
                    .with_shape(Shape::sphere(0.4), 1.0),
            );
        }
        store
    }

    fn replace_with_static(store: &mut BodyStore, i: usize) {
        // Turn an existing dynamic slot into an anchor: flag it static and
        // wipe its mass so `is_movable` rejects it the same way `push`ing a
        // fixed BodyDesc would.
        store.flags_mut(i).insert(BodyFlags::STATIC);
    }

    fn edge(a: u32, b: u32) -> ConstraintEdge {
        ConstraintEdge {
            body_a: a,
            body_b: b,
            index: 0,
            kind: EdgeKind::Contact,
            dof: 3,
        }
    }

    #[test]
    fn unconnected_bodies_form_no_islands() {
        let mut bodies = dynamic_bodies(4);
        let (islands, stats) = build_islands(&mut bodies, &[]);
        assert!(islands.is_empty());
        assert_eq!(stats.islands, 0);
        assert!((0..bodies.len()).all(|i| bodies.island(i).is_none()));
    }

    #[test]
    fn chain_merges_into_one_island() {
        let mut bodies = dynamic_bodies(5);
        let edges = [edge(0, 1), edge(1, 2), edge(2, 3), edge(3, 4)];
        let (islands, _) = build_islands(&mut bodies, &edges);
        assert_eq!(islands.len(), 1);
        assert_eq!(islands[0].bodies.len(), 5);
        assert_eq!(islands[0].manifolds.len(), 4);
        assert_eq!(islands[0].dof_removed, 12);
    }

    #[test]
    fn two_separate_clusters() {
        let mut bodies = dynamic_bodies(6);
        let edges = [edge(0, 1), edge(1, 2), edge(3, 4), edge(4, 5)];
        let (islands, _) = build_islands(&mut bodies, &edges);
        assert_eq!(islands.len(), 2);
        let sizes: Vec<usize> = islands.iter().map(|i| i.bodies.len()).collect();
        assert_eq!(sizes, vec![3, 3]);
    }

    #[test]
    fn static_anchor_does_not_merge() {
        // Bodies 0 and 2 both touch static body 1; they must remain in
        // separate islands (ODE semantics).
        let mut bodies = dynamic_bodies(3);
        replace_with_static(&mut bodies, 1);
        let edges = [edge(0, 1), edge(2, 1)];
        let (islands, _) = build_islands(&mut bodies, &edges);
        assert_eq!(islands.len(), 2);
        // Each island carries its own contact edge.
        assert_eq!(islands[0].manifolds.len(), 1);
        assert_eq!(islands[1].manifolds.len(), 1);
    }

    #[test]
    fn world_anchored_edge_joins_island() {
        let mut bodies = dynamic_bodies(2);
        let edges = [edge(0, 1), edge(0, u32::MAX)];
        let (islands, _) = build_islands(&mut bodies, &edges);
        assert_eq!(islands.len(), 1);
        assert_eq!(islands[0].manifolds.len(), 2);
    }

    #[test]
    fn disabled_bodies_are_skipped() {
        let mut bodies = dynamic_bodies(3);
        bodies.flags_mut(1).insert(BodyFlags::DISABLED);
        let edges = [edge(0, 1), edge(1, 2)];
        let (islands, _) = build_islands(&mut bodies, &edges);
        // Body 1 is disabled: 0 and 2 stay separate... but the edges still
        // anchor each remaining body.
        assert_eq!(islands.len(), 2);
    }

    #[test]
    fn union_find_path_halving_correctness() {
        let mut uf = UnionFind::new(10);
        uf.union(0, 1);
        uf.union(2, 3);
        uf.union(1, 3);
        assert_eq!(uf.find(0), uf.find(2));
        assert_ne!(uf.find(0), uf.find(5));
        // Re-union of same set returns false.
        assert!(!uf.union(0, 3));
    }
}
