//! Island creation: connected components of interacting bodies.
//!
//! This is the second *serial* phase of the pipeline (paper §3.2): "the
//! full topology of the contacts isn't known until the last pair is
//! examined by the algorithm, and only then can the constraint solvers
//! begin." A union-find over the joint/contact edges produces the islands;
//! static bodies do not merge islands (they act as anchors, like ODE).

use crate::store::BodyStore;

/// Bit set in a body's island lane when the body belongs to a *sleeping*
/// island: the low 31 bits then index the world's sleeping-island table
/// (see `crate::sleep`) instead of this step's island arena. `u32::MAX`
/// still means "no island" (it has the bit set, so always test the flag
/// or compare against `u32::MAX` first).
pub const SLEEP_SLOT_BIT: u32 = 0x8000_0000;

/// A single island: the bodies, joints and contact manifolds that must be
/// solved together.
#[derive(Debug, Default, Clone)]
pub struct Island {
    /// Indices into the world's body array.
    pub bodies: Vec<u32>,
    /// Indices into the world's joint array.
    pub joints: Vec<u32>,
    /// Indices into this step's manifold array.
    pub manifolds: Vec<u32>,
    /// Total degrees of freedom removed by the island's constraints
    /// (the paper's work-queue filter: islands with more than 25 DOF
    /// removed go to worker threads).
    pub dof_removed: usize,
}

impl Island {
    /// Empties the island while keeping its buffers' capacity, so island
    /// arenas can be reused across steps.
    pub fn clear(&mut self) {
        self.bodies.clear();
        self.joints.clear();
        self.manifolds.clear();
        self.dof_removed = 0;
    }
}

/// Statistics from island creation, consumed by the trace layer.
#[derive(Debug, Default, Clone, Copy)]
pub struct IslandStats {
    /// Bodies scanned.
    pub bodies: usize,
    /// Union operations performed.
    pub union_ops: usize,
    /// Find operations performed.
    pub find_ops: usize,
    /// Islands produced.
    pub islands: usize,
}

/// Union-find with path halving.
#[derive(Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    finds: usize,
    unions: usize,
}

impl UnionFind {
    /// Creates a forest of `n` singletons.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            finds: 0,
            unions: 0,
        }
    }

    /// Finds the representative of `x` with path halving.
    pub fn find(&mut self, x: u32) -> u32 {
        self.finds += 1;
        let mut x = x;
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    /// Unions the sets containing `a` and `b`; returns `true` if they were
    /// previously disjoint.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        self.unions += 1;
        if ra == rb {
            return false;
        }
        self.parent[ra.max(rb) as usize] = ra.min(rb);
        true
    }
}

/// An edge connecting two bodies: either a permanent joint or a contact
/// manifold produced this step.
#[derive(Debug, Clone, Copy)]
pub struct ConstraintEdge {
    /// Index of body A in the world body array.
    pub body_a: u32,
    /// Index of body B, or `u32::MAX` when the edge anchors to the static
    /// environment.
    pub body_b: u32,
    /// Index of the joint (`kind == EdgeKind::Joint`) or manifold.
    pub index: u32,
    /// What the edge refers to.
    pub kind: EdgeKind,
    /// Degrees of freedom this edge's constraint removes.
    pub dof: usize,
}

/// Whether a [`ConstraintEdge`] refers to a joint or a contact manifold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Permanent joint.
    Joint,
    /// Contact manifold from this step.
    Contact,
}

/// Builds islands from the constraint edges.
///
/// `bodies` is the world body store (used to skip static/disabled bodies).
/// Bodies' `island` fields are updated in place. Bodies with no edges do
/// not form islands (they are integrated unconstrained).
pub fn build_islands(
    bodies: &mut BodyStore,
    edges: &[ConstraintEdge],
) -> (Vec<Island>, IslandStats) {
    let mut islands = Vec::new();
    let stats = build_islands_into(bodies, edges, &mut islands);
    (islands, stats)
}

/// [`build_islands`] writing into a caller-owned arena: existing `Island`
/// entries in `out` are cleared and refilled in place, so their inner
/// buffers are reused step over step.
pub fn build_islands_into(
    bodies: &mut BodyStore,
    edges: &[ConstraintEdge],
    out: &mut Vec<Island>,
) -> IslandStats {
    for island in out.iter_mut() {
        island.clear();
    }
    let mut used = 0usize;
    let n = bodies.len();
    let mut uf = UnionFind::new(n);
    let mut stats = IslandStats {
        bodies: n,
        ..Default::default()
    };

    // Union pass: only dynamic-dynamic edges merge components.
    for e in edges {
        if e.body_b == u32::MAX {
            continue;
        }
        let (a, b) = (e.body_a as usize, e.body_b as usize);
        if bodies.is_movable(a) && bodies.is_movable(b) {
            uf.union(e.body_a, e.body_b);
        }
    }

    // Assign island slots by representative.
    let mut slot_of_root: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    for i in 0..n {
        bodies.set_island(i, u32::MAX);
    }

    // Touch flag: a body belongs to an island only if it participates in at
    // least one edge (directly or transitively).
    let mut touched = vec![false; n];
    for e in edges {
        if bodies.is_movable(e.body_a as usize) {
            touched[e.body_a as usize] = true;
        }
        if e.body_b != u32::MAX && bodies.is_movable(e.body_b as usize) {
            touched[e.body_b as usize] = true;
        }
    }

    for (i, &is_touched) in touched.iter().enumerate() {
        if !is_touched || !bodies.is_movable(i) {
            continue;
        }
        let root = uf.find(i as u32);
        let slot = *slot_of_root.entry(root).or_insert_with(|| {
            if used == out.len() {
                out.push(Island::default());
            }
            used += 1;
            (used - 1) as u32
        });
        bodies.set_island(i, slot);
        out[slot as usize].bodies.push(i as u32);
    }
    out.truncate(used);

    // Attach edges to islands.
    for e in edges {
        let owner = if bodies.is_movable(e.body_a as usize) {
            bodies.island(e.body_a as usize)
        } else if e.body_b != u32::MAX && bodies.is_movable(e.body_b as usize) {
            bodies.island(e.body_b as usize)
        } else {
            None
        };
        let Some(owner) = owner else {
            continue;
        };
        let island = &mut out[owner as usize];
        match e.kind {
            EdgeKind::Joint => island.joints.push(e.index),
            EdgeKind::Contact => island.manifolds.push(e.index),
        }
        island.dof_removed += e.dof;
    }

    stats.union_ops = uf.unions;
    stats.find_ops = uf.finds;
    stats.islands = out.len();
    stats
}

/// Persistent, incremental island builder.
///
/// Keeps the union-find forest and scratch lists alive across steps and
/// only visits bodies that appear in this step's constraint edges plus
/// the bodies it assigned slots to last step, so a settled world where
/// most bodies sleep pays O(awake + edges) per step instead of
/// O(bodies + edges). Sleeping bodies are never touched: their island
/// lane keeps the frozen [`SLEEP_SLOT_BIT`] encoding.
///
/// Produces bit-identical islands, slots and stats ordering to
/// [`build_islands_into`] when no body sleeps: slots are assigned in
/// ascending order of each component's lowest body index, exactly like
/// the from-scratch builder's `0..n` scan.
#[derive(Debug, Default)]
pub struct IslandGraph {
    /// Union-find parent, lazily re-initialised per epoch.
    parent: Vec<u32>,
    /// Epoch stamp per body; `stamp[i] == epoch` means `parent[i]` is valid.
    stamp: Vec<u32>,
    epoch: u32,
    /// Bodies touched by this build (stamped), sorted before slot assignment.
    touched: Vec<u32>,
    /// Bodies assigned an awake island slot by the previous build; their
    /// lanes are the only ones that need resetting next build.
    last_awake: Vec<u32>,
    /// When set (new graph, or world restored from a snapshot), the next
    /// build clears every awake body's island lane instead of trusting
    /// `last_awake`.
    full_reset: bool,
    finds: usize,
    unions: usize,
}

impl IslandGraph {
    /// Creates an empty graph; the first build performs a full lane reset.
    pub fn new() -> Self {
        IslandGraph {
            full_reset: true,
            ..Default::default()
        }
    }

    /// Requests a full island-lane reset on the next build. Call after
    /// restoring body state from a snapshot, when `last_awake` no longer
    /// matches the lanes actually stored.
    pub fn invalidate(&mut self) {
        self.full_reset = true;
    }

    #[inline]
    fn touch(&mut self, i: u32) {
        if self.stamp[i as usize] != self.epoch {
            self.stamp[i as usize] = self.epoch;
            self.parent[i as usize] = i;
            self.touched.push(i);
        }
    }

    #[inline]
    fn find(&mut self, x: u32) -> u32 {
        self.finds += 1;
        let mut x = x;
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    #[inline]
    fn union(&mut self, a: u32, b: u32) {
        let ra = self.find(a);
        let rb = self.find(b);
        self.unions += 1;
        if ra != rb {
            self.parent[ra.max(rb) as usize] = ra.min(rb);
        }
    }

    /// Incremental equivalent of [`build_islands_into`]: builds the awake
    /// islands for this step, leaving sleeping bodies' lanes untouched.
    pub fn build(
        &mut self,
        bodies: &mut BodyStore,
        edges: &[ConstraintEdge],
        out: &mut Vec<Island>,
    ) -> IslandStats {
        for island in out.iter_mut() {
            island.clear();
        }
        let n = bodies.len();
        self.parent.resize(n, 0);
        self.stamp.resize(n, 0);
        self.finds = 0;
        self.unions = 0;

        // Reset only the lanes the previous build assigned (bodies that
        // went to sleep since keep their frozen sleeping-slot lane).
        if self.full_reset {
            self.full_reset = false;
            for i in 0..n {
                if !bodies.is_sleeping(i) {
                    bodies.set_island(i, u32::MAX);
                }
            }
        } else {
            for k in 0..self.last_awake.len() {
                let b = self.last_awake[k] as usize;
                if !bodies.is_sleeping(b) {
                    bodies.set_island(b, u32::MAX);
                }
            }
        }
        self.last_awake.clear();

        // Epoch bump; on wrap, clear stamps once so stale stamps can't alias.
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
        }
        self.touched.clear();

        let awake = |bodies: &BodyStore, i: usize| bodies.is_movable(i) && !bodies.is_sleeping(i);

        // Touch + union pass over this step's edges. Only dynamic-dynamic
        // edges merge components; static/world anchors only mark their
        // movable endpoint as touched.
        for e in edges {
            let a_awake = awake(bodies, e.body_a as usize);
            if a_awake {
                self.touch(e.body_a);
            }
            if e.body_b != u32::MAX && awake(bodies, e.body_b as usize) {
                self.touch(e.body_b);
                if a_awake {
                    self.union(e.body_a, e.body_b);
                }
            }
        }

        // Slot assignment in ascending body order (first-encounter per
        // root), matching the from-scratch builder's `0..n` scan.
        self.touched.sort_unstable();
        let mut used = 0usize;
        let mut slot_of_root: std::collections::HashMap<u32, u32> =
            std::collections::HashMap::new();
        for k in 0..self.touched.len() {
            let bi = self.touched[k];
            let root = self.find(bi);
            let slot = *slot_of_root.entry(root).or_insert_with(|| {
                if used == out.len() {
                    out.push(Island::default());
                }
                used += 1;
                (used - 1) as u32
            });
            bodies.set_island(bi as usize, slot);
            out[slot as usize].bodies.push(bi);
            self.last_awake.push(bi);
        }
        out.truncate(used);

        // Attach edges to their owner island.
        for e in edges {
            let owner = if awake(bodies, e.body_a as usize) {
                bodies.island(e.body_a as usize)
            } else if e.body_b != u32::MAX && awake(bodies, e.body_b as usize) {
                bodies.island(e.body_b as usize)
            } else {
                None
            };
            let Some(owner) = owner else {
                continue;
            };
            let island = &mut out[owner as usize];
            match e.kind {
                EdgeKind::Joint => island.joints.push(e.index),
                EdgeKind::Contact => island.manifolds.push(e.index),
            }
            island.dof_removed += e.dof;
        }

        IslandStats {
            bodies: n,
            union_ops: self.unions,
            find_ops: self.finds,
            islands: out.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::{BodyDesc, BodyFlags};
    use crate::shape::Shape;
    use parallax_math::Vec3;

    fn dynamic_bodies(n: usize) -> BodyStore {
        let mut store = BodyStore::default();
        for i in 0..n {
            store.push(
                &BodyDesc::dynamic(Vec3::new(i as f32, 0.0, 0.0))
                    .with_shape(Shape::sphere(0.4), 1.0),
            );
        }
        store
    }

    fn replace_with_static(store: &mut BodyStore, i: usize) {
        // Turn an existing dynamic slot into an anchor: flag it static and
        // wipe its mass so `is_movable` rejects it the same way `push`ing a
        // fixed BodyDesc would.
        store.flags_mut(i).insert(BodyFlags::STATIC);
    }

    fn edge(a: u32, b: u32) -> ConstraintEdge {
        ConstraintEdge {
            body_a: a,
            body_b: b,
            index: 0,
            kind: EdgeKind::Contact,
            dof: 3,
        }
    }

    #[test]
    fn unconnected_bodies_form_no_islands() {
        let mut bodies = dynamic_bodies(4);
        let (islands, stats) = build_islands(&mut bodies, &[]);
        assert!(islands.is_empty());
        assert_eq!(stats.islands, 0);
        assert!((0..bodies.len()).all(|i| bodies.island(i).is_none()));
    }

    #[test]
    fn chain_merges_into_one_island() {
        let mut bodies = dynamic_bodies(5);
        let edges = [edge(0, 1), edge(1, 2), edge(2, 3), edge(3, 4)];
        let (islands, _) = build_islands(&mut bodies, &edges);
        assert_eq!(islands.len(), 1);
        assert_eq!(islands[0].bodies.len(), 5);
        assert_eq!(islands[0].manifolds.len(), 4);
        assert_eq!(islands[0].dof_removed, 12);
    }

    #[test]
    fn two_separate_clusters() {
        let mut bodies = dynamic_bodies(6);
        let edges = [edge(0, 1), edge(1, 2), edge(3, 4), edge(4, 5)];
        let (islands, _) = build_islands(&mut bodies, &edges);
        assert_eq!(islands.len(), 2);
        let sizes: Vec<usize> = islands.iter().map(|i| i.bodies.len()).collect();
        assert_eq!(sizes, vec![3, 3]);
    }

    #[test]
    fn static_anchor_does_not_merge() {
        // Bodies 0 and 2 both touch static body 1; they must remain in
        // separate islands (ODE semantics).
        let mut bodies = dynamic_bodies(3);
        replace_with_static(&mut bodies, 1);
        let edges = [edge(0, 1), edge(2, 1)];
        let (islands, _) = build_islands(&mut bodies, &edges);
        assert_eq!(islands.len(), 2);
        // Each island carries its own contact edge.
        assert_eq!(islands[0].manifolds.len(), 1);
        assert_eq!(islands[1].manifolds.len(), 1);
    }

    #[test]
    fn world_anchored_edge_joins_island() {
        let mut bodies = dynamic_bodies(2);
        let edges = [edge(0, 1), edge(0, u32::MAX)];
        let (islands, _) = build_islands(&mut bodies, &edges);
        assert_eq!(islands.len(), 1);
        assert_eq!(islands[0].manifolds.len(), 2);
    }

    #[test]
    fn disabled_bodies_are_skipped() {
        let mut bodies = dynamic_bodies(3);
        bodies.flags_mut(1).insert(BodyFlags::DISABLED);
        let edges = [edge(0, 1), edge(1, 2)];
        let (islands, _) = build_islands(&mut bodies, &edges);
        // Body 1 is disabled: 0 and 2 stay separate... but the edges still
        // anchor each remaining body.
        assert_eq!(islands.len(), 2);
    }

    #[test]
    fn incremental_graph_matches_full_rebuild() {
        // Same edge sets, several steps in a row (changing topology), must
        // give bit-identical islands and lanes to the from-scratch builder.
        let steps: Vec<Vec<ConstraintEdge>> = vec![
            vec![edge(0, 1), edge(1, 2), edge(4, 5)],
            vec![edge(0, 1), edge(4, 5), edge(5, 6)],
            vec![edge(2, 3), edge(0, u32::MAX)],
            vec![],
            vec![edge(6, 7), edge(0, 7), edge(3, 4)],
        ];
        let mut a = dynamic_bodies(8);
        let mut b = dynamic_bodies(8);
        replace_with_static(&mut a, 2);
        replace_with_static(&mut b, 2);
        let mut graph = IslandGraph::new();
        let mut inc_out = Vec::new();
        for edges in &steps {
            let inc_stats = graph.build(&mut a, edges, &mut inc_out);
            let mut full_out = Vec::new();
            let full_stats = build_islands_into(&mut b, edges, &mut full_out);
            assert_eq!(inc_out.len(), full_out.len());
            assert_eq!(inc_stats.islands, full_stats.islands);
            for (x, y) in inc_out.iter().zip(full_out.iter()) {
                assert_eq!(x.bodies, y.bodies);
                assert_eq!(x.joints, y.joints);
                assert_eq!(x.manifolds, y.manifolds);
                assert_eq!(x.dof_removed, y.dof_removed);
            }
            for i in 0..a.len() {
                assert_eq!(a.island(i), b.island(i), "lane mismatch at body {i}");
            }
        }
    }

    #[test]
    fn incremental_graph_skips_sleeping_bodies() {
        let mut bodies = dynamic_bodies(6);
        let mut graph = IslandGraph::new();
        let mut out = Vec::new();
        graph.build(&mut bodies, &[edge(0, 1), edge(3, 4)], &mut out);
        assert_eq!(out.len(), 2);

        // Put the {3, 4} island to sleep: flag + frozen sleeping lane.
        for i in [3usize, 4] {
            bodies.flags_mut(i).insert(BodyFlags::SLEEPING);
            bodies.set_island(i, SLEEP_SLOT_BIT);
        }
        graph.build(&mut bodies, &[edge(0, 1)], &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].bodies, vec![0, 1]);
        // Sleeping lanes untouched by the rebuild.
        assert_eq!(bodies.island_raw(3), SLEEP_SLOT_BIT);
        assert_eq!(bodies.island_raw(4), SLEEP_SLOT_BIT);

        // An edge naming a sleeping body must not drag it into an island.
        graph.build(&mut bodies, &[edge(0, 1), edge(1, 3)], &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].bodies, vec![0, 1]);
        assert_eq!(bodies.island_raw(3), SLEEP_SLOT_BIT);

        // After waking, the graph picks the bodies back up.
        for i in [3usize, 4] {
            bodies.flags_mut(i).remove(BodyFlags::SLEEPING);
            bodies.set_island(i, u32::MAX);
        }
        graph.build(&mut bodies, &[edge(3, 4)], &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].bodies, vec![3, 4]);
        assert!(bodies.island(0).is_none());
    }

    #[test]
    fn union_find_path_halving_correctness() {
        let mut uf = UnionFind::new(10);
        uf.union(0, 1);
        uf.union(2, 3);
        uf.union(1, 3);
        assert_eq!(uf.find(0), uf.find(2));
        assert_ne!(uf.find(0), uf.find(5));
        // Re-union of same set returns false.
        assert!(!uf.union(0, 3));
    }
}
