//! Island sleeping: the temporal-coherence fast path.
//!
//! Settled scenes pay almost nothing: once every body in an island has
//! been quiet (velocity EMA below threshold) for
//! [`crate::WorldConfig::sleep_steps`] consecutive steps, the whole
//! island is deactivated. Sleeping bodies are masked out of the
//! integrator sweeps, their broad-phase AABBs stay frozen, their
//! internal contact pairs bypass narrow-phase entirely (the manifolds
//! are parked here and replayed on wake), their contact-cache entries
//! are pinned against aging, and the incremental island builder
//! ([`crate::island::IslandGraph`]) never visits them.
//!
//! All sleep/wake decisions run in *serial, index-ordered* passes —
//! never inside the parallel phases — so trajectories stay bit-identical
//! across thread counts and SIMD modes. Wake sources: contact with an
//! awake body, a joint whose other side is awake, a blast impulse, a
//! user impulse/force/velocity write (detected by the disturbance scan),
//! and the explicit [`crate::World::wake_body`] / [`crate::World::wake_all`]
//! APIs.

use crate::contact::ContactManifold;

/// Value the activity EMA is reset to when a body wakes, so a freshly
/// woken body needs a few genuinely quiet steps (EMA halves per step)
/// before its sleep timer starts counting again.
pub(crate) const WAKE_EMA: f32 = 4.0;

/// Reads the `PARALLAX_SLEEP` toggle once: `1`, `on` or `true` enables
/// island sleeping by default in [`crate::WorldConfig::default`].
pub fn sleeping_from_env() -> bool {
    static SLEEP: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *SLEEP.get_or_init(|| {
        matches!(
            std::env::var("PARALLAX_SLEEP").as_deref(),
            Ok("1") | Ok("on") | Ok("true")
        )
    })
}

/// A deactivated island, parked until a wake event.
///
/// Stores the member body indices and the full contact manifolds the
/// island had when it fell asleep. On wake the manifolds are replayed
/// into the step's manifold arena (narrow-phase skipped them this step),
/// so the island re-solves with its resting contacts immediately instead
/// of free-falling for one step.
#[derive(Debug, Clone, Default)]
pub struct SleepingIsland {
    /// Member body indices, ascending.
    pub bodies: Vec<u32>,
    /// The island's contact manifolds at the moment it slept (internal
    /// and against static geometry only — by construction no manifold in
    /// a sleeping island references an awake dynamic body).
    pub manifolds: Vec<ContactManifold>,
}

/// The world's sleeping-island table plus the pending wake queue.
///
/// Slots are allocated from a free list so a body's island lane
/// (`SLEEP_SLOT_BIT | slot`, see [`crate::island::SLEEP_SLOT_BIT`])
/// stays stable while the island sleeps. All mutation happens in the
/// serial sleep/wake passes.
#[derive(Debug, Clone, Default)]
pub struct SleepSystem {
    /// Slot table; `None` = free slot.
    pub(crate) islands: Vec<Option<SleepingIsland>>,
    /// Free slot indices (LIFO).
    pub(crate) free: Vec<u32>,
    /// Bodies disturbed since the last wake resolution (impulses, blasts,
    /// direct velocity writes). Drained by the serial wake pass.
    pub(crate) pending_wakes: Vec<u32>,
}

impl SleepSystem {
    /// Number of currently sleeping islands.
    pub fn sleeping_islands(&self) -> usize {
        self.islands.iter().filter(|s| s.is_some()).count()
    }

    /// Returns `true` when nothing sleeps and no wake is pending, so the
    /// per-step sleep bookkeeping can be skipped entirely.
    #[inline]
    pub(crate) fn is_idle(&self) -> bool {
        self.pending_wakes.is_empty() && self.islands.len() == self.free.len()
    }

    /// Allocates a slot for a newly sleeping island.
    pub(crate) fn alloc(&mut self) -> u32 {
        match self.free.pop() {
            Some(slot) => slot,
            None => {
                self.islands.push(None);
                (self.islands.len() - 1) as u32
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_allocation_reuses_freed_slots() {
        let mut s = SleepSystem::default();
        assert!(s.is_idle());
        assert_eq!(s.alloc(), 0);
        assert_eq!(s.alloc(), 1);
        s.islands[0] = Some(SleepingIsland::default());
        s.islands[1] = Some(SleepingIsland::default());
        assert_eq!(s.sleeping_islands(), 2);
        assert!(!s.is_idle());
        s.islands[0] = None;
        s.free.push(0);
        assert_eq!(s.alloc(), 0);
        s.islands[0] = Some(SleepingIsland::default());
        assert_eq!(s.alloc(), 2);
    }
}
