//! An ODE-style rigid-body and cloth physics engine.
//!
//! This crate is the workload substrate for the ParallAX architecture study.
//! It mirrors the structure of the heavily modified Open Dynamics Engine
//! described in the paper (§3): a five-phase pipeline of
//!
//! 1. **Broad-phase** collision culling ([`broadphase`]),
//! 2. **Narrow-phase** contact generation ([`narrowphase`]),
//! 3. **Island creation** — connected components of constrained bodies
//!    ([`island`]),
//! 4. **Island processing** — per-island iterative constraint solve +
//!    integration ([`solver`], [`integrator`]),
//! 5. **Cloth simulation** — Jakobsen-style position-based dynamics
//!    ([`cloth`]).
//!
//! Extensions from the paper are implemented too: breakable joints,
//! pre-fractured objects that shatter inside blast volumes ([`fracture`]),
//! and explosions ([`explosion`]).
//!
//! # Examples
//!
//! ```
//! use parallax_physics::{World, WorldConfig, BodyDesc, Shape};
//! use parallax_math::Vec3;
//!
//! let mut world = World::new(WorldConfig::default());
//! // A ground plane and a falling sphere.
//! world.add_static_geom(Shape::plane(Vec3::UNIT_Y, 0.0));
//! let ball = world.add_body(
//!     BodyDesc::dynamic(Vec3::new(0.0, 5.0, 0.0)).with_shape(Shape::sphere(0.5), 1.0),
//! );
//! for _ in 0..300 {
//!     world.step();
//! }
//! let pos = world.body(ball).position();
//! assert!(pos.y > 0.0 && pos.y < 1.0, "ball should rest on the plane, got {pos:?}");
//! ```

pub mod body;
pub mod broadphase;
pub mod cloth;
pub mod contact;
pub mod contact_cache;
pub mod digest;
pub mod explosion;
pub mod fracture;
pub mod integrator;
pub mod island;
pub mod joint;
pub mod monitor;
pub mod narrowphase;
pub mod parallel;
pub mod pipeline;
pub mod probe;
pub mod ray;
pub mod shape;
pub mod sleep;
pub mod snapshot;
pub mod solver;
pub mod store;
pub mod world;

pub use body::{BodyDesc, BodyFlags, BodyId};
pub use cloth::{Cloth, ClothConfig, ClothId};
pub use contact::{ContactManifold, ContactPoint};
pub use contact_cache::ContactCache;
pub use digest::{chunk_digests, first_divergence, world_digest, Digest, DigestFault, Divergence};
pub use explosion::ExplosionConfig;
pub use fracture::FractureConfig;
pub use joint::{Joint, JointId, JointKind};
pub use monitor::{InvariantMonitor, MonitorConfig, Violation};
pub use parallax_math::SimdMode;
pub use pipeline::{set_injected_phase_delay, Stage, StepPipeline};
pub use probe::{PhaseKind, StepProfile};
pub use shape::{GeomId, Heightfield, Shape, TriMesh};
pub use sleep::{sleeping_from_env, SleepSystem, SleepingIsland};
pub use snapshot::{
    SnapshotError, MAGIC as SNAPSHOT_MAGIC, MIN_VERSION as SNAPSHOT_MIN_VERSION,
    VERSION as SNAPSHOT_VERSION,
};
pub use store::{BodiesView, BodyMut, BodyRef, BodyStore};
pub use world::{BroadphaseKind, World, WorldConfig};
