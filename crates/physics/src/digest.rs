//! Deterministic state digests: the observability substrate for the
//! pipeline's bit-identity guarantee.
//!
//! The pipeline promises bit-identical simulation across thread counts
//! and SIMD widths (see `tests/determinism.rs`), but a broken promise
//! used to be observable only as "end states differ". This module gives
//! every phase a cheap 64-bit fingerprint of the simulation state so a
//! divergence can be *localized*: first divergent step (via per-step
//! digests or snapshot-restart bisection — see `bench/src/bin/bisect`),
//! first divergent phase within that step ([`crate::StepProfile::digests`]),
//! and finally the first differing body and lane ([`first_divergence`]).
//!
//! The hash is a hand-rolled XXH64 (the workspace builds with no
//! registry access) restricted to 8-byte words: every input — `f32`
//! lanes, flags, entity ids — is framed into `u64` words before mixing,
//! which keeps the hot loop branch-free and makes the streaming state a
//! fixed 4-lane accumulator. Float values are hashed by *bit pattern*
//! (`to_bits`), so two states digest equally iff they are bit-identical,
//! which is exactly the pipeline's contract (note: `-0.0` and `+0.0`
//! therefore digest differently, as they must).
//!
//! Digests are computed per phase behind [`crate::WorldConfig::digests`]
//! (env: `PARALLAX_DIGEST=1`), published as `physics.digest.<phase>`
//! telemetry gauges, and recorded in the step profile. The deliberate
//! single-ULP fault knob ([`DigestFault`], `PARALLAX_DIGEST_FAULT`)
//! exists so the bisection tooling can be tested against a divergence
//! with a known ground truth.

use crate::contact::ContactManifold;
use crate::contact_cache::ContactCache;
use crate::probe::{IslandWork, PhaseKind};
use crate::shape::GeomId;
use crate::store::BodyStore;
use crate::world::World;

const PRIME64_1: u64 = 0x9E37_79B1_85EB_CA87;
const PRIME64_2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const PRIME64_3: u64 = 0x1656_67B1_9E37_79F9;
const PRIME64_4: u64 = 0x85EB_CA77_C2B2_AE63;
const PRIME64_5: u64 = 0x27D4_EB2F_1656_67C5;

/// Streaming 64-bit digest (XXH64 over a stream of 8-byte words).
///
/// Equivalent to XXH64 of the concatenated little-endian words; the
/// word restriction removes the byte-buffer bookkeeping from the hot
/// path. Feed words with the `write_*` methods, then [`Digest::finish`].
#[derive(Debug, Clone)]
pub struct Digest {
    seed: u64,
    v: [u64; 4],
    /// Words waiting for a full 4-word stripe.
    buf: [u64; 4],
    buffered: usize,
    total_words: u64,
}

impl Default for Digest {
    fn default() -> Self {
        Digest::new(0)
    }
}

/// Packs two `f32` bit patterns into one little-endian word.
#[inline]
fn pack(lo: f32, hi: f32) -> u64 {
    (lo.to_bits() as u64) | ((hi.to_bits() as u64) << 32)
}

#[inline]
fn round(acc: u64, word: u64) -> u64 {
    acc.wrapping_add(word.wrapping_mul(PRIME64_2))
        .rotate_left(31)
        .wrapping_mul(PRIME64_1)
}

#[inline]
fn merge_round(hash: u64, acc: u64) -> u64 {
    (hash ^ round(0, acc))
        .wrapping_mul(PRIME64_1)
        .wrapping_add(PRIME64_4)
}

impl Digest {
    /// A fresh digest with the given seed.
    pub fn new(seed: u64) -> Self {
        Digest {
            seed,
            v: [
                seed.wrapping_add(PRIME64_1).wrapping_add(PRIME64_2),
                seed.wrapping_add(PRIME64_2),
                seed,
                seed.wrapping_sub(PRIME64_1),
            ],
            buf: [0; 4],
            buffered: 0,
            total_words: 0,
        }
    }

    /// Mixes one 64-bit word into the stream.
    #[inline]
    pub fn write_u64(&mut self, word: u64) {
        self.buf[self.buffered] = word;
        self.buffered += 1;
        self.total_words += 1;
        if self.buffered == 4 {
            for i in 0..4 {
                self.v[i] = round(self.v[i], self.buf[i]);
            }
            self.buffered = 0;
        }
    }

    /// Mixes a 32-bit word (zero-extended).
    #[inline]
    pub fn write_u32(&mut self, word: u32) {
        self.write_u64(word as u64);
    }

    /// Mixes an `f32` by bit pattern.
    #[inline]
    pub fn write_f32(&mut self, v: f32) {
        self.write_u64(v.to_bits() as u64);
    }

    /// Mixes an `f64` by bit pattern.
    #[inline]
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Mixes a whole `f32` lane, two values per word (the hot path for
    /// the SoA body and cloth lanes).
    ///
    /// Framing-equivalent to calling [`Digest::write_u64`] per packed
    /// pair, but once the stripe buffer is drained the bulk is folded
    /// four words (eight values) per iteration directly into the four
    /// accumulators — independent multiply/rotate chains the CPU can
    /// pipeline, instead of a buffer store and branch per word. The
    /// digests run inside the phase walls, so this path is what keeps
    /// them inside their per-step budget (see `digest_overhead`).
    pub fn write_f32s(&mut self, lane: &[f32]) {
        let mut rest = lane;
        while self.buffered != 0 && rest.len() >= 2 {
            self.write_u64(pack(rest[0], rest[1]));
            rest = &rest[2..];
        }
        let mut stripes = rest.chunks_exact(8);
        for s in &mut stripes {
            self.v[0] = round(self.v[0], pack(s[0], s[1]));
            self.v[1] = round(self.v[1], pack(s[2], s[3]));
            self.v[2] = round(self.v[2], pack(s[4], s[5]));
            self.v[3] = round(self.v[3], pack(s[6], s[7]));
            self.total_words += 4;
        }
        let mut pairs = stripes.remainder().chunks_exact(2);
        for p in &mut pairs {
            self.write_u64(pack(p[0], p[1]));
        }
        if let [last] = pairs.remainder() {
            self.write_u64(last.to_bits() as u64);
        }
    }

    /// Mixes a stream of 32-bit words, two per 64-bit word.
    pub fn write_u32s(&mut self, words: impl IntoIterator<Item = u32>) {
        let mut pending: Option<u32> = None;
        for w in words {
            match pending.take() {
                None => pending = Some(w),
                Some(lo) => self.write_u64((lo as u64) | ((w as u64) << 32)),
            }
        }
        if let Some(lo) = pending {
            self.write_u64(lo as u64);
        }
    }

    /// Finalizes the digest (XXH64 convergence + avalanche).
    pub fn finish(&self) -> u64 {
        let mut h = if self.total_words >= 4 {
            let [v1, v2, v3, v4] = self.v;
            let mut h = v1
                .rotate_left(1)
                .wrapping_add(v2.rotate_left(7))
                .wrapping_add(v3.rotate_left(12))
                .wrapping_add(v4.rotate_left(18));
            for v in self.v {
                h = merge_round(h, v);
            }
            h
        } else {
            self.seed.wrapping_add(PRIME64_5)
        };
        h = h.wrapping_add(self.total_words * 8);
        for i in 0..self.buffered {
            h = (h ^ round(0, self.buf[i]))
                .rotate_left(27)
                .wrapping_mul(PRIME64_1)
                .wrapping_add(PRIME64_4);
        }
        h ^= h >> 33;
        h = h.wrapping_mul(PRIME64_2);
        h ^= h >> 29;
        h = h.wrapping_mul(PRIME64_3);
        h ^= h >> 32;
        h
    }
}

/// One-shot digest of an `f32` slice (used for per-island `RowSoA`
/// lambda fingerprints).
pub fn hash_f32s(seed: u64, values: &[f32]) -> u64 {
    let mut d = Digest::new(seed);
    d.write_f32s(values);
    d.finish()
}

/// `true` when `PARALLAX_DIGEST` requests per-phase digests
/// (`1`/`on`/`true`). Read once per process.
pub fn digests_from_env() -> bool {
    use std::sync::OnceLock;
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| {
        matches!(
            std::env::var("PARALLAX_DIGEST").as_deref(),
            Ok("1") | Ok("on") | Ok("true")
        )
    })
}

/// A deliberately injected single-ULP perturbation: at the end of
/// `phase` of step `step` (0-based, [`World::step_count`] before the
/// step), the lowest mantissa bit of body 0's `pos.x` is flipped.
///
/// This is the ground-truth fault the divergence-bisection tooling is
/// tested against (`bisect` applies it to its B side only; see
/// `PARALLAX_DIGEST_FAULT="<step>:<phase>"`). It lives in
/// [`crate::WorldConfig`] rather than the environment so two worlds in
/// one process can disagree about it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DigestFault {
    /// Step to perturb (0-based).
    pub step: u64,
    /// Phase after which the perturbation is applied.
    pub phase: PhaseKind,
}

impl DigestFault {
    /// Parses `"<step>:<phase>"`, e.g. `"23:Narrowphase"`. The phase
    /// accepts the display name (`"Island Serial"`) or the enum-style
    /// spelling (`"IslandCreation"`), case-insensitively.
    pub fn parse(spec: &str) -> Result<DigestFault, String> {
        let (step, phase) = spec
            .split_once(':')
            .ok_or_else(|| format!("malformed fault spec {spec:?} (want \"<step>:<phase>\")"))?;
        let step = step
            .trim()
            .parse::<u64>()
            .map_err(|e| format!("fault step in {spec:?}: {e}"))?;
        let phase = phase_by_name(phase.trim())
            .ok_or_else(|| format!("unknown phase in fault spec {spec:?}"))?;
        Ok(DigestFault { step, phase })
    }
}

/// Resolves a phase by display name or enum-style spelling.
pub fn phase_by_name(name: &str) -> Option<PhaseKind> {
    let alias = |p: PhaseKind| -> &'static str {
        match p {
            PhaseKind::Broadphase => "Broadphase",
            PhaseKind::Narrowphase => "Narrowphase",
            PhaseKind::IslandCreation => "IslandCreation",
            PhaseKind::IslandProcessing => "IslandProcessing",
            PhaseKind::Cloth => "Cloth",
        }
    };
    PhaseKind::ALL
        .into_iter()
        .find(|p| p.name().eq_ignore_ascii_case(name) || alias(*p).eq_ignore_ascii_case(name))
}

/// Folds the per-body dynamic state every phase digest shares: position,
/// orientation, velocity lanes plus behaviour flags.
fn fold_body_state(d: &mut Digest, bodies: &BodyStore) {
    d.write_u64(bodies.len() as u64);
    for lane in [
        &bodies.pos.x,
        &bodies.pos.y,
        &bodies.pos.z,
        &bodies.rot.w,
        &bodies.rot.x,
        &bodies.rot.y,
        &bodies.rot.z,
        &bodies.lin_vel.x,
        &bodies.lin_vel.y,
        &bodies.lin_vel.z,
        &bodies.ang_vel.x,
        &bodies.ang_vel.y,
        &bodies.ang_vel.z,
    ] {
        d.write_f32s(lane);
    }
    d.write_u32s(bodies.flags.iter().map(|f| f.0));
    d.write_u32s(bodies.sleep_timer.iter().copied());
    d.write_f32s(&bodies.sleep_ema);
}

/// Folds the sleeping-island table and pending wake queue so a sleep or
/// wake transition (or a diverging parked manifold) shows up in the
/// whole-world digest.
fn fold_sleep(d: &mut Digest, world: &World) {
    let s = &world.sleep;
    d.write_u64(s.islands.len() as u64);
    for slot in &s.islands {
        match slot {
            None => d.write_u32(0),
            Some(isl) => {
                d.write_u32(1);
                d.write_u64(isl.bodies.len() as u64);
                d.write_u32s(isl.bodies.iter().copied());
                d.write_u64(isl.manifolds.len() as u64);
                for m in &isl.manifolds {
                    d.write_u64((m.geom_a.0 as u64) | ((m.geom_b.0 as u64) << 32));
                    d.write_u64(pack(m.friction, m.restitution));
                    d.write_u64(m.len() as u64);
                    for p in &m.points {
                        d.write_u64(pack(p.position.x, p.position.y));
                        d.write_u64(pack(p.position.z, p.normal.x));
                        d.write_u64(pack(p.normal.y, p.normal.z));
                        d.write_u64((p.depth.to_bits() as u64) | ((p.feature as u64) << 32));
                    }
                }
            }
        }
    }
    d.write_u32s(s.free.iter().copied());
    d.write_u32s(s.pending_wakes.iter().copied());
}

/// Folds per-joint mutable state (load accumulation and breakage).
fn fold_joints(d: &mut Digest, world: &World) {
    d.write_u64(world.joints.len() as u64);
    for j in &world.joints {
        d.write_f32(j.accumulated_load);
        d.write_f32(j.last_impulse);
        d.write_u32(j.broken as u32);
    }
}

/// Folds cloth Verlet state (current + previous vertex positions),
/// packed three words per vertex.
fn fold_cloths(d: &mut Digest, world: &World) {
    d.write_u64(world.cloths.len() as u64);
    for c in &world.cloths {
        for v in c.vertices() {
            d.write_u64(pack(v.pos.x, v.pos.y));
            d.write_u64(pack(v.pos.z, v.prev.x));
            d.write_u64(pack(v.prev.y, v.prev.z));
        }
    }
}

/// Folds the contact cache in sorted-key order (the map itself iterates
/// in hash order, which is not deterministic across processes).
fn fold_contact_cache(d: &mut Digest, cache: &ContactCache) {
    let entries = cache.sorted_entries();
    d.write_u64(entries.len() as u64);
    for (&(a, b), pair) in entries {
        d.write_u32(a.0);
        d.write_u32(b.0);
        d.write_u32(pair.age());
        for p in pair.points() {
            d.write_u32(p.feature);
            d.write_f32(p.position.x);
            d.write_f32(p.position.y);
            d.write_f32(p.position.z);
            d.write_f32s(&p.lambdas);
        }
    }
}

/// Digest after broad-phase: body state plus the candidate pair list
/// (broad-phase mutates no body state, so the pairs are what a
/// divergence here would show up in).
pub fn broadphase_digest(world: &World, candidates: &[(GeomId, GeomId)]) -> u64 {
    let mut d = Digest::new(PhaseKind::Broadphase as u64);
    fold_body_state(&mut d, &world.bodies);
    d.write_u64(candidates.len() as u64);
    d.write_u32s(candidates.iter().flat_map(|&(a, b)| [a.0, b.0]));
    d.finish()
}

/// Digest after narrow-phase: body state (contact events may disable
/// bodies) plus the surviving manifolds.
pub fn narrowphase_digest(world: &World, manifolds: &[ContactManifold]) -> u64 {
    let mut d = Digest::new(PhaseKind::Narrowphase as u64);
    fold_body_state(&mut d, &world.bodies);
    d.write_u64(manifolds.len() as u64);
    for m in manifolds {
        d.write_u64((m.geom_a.0 as u64) | ((m.geom_b.0 as u64) << 32));
        d.write_u64(m.len() as u64);
        for p in &m.points {
            d.write_u64(pack(p.position.x, p.position.y));
            d.write_u64(pack(p.position.z, p.normal.x));
            d.write_u64(pack(p.normal.y, p.normal.z));
            d.write_u64((p.depth.to_bits() as u64) | ((p.feature as u64) << 32));
        }
    }
    d.finish()
}

/// Digest after island creation: body state plus the island assignment
/// lane the union-find wrote.
pub fn island_creation_digest(world: &World) -> u64 {
    let mut d = Digest::new(PhaseKind::IslandCreation as u64);
    fold_body_state(&mut d, &world.bodies);
    d.write_u32s(world.bodies.island.iter().copied());
    d.finish()
}

/// Digest after island processing: post-solve body state, the per-island
/// solver impulse fingerprints (`RowSoA::lambda`, hashed inside the
/// solve) and joint mutable state.
pub fn island_processing_digest(world: &World, islands: &[IslandWork]) -> u64 {
    let mut d = Digest::new(PhaseKind::IslandProcessing as u64);
    fold_body_state(&mut d, &world.bodies);
    d.write_u64(islands.len() as u64);
    for w in islands {
        d.write_u64(w.lambda_digest);
    }
    fold_joints(&mut d, world);
    d.finish()
}

/// Digest after the cloth phase: body state plus cloth Verlet state.
pub fn cloth_digest(world: &World) -> u64 {
    let mut d = Digest::new(PhaseKind::Cloth as u64);
    fold_body_state(&mut d, &world.bodies);
    fold_cloths(&mut d, world);
    d.finish()
}

/// Whole-world digest: every piece of mutable simulation state —
/// body lanes (including force accumulators), cloths, joints, blasts,
/// fracture flags, the contact cache and the clock. Two worlds with
/// equal digests are on the same trajectory; the bisector's probe
/// comparisons and the snapshot round-trip tests are built on this.
pub fn world_digest(world: &World) -> u64 {
    let mut d = Digest::new(0);
    fold_body_state(&mut d, &world.bodies);
    for lane in [
        &world.bodies.force.x,
        &world.bodies.force.y,
        &world.bodies.force.z,
        &world.bodies.torque.x,
        &world.bodies.torque.y,
        &world.bodies.torque.z,
    ] {
        d.write_f32s(lane);
    }
    fold_cloths(&mut d, world);
    fold_joints(&mut d, world);
    d.write_u64(world.blasts.len() as u64);
    for b in &world.blasts {
        d.write_u32(b.body.0);
        d.write_f32(b.center.x);
        d.write_f32(b.center.y);
        d.write_f32(b.center.z);
        d.write_f32(b.radius);
        d.write_u32(b.steps_left);
        d.write_f32(b.impulse);
        d.write_u32(b.fresh as u32);
    }
    d.write_u32s(world.prefractured.iter().map(|p| p.shattered as u32));
    fold_sleep(&mut d, world);
    if let Some(p) = world.pipeline.as_ref() {
        fold_contact_cache(&mut d, p.contact_cache());
    }
    d.write_u64(world.steps);
    d.write_f64(world.time);
    d.finish()
}

/// Per-body-range digests of the dynamic state: one digest per chunk of
/// `chunk` bodies. Comparing two worlds chunk-wise narrows a divergence
/// to a body range before [`first_divergence`] names the exact lane.
pub fn chunk_digests(world: &World, chunk: usize) -> Vec<(usize, usize, u64)> {
    assert!(chunk > 0);
    let b = &world.bodies;
    let n = b.len();
    let mut out = Vec::with_capacity(n.div_ceil(chunk));
    let mut lo = 0;
    while lo < n {
        let hi = (lo + chunk).min(n);
        let mut d = Digest::new(lo as u64);
        for lane in [
            &b.pos.x,
            &b.pos.y,
            &b.pos.z,
            &b.rot.w,
            &b.rot.x,
            &b.rot.y,
            &b.rot.z,
            &b.lin_vel.x,
            &b.lin_vel.y,
            &b.lin_vel.z,
            &b.ang_vel.x,
            &b.ang_vel.y,
            &b.ang_vel.z,
        ] {
            d.write_f32s(&lane[lo..hi]);
        }
        d.write_u32s(b.flags[lo..hi].iter().map(|f| f.0));
        d.write_u32s(b.sleep_timer[lo..hi].iter().copied());
        d.write_f32s(&b.sleep_ema[lo..hi]);
        out.push((lo, hi, d.finish()));
        lo = hi;
    }
    out
}

/// The first bit-level difference between two worlds' states.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Human-readable location, e.g. `"body 17 pos.x"` or
    /// `"cloth 0 vertex 42 prev.y"`.
    pub location: String,
    /// Body index when the difference is in a body lane.
    pub body: Option<u32>,
    /// Bit pattern on side A.
    pub a_bits: u64,
    /// Bit pattern on side B.
    pub b_bits: u64,
}

/// Compares two worlds lane-by-lane and reports the first differing
/// value: bodies in index order (each body's lanes in a fixed order),
/// then cloth vertices, joints, blasts and the clock. Returns `None`
/// when the compared state is bit-identical.
pub fn first_divergence(a: &World, b: &World) -> Option<Divergence> {
    if a.bodies.len() != b.bodies.len() {
        return Some(Divergence {
            location: "body count".into(),
            body: None,
            a_bits: a.bodies.len() as u64,
            b_bits: b.bodies.len() as u64,
        });
    }
    type LaneFn = fn(&BodyStore) -> &Vec<f32>;
    let named_lanes: [(&str, LaneFn); 13] = [
        ("pos.x", |s| &s.pos.x),
        ("pos.y", |s| &s.pos.y),
        ("pos.z", |s| &s.pos.z),
        ("rot.w", |s| &s.rot.w),
        ("rot.x", |s| &s.rot.x),
        ("rot.y", |s| &s.rot.y),
        ("rot.z", |s| &s.rot.z),
        ("lin_vel.x", |s| &s.lin_vel.x),
        ("lin_vel.y", |s| &s.lin_vel.y),
        ("lin_vel.z", |s| &s.lin_vel.z),
        ("ang_vel.x", |s| &s.ang_vel.x),
        ("ang_vel.y", |s| &s.ang_vel.y),
        ("ang_vel.z", |s| &s.ang_vel.z),
    ];
    for i in 0..a.bodies.len() {
        for (name, lane) in &named_lanes {
            let (va, vb) = (lane(&a.bodies)[i], lane(&b.bodies)[i]);
            if va.to_bits() != vb.to_bits() {
                return Some(Divergence {
                    location: format!("body {i} {name}"),
                    body: Some(i as u32),
                    a_bits: va.to_bits() as u64,
                    b_bits: vb.to_bits() as u64,
                });
            }
        }
        if a.bodies.flags[i] != b.bodies.flags[i] {
            return Some(Divergence {
                location: format!("body {i} flags"),
                body: Some(i as u32),
                a_bits: a.bodies.flags[i].0 as u64,
                b_bits: b.bodies.flags[i].0 as u64,
            });
        }
        if a.bodies.sleep_timer[i] != b.bodies.sleep_timer[i] {
            return Some(Divergence {
                location: format!("body {i} sleep_timer"),
                body: Some(i as u32),
                a_bits: a.bodies.sleep_timer[i] as u64,
                b_bits: b.bodies.sleep_timer[i] as u64,
            });
        }
        let (ea, eb) = (a.bodies.sleep_ema[i], b.bodies.sleep_ema[i]);
        if ea.to_bits() != eb.to_bits() {
            return Some(Divergence {
                location: format!("body {i} sleep_ema"),
                body: Some(i as u32),
                a_bits: ea.to_bits() as u64,
                b_bits: eb.to_bits() as u64,
            });
        }
    }
    for (ci, (ca, cb)) in a.cloths.iter().zip(&b.cloths).enumerate() {
        for (vi, (va, vb)) in ca.vertices().iter().zip(cb.vertices()).enumerate() {
            for (name, xa, xb) in [
                ("pos.x", va.pos.x, vb.pos.x),
                ("pos.y", va.pos.y, vb.pos.y),
                ("pos.z", va.pos.z, vb.pos.z),
                ("prev.x", va.prev.x, vb.prev.x),
                ("prev.y", va.prev.y, vb.prev.y),
                ("prev.z", va.prev.z, vb.prev.z),
            ] {
                if xa.to_bits() != xb.to_bits() {
                    return Some(Divergence {
                        location: format!("cloth {ci} vertex {vi} {name}"),
                        body: None,
                        a_bits: xa.to_bits() as u64,
                        b_bits: xb.to_bits() as u64,
                    });
                }
            }
        }
    }
    for (ji, (ja, jb)) in a.joints.iter().zip(&b.joints).enumerate() {
        for (name, xa, xb) in [
            ("accumulated_load", ja.accumulated_load, jb.accumulated_load),
            ("last_impulse", ja.last_impulse, jb.last_impulse),
        ] {
            if xa.to_bits() != xb.to_bits() {
                return Some(Divergence {
                    location: format!("joint {ji} {name}"),
                    body: None,
                    a_bits: xa.to_bits() as u64,
                    b_bits: xb.to_bits() as u64,
                });
            }
        }
        if ja.broken != jb.broken {
            return Some(Divergence {
                location: format!("joint {ji} broken"),
                body: None,
                a_bits: ja.broken as u64,
                b_bits: jb.broken as u64,
            });
        }
    }
    if a.blasts.len() != b.blasts.len() {
        return Some(Divergence {
            location: "blast count".into(),
            body: None,
            a_bits: a.blasts.len() as u64,
            b_bits: b.blasts.len() as u64,
        });
    }
    if a.steps != b.steps {
        return Some(Divergence {
            location: "step counter".into(),
            body: None,
            a_bits: a.steps,
            b_bits: b.steps,
        });
    }
    if a.time.to_bits() != b.time.to_bits() {
        return Some(Divergence {
            location: "clock".into(),
            body: None,
            a_bits: a.time.to_bits(),
            b_bits: b.time.to_bits(),
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::BodyDesc;
    use crate::shape::Shape;
    use crate::world::WorldConfig;
    use parallax_math::Vec3;

    #[test]
    fn streaming_matches_one_shot_framing() {
        // The same words in one slice and split across calls must agree.
        let vals: Vec<f32> = (0..37).map(|i| i as f32 * 0.25 - 3.0).collect();
        let mut a = Digest::new(7);
        a.write_f32s(&vals);
        let mut b = Digest::new(7);
        // write_f32s frames two values per word, so splitting at an even
        // index preserves the word stream.
        b.write_f32s(&vals[..20]);
        b.write_f32s(&vals[20..]);
        assert_eq!(a.finish(), b.finish());
        assert_eq!(hash_f32s(7, &vals), a.finish());
    }

    #[test]
    fn digest_is_order_and_value_sensitive() {
        let h = |words: &[u64]| {
            let mut d = Digest::new(0);
            for &w in words {
                d.write_u64(w);
            }
            d.finish()
        };
        assert_ne!(h(&[1, 2, 3]), h(&[3, 2, 1]));
        assert_ne!(h(&[1, 2, 3]), h(&[1, 2, 4]));
        assert_ne!(h(&[]), h(&[0]));
        // Short (< 1 stripe) and long inputs both discriminate.
        assert_ne!(h(&[5]), h(&[6]));
        let long: Vec<u64> = (0..100).collect();
        let mut long2 = long.clone();
        long2[63] ^= 1;
        assert_ne!(h(&long), h(&long2));
    }

    #[test]
    fn empty_digest_matches_xxh64_empty() {
        // XXH64 of the empty input with seed 0 is a published constant.
        assert_eq!(Digest::new(0).finish(), 0xEF46_DB37_51D8_E999);
    }

    #[test]
    fn world_digest_tracks_state_and_ulp_changes() {
        let build = || {
            let mut w = World::new(WorldConfig::default());
            w.add_static_geom(Shape::plane(Vec3::UNIT_Y, 0.0));
            w.add_body(
                BodyDesc::dynamic(Vec3::new(0.0, 2.0, 0.0)).with_shape(Shape::sphere(0.5), 1.0),
            );
            w
        };
        let mut a = build();
        let mut b = build();
        assert_eq!(world_digest(&a), world_digest(&b));
        a.step();
        b.step();
        assert_eq!(world_digest(&a), world_digest(&b));
        // A single-ULP nudge must change the digest and be localized.
        let bits = b.bodies.pos.x[0].to_bits() ^ 1;
        b.bodies.pos.x[0] = f32::from_bits(bits);
        assert_ne!(world_digest(&a), world_digest(&b));
        let div = first_divergence(&a, &b).expect("must find the flipped bit");
        assert_eq!(div.location, "body 0 pos.x");
        assert_eq!(div.body, Some(0));
        assert_eq!(div.a_bits ^ div.b_bits, 1);
        // Chunk digests disagree exactly in body 0's chunk.
        let ca = chunk_digests(&a, 16);
        let cb = chunk_digests(&b, 16);
        assert_eq!(ca.len(), cb.len());
        assert_ne!(ca[0].2, cb[0].2);
    }

    #[test]
    fn fault_spec_parses_names_and_aliases() {
        assert_eq!(
            DigestFault::parse("23:Narrowphase").unwrap(),
            DigestFault {
                step: 23,
                phase: PhaseKind::Narrowphase
            }
        );
        assert_eq!(
            DigestFault::parse("5:Island Serial").unwrap().phase,
            PhaseKind::IslandCreation
        );
        assert_eq!(
            DigestFault::parse("5:islandprocessing").unwrap().phase,
            PhaseKind::IslandProcessing
        );
        assert!(DigestFault::parse("nope").is_err());
        assert!(DigestFault::parse("3:Warpphase").is_err());
    }
}
