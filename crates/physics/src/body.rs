//! Rigid-body identity, behaviour flags and the body-description builder.
//!
//! The dynamic state itself (position, velocities, mass properties) lives
//! in the structure-of-arrays [`crate::store::BodyStore`]; this module
//! keeps the stable identifiers ([`BodyId`], [`BodyFlags`]) and the
//! builder ([`BodyDesc`]) used to add bodies to a world.

use parallax_math::{Mat3, Quat, Transform, Vec3};
use serde::{Deserialize, Serialize};

use crate::shape::Shape;

/// Identifier of a rigid body inside a [`crate::World`].
///
/// Indexes are stable for the lifetime of the world (bodies are disabled, not
/// removed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BodyId(pub u32);

impl BodyId {
    /// Returns the raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

// A tiny local bitflags implementation so we do not need the bitflags crate.
macro_rules! bitflags_lite {
    (
        $(#[$meta:meta])*
        pub struct $name:ident: $ty:ty {
            $( $(#[$fmeta:meta])* const $flag:ident = $value:expr; )*
        }
    ) => {
        $(#[$meta])*
        #[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
        pub struct $name(pub $ty);

        impl $name {
            $( $(#[$fmeta])* pub const $flag: $name = $name($value); )*

            /// The empty flag set.
            pub const fn empty() -> Self { $name(0) }
            /// Returns `true` if all bits of `other` are set.
            #[inline]
            pub const fn contains(self, other: $name) -> bool {
                (self.0 & other.0) == other.0
            }
            /// Sets the bits of `other`.
            #[inline]
            pub fn insert(&mut self, other: $name) { self.0 |= other.0; }
            /// Clears the bits of `other`.
            #[inline]
            pub fn remove(&mut self, other: $name) { self.0 &= !other.0; }
        }

        impl std::ops::BitOr for $name {
            type Output = $name;
            #[inline]
            fn bitor(self, rhs: $name) -> $name { $name(self.0 | rhs.0) }
        }
    };
}

bitflags_lite! {
    /// Behavioural flags on a body.
    pub struct BodyFlags: u32 {
        /// Body never moves; it still participates in collision detection.
        const STATIC = 1 << 0;
        /// Body is currently disabled (e.g. unbroken debris) and is skipped
        /// by every phase.
        const DISABLED = 1 << 1;
        /// Explosive payload: replaced by a blast volume on first contact.
        const EXPLOSIVE = 1 << 2;
        /// This body is a blast volume (sphere) created by an explosion.
        const BLAST_VOLUME = 1 << 3;
        /// Pre-fractured: shatters into debris inside a blast volume.
        const PREFRACTURED = 1 << 4;
        /// Debris piece belonging to a pre-fractured object.
        const DEBRIS = 1 << 5;
        /// Body is asleep: its island is fully at rest, so integration,
        /// narrowphase and solving are skipped until a wake event
        /// (contact with an awake body, joint neighbour wake, blast,
        /// user impulse). Set and cleared only by the serial sleep/wake
        /// passes so trajectories stay deterministic.
        const SLEEPING = 1 << 6;
    }
}

/// Builder-style description of a rigid body to add to the world.
///
/// # Examples
///
/// ```
/// use parallax_physics::{BodyDesc, Shape};
/// use parallax_math::Vec3;
///
/// let desc = BodyDesc::dynamic(Vec3::new(0.0, 2.0, 0.0))
///     .with_shape(Shape::cuboid(Vec3::splat(0.5)), 10.0)
///     .with_velocity(Vec3::new(1.0, 0.0, 0.0));
/// ```
#[derive(Debug, Clone)]
pub struct BodyDesc {
    pub(crate) position: Vec3,
    pub(crate) rotation: Quat,
    pub(crate) lin_vel: Vec3,
    pub(crate) ang_vel: Vec3,
    pub(crate) shapes: Vec<(Shape, Transform)>,
    pub(crate) mass: f32,
    pub(crate) flags: BodyFlags,
    pub(crate) linear_damping: f32,
    pub(crate) angular_damping: f32,
}

impl BodyDesc {
    /// Starts describing a dynamic body at `position`.
    pub fn dynamic(position: Vec3) -> Self {
        BodyDesc {
            position,
            rotation: Quat::IDENTITY,
            lin_vel: Vec3::ZERO,
            ang_vel: Vec3::ZERO,
            shapes: Vec::new(),
            mass: 1.0,
            flags: BodyFlags::empty(),
            linear_damping: 0.0,
            angular_damping: 0.01,
        }
    }

    /// Starts describing a static (immovable) body at `position`.
    pub fn fixed(position: Vec3) -> Self {
        let mut d = BodyDesc::dynamic(position);
        d.flags.insert(BodyFlags::STATIC);
        d
    }

    /// Attaches a collision shape at the body origin and sets total mass.
    ///
    /// The mass of the *body* becomes `mass` (shapes do not accumulate mass
    /// separately; the last call wins for the inertia-defining shape).
    pub fn with_shape(mut self, shape: Shape, mass: f32) -> Self {
        self.shapes.push((shape, Transform::IDENTITY));
        self.mass = mass;
        self
    }

    /// Attaches an additional collision shape at a local offset.
    pub fn with_shape_at(mut self, shape: Shape, local: Transform) -> Self {
        self.shapes.push((shape, local));
        self
    }

    /// Sets the initial orientation.
    pub fn with_rotation(mut self, rotation: Quat) -> Self {
        self.rotation = rotation;
        self
    }

    /// Sets the initial linear velocity.
    pub fn with_velocity(mut self, v: Vec3) -> Self {
        self.lin_vel = v;
        self
    }

    /// Sets the initial angular velocity.
    pub fn with_angular_velocity(mut self, w: Vec3) -> Self {
        self.ang_vel = w;
        self
    }

    /// Ors in extra behaviour flags (e.g. [`BodyFlags::EXPLOSIVE`]).
    pub fn with_flags(mut self, flags: BodyFlags) -> Self {
        self.flags.insert(flags);
        self
    }

    /// Sets velocity damping factors (per second).
    pub fn with_damping(mut self, linear: f32, angular: f32) -> Self {
        self.linear_damping = linear;
        self.angular_damping = angular;
        self
    }

    /// Computes `(inv_mass, inv_inertia_local)` for the described body.
    /// Inertia comes from the first shape (or a unit sphere when the body
    /// has no shape).
    pub(crate) fn mass_properties(&self) -> (f32, Mat3) {
        let is_static = self.flags.contains(BodyFlags::STATIC);
        if is_static {
            (0.0, Mat3::ZERO)
        } else {
            let mass = self.mass.max(1e-6);
            let inertia = match self.shapes.first() {
                Some((shape, _)) => shape.unit_inertia().scaled(mass),
                None => Mat3::from_diagonal(Vec3::splat(0.4 * mass)),
            };
            let inv = inertia.inverse().unwrap_or(Mat3::IDENTITY);
            (1.0 / mass, inv)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mass_properties_of_dynamic_and_static() {
        let (im, inertia) = BodyDesc::dynamic(Vec3::ZERO)
            .with_shape(Shape::sphere(1.0), 2.0)
            .mass_properties();
        assert!((im - 0.5).abs() < 1e-6);
        assert!(inertia.determinant() > 0.0);
        let (im, inertia) = BodyDesc::fixed(Vec3::ZERO)
            .with_shape(Shape::sphere(1.0), 2.0)
            .mass_properties();
        assert_eq!(im, 0.0);
        assert_eq!(inertia, Mat3::ZERO);
    }

    #[test]
    fn shapeless_body_gets_sphere_like_inertia() {
        let (im, inertia) = BodyDesc::dynamic(Vec3::ZERO).mass_properties();
        assert!((im - 1.0).abs() < 1e-6);
        let d = inertia.diagonal();
        assert!((d.x - 2.5).abs() < 1e-5 && (d.y - 2.5).abs() < 1e-5);
    }

    #[test]
    fn flags_work() {
        let mut f = BodyFlags::empty();
        f.insert(BodyFlags::EXPLOSIVE);
        assert!(f.contains(BodyFlags::EXPLOSIVE));
        assert!(!f.contains(BodyFlags::STATIC));
        f.remove(BodyFlags::EXPLOSIVE);
        assert_eq!(f, BodyFlags::empty());
        let both = BodyFlags::STATIC | BodyFlags::DISABLED;
        assert!(both.contains(BodyFlags::STATIC) && both.contains(BodyFlags::DISABLED));
    }
}
