//! Rigid bodies: state, mass properties and force accumulators.

use parallax_math::{Mat3, Quat, Transform, Vec3};
use serde::{Deserialize, Serialize};

use crate::shape::Shape;

/// Identifier of a rigid body inside a [`crate::World`].
///
/// Indexes are stable for the lifetime of the world (bodies are disabled, not
/// removed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BodyId(pub u32);

impl BodyId {
    /// Returns the raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

// A tiny local bitflags implementation so we do not need the bitflags crate.
macro_rules! bitflags_lite {
    (
        $(#[$meta:meta])*
        pub struct $name:ident: $ty:ty {
            $( $(#[$fmeta:meta])* const $flag:ident = $value:expr; )*
        }
    ) => {
        $(#[$meta])*
        #[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
        pub struct $name(pub $ty);

        impl $name {
            $( $(#[$fmeta])* pub const $flag: $name = $name($value); )*

            /// The empty flag set.
            pub const fn empty() -> Self { $name(0) }
            /// Returns `true` if all bits of `other` are set.
            #[inline]
            pub const fn contains(self, other: $name) -> bool {
                (self.0 & other.0) == other.0
            }
            /// Sets the bits of `other`.
            #[inline]
            pub fn insert(&mut self, other: $name) { self.0 |= other.0; }
            /// Clears the bits of `other`.
            #[inline]
            pub fn remove(&mut self, other: $name) { self.0 &= !other.0; }
        }

        impl std::ops::BitOr for $name {
            type Output = $name;
            #[inline]
            fn bitor(self, rhs: $name) -> $name { $name(self.0 | rhs.0) }
        }
    };
}

bitflags_lite! {
    /// Behavioural flags on a body.
    pub struct BodyFlags: u32 {
        /// Body never moves; it still participates in collision detection.
        const STATIC = 1 << 0;
        /// Body is currently disabled (e.g. unbroken debris) and is skipped
        /// by every phase.
        const DISABLED = 1 << 1;
        /// Explosive payload: replaced by a blast volume on first contact.
        const EXPLOSIVE = 1 << 2;
        /// This body is a blast volume (sphere) created by an explosion.
        const BLAST_VOLUME = 1 << 3;
        /// Pre-fractured: shatters into debris inside a blast volume.
        const PREFRACTURED = 1 << 4;
        /// Debris piece belonging to a pre-fractured object.
        const DEBRIS = 1 << 5;
    }
}

/// Full dynamic state of a rigid body.
///
/// The paper reports 412 B of memory per object; this struct (plus its slot
/// in the world's side tables) is of comparable size.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RigidBody {
    pub(crate) transform: Transform,
    pub(crate) lin_vel: Vec3,
    pub(crate) ang_vel: Vec3,
    pub(crate) force: Vec3,
    pub(crate) torque: Vec3,
    pub(crate) inv_mass: f32,
    /// Inverse inertia tensor in body-local coordinates.
    pub(crate) inv_inertia_local: Mat3,
    /// Cached world-space inverse inertia, refreshed before each solve.
    pub(crate) inv_inertia_world: Mat3,
    pub(crate) flags: BodyFlags,
    /// Island index assigned during island creation (`u32::MAX` = none).
    pub(crate) island: u32,
    pub(crate) linear_damping: f32,
    pub(crate) angular_damping: f32,
}

impl RigidBody {
    /// World-space position of the centre of mass.
    #[inline]
    pub fn position(&self) -> Vec3 {
        self.transform.position
    }

    /// World-space orientation.
    #[inline]
    pub fn rotation(&self) -> Quat {
        self.transform.rotation
    }

    /// The full rigid transform.
    #[inline]
    pub fn transform(&self) -> Transform {
        self.transform
    }

    /// Linear velocity of the centre of mass.
    #[inline]
    pub fn linear_velocity(&self) -> Vec3 {
        self.lin_vel
    }

    /// Angular velocity (world space, rad/s).
    #[inline]
    pub fn angular_velocity(&self) -> Vec3 {
        self.ang_vel
    }

    /// Inverse mass; 0 for static bodies.
    #[inline]
    pub fn inv_mass(&self) -> f32 {
        self.inv_mass
    }

    /// Mass of the body.
    ///
    /// Returns `f32::INFINITY` for static (immovable) bodies.
    #[inline]
    pub fn mass(&self) -> f32 {
        if self.inv_mass > 0.0 {
            1.0 / self.inv_mass
        } else {
            f32::INFINITY
        }
    }

    /// Behaviour flags.
    #[inline]
    pub fn flags(&self) -> BodyFlags {
        self.flags
    }

    /// Returns `true` if this body cannot move.
    #[inline]
    pub fn is_static(&self) -> bool {
        self.flags.contains(BodyFlags::STATIC) || self.inv_mass == 0.0
    }

    /// Returns `true` if the body is currently disabled.
    #[inline]
    pub fn is_disabled(&self) -> bool {
        self.flags.contains(BodyFlags::DISABLED)
    }

    /// Island index assigned by the most recent island-creation phase, or
    /// `None` when the body was not part of any island.
    #[inline]
    pub fn island(&self) -> Option<u32> {
        (self.island != u32::MAX).then_some(self.island)
    }

    /// Velocity of the material point of the body at world position `p`.
    #[inline]
    pub fn velocity_at(&self, p: Vec3) -> Vec3 {
        self.lin_vel + self.ang_vel.cross(p - self.transform.position)
    }

    /// Adds a force (N) through the centre of mass for the next step.
    #[inline]
    pub fn add_force(&mut self, f: Vec3) {
        self.force += f;
    }

    /// Adds a torque (N·m) for the next step.
    #[inline]
    pub fn add_torque(&mut self, t: Vec3) {
        self.torque += t;
    }

    /// Applies an instantaneous impulse (kg·m/s) at world position `p`.
    pub fn apply_impulse_at(&mut self, impulse: Vec3, p: Vec3) {
        if self.is_static() {
            return;
        }
        self.lin_vel += impulse * self.inv_mass;
        let r = p - self.transform.position;
        self.ang_vel += self.inv_inertia_world * r.cross(impulse);
    }

    /// Directly sets the linear velocity.
    #[inline]
    pub fn set_linear_velocity(&mut self, v: Vec3) {
        self.lin_vel = v;
    }

    /// Directly sets the angular velocity.
    #[inline]
    pub fn set_angular_velocity(&mut self, w: Vec3) {
        self.ang_vel = w;
    }

    /// Refreshes the cached world-space inverse inertia from the current
    /// orientation.
    pub(crate) fn refresh_inertia(&mut self) {
        let r = self.transform.rotation.to_mat3();
        self.inv_inertia_world = r * self.inv_inertia_local * r.transpose();
    }

    /// Kinetic energy of the body (0 for static bodies).
    pub fn kinetic_energy(&self) -> f32 {
        if self.inv_mass == 0.0 {
            return 0.0;
        }
        let m = 1.0 / self.inv_mass;
        let lin = 0.5 * m * self.lin_vel.length_squared();
        // ω · I ω / 2; recover I from I⁻¹ where possible.
        let ang = match self.inv_inertia_world.inverse() {
            Some(inertia) => 0.5 * self.ang_vel.dot(inertia * self.ang_vel),
            None => 0.0,
        };
        lin + ang
    }
}

/// Builder-style description of a rigid body to add to the world.
///
/// # Examples
///
/// ```
/// use parallax_physics::{BodyDesc, Shape};
/// use parallax_math::Vec3;
///
/// let desc = BodyDesc::dynamic(Vec3::new(0.0, 2.0, 0.0))
///     .with_shape(Shape::cuboid(Vec3::splat(0.5)), 10.0)
///     .with_velocity(Vec3::new(1.0, 0.0, 0.0));
/// ```
#[derive(Debug, Clone)]
pub struct BodyDesc {
    pub(crate) position: Vec3,
    pub(crate) rotation: Quat,
    pub(crate) lin_vel: Vec3,
    pub(crate) ang_vel: Vec3,
    pub(crate) shapes: Vec<(Shape, Transform)>,
    pub(crate) mass: f32,
    pub(crate) flags: BodyFlags,
    pub(crate) linear_damping: f32,
    pub(crate) angular_damping: f32,
}

impl BodyDesc {
    /// Starts describing a dynamic body at `position`.
    pub fn dynamic(position: Vec3) -> Self {
        BodyDesc {
            position,
            rotation: Quat::IDENTITY,
            lin_vel: Vec3::ZERO,
            ang_vel: Vec3::ZERO,
            shapes: Vec::new(),
            mass: 1.0,
            flags: BodyFlags::empty(),
            linear_damping: 0.0,
            angular_damping: 0.01,
        }
    }

    /// Starts describing a static (immovable) body at `position`.
    pub fn fixed(position: Vec3) -> Self {
        let mut d = BodyDesc::dynamic(position);
        d.flags.insert(BodyFlags::STATIC);
        d
    }

    /// Attaches a collision shape at the body origin and sets total mass.
    ///
    /// The mass of the *body* becomes `mass` (shapes do not accumulate mass
    /// separately; the last call wins for the inertia-defining shape).
    pub fn with_shape(mut self, shape: Shape, mass: f32) -> Self {
        self.shapes.push((shape, Transform::IDENTITY));
        self.mass = mass;
        self
    }

    /// Attaches an additional collision shape at a local offset.
    pub fn with_shape_at(mut self, shape: Shape, local: Transform) -> Self {
        self.shapes.push((shape, local));
        self
    }

    /// Sets the initial orientation.
    pub fn with_rotation(mut self, rotation: Quat) -> Self {
        self.rotation = rotation;
        self
    }

    /// Sets the initial linear velocity.
    pub fn with_velocity(mut self, v: Vec3) -> Self {
        self.lin_vel = v;
        self
    }

    /// Sets the initial angular velocity.
    pub fn with_angular_velocity(mut self, w: Vec3) -> Self {
        self.ang_vel = w;
        self
    }

    /// Ors in extra behaviour flags (e.g. [`BodyFlags::EXPLOSIVE`]).
    pub fn with_flags(mut self, flags: BodyFlags) -> Self {
        self.flags.insert(flags);
        self
    }

    /// Sets velocity damping factors (per second).
    pub fn with_damping(mut self, linear: f32, angular: f32) -> Self {
        self.linear_damping = linear;
        self.angular_damping = angular;
        self
    }

    /// Builds the runtime body. Inertia comes from the first shape (or a
    /// unit sphere when the body has no shape).
    pub(crate) fn build(&self) -> RigidBody {
        let is_static = self.flags.contains(BodyFlags::STATIC);
        let (inv_mass, inv_inertia_local) = if is_static {
            (0.0, Mat3::ZERO)
        } else {
            let mass = self.mass.max(1e-6);
            let inertia = match self.shapes.first() {
                Some((shape, _)) => shape.unit_inertia().scaled(mass),
                None => Mat3::from_diagonal(Vec3::splat(0.4 * mass)),
            };
            let inv = inertia.inverse().unwrap_or(Mat3::IDENTITY);
            (1.0 / mass, inv)
        };
        let mut body = RigidBody {
            transform: Transform::new(self.position, self.rotation),
            lin_vel: self.lin_vel,
            ang_vel: self.ang_vel,
            force: Vec3::ZERO,
            torque: Vec3::ZERO,
            inv_mass,
            inv_inertia_local,
            inv_inertia_world: Mat3::ZERO,
            flags: self.flags,
            island: u32::MAX,
            linear_damping: self.linear_damping,
            angular_damping: self.angular_damping,
        };
        body.refresh_inertia();
        body
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_body_has_finite_mass() {
        let b = BodyDesc::dynamic(Vec3::ZERO)
            .with_shape(Shape::sphere(1.0), 2.0)
            .build();
        assert!((b.mass() - 2.0).abs() < 1e-6);
        assert!(!b.is_static());
    }

    #[test]
    fn static_body_is_immovable() {
        let mut b = BodyDesc::fixed(Vec3::ZERO)
            .with_shape(Shape::sphere(1.0), 2.0)
            .build();
        assert!(b.is_static());
        assert_eq!(b.mass(), f32::INFINITY);
        b.apply_impulse_at(Vec3::new(100.0, 0.0, 0.0), Vec3::ZERO);
        assert_eq!(b.linear_velocity(), Vec3::ZERO);
    }

    #[test]
    fn impulse_through_com_is_purely_linear() {
        let mut b = BodyDesc::dynamic(Vec3::ZERO)
            .with_shape(Shape::sphere(1.0), 1.0)
            .build();
        b.apply_impulse_at(Vec3::new(3.0, 0.0, 0.0), Vec3::ZERO);
        assert!((b.linear_velocity() - Vec3::new(3.0, 0.0, 0.0)).length() < 1e-6);
        assert!(b.angular_velocity().length() < 1e-6);
    }

    #[test]
    fn offset_impulse_induces_spin() {
        let mut b = BodyDesc::dynamic(Vec3::ZERO)
            .with_shape(Shape::sphere(1.0), 1.0)
            .build();
        b.apply_impulse_at(Vec3::new(0.0, 0.0, 1.0), Vec3::new(1.0, 0.0, 0.0));
        assert!(b.angular_velocity().length() > 0.0);
    }

    #[test]
    fn velocity_at_accounts_for_rotation() {
        let mut b = BodyDesc::dynamic(Vec3::ZERO)
            .with_shape(Shape::sphere(1.0), 1.0)
            .build();
        b.set_angular_velocity(Vec3::new(0.0, 0.0, 1.0));
        let v = b.velocity_at(Vec3::new(1.0, 0.0, 0.0));
        assert!((v - Vec3::new(0.0, 1.0, 0.0)).length() < 1e-6);
    }

    #[test]
    fn flags_work() {
        let mut f = BodyFlags::empty();
        f.insert(BodyFlags::EXPLOSIVE);
        assert!(f.contains(BodyFlags::EXPLOSIVE));
        assert!(!f.contains(BodyFlags::STATIC));
        f.remove(BodyFlags::EXPLOSIVE);
        assert_eq!(f, BodyFlags::empty());
        let both = BodyFlags::STATIC | BodyFlags::DISABLED;
        assert!(both.contains(BodyFlags::STATIC) && both.contains(BodyFlags::DISABLED));
    }

    #[test]
    fn kinetic_energy_of_moving_body() {
        let mut b = BodyDesc::dynamic(Vec3::ZERO)
            .with_shape(Shape::sphere(1.0), 2.0)
            .build();
        b.set_linear_velocity(Vec3::new(3.0, 0.0, 0.0));
        assert!((b.kinetic_energy() - 9.0).abs() < 1e-4);
    }
}
