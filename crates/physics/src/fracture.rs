//! Pre-fractured objects (paper Table 2): each breakable object carries a
//! set of debris bodies created at startup and disabled; when the object
//! contacts a blast volume, the parent is disabled and the debris pieces
//! are enabled with inherited velocity plus a radial kick.

use parallax_math::Vec3;
use serde::{Deserialize, Serialize};

use crate::body::BodyId;

/// Parameters controlling debris generation.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FractureConfig {
    /// Number of debris pieces per fractured object (per axis the piece
    /// grid is roughly the cube root of this).
    pub pieces: usize,
    /// Extra radial speed given to debris on shatter (m/s).
    pub scatter_speed: f32,
}

impl Default for FractureConfig {
    fn default() -> Self {
        FractureConfig {
            pieces: 8,
            scatter_speed: 3.0,
        }
    }
}

/// Book-keeping for one pre-fractured object.
#[derive(Debug, Clone)]
pub struct Prefractured {
    /// The intact parent body.
    pub parent: BodyId,
    /// The debris bodies (created disabled at startup).
    pub debris: Vec<BodyId>,
    /// Parent-local centre offsets of the debris pieces (used to re-pose
    /// debris at shatter time, since the parent may have moved).
    pub local_offsets: Vec<Vec3>,
    /// Whether the object has shattered.
    pub shattered: bool,
    /// Scatter speed applied on shatter.
    pub scatter_speed: f32,
}

impl Prefractured {
    /// Creates the record; debris must already exist (disabled) in the
    /// world, one per entry of `local_offsets`.
    pub fn new(
        parent: BodyId,
        debris: Vec<BodyId>,
        local_offsets: Vec<Vec3>,
        scatter_speed: f32,
    ) -> Self {
        debug_assert_eq!(debris.len(), local_offsets.len());
        Prefractured {
            parent,
            debris,
            local_offsets,
            shattered: false,
            scatter_speed,
        }
    }

    /// Splits a box half-extent into a debris grid: returns local centre
    /// offsets and the per-piece half extent for `n` pieces (rounded to a
    /// grid).
    pub fn debris_layout(half: Vec3, n: usize) -> (Vec<Vec3>, Vec3) {
        // Pick grid dims whose product is >= n, as cubic as possible.
        let k = (n as f32).cbrt().ceil().max(1.0) as usize;
        let dims = [k, k.max(1), n.div_ceil(k * k).max(1)];
        let piece_half = Vec3::new(
            half.x / dims[0] as f32,
            half.y / dims[1] as f32,
            half.z / dims[2] as f32,
        );
        let mut offsets = Vec::with_capacity(n);
        'outer: for iz in 0..dims[2] {
            for iy in 0..dims[1] {
                for ix in 0..dims[0] {
                    if offsets.len() >= n {
                        break 'outer;
                    }
                    offsets.push(Vec3::new(
                        -half.x + piece_half.x * (2 * ix + 1) as f32,
                        -half.y + piece_half.y * (2 * iy + 1) as f32,
                        -half.z + piece_half.z * (2 * iz + 1) as f32,
                    ));
                }
            }
        }
        (offsets, piece_half)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn debris_layout_counts_and_bounds() {
        let half = Vec3::new(1.0, 0.5, 0.25);
        for n in [1, 4, 8, 9, 27] {
            let (offsets, piece_half) = Prefractured::debris_layout(half, n);
            assert_eq!(offsets.len(), n, "n = {n}");
            for o in &offsets {
                // Each piece must fit inside the parent box.
                assert!(o.x.abs() + piece_half.x <= half.x + 1e-4);
                assert!(o.y.abs() + piece_half.y <= half.y + 1e-4);
                assert!(o.z.abs() + piece_half.z <= half.z + 1e-4);
            }
        }
    }

    #[test]
    fn debris_pieces_tile_without_overlap() {
        let half = Vec3::splat(1.0);
        let (offsets, piece_half) = Prefractured::debris_layout(half, 8);
        for (i, a) in offsets.iter().enumerate() {
            for b in &offsets[i + 1..] {
                let d = (*a - *b).abs();
                let overlap = d.x < 2.0 * piece_half.x - 1e-4
                    && d.y < 2.0 * piece_half.y - 1e-4
                    && d.z < 2.0 * piece_half.z - 1e-4;
                assert!(!overlap, "pieces {a:?} and {b:?} overlap");
            }
        }
    }

    #[test]
    fn record_starts_intact() {
        let p = Prefractured::new(
            BodyId(0),
            vec![BodyId(1), BodyId(2)],
            vec![Vec3::ZERO, Vec3::UNIT_X],
            3.0,
        );
        assert!(!p.shattered);
        assert_eq!(p.debris.len(), 2);
    }
}
