//! Contact points and manifolds produced by narrow-phase collision.

use parallax_math::Vec3;
use serde::{Deserialize, Serialize};

use crate::shape::GeomId;

/// A single contact point between two geoms.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ContactPoint {
    /// World-space contact position.
    pub position: Vec3,
    /// Unit contact normal, pointing from geom B towards geom A.
    pub normal: Vec3,
    /// Penetration depth (>= 0 when overlapping).
    pub depth: f32,
    /// Stable feature id assigned by the narrow-phase routine that
    /// produced the point (box corner index, clipped-face vertex, capsule
    /// cap, mesh triangle index, ...; 0 for spheres). Two points of the
    /// same pair carrying the same feature id across consecutive steps
    /// are the *same* physical contact, which is what lets the contact
    /// cache transfer accumulated solver impulses between steps.
    pub feature: u32,
}

/// All contact points between one pair of geoms.
///
/// Narrow-phase produces at most [`ContactManifold::MAX_POINTS`] points per
/// pair, matching ODE's per-pair contact cap.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ContactManifold {
    /// First geom of the pair.
    pub geom_a: GeomId,
    /// Second geom of the pair.
    pub geom_b: GeomId,
    /// The contact points.
    pub points: Vec<ContactPoint>,
    /// Combined friction coefficient for the pair.
    pub friction: f32,
    /// Combined restitution for the pair.
    pub restitution: f32,
}

impl ContactManifold {
    /// Maximum number of contact points retained per pair.
    pub const MAX_POINTS: usize = 4;

    /// Creates an empty manifold for the pair.
    pub fn new(geom_a: GeomId, geom_b: GeomId) -> Self {
        ContactManifold {
            geom_a,
            geom_b,
            points: Vec::new(),
            friction: 0.6,
            restitution: 0.1,
        }
    }

    /// Adds a point, keeping only the deepest [`Self::MAX_POINTS`].
    pub fn push(&mut self, p: ContactPoint) {
        debug_assert!(p.normal.is_finite() && p.position.is_finite());
        if self.points.len() < Self::MAX_POINTS {
            self.points.push(p);
            return;
        }
        // Replace the shallowest point if the new one is deeper.
        let (idx, shallowest) = self
            .points
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.depth.total_cmp(&b.1.depth))
            .map(|(i, c)| (i, c.depth))
            .expect("manifold is non-empty here");
        if p.depth > shallowest {
            self.points[idx] = p;
        }
    }

    /// Returns `true` when the manifold has no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Number of contact points.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(depth: f32) -> ContactPoint {
        ContactPoint {
            position: Vec3::ZERO,
            normal: Vec3::UNIT_Y,
            depth,
            feature: 0,
        }
    }

    #[test]
    fn push_caps_at_max_points_keeping_deepest() {
        let mut m = ContactManifold::new(GeomId(0), GeomId(1));
        for d in [0.1, 0.2, 0.3, 0.4] {
            m.push(pt(d));
        }
        assert_eq!(m.len(), 4);
        // A deeper point replaces the shallowest.
        m.push(pt(0.5));
        assert_eq!(m.len(), 4);
        assert!(m.points.iter().all(|p| p.depth >= 0.2));
        // A shallower point is dropped.
        m.push(pt(0.05));
        assert!(m.points.iter().all(|p| p.depth >= 0.2));
    }

    #[test]
    fn empty_manifold() {
        let m = ContactManifold::new(GeomId(3), GeomId(4));
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
    }
}
