//! The simulation world: owns all entities and runs the five-phase step.
//!
//! [`World::step`] implements the algorithmic flow from paper §3.1,
//! including the italicized extensions: explosion triggering, cloth contact
//! lists, pre-fractured shattering and breakable-joint checks. The phases
//! themselves live in [`crate::pipeline`] as [`StepPipeline`] stages; the
//! world keeps the entity stores and the entity-level hooks the stages
//! call back into.

use std::collections::HashSet;

use parallax_math::{Aabb, SimdMode, Transform, Vec3};

use crate::body::{BodyDesc, BodyFlags, BodyId};
use crate::cloth::{Cloth, ClothId};
use crate::contact::ContactManifold;
use crate::explosion::{BlastVolume, ExplosionConfig};
use crate::fracture::Prefractured;
use crate::island::{ConstraintEdge, EdgeKind};
use crate::joint::{Joint, JointId, JointKind};
use crate::pipeline::StepPipeline;
use crate::probe::StepProfile;
use crate::shape::{Geom, GeomId, Shape};
use crate::store::{BodiesView, BodyMut, BodyRef, BodyStore};

/// Global simulation parameters.
///
/// Defaults follow the paper: ∆t = 0.01 s, 20 solver iterations, 3 steps
/// executed per displayed frame.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Gravitational acceleration.
    pub gravity: Vec3,
    /// Time step (s).
    pub dt: f32,
    /// Constraint-solver relaxation iterations per step.
    pub solver_iterations: usize,
    /// Error-reduction parameter for positional correction.
    pub erp: f32,
    /// Constraint-force mixing for contacts.
    pub contact_cfm: f32,
    /// Worker threads for the parallel phases (1 = serial).
    pub threads: usize,
    /// Islands with more DOF removed than this go to the work queue
    /// (paper: 25).
    pub island_queue_threshold: usize,
    /// Linear velocity cap (m/s) for numerical stability.
    pub max_linear_velocity: f32,
    /// Angular velocity cap (rad/s).
    pub max_angular_velocity: f32,
    /// Physics steps per displayed frame (paper: 3).
    pub steps_per_frame: usize,
    /// Broad-phase algorithm. The paper's engine updates a spatial hash
    /// each step (the default here); sweep-and-prune is available as an
    /// ablation.
    pub broadphase: BroadphaseKind,
    /// Spring stiffness used by slider suspensions.
    pub slider_spring_k: f32,
    /// Spring damping used by slider suspensions.
    pub slider_spring_c: f32,
    /// Warm-start the contact solver from the previous step's accumulated
    /// impulses (the cross-step contact cache). On by default; turn off
    /// for ablation runs comparing cold-start convergence.
    pub warm_starting: bool,
    /// Which SIMD kernel set the hot loops use. Defaults to
    /// [`SimdMode::resolve`]: the widest ISA the CPU supports, overridable
    /// with `PARALLAX_SIMD=0|sse2|avx2`. All modes are bit-identical.
    pub simd: SimdMode,
    /// Compute the per-phase state digests ([`crate::digest`]) every step
    /// and publish them as `physics.digest.<phase>` gauges +
    /// [`StepProfile::digests`]. Off by default (the digest walk costs a
    /// few percent of a step); defaults from `PARALLAX_DIGEST=1`.
    pub digests: bool,
    /// Deliberate single-ULP fault injection for testing the divergence
    /// tooling (see [`crate::digest::DigestFault`]). `None` in any real
    /// run.
    pub digest_fault: Option<crate::digest::DigestFault>,
    /// Island sleeping (the temporal-coherence fast path, see
    /// [`crate::sleep`]): islands whose bodies have all been quiet for
    /// [`WorldConfig::sleep_steps`] consecutive steps are deactivated and
    /// skipped by every phase until a wake event. Off by default;
    /// defaults from `PARALLAX_SLEEP=1`. Bit-deterministic across thread
    /// counts and SIMD modes; note that sleeping zeroes residual
    /// velocities, so a sleeping run's trajectory differs from a
    /// non-sleeping run only from the first sleep event onward.
    pub sleeping: bool,
    /// Linear-velocity quietness threshold (m/s) for the sleep EMA.
    pub sleep_lin_threshold: f32,
    /// Angular-velocity quietness threshold (rad/s) for the sleep EMA.
    pub sleep_ang_threshold: f32,
    /// Consecutive quiet steps every island member needs before the
    /// island sleeps.
    pub sleep_steps: u32,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            gravity: Vec3::new(0.0, -9.81, 0.0),
            dt: 0.01,
            solver_iterations: 20,
            erp: 0.2,
            contact_cfm: 1e-5,
            threads: 1,
            island_queue_threshold: 25,
            max_linear_velocity: 100.0,
            max_angular_velocity: 50.0,
            steps_per_frame: 3,
            broadphase: BroadphaseKind::Grid { cell: 1.2 },
            slider_spring_k: 35_000.0,
            slider_spring_c: 1_200.0,
            warm_starting: true,
            simd: SimdMode::resolve(),
            digests: crate::digest::digests_from_env(),
            digest_fault: None,
            sleeping: crate::sleep::sleeping_from_env(),
            sleep_lin_threshold: 0.08,
            sleep_ang_threshold: 0.10,
            sleep_steps: 30,
        }
    }
}

/// Broad-phase algorithm selection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BroadphaseKind {
    /// Uniform spatial hash with the given cell size (default).
    Grid {
        /// Cell edge length in metres.
        cell: f32,
    },
    /// Sort-and-sweep along the X axis.
    SweepAndPrune,
}

/// The simulation world.
///
/// See the [crate docs](crate) for a complete example.
pub struct World {
    pub(crate) config: WorldConfig,
    pub(crate) bodies: BodyStore,
    pub(crate) geoms: Vec<Geom>,
    /// Geoms attached to each body (parallel to `bodies`).
    pub(crate) body_geoms: Vec<Vec<GeomId>>,
    pub(crate) joints: Vec<Joint>,
    /// Collision-excluded body pairs (jointed bodies do not collide).
    pub(crate) joint_pairs: HashSet<(u32, u32)>,
    pub(crate) cloths: Vec<Cloth>,
    pub(crate) prefractured: Vec<Prefractured>,
    pub(crate) explosive_cfg: Vec<(u32, ExplosionConfig)>,
    pub(crate) blasts: Vec<BlastVolume>,
    /// The step pipeline; `None` only transiently while [`World::step`]
    /// has lent it out.
    pub(crate) pipeline: Option<StepPipeline>,
    /// Sleeping-island table + pending wake queue (see [`crate::sleep`]).
    pub(crate) sleep: crate::sleep::SleepSystem,
    /// Bumped by every out-of-step mutation that could change collision
    /// state (construction, enable toggles, direct body/cloth access,
    /// restore). The pipeline's fully-asleep fast path caches broad-phase
    /// output keyed on this epoch, so a stale cache can never survive a
    /// mutation it did not observe.
    pub(crate) mutation_epoch: u64,
    pub(crate) time: f64,
    pub(crate) steps: u64,
}

impl std::fmt::Debug for World {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("bodies", &self.bodies.len())
            .field("geoms", &self.geoms.len())
            .field("joints", &self.joints.len())
            .field("cloths", &self.cloths.len())
            .field("time", &self.time)
            .finish()
    }
}

impl World {
    /// Creates an empty world.
    pub fn new(config: WorldConfig) -> Self {
        let pipeline = StepPipeline::new(config.threads, config.broadphase);
        World {
            config,
            bodies: BodyStore::default(),
            geoms: Vec::new(),
            body_geoms: Vec::new(),
            joints: Vec::new(),
            joint_pairs: HashSet::new(),
            cloths: Vec::new(),
            prefractured: Vec::new(),
            explosive_cfg: Vec::new(),
            blasts: Vec::new(),
            pipeline: Some(pipeline),
            sleep: crate::sleep::SleepSystem::default(),
            mutation_epoch: 0,
            time: 0.0,
            steps: 0,
        }
    }

    /// Records an out-of-step mutation (see `mutation_epoch`).
    #[inline]
    fn touch(&mut self) {
        self.mutation_epoch = self.mutation_epoch.wrapping_add(1);
    }

    /// `true` when every enabled dynamic body is asleep and no wake is
    /// pending — the precondition for the pipeline's fully-asleep fast
    /// path (nothing can move this step).
    pub(crate) fn fully_asleep(&self) -> bool {
        self.sleep.pending_wakes.is_empty()
            && (0..self.bodies.len())
                .all(|i| !self.bodies.is_movable(i) || self.bodies.is_sleeping(i))
    }

    /// The active configuration.
    #[inline]
    pub fn config(&self) -> &WorldConfig {
        &self.config
    }

    /// Mutable access to the configuration (e.g. to change thread count).
    ///
    /// Note: changing `config.broadphase` here has no effect on an already
    /// constructed world — use [`World::set_broadphase`].
    #[inline]
    pub fn config_mut(&mut self) -> &mut WorldConfig {
        self.touch();
        &mut self.config
    }

    /// Switches the broad-phase algorithm (used by the ablation study).
    pub fn set_broadphase(&mut self, kind: BroadphaseKind) {
        self.touch();
        self.config.broadphase = kind;
        self.pipeline
            .as_mut()
            .expect("pipeline present outside step")
            .set_broadphase(kind);
    }

    /// The step pipeline (stages + persistent executor).
    #[inline]
    pub fn pipeline(&self) -> &StepPipeline {
        self.pipeline
            .as_ref()
            .expect("pipeline present outside step")
    }

    /// Simulated time (s).
    #[inline]
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Steps executed so far.
    #[inline]
    pub fn step_count(&self) -> u64 {
        self.steps
    }

    // --- construction -----------------------------------------------------

    /// Adds a body described by `desc`, creating its geoms.
    pub fn add_body(&mut self, desc: BodyDesc) -> BodyId {
        self.touch();
        let idx = self.bodies.push(&desc);
        let id = BodyId(idx as u32);
        let body_transform = self.bodies.transform(idx);
        self.body_geoms.push(Vec::new());
        for (shape, local) in &desc.shapes {
            let gid = GeomId(self.geoms.len() as u32);
            let world_t = body_transform.compose(local);
            self.geoms.push(Geom {
                aabb: shape.aabb(&world_t),
                shape: shape.clone(),
                body: Some(id),
                local: *local,
                enabled: !desc.flags.contains(BodyFlags::DISABLED),
            });
            self.body_geoms[id.index()].push(gid);
        }
        id
    }

    /// Adds a world-static geom at the origin.
    pub fn add_static_geom(&mut self, shape: Shape) -> GeomId {
        self.add_static_geom_at(shape, Transform::IDENTITY)
    }

    /// Adds a world-static geom at `transform`.
    pub fn add_static_geom_at(&mut self, shape: Shape, transform: Transform) -> GeomId {
        self.touch();
        let gid = GeomId(self.geoms.len() as u32);
        self.geoms.push(Geom {
            aabb: shape.aabb(&transform),
            shape,
            body: None,
            local: transform,
            enabled: true,
        });
        gid
    }

    /// Adds a permanent joint; collision between its bodies is disabled.
    pub fn add_joint(&mut self, joint: Joint) -> JointId {
        self.touch();
        let id = JointId(self.joints.len() as u32);
        let (a, b) = (joint.body_a.0, joint.body_b.0);
        self.joint_pairs.insert((a.min(b), a.max(b)));
        self.joints.push(joint);
        id
    }

    /// Excludes collision detection between two bodies (used for composite
    /// entities like vehicles whose parts interpenetrate by design).
    pub fn exclude_collision(&mut self, a: BodyId, b: BodyId) {
        self.touch();
        self.joint_pairs.insert((a.0.min(b.0), a.0.max(b.0)));
    }

    /// Adds a cloth object.
    pub fn add_cloth(&mut self, cloth: Cloth) -> ClothId {
        self.touch();
        let id = ClothId(self.cloths.len() as u32);
        self.cloths.push(cloth);
        id
    }

    /// Marks a body explosive: on its first contact it is replaced by a
    /// blast sphere.
    pub fn make_explosive(&mut self, body: BodyId, cfg: ExplosionConfig) {
        self.touch();
        self.bodies
            .flags_mut(body.index())
            .insert(BodyFlags::EXPLOSIVE);
        self.explosive_cfg.push((body.0, cfg));
    }

    /// Adds a pre-fractured box at `position` with orientation `rotation`:
    /// an intact parent plus `pieces` debris boxes created disabled.
    ///
    /// Returns the parent body id.
    pub fn add_prefractured(
        &mut self,
        position: Vec3,
        rotation: parallax_math::Quat,
        half: Vec3,
        mass: f32,
        cfg: crate::fracture::FractureConfig,
    ) -> BodyId {
        let parent = self.add_body(
            BodyDesc::dynamic(position)
                .with_rotation(rotation)
                .with_shape(Shape::cuboid(half), mass)
                .with_flags(BodyFlags::PREFRACTURED),
        );
        let (offsets, piece_half) = Prefractured::debris_layout(half, cfg.pieces);
        let piece_mass = mass / cfg.pieces as f32;
        let mut debris = Vec::with_capacity(offsets.len());
        for off in &offsets {
            let d = self.add_body(
                BodyDesc::dynamic(position + rotation.rotate(*off))
                    .with_rotation(rotation)
                    .with_shape(Shape::cuboid(piece_half), piece_mass)
                    .with_flags(BodyFlags::DEBRIS | BodyFlags::DISABLED),
            );
            self.set_body_enabled(d, false);
            // Debris geoms stay in the collision space while dormant (ODE
            // semantics): they are considered by broad-phase and counted
            // as object-pairs, but cheaply rejected in narrow-phase.
            for g in &self.body_geoms[d.index()] {
                self.geoms[g.index()].enabled = true;
            }
            debris.push(d);
        }
        self.prefractured.push(Prefractured::new(
            parent,
            debris,
            offsets,
            cfg.scatter_speed,
        ));
        parent
    }

    // --- access -----------------------------------------------------------

    /// Immutable access to a body.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn body(&self, id: BodyId) -> BodyRef<'_> {
        self.bodies.body(id.index())
    }

    /// Mutable access to a body.
    #[inline]
    pub fn body_mut(&mut self, id: BodyId) -> BodyMut<'_> {
        // Conservative: the borrow may reposition the body without waking
        // anything (e.g. teleporting a sleeping body), which the pipeline
        // cache cannot see any other way.
        self.touch();
        BodyMut::new(&mut self.bodies, id.index())
    }

    /// A view over all bodies.
    #[inline]
    pub fn bodies(&self) -> BodiesView<'_> {
        BodiesView::new(&self.bodies)
    }

    /// All geoms.
    #[inline]
    pub fn geoms(&self) -> &[Geom] {
        &self.geoms
    }

    /// Immutable access to a joint.
    #[inline]
    pub fn joint(&self, id: JointId) -> &Joint {
        &self.joints[id.index()]
    }

    /// All joints.
    #[inline]
    pub fn joints(&self) -> &[Joint] {
        &self.joints
    }

    /// Immutable access to a cloth.
    #[inline]
    pub fn cloth(&self, id: ClothId) -> &Cloth {
        &self.cloths[id.index()]
    }

    /// Mutable access to a cloth.
    #[inline]
    pub fn cloth_mut(&mut self, id: ClothId) -> &mut Cloth {
        self.touch();
        &mut self.cloths[id.index()]
    }

    /// All cloths.
    #[inline]
    pub fn cloths(&self) -> &[Cloth] {
        &self.cloths
    }

    /// Live blast volumes.
    #[inline]
    pub fn blasts(&self) -> &[BlastVolume] {
        &self.blasts
    }

    /// Enables or disables a body and its geoms.
    pub fn set_body_enabled(&mut self, id: BodyId, enabled: bool) {
        self.touch();
        // A body leaving the simulation must not linger in a sleeping
        // island; wake the island (cheap, discards parked manifolds) so
        // its remaining members re-settle on their own.
        if self.bodies.is_sleeping(id.index()) {
            self.wake_island_of(id.index(), None);
        }
        let flags = self.bodies.flags_mut(id.index());
        if enabled {
            flags.remove(BodyFlags::DISABLED);
        } else {
            flags.insert(BodyFlags::DISABLED);
        }
        for g in &self.body_geoms[id.index()] {
            self.geoms[g.index()].enabled = enabled;
        }
    }

    /// Count of enabled, dynamic bodies.
    pub fn enabled_dynamic_bodies(&self) -> usize {
        (0..self.bodies.len())
            .filter(|&i| self.bodies.is_movable(i))
            .count()
    }

    // --- sleeping ----------------------------------------------------------

    /// Number of currently sleeping bodies.
    pub fn sleeping_body_count(&self) -> usize {
        (0..self.bodies.len())
            .filter(|&i| self.bodies.is_sleeping(i))
            .count()
    }

    /// Number of currently sleeping islands.
    pub fn sleeping_island_count(&self) -> usize {
        self.sleep.sleeping_islands()
    }

    /// Wakes the sleeping island containing `id` (no-op when awake).
    ///
    /// The parked manifolds are discarded: the bodies have not moved, so
    /// the next step's narrow-phase regenerates identical contacts.
    pub fn wake_body(&mut self, id: BodyId) {
        if self.bodies.is_sleeping(id.index()) {
            self.wake_island_of(id.index(), None);
        }
    }

    /// Wakes every sleeping island.
    pub fn wake_all(&mut self) {
        for i in 0..self.bodies.len() {
            if self.bodies.is_sleeping(i) {
                self.wake_island_of(i, None);
            }
        }
    }

    /// Wakes the sleeping island that body `i` belongs to, optionally
    /// replaying its parked manifolds into `replay` (the step's manifold
    /// arena). Returns 1 if an island was woken.
    pub(crate) fn wake_island_of(
        &mut self,
        i: usize,
        replay: Option<&mut Vec<ContactManifold>>,
    ) -> usize {
        let lane = self.bodies.island_raw(i);
        if lane == u32::MAX || lane & crate::island::SLEEP_SLOT_BIT == 0 {
            return 0;
        }
        let slot = (lane & !crate::island::SLEEP_SLOT_BIT) as usize;
        let Some(isle) = self.sleep.islands[slot].take() else {
            return 0;
        };
        for &bi in &isle.bodies {
            let k = bi as usize;
            self.bodies.flags_mut(k).remove(BodyFlags::SLEEPING);
            self.bodies.set_island(k, u32::MAX);
            self.bodies.sleep_timer[k] = 0;
            self.bodies.sleep_ema[k] = crate::sleep::WAKE_EMA;
        }
        if let Some(arena) = replay {
            for m in isle.manifolds {
                if !self.manifold_is_inert(&m) {
                    arena.push(m);
                }
            }
        }
        self.sleep.free.push(slot as u32);
        1
    }

    /// Serial disturbance scan, run before the integrator consumes the
    /// force accumulators: any sleeping body with a nonzero velocity,
    /// force or torque (user impulse, blast impulse, spring) is queued
    /// for the wake pass. Index-ordered and serial for determinism.
    pub(crate) fn scan_sleep_disturbances(&mut self) {
        if self.sleep.is_idle() {
            return;
        }
        for i in 0..self.bodies.len() {
            if !self.bodies.is_sleeping(i) {
                continue;
            }
            if self.bodies.linear_velocity(i) != Vec3::ZERO
                || self.bodies.angular_velocity(i) != Vec3::ZERO
                || self.bodies.force.get(i) != Vec3::ZERO
                || self.bodies.torque.get(i) != Vec3::ZERO
            {
                self.sleep.pending_wakes.push(i as u32);
            }
        }
    }

    /// Serial wake pass, run after narrow-phase and before island
    /// creation. Wake sources: the pending disturbance queue, contact
    /// manifolds touching a sleeping body (only awake×sleeping pairs
    /// reach narrow-phase), and joints whose other side is awake and
    /// movable. Candidates are processed in ascending body order; each
    /// wake replays the island's parked manifolds into the arena so the
    /// woken island re-solves its resting contacts this very step.
    /// Returns the number of islands woken.
    pub(crate) fn resolve_wakes(&mut self, manifolds: &mut Vec<ContactManifold>) -> usize {
        if self.sleep.is_idle() {
            return 0;
        }
        let mut candidates = std::mem::take(&mut self.sleep.pending_wakes);
        for m in manifolds.iter() {
            for gid in [m.geom_a, m.geom_b] {
                if let Some(b) = self.geoms[gid.index()].body {
                    if self.bodies.is_sleeping(b.index()) {
                        candidates.push(b.0);
                    }
                }
            }
        }
        for j in &self.joints {
            if j.is_broken() {
                continue;
            }
            let (a, b) = (j.body_a.index(), j.body_b.index());
            let (sa, sb) = (self.bodies.is_sleeping(a), self.bodies.is_sleeping(b));
            if sa != sb {
                let (sleeper, other) = if sa { (a, b) } else { (b, a) };
                if self.bodies.is_movable(other) {
                    candidates.push(sleeper as u32);
                }
            }
        }
        candidates.sort_unstable();
        candidates.dedup();
        let mut woken = 0;
        for bi in candidates {
            let i = bi as usize;
            if self.bodies.is_sleeping(i) {
                woken += self.wake_island_of(i, Some(manifolds));
            }
        }
        woken
    }

    /// Serial sleep pass, run after island processing (velocities are
    /// post-solve). Updates every awake body's activity EMA and quiet
    /// timer — unconditionally, so a sleeping-enabled run stays
    /// bit-identical to a disabled run up to its first sleep transition —
    /// then, when sleeping is enabled, deactivates every island whose
    /// members are all past the quiet threshold. Returns the number of
    /// islands put to sleep.
    pub(crate) fn update_sleep(
        &mut self,
        islands: &[crate::island::Island],
        manifolds: &[ContactManifold],
    ) -> usize {
        let lin2 = self.config.sleep_lin_threshold * self.config.sleep_lin_threshold;
        let ang2 = self.config.sleep_ang_threshold * self.config.sleep_ang_threshold;
        for i in 0..self.bodies.len() {
            if self.bodies.is_sleeping(i) {
                continue;
            }
            if self.bodies.is_movable(i) {
                let v = self.bodies.linear_velocity(i).length_squared();
                let w = self.bodies.angular_velocity(i).length_squared();
                let ema = 0.5 * self.bodies.sleep_ema[i] + 0.5 * (v / lin2 + w / ang2);
                self.bodies.sleep_ema[i] = ema;
                self.bodies.sleep_timer[i] = if ema < 1.0 {
                    self.bodies.sleep_timer[i].saturating_add(1)
                } else {
                    0
                };
            } else {
                self.bodies.sleep_ema[i] = 0.0;
                self.bodies.sleep_timer[i] = 0;
            }
        }
        if !self.config.sleeping {
            return 0;
        }
        let mut slept = 0;
        for island in islands {
            if island.bodies.is_empty() {
                continue;
            }
            let ready = island
                .bodies
                .iter()
                .all(|&bi| self.bodies.sleep_timer[bi as usize] >= self.config.sleep_steps);
            if !ready {
                continue;
            }
            let parked: Vec<ContactManifold> = island
                .manifolds
                .iter()
                .map(|&mi| manifolds[mi as usize].clone())
                .collect();
            let slot = self.sleep.alloc();
            for &bi in &island.bodies {
                let k = bi as usize;
                self.bodies.flags_mut(k).insert(BodyFlags::SLEEPING);
                self.bodies.set_velocity(k, Vec3::ZERO, Vec3::ZERO);
                self.bodies
                    .set_island(k, crate::island::SLEEP_SLOT_BIT | slot);
            }
            self.sleep.islands[slot as usize] = Some(crate::sleep::SleepingIsland {
                bodies: island.bodies.clone(),
                manifolds: parked,
            });
            slept += 1;
        }
        slept
    }

    // --- snapshot / restore ------------------------------------------------

    /// Serializes the complete mutable simulation state to a versioned
    /// binary blob (see [`crate::snapshot`] for the format). Restoring the
    /// blob with [`World::restore`] reproduces the trajectory bit for bit.
    pub fn snapshot(&self) -> Vec<u8> {
        crate::snapshot::snapshot(self)
    }

    /// Restores state previously captured by [`World::snapshot`].
    ///
    /// The receiving world must have been built by the same scene
    /// constructor as the snapshotted one (structural data — terrain
    /// meshes, cloth topology, fracture layouts — is matched by index,
    /// not serialized). The configuration is deliberately *not* restored:
    /// replaying one snapshot under different thread counts or SIMD modes
    /// is exactly what the divergence bisector does.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), crate::snapshot::SnapshotError> {
        self.touch();
        crate::snapshot::restore(self, bytes)
    }

    // --- stepping -----------------------------------------------------------

    /// Runs one displayed frame: `steps_per_frame` simulation steps.
    pub fn step_frame(&mut self) -> Vec<StepProfile> {
        (0..self.config.steps_per_frame)
            .map(|_| self.step())
            .collect()
    }

    /// Advances the simulation by one ∆t, returning the work profile.
    ///
    /// The phases themselves are implemented by the [`StepPipeline`]
    /// stages; see [`crate::pipeline`].
    pub fn step(&mut self) -> StepProfile {
        let mut pipeline = self.pipeline.take().expect("pipeline present outside step");
        let profile = pipeline.step(self);
        self.pipeline = Some(pipeline);
        profile
    }

    // --- step internals (called by the pipeline stages) -------------------------

    pub(crate) fn apply_slider_springs(&mut self) {
        let k = self.config.slider_spring_k;
        let c = self.config.slider_spring_c;
        for j in &self.joints {
            if j.is_broken() {
                continue;
            }
            if let JointKind::Slider { axis_a, anchor_a } = j.kind {
                let (ia, ib) = (j.body_a.index(), j.body_b.index());
                // Both sides asleep: the displacement is frozen, so the
                // spring force is parked with the island (applying it
                // would re-wake the island every step).
                if self.bodies.is_sleeping(ia) && self.bodies.is_sleeping(ib) {
                    continue;
                }
                let ta = self.bodies.transform(ia);
                let axis = ta.apply_vector(axis_a);
                let anchor_world = ta.apply(anchor_a);
                let displacement = (self.bodies.position(ib) - anchor_world).dot(axis);
                let rel_vel =
                    (self.bodies.linear_velocity(ib) - self.bodies.linear_velocity(ia)).dot(axis);
                let f = axis * (-k * displacement - c * rel_vel);
                self.bodies.add_force(ib, f);
                self.bodies.add_force(ia, -f);
            }
        }
    }

    pub(crate) fn apply_blast_impulses(&mut self) {
        if self.blasts.is_empty() {
            return;
        }
        // A body outside every blast radius receives no impulse; one
        // bounding box over all blasts rejects such bodies with a single
        // containment test instead of a per-blast falloff evaluation.
        let mut bounds = Aabb::from_center_half_extents(
            self.blasts[0].center,
            Vec3::splat(self.blasts[0].radius),
        );
        for blast in &self.blasts[1..] {
            bounds = bounds.union(&Aabb::from_center_half_extents(
                blast.center,
                Vec3::splat(blast.radius),
            ));
        }
        for bi in 0..self.bodies.len() {
            if self.bodies.is_static(bi)
                || self.bodies.is_disabled(bi)
                || self.bodies.flags(bi).contains(BodyFlags::BLAST_VOLUME)
            {
                continue;
            }
            let pos = self.bodies.position(bi);
            if !bounds.contains_point(pos) {
                continue;
            }
            let mut total = Vec3::ZERO;
            for blast in &self.blasts {
                total += blast.impulse_at(pos);
            }
            if total != Vec3::ZERO {
                self.bodies.apply_impulse_at(bi, total, pos);
            }
        }
    }

    pub(crate) fn refresh_aabbs_into(&mut self, out: &mut Vec<(GeomId, Aabb)>) {
        out.clear();
        let bodies = &self.bodies;
        for (i, g) in self.geoms.iter_mut().enumerate() {
            if !g.enabled {
                continue;
            }
            // Sleeping bodies have not moved: keep the cached AABB (the
            // geom stays in the broad-phase so awake bodies can still
            // find it and trigger a contact wake).
            let asleep = g.body.is_some_and(|b| bodies.is_sleeping(b.index()));
            if !asleep {
                let world_t = match g.body {
                    Some(b) => bodies.transform(b.index()).compose(&g.local),
                    None => g.local,
                };
                g.aabb = g.shape.aabb(&world_t);
            }
            out.push((GeomId(i as u32), g.aabb));
        }
    }

    /// Removes pairs that cannot produce contacts: same body, both static,
    /// jointed bodies, disabled.
    /// Classifies broad-phase candidates. Pairs from the same body or
    /// between jointed/excluded bodies are dropped; pairs where both sides
    /// are static or either body is disabled are kept as *considered*
    /// pairs (`active = false`) — they are counted and pay a cheap
    /// narrow-phase rejection, like ODE pairs filtered in the near
    /// callback — but generate no contacts. The rest are fully collided.
    pub(crate) fn filter_pairs_into(
        &self,
        candidates: &[(GeomId, GeomId)],
        out: &mut Vec<(GeomId, GeomId, bool)>,
    ) {
        out.clear();
        out.extend(candidates.iter().filter_map(|&(a, b)| {
            let ga = &self.geoms[a.index()];
            let gb = &self.geoms[b.index()];
            if !ga.enabled || !gb.enabled {
                return None;
            }
            let body_disabled = |g: &Geom| {
                g.body
                    .map(|id| self.bodies.is_disabled(id.index()))
                    .unwrap_or(false)
            };
            if let (Some(ba), Some(bb)) = (ga.body, gb.body) {
                if ba == bb {
                    return None;
                }
                let key = (ba.0.min(bb.0), ba.0.max(bb.0));
                if self.joint_pairs.contains(&key) {
                    return None;
                }
            }
            // Sleeping bodies count as static-like here: a pair needs at
            // least one *awake* dynamic side to produce contacts. A
            // sleeping×sleeping or sleeping×static pair is skipped (its
            // manifolds are parked in the sleep system); an
            // awake×sleeping pair stays active so contact can wake the
            // island.
            let awake_dynamic = |g: &Geom| {
                g.body
                    .map(|id| {
                        !self.bodies.is_static(id.index()) && !self.bodies.is_sleeping(id.index())
                    })
                    .unwrap_or(false)
            };
            let any_awake = awake_dynamic(ga) || awake_dynamic(gb);
            let active = any_awake && !body_disabled(ga) && !body_disabled(gb);
            Some((a, b, active))
        }));
    }

    pub(crate) fn geom_world_transform(&self, g: &Geom) -> Transform {
        match g.body {
            Some(b) => self.bodies.transform(b.index()).compose(&g.local),
            None => g.local,
        }
    }

    /// Explosion + fracture hooks. Returns (explosions, shattered).
    pub(crate) fn process_contact_events(
        &mut self,
        manifolds: &[ContactManifold],
    ) -> (usize, usize) {
        let mut to_explode: Vec<u32> = Vec::new();
        let mut to_shatter: Vec<usize> = Vec::new();

        for m in manifolds {
            let ba = self.geoms[m.geom_a.index()].body;
            let bb = self.geoms[m.geom_b.index()].body;
            for (this, other) in [(ba, bb), (bb, ba)] {
                let Some(this) = this else { continue };
                let flags = self.bodies.flags(this.index());
                let disabled = self.bodies.is_disabled(this.index());
                let other_is_blast = other
                    .map(|o| {
                        self.bodies
                            .flags(o.index())
                            .contains(BodyFlags::BLAST_VOLUME)
                    })
                    .unwrap_or(false);
                if flags.contains(BodyFlags::EXPLOSIVE)
                    && !disabled
                    && !other_is_blast
                    && !to_explode.contains(&this.0)
                {
                    to_explode.push(this.0);
                }
                if flags.contains(BodyFlags::PREFRACTURED) && !disabled && other_is_blast {
                    if let Some(pi) = self
                        .prefractured
                        .iter()
                        .position(|p| p.parent == this && !p.shattered)
                    {
                        if !to_shatter.contains(&pi) {
                            to_shatter.push(pi);
                        }
                    }
                }
            }
        }

        let explosions = to_explode.len();
        for b in to_explode {
            self.explode(BodyId(b));
        }
        let shattered = to_shatter.len();
        for pi in to_shatter {
            self.shatter(pi);
        }
        (explosions, shattered)
    }

    fn explode(&mut self, body: BodyId) {
        let cfg = self
            .explosive_cfg
            .iter()
            .find(|(b, _)| *b == body.0)
            .map(|(_, c)| *c)
            .unwrap_or_default();
        let center = self.bodies.position(body.index());
        self.set_body_enabled(body, false);
        // Blast sphere body: static, flagged, participates in CD so
        // pre-fractured objects can detect it.
        let blast_body = self.add_body(
            BodyDesc::fixed(center)
                .with_shape(Shape::sphere(cfg.blast_radius), 1.0)
                .with_flags(BodyFlags::BLAST_VOLUME),
        );
        self.blasts.push(BlastVolume {
            body: blast_body,
            center,
            radius: cfg.blast_radius,
            steps_left: cfg.duration_steps,
            impulse: cfg.impulse,
            fresh: true,
        });
    }

    fn shatter(&mut self, index: usize) {
        let (parent, debris, offsets, scatter) = {
            let p = &mut self.prefractured[index];
            p.shattered = true;
            (
                p.parent,
                p.debris.clone(),
                p.local_offsets.clone(),
                p.scatter_speed,
            )
        };
        let parent_t = self.bodies.transform(parent.index());
        let parent_vel = self.bodies.linear_velocity(parent.index());
        let center = parent_t.position;
        self.set_body_enabled(parent, false);
        for (d, off) in debris.into_iter().zip(offsets) {
            self.set_body_enabled(d, true);
            // Re-pose the piece on the parent's current transform.
            let pos = parent_t.apply(off);
            let dir = (pos - center).normalized();
            let i = d.index();
            self.bodies.set_position(i, pos);
            self.bodies.set_rotation(i, parent_t.rotation);
            self.bodies.refresh_inertia(i);
            self.bodies
                .set_linear_velocity(i, parent_vel + dir * scatter);
        }
    }

    pub(crate) fn update_cloth_contact_lists(&mut self) {
        for cloth in &mut self.cloths {
            cloth.contact_bodies.clear();
            cloth.contact_static_geoms.clear();
            let bb = cloth.aabb(0.2);
            for (gi, g) in self.geoms.iter().enumerate() {
                if !g.enabled || !bb.overlaps(&g.aabb) {
                    continue;
                }
                match g.body {
                    Some(b) => {
                        if self.bodies.is_disabled(b.index())
                            || self
                                .bodies
                                .flags(b.index())
                                .contains(BodyFlags::BLAST_VOLUME)
                        {
                            continue;
                        }
                        if !cloth.contact_bodies.contains(&b.0) {
                            cloth.contact_bodies.push(b.0);
                        }
                    }
                    // World-static geoms (ground plane, terrain) collide
                    // with cloth too.
                    None => cloth.contact_static_geoms.push(gi as u32),
                }
            }
        }
    }

    pub(crate) fn manifold_is_inert(&self, m: &ContactManifold) -> bool {
        for gid in [m.geom_a, m.geom_b] {
            let g = &self.geoms[gid.index()];
            if !g.enabled {
                return true;
            }
            if let Some(b) = g.body {
                if self.bodies.is_disabled(b.index())
                    || self
                        .bodies
                        .flags(b.index())
                        .contains(BodyFlags::BLAST_VOLUME)
                {
                    return true;
                }
            }
        }
        false
    }

    pub(crate) fn build_edges_into(
        &self,
        manifolds: &[ContactManifold],
        edges: &mut Vec<ConstraintEdge>,
    ) {
        edges.clear();
        edges.reserve(self.joints.len() + manifolds.len());
        for (i, j) in self.joints.iter().enumerate() {
            if j.is_broken() {
                continue;
            }
            if self.bodies.is_disabled(j.body_a.index())
                || self.bodies.is_disabled(j.body_b.index())
            {
                continue;
            }
            // Joints inside a sleeping island contribute no rows; the
            // wake pass already ran, so a joint touching a sleeping body
            // here has both sides asleep (or a static anchor side).
            if self.bodies.is_sleeping(j.body_a.index())
                || self.bodies.is_sleeping(j.body_b.index())
            {
                continue;
            }
            edges.push(ConstraintEdge {
                body_a: j.body_a.0,
                body_b: j.body_b.0,
                index: i as u32,
                kind: EdgeKind::Joint,
                dof: j.kind().dof_removed(),
            });
        }
        for (i, m) in manifolds.iter().enumerate() {
            let ba = self.geoms[m.geom_a.index()].body.map_or(u32::MAX, |b| b.0);
            let bb = self.geoms[m.geom_b.index()].body.map_or(u32::MAX, |b| b.0);
            let (a, b) = if ba == u32::MAX { (bb, ba) } else { (ba, bb) };
            if a == u32::MAX {
                continue;
            }
            edges.push(ConstraintEdge {
                body_a: a,
                body_b: b,
                index: i as u32,
                kind: EdgeKind::Contact,
                dof: m.len() * 3,
            });
        }
    }

    /// Returns the number of joints that broke this step.
    pub(crate) fn update_breakable_joints(&mut self, impulses: &[(u32, f32)]) -> usize {
        let mut per_joint: std::collections::HashMap<u32, f32> = std::collections::HashMap::new();
        for (j, i) in impulses {
            *per_joint.entry(*j).or_insert(0.0) += i;
        }
        let mut broken = 0;
        for (ji, j) in self.joints.iter_mut().enumerate() {
            let applied = per_joint.get(&(ji as u32)).copied().unwrap_or(0.0);
            if j.update_break(applied) {
                broken += 1;
                let key = (j.body_a.0.min(j.body_b.0), j.body_a.0.max(j.body_b.0));
                self.joint_pairs.remove(&key);
            }
        }
        broken
    }

    /// Ticks blast volumes, disabling expired ones. Returns the number
    /// that expired this step.
    pub(crate) fn expire_blasts(&mut self) -> usize {
        let mut expired = 0;
        let bodies = &mut self.bodies;
        let geoms = &mut self.geoms;
        let body_geoms = &self.body_geoms;
        self.blasts.retain_mut(|blast| {
            if blast.tick() {
                true
            } else {
                expired += 1;
                bodies
                    .flags_mut(blast.body.index())
                    .insert(BodyFlags::DISABLED);
                for g in &body_geoms[blast.body.index()] {
                    geoms[g.index()].enabled = false;
                }
                false
            }
        });
        expired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> World {
        World::new(WorldConfig::default())
    }

    #[test]
    fn sphere_falls_and_rests_on_plane() {
        let mut w = world();
        w.add_static_geom(Shape::plane(Vec3::UNIT_Y, 0.0));
        let ball = w.add_body(
            BodyDesc::dynamic(Vec3::new(0.0, 3.0, 0.0)).with_shape(Shape::sphere(0.5), 1.0),
        );
        for _ in 0..400 {
            w.step();
        }
        let p = w.body(ball).position();
        assert!((p.y - 0.5).abs() < 0.05, "rest height {p:?}");
        assert!(w.body(ball).linear_velocity().length() < 0.1);
    }

    #[test]
    fn box_stack_is_stable() {
        let mut w = world();
        w.add_static_geom(Shape::plane(Vec3::UNIT_Y, 0.0));
        let mut ids = Vec::new();
        for i in 0..3 {
            ids.push(
                w.add_body(
                    BodyDesc::dynamic(Vec3::new(0.0, 0.5 + i as f32 * 1.001, 0.0))
                        .with_shape(Shape::cuboid(Vec3::splat(0.5)), 1.0),
                ),
            );
        }
        for _ in 0..300 {
            w.step();
        }
        for (i, id) in ids.iter().enumerate() {
            let p = w.body(*id).position();
            assert!((p.y - (0.5 + i as f32)).abs() < 0.1, "box {i} at {p:?}");
            assert!(p.x.abs() < 0.2 && p.z.abs() < 0.2, "box {i} slid to {p:?}");
        }
    }

    #[test]
    fn ball_joint_holds_pendulum_together() {
        let mut w = world();
        let anchor = w.add_body(BodyDesc::fixed(Vec3::new(0.0, 2.0, 0.0)));
        let bob = w.add_body(
            BodyDesc::dynamic(Vec3::new(1.0, 2.0, 0.0)).with_shape(Shape::sphere(0.2), 1.0),
        );
        w.add_joint(Joint::new(
            JointKind::Ball {
                anchor_a: Vec3::ZERO,
                anchor_b: Vec3::new(-1.0, 0.0, 0.0),
            },
            anchor,
            bob,
        ));
        for _ in 0..200 {
            w.step();
        }
        // The bob must stay ~1 m from the anchor.
        let d = (w.body(bob).position() - Vec3::new(0.0, 2.0, 0.0)).length();
        assert!((d - 1.0).abs() < 0.1, "pendulum length drifted to {d}");
        // And it must have swung downward.
        assert!(w.body(bob).position().y < 2.0);
    }

    #[test]
    fn islands_form_from_contact_clusters() {
        let mut w = world();
        w.add_static_geom(Shape::plane(Vec3::UNIT_Y, 0.0));
        // Two separated stacks of two touching spheres.
        for x in [0.0f32, 100.0] {
            for i in 0..2 {
                w.add_body(
                    BodyDesc::dynamic(Vec3::new(x, 0.5 + i as f32 * 0.95, 0.0))
                        .with_shape(Shape::sphere(0.5), 1.0),
                );
            }
        }
        let mut profile = StepProfile::default();
        for _ in 0..5 {
            profile = w.step();
        }
        assert_eq!(profile.islands.len(), 2, "{:?}", profile.islands.len());
    }

    #[test]
    fn explosive_body_detonates_on_contact() {
        let mut w = world();
        w.add_static_geom(Shape::plane(Vec3::UNIT_Y, 0.0));
        let bomb = w.add_body(
            BodyDesc::dynamic(Vec3::new(0.0, 1.0, 0.0)).with_shape(Shape::sphere(0.3), 1.0),
        );
        w.make_explosive(bomb, ExplosionConfig::default());
        let bystander = w.add_body(
            BodyDesc::dynamic(Vec3::new(2.0, 0.5, 0.0)).with_shape(Shape::sphere(0.5), 1.0),
        );
        let mut exploded = false;
        for _ in 0..200 {
            let p = w.step();
            if p.events.explosions > 0 {
                exploded = true;
                break;
            }
        }
        assert!(exploded, "bomb should explode when it lands");
        assert!(w.body(bomb).is_disabled());
        assert_eq!(w.blasts().len(), 1);
        // The blast pushes the bystander away.
        for _ in 0..5 {
            w.step();
        }
        assert!(
            w.body(bystander).linear_velocity().x > 0.5,
            "bystander vel {:?}",
            w.body(bystander).linear_velocity()
        );
    }

    #[test]
    fn prefractured_shatters_in_blast() {
        let mut w = world();
        w.add_static_geom(Shape::plane(Vec3::UNIT_Y, 0.0));
        let wall = w.add_prefractured(
            Vec3::new(1.5, 1.0, 0.0),
            parallax_math::Quat::IDENTITY,
            Vec3::new(0.5, 1.0, 0.5),
            8.0,
            crate::fracture::FractureConfig::default(),
        );
        let bomb = w.add_body(
            BodyDesc::dynamic(Vec3::new(0.0, 0.6, 0.0)).with_shape(Shape::sphere(0.3), 1.0),
        );
        w.make_explosive(bomb, ExplosionConfig::default());
        let mut shattered = false;
        for _ in 0..300 {
            let p = w.step();
            if p.events.shattered > 0 {
                shattered = true;
                break;
            }
        }
        assert!(shattered, "wall should shatter inside blast radius");
        assert!(w.body(wall).is_disabled());
        // Debris is enabled and moving.
        let debris_moving = w
            .bodies()
            .iter()
            .filter(|b| b.flags().contains(BodyFlags::DEBRIS))
            .any(|b| !b.is_disabled() && b.linear_velocity().length() > 0.1);
        assert!(debris_moving);
    }

    #[test]
    fn breakable_joint_snaps_under_impact() {
        let mut w = world();
        let left = w.add_body(BodyDesc::fixed(Vec3::new(-0.5, 1.0, 0.0)));
        let right = w.add_body(
            BodyDesc::dynamic(Vec3::new(0.5, 1.0, 0.0))
                .with_shape(Shape::cuboid(Vec3::splat(0.4)), 1.0),
        );
        w.add_joint(
            Joint::new(
                JointKind::Fixed {
                    anchor_a: Vec3::new(0.5, 0.0, 0.0),
                    anchor_b: Vec3::new(-0.5, 0.0, 0.0),
                },
                left,
                right,
            )
            .breakable(2.0),
        );
        // Slam a heavy fast projectile into the jointed box.
        let hammer = w.add_body(
            BodyDesc::dynamic(Vec3::new(5.0, 1.0, 0.0))
                .with_shape(Shape::sphere(0.4), 20.0)
                .with_velocity(Vec3::new(-30.0, 0.0, 0.0)),
        );
        let _ = hammer;
        let mut broke = false;
        for _ in 0..300 {
            let p = w.step();
            if p.events.joints_broken > 0 {
                broke = true;
                break;
            }
        }
        assert!(broke, "fixed joint should break under the impact");
    }

    #[test]
    fn cloth_contact_list_populates() {
        let mut w = world();
        let ball = w.add_body(
            BodyDesc::dynamic(Vec3::new(0.0, 0.5, 0.0)).with_shape(Shape::sphere(0.5), 1.0),
        );
        let _ = ball;
        let cloth = Cloth::rectangle(Vec3::new(-0.5, 1.2, -0.5), 1.0, 1.0, 5, 5, &[]);
        let cid = w.add_cloth(cloth);
        let mut touched = false;
        for _ in 0..100 {
            w.step();
            if !w.cloth(cid).contact_bodies().is_empty() {
                touched = true;
            }
        }
        assert!(touched, "falling cloth should pick up the ball");
        // Cloth must not be inside the sphere.
        for v in w.cloth(cid).vertices() {
            let d = (v.pos - w.body(ball).position()).length();
            assert!(d > 0.4, "vertex {v:?} inside ball");
        }
    }

    #[test]
    fn profile_reports_phase_work() {
        let mut w = world();
        w.add_static_geom(Shape::plane(Vec3::UNIT_Y, 0.0));
        for i in 0..10 {
            w.add_body(
                BodyDesc::dynamic(Vec3::new(i as f32 * 0.9, 0.5, 0.0))
                    .with_shape(Shape::sphere(0.5), 1.0),
            );
        }
        let p = w.step();
        assert!(p.broadphase.geoms >= 11);
        assert!(!p.pairs.is_empty());
        assert!(p.body_count >= 10);
    }

    #[test]
    fn multithreaded_step_matches_entity_counts() {
        let build = |threads: usize| {
            let cfg = WorldConfig {
                threads,
                ..Default::default()
            };
            let mut w = World::new(cfg);
            w.add_static_geom(Shape::plane(Vec3::UNIT_Y, 0.0));
            for i in 0..20 {
                w.add_body(
                    BodyDesc::dynamic(Vec3::new(
                        (i % 5) as f32 * 1.2,
                        0.5 + (i / 5) as f32 * 1.05,
                        0.0,
                    ))
                    .with_shape(Shape::cuboid(Vec3::splat(0.5)), 1.0),
                );
            }
            for _ in 0..50 {
                w.step();
            }
            w
        };
        let w1 = build(1);
        let w4 = build(4);
        // Deterministic phases must agree on entity counts; positions may
        // diverge slightly due to solver ordering, but everything must stay
        // above the floor.
        assert_eq!(w1.bodies().len(), w4.bodies().len());
        for b in w4.bodies().iter().filter(|b| !b.is_static()) {
            assert!(
                b.position().y > 0.0,
                "body fell through floor: {:?}",
                b.position()
            );
        }
    }

    #[test]
    fn frame_runs_three_steps() {
        let mut w = world();
        let profiles = w.step_frame();
        assert_eq!(profiles.len(), 3);
        assert_eq!(w.step_count(), 3);
        assert!((w.time() - 0.03).abs() < 1e-9);
    }
}

#[cfg(test)]
mod cloth_static_tests {
    use super::*;

    #[test]
    fn cloth_rests_on_world_static_ground() {
        // Regression: cloths must collide with world-static geoms (ground
        // plane / terrain added via add_static_geom), not only with bodies.
        let mut w = World::new(WorldConfig::default());
        w.add_static_geom(Shape::plane(Vec3::UNIT_Y, 0.0));
        let cid = w.add_cloth(Cloth::rectangle(
            Vec3::new(-0.5, 1.0, -0.5),
            1.0,
            1.0,
            5,
            5,
            &[],
        ));
        for _ in 0..200 {
            w.step();
        }
        assert!(
            !w.cloth(cid).contact_static_geoms().is_empty(),
            "ground plane missing from the cloth contact list"
        );
        for v in w.cloth(cid).vertices() {
            assert!(v.pos.y > -0.05, "cloth fell through the floor: {:?}", v.pos);
        }
    }
}
